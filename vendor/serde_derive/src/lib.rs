//! Offline stand-in for `serde_derive`.
//!
//! This workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! marker (no code in the tree serializes anything), and the build
//! environment has no network access to fetch the real crates. These
//! derive macros therefore accept the same syntax and expand to nothing.
//! Swapping the real `serde`/`serde_derive` back in is a two-line change
//! in the workspace `Cargo.toml` (see README, "Offline dependencies").

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
