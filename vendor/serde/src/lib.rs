//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! markers but never serializes at runtime, and the build environment
//! cannot reach crates.io. This crate supplies just enough surface for
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]` to compile:
//! two empty traits and the no-op derive macros. See README, "Offline
//! dependencies", for how to swap the real serde back in.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op
/// derive does not implement it).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods; the no-op
/// derive does not implement it).
pub trait Deserialize<'de>: Sized {}
