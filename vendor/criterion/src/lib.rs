//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use
//! — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! measurement_time, bench_function}`, `Bencher::iter`, `black_box`,
//! `criterion_group!`, `criterion_main!` — as a small wall-clock
//! harness: each benchmark is warmed up once, run for up to the
//! configured sample count or measurement budget, and reported as
//! median ns/iter on stdout. No statistics or plots; see README,
//! "Offline dependencies", for swapping the real crate in. Two hooks
//! the CI perf jobs rely on:
//!
//! * `criterion_main!` forwards non-flag CLI arguments as substring
//!   filters (real criterion's positional filter), so
//!   `cargo bench -- simd` runs only the simd groups;
//! * when `CUBIE_CRITERION_JSON` names a file, every completed
//!   benchmark rewrites it with the full result list
//!   (`cubie-criterion-baseline/v1`) — the artifact the `bench-compile`
//!   CI job uploads as the per-run perf baseline.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement marker types (`criterion::measurement::WallTime`).
pub mod measurement {
    /// Wall-clock measurement (the only kind this stand-in offers).
    pub struct WallTime;
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _parent: PhantomData,
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size;
        let t = self.default_measurement_time;
        run_one(&name.into(), n, t, f);
        self
    }
}

/// A named group of benchmarks sharing sample-count/time settings.
pub struct BenchmarkGroup<'a, M> {
    _parent: PhantomData<&'a mut M>,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Cap the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up duration. The stand-in always runs exactly one
    /// unrecorded warm-up sample, so the duration is accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Close the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark-name substring filters (empty: run everything). Injected by
/// the `criterion_main!`-generated `main` from its CLI arguments — NOT
/// read from `std::env::args()` here, so library unit tests (which see
/// the test harness's own filter arguments) are unaffected.
fn cli_filters() -> &'static Mutex<Vec<String>> {
    static FILTERS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    FILTERS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Install benchmark-name filters (substring match, any-of). Called by
/// the `criterion_main!` expansion with the positional CLI arguments;
/// callable directly from custom harness mains.
pub fn set_cli_filters(filters: Vec<String>) {
    *cli_filters().lock().unwrap_or_else(|e| e.into_inner()) = filters;
}

fn should_run(label: &str) -> bool {
    let filters = cli_filters().lock().unwrap_or_else(|e| e.into_inner());
    filters.is_empty() || filters.iter().any(|f| label.contains(f.as_str()))
}

/// Completed results of this process, in run order — the source of the
/// `CUBIE_CRITERION_JSON` document (rewritten whole after every
/// benchmark, so even an interrupted run leaves a valid file).
fn results() -> &'static Mutex<Vec<(String, f64, usize)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, f64, usize)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_result(label: &str, ns_per_iter: f64, samples: usize) {
    let Ok(path) = std::env::var("CUBIE_CRITERION_JSON") else {
        return;
    };
    let mut all = results().lock().unwrap_or_else(|e| e.into_inner());
    all.push((label.to_string(), ns_per_iter, samples));
    let mut doc =
        String::from("{\n  \"schema\": \"cubie-criterion-baseline/v1\",\n  \"benchmarks\": [");
    for (i, (name, ns, n)) in all.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        // Labels are bench identifiers (no quotes/backslashes to escape).
        doc.push_str(&format!(
            "\n    {{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}, \"samples\": {n}}}"
        ));
    }
    doc.push_str("\n  ]\n}\n");
    // Bench binaries run with CWD = their package dir, where a relative
    // `results/…` destination usually doesn't exist yet — create it.
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("warning: could not write CUBIE_CRITERION_JSON={path}: {e}");
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, mut f: F) {
    if !should_run(label) {
        return;
    }
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up sample (not recorded).
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    let started = Instant::now();
    let mut taken = 0usize;
    while taken < samples && started.elapsed() < budget {
        f(&mut b);
        taken += 1;
    }
    let per_iter_ns = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    println!("bench: {label:<48} {per_iter_ns:>14.1} ns/iter ({taken} samples)");
    record_result(label, per_iter_ns, taken);
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, accumulating into the per-iteration average.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups. Positional (non-`-`)
/// CLI arguments become benchmark-name substring filters, matching real
/// criterion's `cargo bench -- <filter>` behaviour; flag arguments
/// (`--bench` etc., which cargo forwards) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::set_cli_filters(
                std::env::args()
                    .skip(1)
                    .filter(|a| !a.starts_with('-'))
                    .collect(),
            );
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests touching the process-global filter list.
    fn filter_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn harness_runs_and_counts() {
        let _guard = filter_lock();
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        g.bench_function("inc", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls >= 3, "warm-up + samples should run: {calls}");
    }

    #[test]
    fn cli_filters_select_by_substring() {
        let _guard = filter_lock();
        set_cli_filters(vec!["simd".to_string()]);
        assert!(should_run("simd-mma-strided/avx2"));
        assert!(should_run("gemm-simd"));
        assert!(!should_run("par_map-dispatch/1024"));
        // A filtered-out benchmark must not execute at all.
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("unrelated", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert_eq!(calls, 0, "filtered benchmark ran anyway");
        set_cli_filters(Vec::new());
        assert!(should_run("anything"));
    }
}
