//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use
//! — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! measurement_time, bench_function}`, `Bencher::iter`, `black_box`,
//! `criterion_group!`, `criterion_main!` — as a small wall-clock
//! harness: each benchmark is warmed up once, run for up to the
//! configured sample count or measurement budget, and reported as
//! median ns/iter on stdout. No statistics, plots or baselines; see
//! README, "Offline dependencies", for swapping the real crate in.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement marker types (`criterion::measurement::WallTime`).
pub mod measurement {
    /// Wall-clock measurement (the only kind this stand-in offers).
    pub struct WallTime;
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _parent: PhantomData,
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size;
        let t = self.default_measurement_time;
        run_one(&name.into(), n, t, f);
        self
    }
}

/// A named group of benchmarks sharing sample-count/time settings.
pub struct BenchmarkGroup<'a, M> {
    _parent: PhantomData<&'a mut M>,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Cap the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up duration. The stand-in always runs exactly one
    /// unrecorded warm-up sample, so the duration is accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Close the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up sample (not recorded).
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    let started = Instant::now();
    let mut taken = 0usize;
    while taken < samples && started.elapsed() < budget {
        f(&mut b);
        taken += 1;
    }
    let per_iter_ns = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    println!("bench: {label:<48} {per_iter_ns:>14.1} ns/iter ({taken} samples)");
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, accumulating into the per-iteration average.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        g.bench_function("inc", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls >= 3, "warm-up + samples should run: {calls}");
    }
}
