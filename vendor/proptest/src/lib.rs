//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this crate
//! re-implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! uniform range and tuple strategies, [`collection::vec`], [`Just`],
//! `any::<T>()`, `prop_oneof!`, `prop::sample::Index`, and the
//! `proptest!` test-harness macro with `#![proptest_config(..)]`.
//!
//! Unlike the real proptest there is **no shrinking**: a failing case
//! panics with the ordinary assert message. Generation is fully
//! deterministic — the RNG is seeded from the test's module path and
//! name, so failures reproduce run-to-run and across `--jobs` levels.
//! See README, "Offline dependencies", for swapping the real crate in.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, n); n must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// FNV-1a hash of a string — seeds each test's RNG from its name.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Parse one regression-file seed token: decimal or `0x`-hex.
fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(h) => u64::from_str_radix(h, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Extract the replay seeds for `test` from regression-file `text`.
/// Lines are `<module_path>::<test_name> = <seed>` (decimal or `0x`
/// hex); blank lines and `#` comments are skipped; multiple lines for
/// the same test all replay, in file order.
pub fn parse_regression_seeds(text: &str, test: &str) -> Vec<u64> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let (name, seed) = line.split_once('=')?;
            if name.trim() != test {
                return None;
            }
            parse_seed(seed.trim())
        })
        .collect()
}

/// Committed replay seeds for one property test — the offline analogue
/// of proptest's failure-persistence files. Looks for
/// `<manifest_dir>/proptest-regressions/<test binary crate>.txt` (the
/// first segment of `module_path`, i.e. the test file's stem) and
/// returns every seed recorded for `<module_path>::<test_name>`. The
/// `proptest!` macro replays these cases *before* the randomly
/// generated ones, so a once-failing input stays pinned in CI after the
/// fix lands. Missing files mean no extra cases.
pub fn regression_seeds(manifest_dir: &str, module_path: &str, test_name: &str) -> Vec<u64> {
    let root = module_path.split("::").next().unwrap_or(module_path);
    let path = std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{root}.txt"));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    parse_regression_seeds(&text, &format!("{module_path}::{test_name}"))
}

/// A value generator: the core abstraction (sampling only, no
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Type-erased strategy (also what `prop_oneof!` branches become).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies — the `prop_oneof!` backend.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "empty prop_oneof!");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
}

/// Types with a canonical "arbitrary" strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> sample::Index {
        sample::Index(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()`,
/// `any::<prop::sample::Index>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification: a fixed size or a `lo..hi` range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive; hi == lo means exactly lo
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.hi > self.size.lo {
                self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
            } else {
                self.size.lo
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample::Index`).
pub mod sample {
    /// An index into a collection whose size is only known at use time.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolve against a collection of `size` elements (> 0).
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }
}

/// The `prop::` module alias used by the prelude (`prop::sample::…`,
/// `prop::collection::…`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Test-runner configuration (`ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Compatibility alias module (`proptest::test_runner::Config`).
pub mod test_runner {
    pub use crate::ProptestConfig as Config;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property test (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when the assumption fails (approximated by an
/// early return — the case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The proptest test-harness macro: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $s:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                let __replay = $crate::regression_seeds(
                    env!("CARGO_MANIFEST_DIR"),
                    module_path!(),
                    stringify!($name),
                );
                for __case in 0..(__replay.len() as u64 + __config.cases as u64) {
                    // Committed regression seeds replay first, then the
                    // name-derived random cases.
                    let mut __rng = match __replay.get(__case as usize) {
                        Some(&s) => $crate::TestRng::new(s),
                        None => $crate::TestRng::new(
                            __seed
                                ^ (__case - __replay.len() as u64)
                                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        ),
                    };
                    $( let $p = $crate::Strategy::sample(&($s), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0..2.0f64), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regression_file_parsing() {
        let text = "\
# a comment line
proptests::frag_roundtrip = 0xDEADBEEF
proptests::frag_roundtrip = 42

other::test = 7
proptests::frag_roundtrip = not_a_number
";
        assert_eq!(
            crate::parse_regression_seeds(text, "proptests::frag_roundtrip"),
            vec![0xDEAD_BEEF, 42]
        );
        assert_eq!(crate::parse_regression_seeds(text, "other::test"), vec![7]);
        assert!(crate::parse_regression_seeds(text, "missing::test").is_empty());
        // A missing regressions file yields no replay cases.
        assert!(crate::regression_seeds("/nonexistent-dir", "m", "t").is_empty());
    }

    #[test]
    fn determinism() {
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::new(1);
            (0..10)
                .map(|_| Strategy::sample(&(0u64..1000), &mut rng))
                .collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::new(1);
            (0..10)
                .map(|_| Strategy::sample(&(0u64..1000), &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..50, (a, b) in (0u64..10, -1.0..1.0f64)) {
            prop_assert!(x < 50);
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..9)) {
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
