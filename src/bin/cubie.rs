//! `cubie` — command-line front end to the suite.
//!
//! ```text
//! cubie devices                      list the Table 5 devices
//! cubie workloads                    the suite inventory (Table 2)
//! cubie sweep [opts]                 the full workload × case × variant ×
//!                                    device sweep (parallel, cached)
//! cubie run <workload> [opts]        simulate all variants of a workload
//! cubie verify <workload>            functional run vs CPU ground truth
//! cubie errors [--quick]             the Table 6 accuracy study
//! cubie advise <workload> [opts]     MMU-suitability prediction
//! cubie golden record [--only a,b]   snapshot every canonical artifact
//!                                    at the pinned reduced scale into
//!                                    results/golden/
//! cubie golden check [--only a,b]    rebuild and diff against the
//!                                    committed goldens (bit-exact /
//!                                    epsilon / ordinal per column);
//!                                    writes results/golden_diff.json,
//!                                    exits 1 on any mismatch
//! cubie golden list                  registry + recorded status
//! cubie bench-smoke [--record]       pinned perf smoke sweep; gates
//!                                    wall time against the committed
//!                                    results/golden/BENCH_sweep.json
//! cubie profile [opts] [--check]     run a (filterable) sweep with the
//!                                    span recorder on; print a per-phase
//!                                    hotspot table and write a Chrome
//!                                    trace (results/profile_trace.json,
//!                                    loadable in Perfetto / chrome://
//!                                    tracing) plus the table as JSON
//!                                    (results/profile_hotspots.json).
//!                                    --check forces --jobs 1 and exits 1
//!                                    unless the top-level phase times sum
//!                                    to within 20% of wall time
//! cubie serve [opts]                 run cubied, the sweep-as-a-service
//!                                    daemon: line-delimited JSON over a
//!                                    unix socket, deduplicated execution,
//!                                    a content-addressed result store
//!                                    under results/store/, admission
//!                                    control with backpressure
//! cubie client <req> [opts]          talk to a running cubied:
//!                                    ping|stats|shutdown|sweep|advise|
//!                                    profile; prints the JSON response,
//!                                    exits 1 on an error response
//!
//! options: --device a100|h200|b200   (default: all three)
//!          --case N                  Table 2 case index 0–4 (default 2)
//!          --sparse-scale K          divide Table 4 matrix sizes by K
//!          --graph-scale K           divide Table 3 graph sizes by K
//!
//! `sweep` additionally accepts the shared engine flags:
//!          --filter workload=…|variant=…|device=…|case=…|precision=…
//!                                    (repeatable; precision adds GEMM
//!                                    f16/bf16/tf32 TC/CC cells)
//!          --jobs N                  worker-thread cap (results identical
//!                                    for every N; only wall-clock changes)
//! ```

use cubie::analysis::advisor::{advise, reference_mapping};
use cubie::analysis::errors::{table6, ErrorScale};
use cubie::analysis::report;
use cubie::bench::{artifacts, smoke, SweepConfig, SweepRunner};
use cubie::device::{a100, all_devices, b200, h200, DeviceSpec};
use cubie::golden::{ArtifactDiff, DiffReport};
use cubie::kernels::{Variant, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        usage();
        return;
    };
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "devices" => devices_cmd(),
        "workloads" => workloads_cmd(),
        "sweep" => sweep_cmd(&rest),
        "run" => run_cmd(&rest),
        "verify" => verify_cmd(&rest),
        "errors" => errors_cmd(&rest),
        "advise" => advise_cmd(&rest),
        "golden" => golden_cmd(&rest),
        "bench-smoke" => bench_smoke_cmd(&rest),
        "profile" => profile_cmd(&rest),
        "serve" => serve_cmd(&rest),
        "client" => client_cmd(&rest),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command `{other}`\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!(
        "cubie — the Cubie MMU characterization suite\n\n\
         USAGE:\n  cubie devices\n  cubie workloads\n  \
         cubie sweep [--filter workload=…|variant=…|device=…|case=…|precision=…] \
         [--jobs N] [--sparse-scale K] [--graph-scale K]\n  \
         cubie run <workload> [--device a100|h200|b200] [--case 0..4] \
         [--sparse-scale K] [--graph-scale K]\n  \
         cubie verify <workload>\n  cubie errors [--quick]\n  \
         cubie advise <workload> [--device ...]\n  \
         cubie golden record|check|list [--only name,name]\n  \
         cubie bench-smoke [--record]\n  \
         cubie profile [--filter workload=…|variant=…|device=…|case=…] [--jobs N] \
         [--sparse-scale K] [--graph-scale K] [--check]\n  \
         cubie serve [--socket PATH] [--store DIR] [--max-jobs N] [--heavy N] [--queue N]\n  \
         cubie client ping|stats|shutdown [--socket PATH]\n  \
         cubie client sweep|profile [--filter …] [--jobs N] [--sparse-scale K] \
         [--graph-scale K] [--verify] [--socket PATH]\n  \
         cubie client advise <workload> [--device a100|h200|b200] [--socket PATH]\n\n\
         workloads: gemm pic fft stencil scan reduction bfs gemv spmv spgemm"
    );
}

/// Print a fatal diagnostic and exit nonzero. The CLI's replacement for
/// `expect`/`panic!` on user-reachable failure paths — a typo'd path or
/// a full disk deserves one readable line, not a backtrace.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("cubie: error: {msg}");
    std::process::exit(1);
}

/// Write a results file or die with the path in the diagnostic.
fn write_or_fail(path: &std::path::Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        fail(format!("cannot write {}: {e}", path.display()));
    }
}

fn opt<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn parse_workload(s: &str) -> Workload {
    match s.to_ascii_lowercase().as_str() {
        "gemm" => Workload::Gemm,
        "pic" => Workload::Pic,
        "fft" => Workload::Fft,
        "stencil" => Workload::Stencil,
        "scan" => Workload::Scan,
        "reduction" => Workload::Reduction,
        "bfs" => Workload::Bfs,
        "gemv" => Workload::Gemv,
        "spmv" => Workload::Spmv,
        "spgemm" => Workload::Spgemm,
        other => {
            eprintln!("unknown workload `{other}`");
            std::process::exit(2);
        }
    }
}

fn parse_devices(rest: &[&String]) -> Vec<DeviceSpec> {
    match opt(rest, "--device") {
        Some("a100") => vec![a100()],
        Some("h200") => vec![h200()],
        Some("b200") => vec![b200()],
        Some(other) => {
            eprintln!("unknown device `{other}` (a100|h200|b200)");
            std::process::exit(2);
        }
        None => all_devices(),
    }
}

fn scales(rest: &[&String]) -> (usize, usize) {
    let s = opt(rest, "--sparse-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let g = opt(rest, "--graph-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    (s, g)
}

fn devices_cmd() {
    let rows: Vec<Vec<String>> = all_devices()
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                format!("{:.1}", d.tc_fp64_tflops),
                format!("{:.1}", d.cc_fp64_tflops),
                format!("{:.0}", d.dram_bw_gbs),
                format!("{:.0}", d.power.tdp_w),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "device",
                "TC FP64 TF/s",
                "CC FP64 TF/s",
                "DRAM GB/s",
                "TDP W"
            ],
            &rows
        )
    );
}

fn workloads_cmd() {
    let rows: Vec<Vec<String>> = Workload::ALL
        .iter()
        .map(|w| {
            let s = w.spec();
            vec![
                s.name.to_string(),
                format!("Q{}", s.quadrant),
                s.dwarf.to_string(),
                s.baseline.unwrap_or("-").to_string(),
                w.variants()
                    .iter()
                    .map(|v| v.label())
                    .collect::<Vec<_>>()
                    .join("/"),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &["workload", "quadrant", "dwarf", "baseline", "variants"],
            &rows
        )
    );
}

fn sweep_cmd(rest: &[&String]) {
    let cfg = match SweepConfig::from_cli_args(rest.iter().map(|s| (*s).clone())) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!(
                "{e}\n\nusage: cubie sweep \
                 [--filter workload=…|variant=…|device=…|case=…|precision=…] \
                 [--jobs N] [--sparse-scale K] [--graph-scale K]"
            );
            std::process::exit(2);
        }
    };
    let sweep = SweepRunner::new(cfg).run();
    let rows: Vec<Vec<String>> = sweep
        .cells
        .iter()
        .map(|c| {
            vec![
                c.workload.spec().name.to_string(),
                c.case.clone(),
                c.variant.label().to_string(),
                c.precision.label().to_string(),
                c.device.clone(),
                report::seconds(c.time_s()),
                format!("{:.2}", c.gthroughput()),
                format!("{:.0}%", 100.0 * c.timing.tc_util().max(c.timing.b1_util())),
                format!("{:.0}%", 100.0 * c.timing.mem_util()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "workload",
                "case",
                "variant",
                "prec",
                "device",
                "time",
                "Gunit/s",
                "TC util",
                "DRAM util"
            ],
            &rows
        )
    );
    println!("{} cells swept.", sweep.cells.len());
}

fn run_cmd(rest: &[&String]) {
    let Some(wname) = rest.first() else {
        eprintln!("usage: cubie run <workload> [options]");
        std::process::exit(2);
    };
    let w = parse_workload(wname);
    let (ss, gs) = scales(rest);
    let case_idx: usize = opt(rest, "--case")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    if case_idx > 4 {
        eprintln!("case index out of range (0..5)");
        std::process::exit(2);
    }
    // One workload × one case × all variants on the chosen devices — a
    // filtered projection of the shared sweep engine.
    let cfg = SweepConfig {
        workloads: vec![w],
        variants: None,
        devices: parse_devices(rest),
        cases: Some(vec![case_idx]),
        precisions: vec![cubie::kernels::Precision::F64],
        sparse_scale: ss,
        graph_scale: gs,
        // Honour CUBIE_JOBS (and its parse warning) like every other
        // sweep entry point — a literal `None` here silently ignored it.
        ..SweepConfig::default()
    };
    let sweep = SweepRunner::new(cfg).run();
    let Some(first) = sweep.cells.first() else {
        eprintln!("nothing swept for {wname} case {case_idx}");
        std::process::exit(2);
    };
    println!(
        "{} case {} ({}), useful work {:.3e} {}\n",
        w.spec().name,
        case_idx,
        first.case,
        first.useful,
        w.spec().perf_unit
    );
    let mut rows = Vec::new();
    for dev in sweep.devices() {
        for v in w.variants() {
            let Some(c) = sweep.cell(w, case_idx, v, &dev.name) else {
                continue;
            };
            rows.push(vec![
                dev.name.clone(),
                v.label().to_string(),
                report::seconds(c.time_s()),
                format!("{:.2}", c.gthroughput()),
                format!("{:.0}%", 100.0 * c.timing.tc_util().max(c.timing.b1_util())),
                format!("{:.0}%", 100.0 * c.timing.mem_util()),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "device",
                "variant",
                "time",
                "Gunit/s",
                "TC util",
                "DRAM util"
            ],
            &rows
        )
    );
}

fn verify_cmd(rest: &[&String]) {
    let Some(wname) = rest.first() else {
        eprintln!("usage: cubie verify <workload>");
        std::process::exit(2);
    };
    let w = parse_workload(wname);
    println!(
        "verifying {} against the serial CPU reference…",
        w.spec().name
    );
    let ok = verify_one(w);
    if ok {
        println!("OK: every variant matches (TC ≡ CC bitwise).");
    } else {
        eprintln!("FAILED");
        std::process::exit(1);
    }
}

fn verify_one(w: Workload) -> bool {
    use cubie::core::ErrorStats;
    use cubie::kernels::*;
    let tol = 1e-9;
    match w {
        Workload::Gemm => {
            let case = gemm::GemmCase::square(192);
            let (a, b) = gemm::inputs(&case);
            let gold = gemm::reference(&a, &b);
            w.variants().iter().all(|&v| {
                let (c, _) = gemm::run(&a, &b, v);
                let e = ErrorStats::compare(c.as_slice(), gold.as_slice());
                println!("  {:9} max err {}", v.label(), report::sci(e.max));
                e.max < tol
            })
        }
        Workload::Gemv => {
            let case = gemv::GemvCase { m: 2048, n: 16 };
            let (a, x) = gemv::inputs(&case);
            let gold = gemv::reference(&a, &x);
            w.variants().iter().all(|&v| {
                let (y, _) = gemv::run(&a, &x, v);
                let e = ErrorStats::compare(&y, &gold);
                println!("  {:9} max err {}", v.label(), report::sci(e.max));
                e.max < tol
            })
        }
        Workload::Scan => {
            let x = scan::input(&scan::ScanCase { n: 1024 });
            let gold = scan::reference(&x);
            w.variants().iter().all(|&v| {
                let (y, _) = scan::run(&x, v);
                let e = ErrorStats::compare(&y, &gold);
                println!("  {:9} max err {}", v.label(), report::sci(e.max));
                e.max < tol
            })
        }
        Workload::Reduction => {
            let x = reduction::input(&reduction::ReductionCase { n: 1024 });
            let gold = reduction::reference(&x);
            w.variants().iter().all(|&v| {
                let (s, _) = reduction::run(&x, v);
                println!("  {:9} err {}", v.label(), report::sci((s - gold).abs()));
                (s - gold).abs() < tol
            })
        }
        Workload::Spmv => {
            let m = cubie::sparse::generators::conf5_like(16);
            let x = spmv::input_vector(&m);
            let gold = spmv::reference(&m, &x);
            w.variants().iter().all(|&v| {
                let (y, _) = spmv::run(&m, &x, v);
                let e = ErrorStats::compare(&y, &gold);
                println!("  {:9} max err {}", v.label(), report::sci(e.max));
                e.max < tol
            })
        }
        Workload::Spgemm => {
            let m = cubie::sparse::generators::spmsrts_like(64);
            let gold = spgemm::reference(&m);
            w.variants().iter().all(|&v| {
                let (c, _) = spgemm::run(&m, v);
                let (gd, cd) = (gold.to_dense(), c.to_dense());
                let e = ErrorStats::compare(&cd, &gd);
                println!("  {:9} max err {}", v.label(), report::sci(e.max));
                e.max < tol
            })
        }
        Workload::Fft => {
            let case = fft::FftCase {
                h: 32,
                w: 32,
                batch: 2,
            };
            let data = fft::input(&case);
            let gold: Vec<_> = data.iter().map(|g| fft::dft2_naive(32, 32, g)).collect();
            w.variants().iter().all(|&v| {
                let (out, _) = fft::run(&case, &data, v);
                let e = out
                    .iter()
                    .zip(&gold)
                    .map(|(o, g)| ErrorStats::compare_c64(o, g))
                    .fold(ErrorStats::default(), |a, b| a.merge(b));
                println!("  {:9} max err {}", v.label(), report::sci(e.max));
                e.max < 1e-8
            })
        }
        Workload::Stencil => {
            let case = stencil::StencilCase::star2d(96, 96);
            let x = stencil::input(&case);
            let gold = stencil::reference(&case, &x);
            w.variants().iter().all(|&v| {
                let (y, _) = stencil::run(&case, &x, v);
                let e = ErrorStats::compare(&y, &gold);
                println!("  {:9} max err {}", v.label(), report::sci(e.max));
                e.max < tol
            })
        }
        Workload::Pic => {
            let case = pic::PicCase { n: 4096 };
            let (parts, grid) = pic::input(&case);
            let gold = pic::run_serial_style(&parts, &grid);
            let flat = |p: &pic::Particles| -> Vec<f64> {
                p.pos
                    .iter()
                    .chain(p.vel.iter())
                    .flat_map(|v| v.iter().copied())
                    .collect()
            };
            let gf = flat(&gold);
            w.variants().iter().all(|&v| {
                let (out, _) = pic::run(&case, &parts, &grid, v);
                let e = ErrorStats::compare(&flat(&out), &gf);
                println!("  {:9} max err {}", v.label(), report::sci(e.max));
                e.max < tol
            })
        }
        Workload::Bfs => {
            let g = cubie::graph::generators::kron_g500(12, 16, 5);
            let src = g.max_degree_vertex();
            let gold = bfs::reference(&g, src);
            w.variants().iter().all(|&v| {
                let (levels, _) = bfs::run(&g, src, v);
                let ok = levels == gold;
                println!(
                    "  {:9} levels {}",
                    v.label(),
                    if ok { "exact" } else { "MISMATCH" }
                );
                ok
            })
        }
    }
}

fn errors_cmd(rest: &[&String]) {
    let scale = if rest.iter().any(|a| a.as_str() == "--quick") {
        ErrorScale::Quick
    } else {
        ErrorScale::Full
    };
    let rows = table6(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let fmt = |e: Option<cubie::core::ErrorStats>| match e {
                Some(e) => format!("{} / {}", report::sci(e.avg), report::sci(e.max)),
                None => "-".to_string(),
            };
            vec![
                r.workload.spec().name.to_string(),
                r.case_label.clone(),
                fmt(r.baseline),
                format!(
                    "{} / {}",
                    report::sci(r.tc_cc.avg),
                    report::sci(r.tc_cc.max)
                ),
                fmt(r.cce),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "workload",
                "case",
                "Baseline avg/max",
                "TC=CC avg/max",
                "CC-E avg/max"
            ],
            &table
        )
    );
}

fn advise_cmd(rest: &[&String]) {
    let Some(wname) = rest.first() else {
        eprintln!("usage: cubie advise <workload> [--device ...]");
        std::process::exit(2);
    };
    let w = parse_workload(wname);
    let (ss, gs) = scales(rest);
    // Prepare through the shared sweep cache: labels and traces of all
    // variants are memoized for the rest of the process.
    let cache = cubie::bench::SweepCache::global();
    let meta = cache.ensure(w, ss, gs);
    // Advise from the essential CUDA-core implementation where one is
    // distinct, otherwise from the CC trace.
    let cc_variant = if w.spec().distinct_cce {
        Variant::CcE
    } else {
        Variant::Cc
    };
    let Some(cc_trace) = cache.trace(w, 2, cc_variant, ss, gs) else {
        eprintln!("no CUDA-core trace for {wname}");
        std::process::exit(2);
    };
    let mapping = reference_mapping(w);
    println!(
        "advising on {} (case {}), from its {} trace:\n",
        w.spec().name,
        meta.labels[2],
        cc_variant.label()
    );
    let mut rows = Vec::new();
    for dev in parse_devices(rest) {
        let a = advise(&dev, &cc_trace, &mapping);
        rows.push(vec![
            dev.name.clone(),
            format!("{:.2}x", a.predicted_speedup),
            format!("{:?}", a.cc_limiter),
            format!("{:?}", a.tc_limiter),
            format!("Q{}", a.quadrant),
            format!("{:?}", a.recommendation),
        ]);
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "device",
                "predicted speedup",
                "CC limiter",
                "TC limiter",
                "quadrant",
                "verdict"
            ],
            &rows
        )
    );
}

/// Artifact names selected by `--only a,b` (default: the full registry).
fn golden_selection(rest: &[&String]) -> Vec<&'static str> {
    let Some(only) = opt(rest, "--only") else {
        return artifacts::GOLDEN_ARTIFACTS.to_vec();
    };
    let mut names = Vec::new();
    for n in only.split(',') {
        match artifacts::GOLDEN_ARTIFACTS.iter().find(|a| **a == n) {
            Some(a) => names.push(*a),
            None => {
                eprintln!("unknown artifact `{n}` — `cubie golden list` shows the registry");
                std::process::exit(2);
            }
        }
    }
    names
}

fn golden_cmd(rest: &[&String]) {
    let sub = rest.first().map(|s| s.as_str()).unwrap_or("");
    let tail = &rest[rest.len().min(1)..];
    match sub {
        "record" => golden_record(tail),
        "check" => golden_check(tail),
        "list" => golden_list(),
        _ => {
            eprintln!("usage: cubie golden record|check|list [--only name,name]");
            std::process::exit(2);
        }
    }
}

fn golden_record(rest: &[&String]) {
    let ctx = artifacts::GoldenCtx::new(artifacts::GoldenConfig::default());
    let dir = artifacts::golden_dir();
    println!(
        "recording goldens at sparse_scale={} graph_scale={} into {}",
        ctx.config.sparse_scale,
        ctx.config.graph_scale,
        dir.display()
    );
    for name in golden_selection(rest) {
        let Some(artifact) = artifacts::build(&ctx, name) else {
            fail(format!("artifact `{name}` missing from the build registry"));
        };
        let path = dir.join(format!("{name}.json"));
        if let Err(e) = artifact.write(&path) {
            fail(format!("cannot write golden {}: {e}", path.display()));
        }
        println!(
            "  {name}: {} rows -> {}",
            artifact.rows.len(),
            path.display()
        );
    }
}

fn golden_check(rest: &[&String]) {
    let ctx = artifacts::GoldenCtx::new(artifacts::GoldenConfig::default());
    let dir = artifacts::golden_dir();
    let mut report_diffs = Vec::new();
    for name in golden_selection(rest) {
        let path = dir.join(format!("{name}.json"));
        let diff = match cubie::golden::Artifact::read(&path) {
            Ok(golden) => {
                let Some(actual) = artifacts::build(&ctx, name) else {
                    fail(format!("artifact `{name}` missing from the build registry"));
                };
                cubie::golden::diff(&golden, &actual)
            }
            Err(e) => ArtifactDiff {
                name: name.to_string(),
                structural: vec![format!(
                    "golden snapshot unreadable ({e}) — run `cubie golden record`"
                )],
                cells: Vec::new(),
            },
        };
        report_diffs.push(diff);
    }
    let diff_report = DiffReport {
        artifacts: report_diffs,
    };
    print!("{}", diff_report.render());
    let out = report::results_dir().join("golden_diff.json");
    write_or_fail(&out, &diff_report.to_json().to_pretty_string());
    println!("wrote {}", out.display());
    if !diff_report.passed() {
        std::process::exit(1);
    }
}

fn golden_list() {
    let dir = artifacts::golden_dir();
    let rows: Vec<Vec<String>> = artifacts::GOLDEN_ARTIFACTS
        .iter()
        .map(|name| {
            let path = dir.join(format!("{name}.json"));
            let status = match cubie::golden::Artifact::read(&path) {
                Ok(a) => format!("recorded ({} rows)", a.rows.len()),
                Err(_) => "missing".to_string(),
            };
            vec![name.to_string(), status]
        })
        .collect();
    println!("{}", report::markdown_table(&["artifact", "golden"], &rows));
    println!("store: {}", dir.display());
}

/// Cold-vs-warm verdict on the prepared-input store after a sweep,
/// printed by `cubie profile` and `cubie bench-smoke`: snapshot hits
/// mean the `prepare` phase was served zero-copy from mmap'd snapshots
/// under `results/prep`; misses mean it paid generation and recorded a
/// snapshot for the next run. `prepare_busy_s` is this run's measured
/// `prepare` busy time, so cold and warm invocations can be compared
/// directly from their output.
fn prep_store_line(prepare_busy_s: f64) -> String {
    let cfg = cubie::prep::PrepConfig::from_env();
    if !cfg.enabled {
        return format!(
            "prepare: cold every run (CUBIE_PREP_CACHE=off) — busy {}",
            report::seconds(prepare_busy_s)
        );
    }
    let hits = cubie::obs::counter_get("prep.hit");
    let misses = cubie::obs::counter_get("prep.miss");
    if hits == 0 && misses == 0 {
        return format!(
            "prepare: no snapshot-backed inputs in this run — busy {}",
            report::seconds(prepare_busy_s)
        );
    }
    let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
    let verdict = if misses == 0 {
        "warm"
    } else if hits == 0 {
        "cold"
    } else {
        "mixed"
    };
    format!(
        "prepare: {verdict} — {hits} snapshot hit(s) ({:.1} MiB zero-copy), \
         {misses} miss(es) ({:.1} MiB recorded), busy {} (store {})",
        mib(cubie::obs::counter_get("prep.bytes_mapped")),
        mib(cubie::obs::counter_get("prep.bytes_written")),
        report::seconds(prepare_busy_s),
        cfg.dir.display()
    )
}

fn bench_smoke_cmd(rest: &[&String]) {
    let record = rest.iter().any(|a| a.as_str() == "--record");
    println!(
        "smoke sweep: {} x {} reps, jobs pinned to {} (host has {} cores; \
         preparation included, best wall time kept)…",
        smoke::SMOKE_WORKLOADS
            .iter()
            .map(|w| w.spec().name)
            .collect::<Vec<_>>()
            .join("/"),
        smoke::smoke_reps(),
        smoke::smoke_jobs(),
        smoke::host_cores()
    );
    let result = smoke::run_smoke();
    println!(
        "  {} cells, simulated total {:.3e} s, best wall {:.0} ms \
         ({} persistent pool worker(s))",
        result.cells,
        result.sim_total_s,
        result.wall_ms,
        cubie::core::pool::worker_count()
    );
    for p in &result.phases {
        println!(
            "    phase {:8} {:6} calls, busy {:8.1} ms, {:>10} allocs ({:.1} MiB)",
            p.phase,
            p.calls,
            p.busy_ms,
            p.alloc_count,
            p.alloc_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "  simd path {}: {:.2}x vs scalar (strided MMA core)",
        result.simd_path, result.simd_ratio
    );
    let prepare_busy_s = result
        .phases
        .iter()
        .filter(|p| p.phase == "prepare")
        .map(|p| p.busy_ms * 1e-3)
        .sum::<f64>();
    println!("  {}", prep_store_line(prepare_busy_s));
    let out = report::results_dir().join("BENCH_sweep.json");
    write_or_fail(&out, &result.to_json().to_pretty_string());
    println!("wrote {}", out.display());

    let baseline_path = artifacts::golden_dir().join("BENCH_sweep.json");
    if record {
        write_or_fail(&baseline_path, &result.to_json().to_pretty_string());
        println!("recorded baseline {}", baseline_path.display());
        return;
    }
    let baseline = match smoke::SmokeResult::read(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("no committed baseline ({e}) — run `cubie bench-smoke --record`");
            std::process::exit(1);
        }
    };
    let factor = smoke::smoke_factor();
    let failures =
        smoke::check_smoke_with_allocs(&result, &baseline, factor, smoke::smoke_alloc_factor());
    if failures.is_empty() {
        println!(
            "PASS: wall {:.0} ms within {factor}x of baseline {:.0} ms",
            result.wall_ms, baseline.wall_ms
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// Coverage window of `profile --check`: the summed busy time of the
/// top-level phases must land within ±20% of measured wall time.
const CHECK_WINDOW: f64 = 0.20;

fn profile_cmd(rest: &[&String]) {
    // `--check` is a profile-only flag, stripped before the shared sweep
    // argument parser sees the rest.
    let check = rest.iter().any(|a| a.as_str() == "--check");
    let sweep_args: Vec<String> = rest
        .iter()
        .filter(|a| a.as_str() != "--check")
        .map(|s| (*s).clone())
        .collect();
    let mut cfg = match SweepConfig::from_cli_args(sweep_args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!(
                "{e}\n\nusage: cubie profile [--filter workload=…|variant=…|device=…|case=…] \
                 [--jobs N] [--sparse-scale K] [--graph-scale K] [--check]"
            );
            std::process::exit(2);
        }
    };
    if check {
        // The coverage invariant only holds serially: with one worker the
        // serial `par` fast path spawns no threads, so the prepare/trace/
        // time spans are disjoint and must tile the run end to end. Under
        // `--jobs N` the phases overlap and busy time legitimately
        // exceeds wall.
        cfg.jobs = Some(1);
    }
    println!(
        "profiling {} workload(s), jobs {}…",
        cfg.workloads.len(),
        // The resolved count the pool will actually run with, so this
        // line and the pool agree (previously printed "auto").
        cfg.effective_jobs()
    );

    // A private cold cache, so case preparation is part of the profile
    // (the process-global cache would hide it after the first run).
    cubie::obs::enable();
    let start = std::time::Instant::now();
    let sweep = SweepRunner::with_cache(
        cfg,
        std::sync::Arc::new(cubie::bench::SweepCache::default()),
    )
    .run();
    let wall_s = start.elapsed().as_secs_f64();
    cubie::obs::disable();
    let spans = cubie::obs::drain();

    let aggs = cubie::obs::aggregate(&spans);
    let rows: Vec<Vec<String>> = aggs
        .iter()
        .map(|a| {
            vec![
                a.phase.to_string(),
                if a.label.is_empty() {
                    "-".to_string()
                } else {
                    a.label.clone()
                },
                a.calls.to_string(),
                report::seconds(a.busy_s),
                report::seconds(a.wall_s),
                if a.bytes == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1} MiB", a.bytes as f64 / (1024.0 * 1024.0))
                },
                if a.alloc_count == 0 {
                    "-".to_string()
                } else {
                    format!(
                        "{} ({:.1} MiB)",
                        a.alloc_count,
                        a.alloc_bytes as f64 / (1024.0 * 1024.0)
                    )
                },
                a.items.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &["phase", "label", "calls", "busy", "wall", "bytes", "allocs", "items"],
            &rows
        )
    );
    println!(
        "{} cells swept in {}; {} spans recorded; {} persistent pool worker(s).",
        sweep.cells.len(),
        report::seconds(wall_s),
        spans.len(),
        cubie::core::pool::worker_count()
    );
    println!(
        "{}",
        prep_store_line(cubie::obs::busy_of(&spans, &["prepare"]))
    );

    let results = report::results_dir();
    let trace_path = results.join("profile_trace.json");
    write_or_fail(
        &trace_path,
        &cubie::obs::chrome_trace(&spans).to_pretty_string(),
    );
    println!(
        "wrote {} (open in https://ui.perfetto.dev)",
        trace_path.display()
    );

    let hotspots = cubie::golden::obj(vec![
        ("schema", "cubie-profile/v1".into()),
        ("wall_s", wall_s.into()),
        ("cells", sweep.cells.len().into()),
        ("spans", spans.len().into()),
        (
            "hotspots",
            cubie::golden::Json::Array(
                aggs.iter()
                    .map(|a| {
                        cubie::golden::obj(vec![
                            ("phase", a.phase.into()),
                            ("label", a.label.as_str().into()),
                            ("calls", a.calls.into()),
                            ("busy_s", a.busy_s.into()),
                            ("wall_s", a.wall_s.into()),
                            ("bytes", a.bytes.into()),
                            ("alloc_count", a.alloc_count.into()),
                            ("alloc_bytes", a.alloc_bytes.into()),
                            ("items", a.items.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let hotspot_path = results.join("profile_hotspots.json");
    write_or_fail(&hotspot_path, &hotspots.to_pretty_string());
    println!("wrote {}", hotspot_path.display());

    if check {
        let covered = cubie::obs::busy_of(&spans, &["prepare", "trace", "time"]);
        let ratio = covered / wall_s;
        println!(
            "check: phases cover {} of {} wall ({:.0}%)",
            report::seconds(covered),
            report::seconds(wall_s),
            100.0 * ratio
        );
        if (ratio - 1.0).abs() > CHECK_WINDOW {
            eprintln!(
                "FAIL: phase coverage {:.0}% outside the ±{:.0}% window — \
                 instrumentation lost track of where time goes",
                100.0 * ratio,
                100.0 * CHECK_WINDOW
            );
            std::process::exit(1);
        }
        println!("PASS: instrumented phases account for wall time.");
    }
}

/// Socket path shared by `serve` and `client` (`--socket`, else the
/// [`cubie::serve::ServeConfig`] default under `results/`).
fn socket_path(rest: &[&String]) -> std::path::PathBuf {
    match opt(rest, "--socket") {
        Some(p) => std::path::PathBuf::from(p),
        None => cubie::serve::ServeConfig::default().socket,
    }
}

fn parse_usize_opt(rest: &[&String], name: &str) -> Option<usize> {
    let raw = opt(rest, name)?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => fail(format!(
            "{name} expects a non-negative integer, got `{raw}`"
        )),
    }
}

fn serve_cmd(rest: &[&String]) {
    let mut cfg = cubie::serve::ServeConfig {
        socket: socket_path(rest),
        ..cubie::serve::ServeConfig::default()
    };
    if let Some(dir) = opt(rest, "--store") {
        cfg.store_dir = std::path::PathBuf::from(dir);
    }
    if let Some(n) = parse_usize_opt(rest, "--max-jobs") {
        cfg.max_jobs = n;
    }
    if let Some(n) = parse_usize_opt(rest, "--heavy") {
        cfg.heavy_slots = n.max(1);
    }
    if let Some(n) = parse_usize_opt(rest, "--queue") {
        cfg.queue_limit = n;
    }
    let mut handle = match cubie::serve::Daemon::start(cfg) {
        Ok(h) => h,
        Err(e) => fail(format!("cannot start cubied: {e}")),
    };
    // Block until a client `shutdown` request stops the accept loop; the
    // startup banner already went to stderr via `cubie_obs::log`.
    handle.wait();
}

/// Build the request JSON for one `cubie client` invocation.
fn client_build_request(sub: &str, tail: &[&String]) -> cubie::golden::Json {
    use cubie::serve::proto;
    match sub {
        "ping" | "stats" | "shutdown" => proto::simple_request(sub),
        "sweep" | "profile" => {
            let mut filters = Vec::new();
            let mut i = 0;
            while i < tail.len() {
                if tail[i].as_str() == "--filter" {
                    match tail.get(i + 1) {
                        Some(f) => filters.push((*f).clone()),
                        None => fail("--filter expects a key=value term"),
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let spec = cubie::serve::SweepSpec {
                filters,
                jobs: parse_usize_opt(tail, "--jobs"),
                sparse_scale: parse_usize_opt(tail, "--sparse-scale"),
                graph_scale: parse_usize_opt(tail, "--graph-scale"),
                verify: tail.iter().any(|a| a.as_str() == "--verify"),
            };
            spec.to_json(sub)
        }
        "advise" => {
            let Some(wname) = tail.first().filter(|a| !a.starts_with("--")) else {
                fail("usage: cubie client advise <workload> [--device a100|h200|b200]");
            };
            let spec = cubie::serve::AdviseSpec {
                workload: (*wname).clone(),
                devices: opt(tail, "--device").map(|d| vec![d.to_string()]),
                sparse_scale: parse_usize_opt(tail, "--sparse-scale"),
                graph_scale: parse_usize_opt(tail, "--graph-scale"),
            };
            spec.to_json()
        }
        other => {
            fail(format!(
                "unknown client request `{other}` \
                 (ping|stats|shutdown|sweep|profile|advise)"
            ));
        }
    }
}

fn client_cmd(rest: &[&String]) {
    let Some(sub) = rest.first() else {
        fail("usage: cubie client ping|stats|shutdown|sweep|profile|advise [opts]");
    };
    let tail = &rest[1..];
    let request = client_build_request(sub, tail);
    let socket = socket_path(rest);
    let response = match cubie::serve::client_request(&socket, &request) {
        Ok(r) => r,
        Err(e) => fail(format!(
            "cubied at {} is unreachable: {e} (start it with `cubie serve`)",
            socket.display()
        )),
    };
    println!("{}", response.to_pretty_string());
    if response.get("ok").and_then(|v| v.as_bool()) != Some(true) {
        std::process::exit(1);
    }
}
