//! # Cubie-rs
//!
//! A Rust reproduction of the Cubie benchmark suite from
//! *"Characterizing Matrix Multiplication Units across General Parallel
//! Patterns in Scientific Computing"* (PPoPP 2026): ten MMU-optimized
//! scientific kernels in Baseline / TC / CC / CC-E variants, a functional
//! FP64 tensor-core (MMU) emulator, an analytic GPU timing/power
//! simulator for A100 / H200 / B200, and the analysis machinery
//! (roofline, PCA coverage, EDP, numerical error) that regenerates every
//! table and figure of the paper.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] — MMA semantics, fragments, op counters, RNG, error metrics.
//! * [`device`] — A100/H200/B200 device specifications.
//! * [`sim`] — timing, power/EDP, and roofline models.
//! * [`sparse`] — sparse formats and synthetic SuiteSparse-like matrices.
//! * [`graph`] — graphs, bitmap slice-sets, synthetic graph generators.
//! * [`kernels`] — the ten workloads and their variants.
//! * [`analysis`] — PCA, coverage, quadrants, report rendering.
//! * [`mod@bench`] — the parallel cached sweep engine every figure/table
//!   harness projects from (`bench::sweep`), plus the canonical artifact
//!   builders (`bench::artifacts`) and the perf smoke harness
//!   (`bench::smoke`).
//! * [`golden`] — canonical JSON, the artifact schema, and the
//!   tolerance-aware golden differ behind `cubie golden record|check`.
//! * [`obs`] — the always-compiled span/counter instrumentation layer
//!   behind `cubie profile` (phase hotspots + Chrome traces).
//! * [`prep`] — the persistent prepared-input store: content-addressed
//!   mmap-backed snapshots of the Table 3/4 inputs under `results/prep`,
//!   served zero-copy on warm starts, generated in parallel on cold ones.
//! * [`serve`] — `cubied`, the sweep-as-a-service daemon: line-delimited
//!   JSON over a unix socket, request dedup, admission control, and a
//!   content-addressed result store (`cubie serve` / `cubie client`).
//!
//! ## Quickstart
//!
//! ```
//! use cubie::device::h200;
//! use cubie::kernels::gemm::{self, GemmCase};
//! use cubie::kernels::Variant;
//! use cubie::sim::time_workload;
//!
//! let case = GemmCase::square(2048);
//! let dev = h200();
//! let tc = time_workload(&dev, &gemm::trace(&case, Variant::Tc));
//! let cc = time_workload(&dev, &gemm::trace(&case, Variant::Cc));
//! assert!(tc.total_s < cc.total_s, "tensor cores beat CUDA cores on GEMM");
//! ```

#![warn(missing_docs)]

/// Allocation telemetry for everything linking this facade (the `cubie`
/// CLI, the root integration tests, the examples): every span recorded by
/// [`obs`] carries `alloc_count` / `alloc_bytes` for its phase, and
/// `cubie bench-smoke` gates on them. Leaf crates that are used without
/// the facade don't count (their counters read 0).
#[global_allocator]
static ALLOC: cubie_obs::alloc::CountingAlloc = cubie_obs::alloc::CountingAlloc;

pub use cubie_analysis as analysis;
pub use cubie_bench as bench;
pub use cubie_core as core;
pub use cubie_device as device;
pub use cubie_golden as golden;
pub use cubie_graph as graph;
pub use cubie_kernels as kernels;
pub use cubie_obs as obs;
pub use cubie_prep as prep;
pub use cubie_serve as serve;
pub use cubie_sim as sim;
pub use cubie_sparse as sparse;
