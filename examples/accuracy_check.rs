//! Accuracy check: the Table 6 pipeline at quick sizes — every workload
//! variant executed functionally and compared against its serial CPU
//! ground truth, demonstrating Observation 7 (TC ≡ CC; algorithmic
//! transformation, not the MMU, moves the error).
//!
//! ```sh
//! cargo run --release --example accuracy_check
//! ```

use cubie::analysis::errors::{table6, ErrorScale};
use cubie::analysis::report;

fn main() {
    println!("Running the Table 6 accuracy study (quick sizes)…\n");
    let rows = table6(ErrorScale::Quick);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let fmt = |e: Option<cubie::core::ErrorStats>| match e {
                Some(e) => format!("{} / {}", report::sci(e.avg), report::sci(e.max)),
                None => "-".to_string(),
            };
            vec![
                r.workload.spec().name.to_string(),
                r.case_label.clone(),
                fmt(r.baseline),
                format!(
                    "{} / {}",
                    report::sci(r.tc_cc.avg),
                    report::sci(r.tc_cc.max)
                ),
                fmt(r.cce),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "workload",
                "case",
                "Baseline avg/max",
                "TC=CC avg/max",
                "CC-E avg/max"
            ],
            &table
        )
    );
    println!(
        "TC and CC were asserted bit-identical during the run: the MMU itself adds no\n\
         error beyond the equivalent CUDA-core FMA chains. Where columns differ, the\n\
         *algorithmic transformation* (blocking, reordering, redundancy removal) moved\n\
         the rounding — the caution Observation 7 gives application developers."
    );
}
