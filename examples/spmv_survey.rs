//! SpMV survey: build the DASP tensor-core format for the five Table 4
//! matrices, verify every variant against the serial CSR ground truth,
//! and compare simulated performance on the three GPUs — the Quadrant IV
//! story (diagonal outputs, regularized memory, CC-E's small win).
//!
//! ```sh
//! cargo run --release --example spmv_survey            # full-size matrices
//! CUBIE_SPARSE_SCALE=8 cargo run --release --example spmv_survey
//! ```

use cubie::core::ErrorStats;
use cubie::device::all_devices;
use cubie::kernels::{spmv, Variant};
use cubie::sim::time_workload;
use cubie::sparse::generators::table4_matrices;

fn main() {
    let scale: usize = std::env::var("CUBIE_SPARSE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    println!("Table 4 matrices at scale 1/{scale}\n");

    for (info, m) in table4_matrices(scale) {
        let fmt = spmv::DaspFormat::from_csr(&m);
        println!(
            "{} ({}): {} rows, {} nnz | DASP: {} bundles, padding {:.2}x, \
             rows short/medium/long = {}/{}/{}",
            info.name,
            info.group,
            m.rows,
            m.nnz(),
            fmt.bundles.len(),
            fmt.padding_ratio(m.nnz()),
            fmt.category_counts[0],
            fmt.category_counts[1],
            fmt.category_counts[2],
        );

        // Verify all variants functionally.
        let x = spmv::input_vector(&m);
        let gold = spmv::reference(&m, &x);
        for v in Variant::ALL {
            let (y, _) = spmv::run(&m, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-6, "{} {v}: {e:?}", info.name);
        }
        println!("  all variants verified vs CPU serial CSR");

        // Simulated GFLOP/s per device and variant.
        for dev in all_devices() {
            print!("  {:28}", dev.name);
            for v in Variant::ALL {
                let t = time_workload(&dev, &spmv::trace(&m, v));
                let gflops = spmv::useful_flops(&m) / t.total_s / 1e9;
                print!("  {}={gflops:.0}", v.label());
            }
            println!("  (GFLOP/s)");
        }
        println!();
    }
    println!(
        "CC-E matches or slightly beats TC here — SpMV is the one workload where \
         the paper finds removing the MMU's redundant computation worthwhile (O5)."
    );
}
