//! BFS traversal: encode a power-law graph in the BerryBees 8×128 bitmap
//! slice-set format, traverse it with the single-bit tensor-core MMA,
//! verify exact level agreement with the serial reference and the
//! Gunrock-style baseline, and report simulated GTEPS.
//!
//! ```sh
//! cargo run --release --example bfs_traversal
//! ```

use cubie::device::all_devices;
use cubie::graph::generators::{kron_g500, mycielskian};
use cubie::graph::BitmapGraph;
use cubie::kernels::{bfs, Variant};
use cubie::sim::time_workload;

fn main() {
    for (name, graph) in [
        (
            "kron_g500-logn16 (87 edges/vertex)",
            kron_g500(16, 87, 0x6500),
        ),
        ("mycielskian12 (exact construction)", mycielskian(12)),
    ] {
        let src = graph.max_degree_vertex();
        let bitmap = BitmapGraph::from_graph(&graph);
        println!(
            "{name}: {} vertices, {} arcs | bitmap: {} slices, {:.1}% fill, {:.2} MB payload",
            graph.n,
            graph.num_arcs(),
            bitmap.num_slices(),
            100.0 * bitmap.slice_fill(),
            bitmap.payload_bytes() as f64 / 1e6,
        );

        let gold = bfs::reference(&graph, src);
        let depth = *gold.iter().max().unwrap();
        let reached = gold.iter().filter(|&&l| l >= 0).count();
        println!("  source {src}: {reached} reachable vertices in {depth} levels");

        for v in Variant::ALL {
            let (levels, trace) = bfs::run(&graph, src, v);
            assert_eq!(levels, gold, "{v} must match the serial reference exactly");
            let launches = trace.launches();
            print!("  {:9} ({launches:2} level launches)", v.label());
            for dev in all_devices() {
                let t = time_workload(&dev, &trace);
                let gteps = bfs::useful_edges(&graph) / t.total_s / 1e9;
                print!("  {}={gteps:.1}", dev.arch);
            }
            println!("  (GTEPS)");
        }
        println!();
    }
    println!(
        "The bit-MMA pull traversal wins on its compact bitmap footprint and regular \
         slice streams — and scales with bandwidth across Ampere → Hopper → Blackwell (O3)."
    );
}
