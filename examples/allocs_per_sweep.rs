//! Count hot-loop allocations per kernel execution, with workspace
//! reuse off and on — the measurement behind the README "Performance"
//! table and the walkthrough in `EXPERIMENTS.md` ("Counting
//! allocations").
//!
//! The `cubie` facade installs a counting global allocator
//! (`cubie::obs::alloc`), so every heap allocation made by this process
//! bumps a monotonic counter. For each kernel the probe measures three
//! back-to-back executions of `run()` and three of the analytic
//! `trace()` builder, and reports `run − trace` as the *hot-loop* count:
//! `run()` = functional execution + trace, and the trace builder's
//! allocations are mode-independent bookkeeping, identical whether
//! arenas are on or off. Inputs are constructed once, outside every
//! measured window.
//!
//! Caveats worth knowing when reading the table:
//!
//! * BFS's trace executes the traversal functionally, so its
//!   subtraction nets ~zero — the BFS arena savings show up in the raw
//!   `run` column, not the `hot` column.
//! * SpMV's remaining hot allocations are the DASP bundle vectors,
//!   which escape into the serializable [`cubie::kernels::spmv`] format
//!   and cannot ride the arena.
//! * Workers are pinned to 1 so the process-wide counter attributes
//!   cleanly to the kernel being measured.
//!
//! Run with `cargo run --release --example allocs_per_sweep`.

use cubie::core::{par, workspace, LcgF64, C64};
use cubie::graph::CsrGraph;
use cubie::kernels::stencil::{StencilCase, StencilKind};
use cubie::kernels::{bfs, fft, gemm, gemv, pic, reduction, scan, spgemm, spmv, stencil, Variant};
use cubie::sparse::{Coo, Csr};

/// Deterministic CSR with empty, short, and block-straddling rows (the
/// same generator the workspace identity suite uses).
fn small_csr(rows: usize, cols: usize, seed: u64) -> Csr {
    let mut rng = LcgF64::new(seed);
    let mut coo = Coo::new(rows, cols);
    for r in 0..rows {
        for i in 0..(r % 37) {
            coo.push(r, (r * 7 + i * 11) % cols, rng.vec(1)[0]);
        }
    }
    Csr::from_coo(coo)
}

const ITERS: u64 = 3;

fn main() {
    let _ = par::set_max_workers(1);

    // Inputs, hoisted: building them allocates identically under both
    // modes and is not part of any hot loop.
    let mut rng = LcgF64::new(9);
    let a = cubie::core::DenseMatrix::random(24, 20, 0xA0);
    let b = cubie::core::DenseMatrix::random(20, 16, 0xB0);
    let am = cubie::core::DenseMatrix::random(120, 16, 0xC0);
    let gx = rng.vec(16);
    let case = fft::FftCase {
        h: 16,
        w: 32,
        batch: 3,
    };
    let grids: Vec<Vec<C64>> = (0..case.batch)
        .map(|_| {
            rng.vec(case.points())
                .into_iter()
                .map(|re| C64 { re, im: -re * 0.5 })
                .collect()
        })
        .collect();
    let sc = StencilCase {
        kind: StencilKind::Star2D1R,
        dims: (1, 17, 23),
    };
    let grid = rng.vec(17 * 23);
    let xs = rng.vec(1500);
    let pc = pic::PicCase { n: 60 };
    let (parts, field) = pic::input(&pc);
    let edges: Vec<(u32, u32)> = (0..400u32).map(|i| (i % 97, (i * 31 + 7) % 97)).collect();
    let g = CsrGraph::from_edges(97, &edges, true);
    let m = small_csr(40, 50, 0xD0);
    let xv = rng.vec(50);
    let sq = small_csr(32, 32, 0xE0);

    let v2 = [Variant::Tc, Variant::Baseline];
    type Probe<'a> = (&'a str, Box<dyn Fn() + 'a>, Box<dyn Fn() + 'a>);
    let probes: Vec<Probe> = vec![
        (
            "gemm",
            Box::new(|| {
                for v in v2 {
                    let _ = gemm::run(&a, &b, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = gemm::trace(
                        &gemm::GemmCase {
                            m: 24,
                            n: 16,
                            k: 20,
                        },
                        v,
                    );
                }
            }),
        ),
        (
            "gemv",
            Box::new(|| {
                for v in v2 {
                    let _ = gemv::run(&am, &gx, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = gemv::trace(&gemv::GemvCase { m: 120, n: 16 }, v);
                }
            }),
        ),
        (
            "fft",
            Box::new(|| {
                for v in v2 {
                    let _ = fft::run(&case, &grids, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = fft::trace(&case, v);
                }
            }),
        ),
        (
            "stencil",
            Box::new(|| {
                for v in v2 {
                    let _ = stencil::run(&sc, &grid, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = stencil::trace(&sc, v);
                }
            }),
        ),
        (
            "scan",
            Box::new(|| {
                for v in v2 {
                    let _ = scan::run(&xs, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = scan::trace(&scan::ScanCase { n: 1500 }, v);
                }
            }),
        ),
        (
            "reduction",
            Box::new(|| {
                for v in v2 {
                    let _ = reduction::run(&xs, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = reduction::trace(&reduction::ReductionCase { n: 1500 }, v);
                }
            }),
        ),
        (
            "pic",
            Box::new(|| {
                for v in v2 {
                    let _ = pic::run(&pc, &parts, &field, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = pic::trace(&pc, v);
                }
            }),
        ),
        (
            "bfs",
            Box::new(|| {
                for v in v2 {
                    let _ = bfs::run(&g, 0, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = bfs::trace(&g, 0, v);
                }
            }),
        ),
        (
            "spmv",
            Box::new(|| {
                for v in v2 {
                    let _ = spmv::run(&m, &xv, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = spmv::trace(&m, v);
                }
            }),
        ),
        (
            "spgemm",
            Box::new(|| {
                for v in v2 {
                    let _ = spgemm::run(&sq, v);
                }
            }),
            Box::new(|| {
                for v in v2 {
                    let _ = spgemm::trace(&sq, v);
                }
            }),
        ),
    ];

    let mut totals = [[0u64; 3]; 2]; // [mode][run/trace/hot]
    for (mode, reuse) in [(0usize, false), (1usize, true)] {
        workspace::set_reuse(reuse);
        // Warm-up: populate the pools (or none), touch lazy statics.
        for (_, run, _) in &probes {
            run();
        }
        println!("reuse={reuse}   ({ITERS} iterations, TC + baseline variants, jobs=1)");
        println!("  {:10} {:>8} {:>8} {:>8}", "kernel", "run", "trace", "hot");
        for (name, run, trace) in &probes {
            let b0 = cubie::obs::alloc::total_allocs().0;
            for _ in 0..ITERS {
                run();
            }
            let b1 = cubie::obs::alloc::total_allocs().0;
            for _ in 0..ITERS {
                trace();
            }
            let b2 = cubie::obs::alloc::total_allocs().0;
            let (r, t) = (b1 - b0, b2 - b1);
            println!("  {name:10} {r:>8} {t:>8} {:>8}", r.saturating_sub(t));
            totals[mode][0] += r;
            totals[mode][1] += t;
        }
        totals[mode][2] = totals[mode][0] - totals[mode][1];
        println!(
            "  {:10} {:>8} {:>8} {:>8}",
            "TOTAL", totals[mode][0], totals[mode][1], totals[mode][2]
        );
    }
    let (fresh, reused) = (totals[0][2], totals[1][2]);
    println!(
        "hot-loop allocations: {fresh} fresh -> {reused} reused \
         ({:.1}% reduction)",
        100.0 * (1.0 - reused as f64 / fresh as f64)
    );
}
