//! Quickstart: run one workload (GEMM) through the whole stack — generate
//! inputs, execute the tensor-core algorithm functionally, verify against
//! the CPU ground truth, and ask the simulator how the variants would
//! perform on the paper's three GPUs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cubie::core::ErrorStats;
use cubie::device::all_devices;
use cubie::kernels::{gemm, Variant};
use cubie::sim::time_workload;

fn main() {
    // 1. A modest case executes functionally in moments.
    let case = gemm::GemmCase::square(512);
    let (a, b) = gemm::inputs(&case);
    println!("GEMM {}: functional execution + verification", case.label());

    let gold = gemm::reference(&a, &b);
    for v in [Variant::Baseline, Variant::Tc, Variant::Cc] {
        let (c, _) = gemm::run(&a, &b, v);
        let e = ErrorStats::compare(c.as_slice(), gold.as_slice());
        println!("  {:8} max |err| vs CPU serial: {:.2e}", v.label(), e.max);
    }

    // 2. TC and CC are bit-identical — the MMU changes where the FLOPs
    //    run, not what they compute (Observation 7).
    let (tc, _) = gemm::run(&a, &b, Variant::Tc);
    let (cc, _) = gemm::run(&a, &b, Variant::Cc);
    assert_eq!(tc.as_slice(), cc.as_slice());
    println!("  TC ≡ CC bitwise: confirmed");

    // 3. Simulated performance of the paper's largest case on all three
    //    devices.
    let big = gemm::GemmCase::square(4096);
    println!("\nGEMM {} simulated on the Table 5 devices:", big.label());
    for dev in all_devices() {
        print!("  {:28}", dev.name);
        for v in [Variant::Baseline, Variant::Tc, Variant::Cc] {
            let t = time_workload(&dev, &gemm::trace(&big, v));
            let tflops = big.useful_flops() / t.total_s / 1e12;
            print!("  {}={:.1} TFLOP/s", v.label(), tflops);
        }
        println!();
    }
    println!(
        "\nNote how CC halves TC on A100/H200 (2× peak ratio) but matches it on B200,\n\
         where Blackwell's FP64 tensor-core peak regressed to the CUDA-core peak (Fig. 12)."
    );
}
