//! Power and energy: the Figure 7/8 pipeline on one workload — run the
//! stencil's variants through the H200 power model, print an ASCII power
//! trace and the energy-delay products.
//!
//! ```sh
//! cargo run --release --example power_and_energy
//! ```

use cubie::device::h200;
use cubie::kernels::stencil::{trace, StencilCase};
use cubie::kernels::{Variant, Workload};
use cubie::sim::{power_report, power_trace, time_workload};

fn main() {
    let dev = h200();
    let case = StencilCase::star2d(10_240, 10_240);
    let repeats = 5_000;
    println!(
        "Stencil {} on {}, {} kernel repeats (Figure 7's setting)\n",
        case.label(),
        dev.name,
        repeats
    );

    for v in Workload::Stencil.variants() {
        let timing = time_workload(&dev, &trace(&case, v));
        let report = power_report(&dev, &timing, repeats);
        println!(
            "{:9} {:8.2} ms/iter | avg {:5.0} W | energy {:8.1} J | EDP {:.3e} J·s",
            v.label(),
            timing.total_s * 1e3,
            report.avg_power_w,
            report.energy_j,
            report.edp
        );
    }

    // ASCII power trace of the TC variant (the Figure 8 curve shape:
    // idle → ramp → plateau → decay).
    let timing = time_workload(&dev, &trace(&case, Variant::Tc));
    let total = timing.total_s * repeats as f64;
    let samples = power_trace(&dev, &timing, repeats, total / 60.0);
    println!(
        "\nTC power trace ({} samples, {:.2} s active window):",
        samples.len(),
        total
    );
    let peak = samples.iter().map(|s| s.power_w).fold(0.0f64, f64::max);
    for s in samples.iter().step_by(2) {
        let bar = ((s.power_w / peak) * 60.0) as usize;
        println!("  {:6.2}s {:4.0}W |{}", s.t_s, s.power_w, "#".repeat(bar));
    }
    println!(
        "\nTC draws more instantaneous power than the baseline but finishes much sooner:\n\
         lower energy AND lower EDP — Observation 6."
    );
}
