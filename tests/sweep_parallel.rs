//! Determinism and parallel equivalence of the sweep engine: the cell
//! set a `SweepRunner` produces must be *bit-identical* — same cells,
//! same order, same f64 bits — for `--jobs 1`, `--jobs N`, repeated
//! runs, and cache-hit re-runs.

use std::sync::Arc;

use cubie::bench::{SweepCache, SweepConfig, SweepRunner};
use cubie::kernels::{Precision, Variant, Workload};

/// A cross-quadrant config small enough for tests: dense, latency-bound
/// and sparse workloads, reduced sparse/graph generation scales.
fn small_config(jobs: Option<usize>) -> SweepConfig {
    SweepConfig {
        workloads: vec![Workload::Gemm, Workload::Scan, Workload::Spmv],
        variants: None,
        devices: cubie::device::all_devices(),
        cases: None,
        precisions: vec![Precision::F64],
        sparse_scale: 64,
        graph_scale: 512,
        jobs,
    }
}

#[test]
fn jobs_1_and_jobs_n_sweeps_are_bit_identical() {
    // Serial and 8-way parallel runs over *separate* caches: every cell
    // is recomputed from scratch on both sides, so equality certifies the
    // whole prepare → trace → time pipeline is schedule-independent.
    // (The worker cap deliberately may exceed the core count, so this
    // exercises real multi-thread schedules even on small CI machines.)
    let serial =
        SweepRunner::with_cache(small_config(Some(1)), Arc::new(SweepCache::default())).run();
    for jobs in [2, 8] {
        let parallel =
            SweepRunner::with_cache(small_config(Some(jobs)), Arc::new(SweepCache::default()))
                .run();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            // SweepCell's PartialEq compares every f64 exactly —
            // bit-identity, not approximate agreement.
            assert_eq!(a, b, "cell diverged between --jobs 1 and --jobs {jobs}");
        }
    }
}

#[test]
fn sweep_order_is_canonical() {
    let sweep =
        SweepRunner::with_cache(small_config(Some(4)), Arc::new(SweepCache::default())).run();
    assert!(!sweep.cells.is_empty());
    let key = |c: &cubie::bench::SweepCell| {
        (
            c.workload.index(),
            c.case_idx,
            c.workload
                .variants()
                .iter()
                .position(|v| *v == c.variant)
                .unwrap(),
            sweep
                .devices()
                .iter()
                .position(|d| d.name == c.device)
                .unwrap(),
        )
    };
    for pair in sweep.cells.windows(2) {
        assert!(
            key(&pair[0]) < key(&pair[1]),
            "cells out of (workload, case, variant, device) order"
        );
    }
}

#[test]
fn rerun_on_a_warm_cache_is_identical() {
    // Second run over the same cache serves every trace from memory; the
    // projection must not depend on whether a cell was computed or cached.
    let cache = Arc::new(SweepCache::default());
    let cold = SweepRunner::with_cache(small_config(Some(4)), Arc::clone(&cache)).run();
    let warm = SweepRunner::with_cache(small_config(Some(4)), Arc::clone(&cache)).run();
    assert_eq!(cold.cells, warm.cells);

    // A filtered projection over the same warm cache agrees cell-for-cell
    // with the corresponding slice of the full sweep.
    let mut cfg = small_config(Some(4));
    cfg.apply_filter("workload=scan").unwrap();
    cfg.apply_filter("variant=tc").unwrap();
    cfg.apply_filter("device=h200").unwrap();
    let filtered = SweepRunner::with_cache(cfg, cache).run();
    assert_eq!(filtered.cells.len(), 5); // 1 workload × 5 cases × 1 × 1
    for c in &filtered.cells {
        assert_eq!(c.workload, Workload::Scan);
        assert_eq!(c.variant, Variant::Tc);
        let full = cold
            .cell(c.workload, c.case_idx, c.variant, &c.device)
            .expect("cell present in the full sweep");
        assert_eq!(c, full, "filtered projection diverged from the full sweep");
    }
}
