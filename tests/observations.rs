//! Integration tests for the observations not covered by
//! `paper_shapes.rs`: O2 (quadrants), O6 (EDP), O7 (numerics),
//! O8 (memory regularization) and O9 (suite diversity).

use cubie::analysis::coverage::suite_diversity_study;
use cubie::analysis::errors::{table6, ErrorScale};
use cubie::analysis::quadrants::{utilization_of, utilizations};
use cubie::device::h200;
use cubie::kernels::{prepare_cases, Quadrant, Variant, Workload};
use cubie::sim::{power_report, time_workload};

#[test]
fn o2_quadrant_utilizations_partition_the_suite() {
    let mut by_quadrant = std::collections::HashMap::new();
    for u in utilizations() {
        *by_quadrant
            .entry(u.workload.spec().quadrant.label())
            .or_insert(0usize) += 1;
    }
    assert_eq!(by_quadrant["I"], 4);
    assert_eq!(by_quadrant["II"], 1);
    assert_eq!(by_quadrant["III"], 1);
    assert_eq!(by_quadrant["IV"], 4);
}

/// (sparse_scale, graph_scale) of the regular tier-1 runs — the pinned
/// golden reduction. The milder scales previously used here are still
/// exercised by [`full_scale_observations`] (opt-in).
const REDUCED: (usize, usize) = (64, 512);

fn assert_o6_tc_reduces_edp((ss, gs): (usize, usize)) {
    let dev = h200();
    for q in [Quadrant::I, Quadrant::II, Quadrant::III, Quadrant::IV] {
        let mut log_ratio = 0.0;
        let mut count = 0usize;
        for w in Workload::ALL.iter().filter(|w| w.spec().quadrant == q) {
            if w.spec().baseline.is_none() {
                continue;
            }
            let cases = prepare_cases(*w, ss, gs);
            let case = &cases[2];
            let tc = power_report(
                &dev,
                &time_workload(&dev, &case.trace(Variant::Tc).unwrap()),
                100,
            );
            let base = power_report(
                &dev,
                &time_workload(&dev, &case.trace(Variant::Baseline).unwrap()),
                100,
            );
            log_ratio += (tc.edp / base.edp).ln();
            count += 1;
        }
        let geomean = (log_ratio / count as f64).exp();
        // The paper reports 30–80 % quadrant-geomean reductions; FFT drags
        // Quadrant I in our model too, so require a reduction for II–IV
        // and allow Quadrant I to be carried by GEMM/Stencil.
        if q != Quadrant::I {
            assert!(
                geomean < 1.0,
                "Q{q}: TC geomean EDP ratio {geomean:.2} should be < 1 (O6)"
            );
        }
        println!("Q{q}: TC/baseline geomean EDP ratio {geomean:.3}");
    }
}

#[test]
fn o6_tc_reduces_geomean_edp_in_every_quadrant() {
    assert_o6_tc_reduces_edp(REDUCED);
}

#[test]
fn o7_tc_and_cc_are_numerically_identical_everywhere() {
    // table6 asserts bit-identity internally for all nine FP workloads.
    let rows = table6(ErrorScale::Quick);
    assert_eq!(rows.len(), 9);
    for r in &rows {
        assert!(r.tc_cc.avg.is_finite());
        // Every error is tiny in absolute terms (FP64 on (-2,2) data).
        assert!(r.tc_cc.max < 1e-8, "{:?}", r.workload);
    }
}

#[test]
fn o7_transformations_can_move_the_error() {
    // At least one workload must show baseline ≠ TC error (accumulation
    // order differs) — the paper's reproducibility caution.
    let rows = table6(ErrorScale::Quick);
    let moved = rows
        .iter()
        .filter(|r| {
            r.baseline
                .map(|b| (b.avg - r.tc_cc.avg).abs() > f64::EPSILON)
                .unwrap_or(false)
        })
        .count();
    assert!(moved >= 3, "only {moved} workloads moved error");
}

fn assert_o8_tc_more_coalesced((ss, gs): (usize, usize)) {
    for w in [Workload::Spmv, Workload::Gemv] {
        let cases = prepare_cases(w, ss, gs);
        let case = &cases[2];
        let frac = |v: Variant| {
            let ops = case.trace(v).unwrap().total_ops();
            let total = ops.gmem_load.total() + ops.gmem_store.total();
            (ops.gmem_load.coalesced + ops.gmem_store.coalesced) as f64 / total.max(1) as f64
        };
        assert!(
            frac(Variant::Tc) > frac(Variant::Baseline),
            "{w:?}: TC should be more coalesced"
        );
    }
}

#[test]
fn o8_tc_coalesced_fraction_dominates_baseline_on_quadrant_iv() {
    assert_o8_tc_more_coalesced(REDUCED);
}

fn assert_o9_cubie_most_diverse((ss, gs): (usize, usize)) {
    let study = suite_diversity_study(&h200(), ss, gs);
    let spread = |s: &str| {
        study
            .spread
            .iter()
            .find(|(n, _)| *n == s)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert!(spread("Cubie") > spread("Rodinia"));
    assert!(spread("Cubie") > spread("SHOC"));
}

#[test]
fn o9_cubie_is_the_most_diverse_suite() {
    assert_o9_cubie_most_diverse(REDUCED);
}

/// O6/O8/O9 at the milder scales they originally ran at. Ignored by
/// default; opt in with
/// `CUBIE_FULL_SCALE_TESTS=1 cargo test --release -- --ignored`.
#[test]
#[ignore = "larger scales; set CUBIE_FULL_SCALE_TESTS=1 and pass --ignored"]
fn full_scale_observations() {
    if std::env::var("CUBIE_FULL_SCALE_TESTS").ok().as_deref() != Some("1") {
        eprintln!("skipping full-scale observations: set CUBIE_FULL_SCALE_TESTS=1 to opt in");
        return;
    }
    assert_o6_tc_reduces_edp((8, 64));
    assert_o8_tc_more_coalesced((8, 64));
    assert_o9_cubie_most_diverse((32, 256));
}

#[test]
fn o2_output_utilization_tracks_quadrants() {
    for u in utilizations() {
        let q = u.workload.spec().quadrant;
        assert_eq!(q.full_output(), u.output >= 1.0, "{:?}", u.workload);
        assert_eq!(q.full_input(), u.input >= 1.0, "{:?}", u.workload);
    }
    // Spot values from Figure 2's discussion.
    assert_eq!(utilization_of(Workload::Spgemm).output, 0.5);
    assert_eq!(utilization_of(Workload::Reduction).output, 1.0 / 64.0);
}
