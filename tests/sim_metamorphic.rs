//! Metamorphic properties of the analytic timing model: relations that
//! must hold for *any* device parameters and any trace, independent of
//! the absolute numbers the model produces.
//!
//! 1. Giving the device more resources (DRAM bandwidth, FP64 tensor-core
//!    peak) never increases simulated time.
//! 2. Simulated time is monotone in problem size.
//! 3. The reported `Limiter` is consistent with the per-pipe busy times:
//!    a pipe limiter names the slowest pipe, a latency limiter implies the
//!    dependency chain dominates every pipe, a launch limiter implies the
//!    kernel is smaller than its launch overhead.

use cubie::device::{all_devices, DeviceSpec};
use cubie::kernels::{gemm, gemv, reduction, scan, stencil, Variant};
use cubie::sim::{time_workload, Limiter, WorkloadTrace};

/// A representative trace set spanning the quadrants: compute-bound
/// (GEMM TC/CC), latency-bound single-block (Scan, Reduction), and
/// memory-bound (GEMV, Stencil baseline).
fn representative_traces() -> Vec<(String, WorkloadTrace)> {
    let mut out = Vec::new();
    for v in [Variant::Tc, Variant::Cc] {
        out.push((
            format!("gemm-2048 {v}"),
            gemm::trace(&gemm::GemmCase::square(2048), v),
        ));
    }
    for v in Variant::ALL {
        out.push((
            format!("scan-4096 {v}"),
            scan::trace(&scan::ScanCase { n: 4096 }, v),
        ));
        out.push((
            format!("reduction-4096 {v}"),
            reduction::trace(&reduction::ReductionCase { n: 4096 }, v),
        ));
        out.push((
            format!("gemv-8192x16 {v}"),
            gemv::trace(&gemv::GemvCase { m: 8192, n: 16 }, v),
        ));
    }
    for v in [Variant::Baseline, Variant::Tc] {
        out.push((
            format!("stencil-512 {v}"),
            stencil::trace(&stencil::StencilCase::star2d(512, 512), v),
        ));
    }
    out
}

/// Assert `faster(device)` never simulates slower than `device` itself.
fn assert_never_slower(label: &str, tweak: impl Fn(&mut DeviceSpec)) {
    for dev in all_devices() {
        let mut boosted = dev.clone();
        tweak(&mut boosted);
        for (name, trace) in representative_traces() {
            let base = time_workload(&dev, &trace).total_s;
            let fast = time_workload(&boosted, &trace).total_s;
            assert!(
                fast <= base * (1.0 + 1e-12),
                "{name} on {}: {label} increased time {base:.3e}s -> {fast:.3e}s",
                dev.name
            );
        }
    }
}

#[test]
fn more_dram_bandwidth_never_increases_time() {
    for factor in [1.5, 2.0, 10.0] {
        assert_never_slower("raising dram_bw_gbs", |d| d.dram_bw_gbs *= factor);
    }
}

#[test]
fn more_tensor_core_peak_never_increases_time() {
    for factor in [1.5, 2.0, 10.0] {
        assert_never_slower("raising tc_fp64_tflops", |d| d.tc_fp64_tflops *= factor);
    }
}

/// Tolerance for the under-occupied plateau: while the device is not yet
/// full, grid-fill/latency-hiding efficiency improves with problem size
/// and can shave a fraction of a percent off the (launch-dominated) time
/// even as work grows — real GPUs show the same flat latency-bound
/// plateau. Beyond noise scale, time must grow with work.
const PLATEAU_TOL: f64 = 0.995;

#[test]
fn time_is_monotone_in_problem_size() {
    for dev in all_devices() {
        for v in [Variant::Tc, Variant::Cc] {
            let mut last = 0.0;
            for n in [256, 512, 1024, 2048, 4096] {
                let t = time_workload(&dev, &gemm::trace(&gemm::GemmCase::square(n), v)).total_s;
                assert!(
                    t >= last * PLATEAU_TOL,
                    "GEMM {v} on {}: time decreased at n={n} ({t:.3e} < {last:.3e})",
                    dev.name
                );
                last = t;
            }
        }
        for v in Variant::ALL {
            let mut last = 0.0;
            for n in [512, 2048, 8192, 32768] {
                let t = time_workload(&dev, &scan::trace(&scan::ScanCase { n }, v)).total_s;
                assert!(
                    t >= last * PLATEAU_TOL,
                    "Scan {v} on {}: time decreased at n={n} ({t:.3e} < {last:.3e})",
                    dev.name
                );
                last = t;
            }
            let mut last = 0.0;
            for m in [1024, 4096, 16384] {
                let t = time_workload(&dev, &gemv::trace(&gemv::GemvCase { m, n: 16 }, v)).total_s;
                assert!(
                    t >= last * PLATEAU_TOL,
                    "GEMV {v} on {}: time decreased at m={m} ({t:.3e} < {last:.3e})",
                    dev.name
                );
                last = t;
            }
        }
    }
}

#[test]
fn limiter_is_consistent_with_pipe_times() {
    for dev in all_devices() {
        for (name, trace) in representative_traces() {
            let timing = time_workload(&dev, &trace);
            for k in &timing.kernels {
                match k.limiter {
                    Limiter::Launch => {
                        // Launch-bound: the overhead exceeds execution.
                        assert!(
                            dev.launch_overhead_s() > k.exec_s,
                            "{name} on {}: Launch limiter but exec {:.3e}s >= overhead {:.3e}s",
                            dev.name,
                            k.exec_s,
                            dev.launch_overhead_s()
                        );
                    }
                    Limiter::Latency => {
                        // Latency-bound: the dependency chain dominates
                        // every pipe's busy time.
                        assert!(
                            k.exec_s >= k.pipes.max(),
                            "{name} on {}: Latency limiter but a pipe is slower",
                            dev.name
                        );
                    }
                    pipe => {
                        // Throughput-bound: the named pipe is the max and
                        // it is what execution time equals.
                        assert_eq!(
                            k.pipes.of(pipe),
                            k.pipes.max(),
                            "{name} on {}: limiter {pipe:?} is not the slowest pipe",
                            dev.name
                        );
                        assert_eq!(
                            k.exec_s,
                            k.pipes.max(),
                            "{name} on {}: exec time is not the limiting pipe time",
                            dev.name
                        );
                    }
                }
            }
        }
    }
}
