//! Differential cross-variant oracle, in the style of the sweep-based
//! model validations of "Dissecting Tensor Cores via Microbenchmarks"
//! (Sun et al.) and "Accurate Models of NVIDIA Tensor Cores" (Khattak &
//! Mikaitis): for every workload and case, the Baseline / TC / CC / CC-E
//! functional outputs must agree with the serial CPU ground truth within
//! the Table 6 error scale, and the essential-only CC-E variant must
//! never issue more work than the faithful CC port it strips down.

use cubie::analysis::errors::{table6, ErrorScale};
use cubie::bench::SweepCache;
use cubie::kernels::{bfs, gemm, MmaGen, Precision, Variant, Workload};

/// Table 6 reports avg/max FP64 errors between 5e-17 and ~5e-9 across
/// every workload/variant cell; 1e-8 bounds the whole published table.
const TABLE6_SCALE: f64 = 1e-8;

/// Reduced-size preparation scales shared by the counter tests (the
/// comparison is scale-invariant: CC-E strips redundancy at any size).
const SPARSE_SCALE: usize = 64;
const GRAPH_SCALE: usize = 512;

#[test]
fn all_variants_agree_within_table6_error_scale() {
    // `table6` itself computes every variant's element-wise error against the
    // serial CPU reference and asserts TC ≡ CC bit-identically; here we
    // pin every cell below the published error scale.
    for row in table6(ErrorScale::Quick) {
        assert!(
            row.tc_cc.max < TABLE6_SCALE,
            "{:?} ({}): TC/CC max error {:.3e} exceeds the Table 6 scale",
            row.workload,
            row.case_label,
            row.tc_cc.max
        );
        if let Some(b) = row.baseline {
            assert!(
                b.max < TABLE6_SCALE,
                "{:?} ({}): Baseline max error {:.3e} exceeds the Table 6 scale",
                row.workload,
                row.case_label,
                b.max
            );
        }
        if let Some(e) = row.cce {
            assert!(
                e.max < TABLE6_SCALE,
                "{:?} ({}): CC-E max error {:.3e} exceeds the Table 6 scale",
                row.workload,
                row.case_label,
                e.max
            );
        }
    }
}

#[test]
fn table6_reports_every_fp_workload_and_distinct_cce() {
    let rows = table6(ErrorScale::Quick);
    // Every workload except BFS (integer levels, no FP error) is covered.
    for w in Workload::ALL {
        assert_eq!(
            rows.iter().any(|r| r.workload == w),
            w != Workload::Bfs,
            "{w:?} coverage in the Table 6 differential study"
        );
    }
    // CC-E is reported exactly where the paper evaluates it as distinct.
    for row in &rows {
        assert_eq!(
            row.cce.is_some(),
            row.workload.spec().distinct_cce,
            "{:?}: CC-E column presence",
            row.workload
        );
    }
}

#[test]
fn bfs_variants_agree_exactly() {
    // BFS has no floating point: every variant must reproduce the serial
    // reference levels exactly (the paper verifies traversal equivalence).
    let g = cubie::graph::generators::kron_g500(12, 16, 5);
    let src = g.max_degree_vertex();
    let gold = bfs::reference(&g, src);
    for v in Workload::Bfs.variants() {
        let (levels, _) = bfs::run(&g, src, v);
        assert_eq!(
            levels, gold,
            "BFS {v} levels differ from the serial reference"
        );
    }
}

#[test]
fn mixed_precision_tc_and_cc_agree_bitwise_and_track_the_reference() {
    // The differential oracle extended along the new precision axis:
    // for every reduced operand format and both tensor-core
    // generations, the TC kernel and its CUDA-core replacement must be
    // bit-identical (Observation 7 carries over), and both must track
    // the FP64 serial reference within the operand format's unit
    // roundoff — the mixed-precision analogue of the Table 6 scale.
    let case = gemm::GemmCase {
        m: 96,
        n: 64,
        k: 80,
    };
    let (a, b) = gemm::inputs(&case);
    let reference = gemm::reference(&a, &b);
    // k = 80 accumulations of O(1) inputs: ~k·u headroom over the unit
    // roundoff u of each operand format (f16 u = 2^-11, bf16 u = 2^-8,
    // tf32 u = 2^-11; accumulation is f32 throughout).
    let tol = |p: Precision| match p {
        Precision::F16 | Precision::Tf32 => 3e-2,
        Precision::Bf16 => 2e-1,
        Precision::F64 => unreachable!(),
    };
    for p in [Precision::F16, Precision::Bf16, Precision::Tf32] {
        for gen in [MmaGen::Volta, MmaGen::Ampere] {
            let (tc, _) = gemm::run_precision(&a, &b, Variant::Tc, p, gen);
            let (cc, _) = gemm::run_precision(&a, &b, Variant::Cc, p, gen);
            for (i, (x, y)) in tc.iter().zip(&cc).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{p} {gen:?}: TC and CC diverge at element {i}"
                );
            }
            let mut max_rel = 0.0f64;
            for (got, want) in tc.iter().zip(reference.as_slice()) {
                let rel = (f64::from(*got) - want).abs() / want.abs().max(1.0);
                max_rel = max_rel.max(rel);
            }
            assert!(
                max_rel < tol(p),
                "{p} {gen:?}: max relative error {max_rel:.3e} exceeds the \
                 format scale {:.1e}",
                tol(p)
            );
        }
    }
}

#[test]
fn cce_never_issues_more_work_than_cc() {
    // CC-E strips the redundant (fill/identity) operations the faithful
    // CC port of the MMU algorithm performs (Section 5.2): its aggregate
    // op counters must be bounded by CC's for every workload where the
    // paper evaluates CC-E as distinct (Quadrants II–IV), on every case.
    let cache = SweepCache::global();
    for w in Workload::ALL.into_iter().filter(|w| w.spec().distinct_cce) {
        let meta = cache.ensure(w, SPARSE_SCALE, GRAPH_SCALE);
        for ci in 0..meta.labels.len() {
            let cc = cache
                .trace(w, ci, Variant::Cc, SPARSE_SCALE, GRAPH_SCALE)
                .expect("CC trace")
                .total_ops();
            let cce = cache
                .trace(w, ci, Variant::CcE, SPARSE_SCALE, GRAPH_SCALE)
                .expect("CC-E trace")
                .total_ops();
            let case = &meta.labels[ci];
            assert!(
                cce.flops_f64() <= cc.flops_f64(),
                "{w:?} ({case}): CC-E FP64 FLOPs {} > CC {}",
                cce.flops_f64(),
                cc.flops_f64()
            );
            assert!(
                cce.int_ops <= cc.int_ops,
                "{w:?} ({case}): CC-E int ops {} > CC {}",
                cce.int_ops,
                cc.int_ops
            );
            assert!(
                cce.gmem_bytes() <= cc.gmem_bytes(),
                "{w:?} ({case}): CC-E global bytes {} > CC {}",
                cce.gmem_bytes(),
                cc.gmem_bytes()
            );
            assert!(
                cce.smem_bytes <= cc.smem_bytes,
                "{w:?} ({case}): CC-E shared bytes {} > CC {}",
                cce.smem_bytes,
                cc.smem_bytes
            );
        }
    }
}
