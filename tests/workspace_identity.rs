//! Workspace-arena bit-identity suite: every kernel executed with
//! buffer reuse **on** must produce the same output bits as with reuse
//! **off** (every checkout fresh from the system allocator) — the
//! garbage-in/garbage-out invariant of `cubie_core::workspace` (recycled
//! capacity is always fully re-initialized or fully overwritten, so
//! stale values from a previous checkout can never leak into results).
//!
//! Three tiers:
//!
//! 1. property tests drive the cheap kernels (scan, reduction, GEMV,
//!    SpMV) over random shapes, comparing reuse-on (cold *and* warm
//!    pools — the warm run reuses capacity retired by the cold one, the
//!    exact leak scenario) against reuse-off bits;
//! 2. a subprocess probe re-runs a ten-kernel digest under each forced
//!    `CUBIE_SIMD` path × worker counts {1, 2, 8} × reuse {off, on} —
//!    the SIMD dispatch decision is a per-process `OnceLock`, so forcing
//!    requires a fresh process — asserting one digest across the whole
//!    cube;
//! 3. allocator-level checks: steady-state reuse must cut hot-loop
//!    allocations by ≥ 70% versus fresh allocation, and the arenas must
//!    stop growing after the first few sweeps (bounded retention).
//!
//! Regression seeds live in `proptest-regressions/workspace_identity.txt`
//! and replay before the random cases.

use std::sync::{Mutex, MutexGuard, OnceLock};

use cubie::core::{par, workspace, LcgF64, C64};
use cubie::graph::CsrGraph;
use cubie::kernels::stencil::{StencilCase, StencilKind};
use cubie::kernels::{bfs, fft, gemm, gemv, pic, reduction, scan, spgemm, spmv, stencil, Variant};
use cubie::sparse::{Coo, Csr};
use proptest::prelude::*;

/// `workspace::set_reuse` and the allocation counters are process-wide;
/// tests that toggle or measure them must not interleave.
fn reuse_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// FNV-1a over the raw bits of a float slice: any single-bit divergence
/// changes the digest.
fn digest_f64(vals: &[f64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for v in vals {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        }
    }
    h
}

fn fold(h: &mut u64, d: u64) {
    *h = h.rotate_left(11) ^ d;
}

/// A small deterministic CSR with empty, short and block-straddling rows.
fn small_csr(rows: usize, cols: usize, seed: u64) -> Csr {
    let mut rng = LcgF64::new(seed);
    let mut coo = Coo::new(rows, cols);
    for r in 0..rows {
        for i in 0..(r % 37) {
            coo.push(r, (r * 7 + i * 11) % cols, rng.vec(1)[0]);
        }
    }
    Csr::from_coo(coo)
}

/// Functional execution of all ten kernels on small inputs, TC and
/// baseline variants, folded into one digest covering every output bit.
fn ten_kernel_digest(seed: u64) -> u64 {
    let mut rng = LcgF64::new(seed);
    let mut h: u64 = 0;
    let variants = [Variant::Tc, Variant::Baseline];

    // GEMM (ragged shape: the tiled MMA's bounds-guarded path).
    let a = cubie::core::DenseMatrix::random(24, 20, seed ^ 0xA0);
    let b = cubie::core::DenseMatrix::random(20, 16, seed ^ 0xB0);
    for v in variants {
        let (c, _) = gemm::run(&a, &b, v);
        fold(&mut h, digest_f64(c.as_slice()));
    }

    // GEMV (tall-skinny, banded MMA path).
    let am = cubie::core::DenseMatrix::random(120, 16, seed ^ 0xC0);
    let x = rng.vec(16);
    for v in variants {
        let (y, _) = gemv::run(&am, &x, v);
        fold(&mut h, digest_f64(&y));
    }

    // FFT (batched 2-D transforms through the flat ping-pong buffers).
    let case = fft::FftCase {
        h: 16,
        w: 32,
        batch: 3,
    };
    let grids: Vec<Vec<C64>> = (0..case.batch)
        .map(|_| {
            rng.vec(case.points())
                .into_iter()
                .map(|re| C64 { re, im: -re * 0.5 })
                .collect()
        })
        .collect();
    for v in variants {
        let (out, _) = fft::run(&case, &grids, v);
        for g in &out {
            let flat: Vec<f64> = g.iter().flat_map(|c| [c.re, c.im]).collect();
            fold(&mut h, digest_f64(&flat));
        }
    }

    // Stencil (2-D star, interior + border rows).
    let sc = StencilCase {
        kind: StencilKind::Star2D1R,
        dims: (1, 17, 23),
    };
    let grid = rng.vec(17 * 23);
    for v in variants {
        let (out, _) = stencil::run(&sc, &grid, v);
        fold(&mut h, digest_f64(&out));
    }

    // Scan and reduction (tile pipeline + Kogge-Stone offsets).
    let xs = rng.vec(1500);
    for v in variants {
        let (y, _) = scan::run(&xs, v);
        fold(&mut h, digest_f64(&y));
        let (r, _) = reduction::run(&xs, v);
        fold(&mut h, digest_f64(&[r]));
    }

    // PiC (batched Boris push, stack-array batches).
    let pc = pic::PicCase { n: 60 };
    let (parts, field) = pic::input(&pc);
    for v in variants {
        let (out, _) = pic::run(&pc, &parts, &field, v);
        for p in out.pos.iter().chain(out.vel.iter()) {
            fold(&mut h, digest_f64(p));
        }
    }

    // BFS (bitmap frontier ping-pong + push-pull baseline).
    let edges: Vec<(u32, u32)> = (0..400u32).map(|i| (i % 97, (i * 31 + 7) % 97)).collect();
    let g = CsrGraph::from_edges(97, &edges, true);
    for v in variants {
        let (levels, _) = bfs::run(&g, 0, v);
        let flat: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
        fold(&mut h, digest_f64(&flat));
    }

    // SpMV (DASP bundle builder + CSR baseline).
    let m = small_csr(40, 50, seed ^ 0xD0);
    let xv = rng.vec(50);
    for v in variants {
        let (y, _) = spmv::run(&m, &xv, v);
        fold(&mut h, digest_f64(&y));
    }

    // SpGEMM (blocked accumulator + dense-row baseline).
    let sq = small_csr(32, 32, seed ^ 0xE0);
    for v in variants {
        let (c, _) = spgemm::run(&sq, v);
        fold(&mut h, digest_f64(&c.vals));
        let flat: Vec<f64> = c
            .row_ptr
            .iter()
            .map(|&p| p as f64)
            .chain(c.col_idx.iter().map(|&i| i as f64))
            .collect();
        fold(&mut h, digest_f64(&flat));
    }

    h
}

/// Reuse on (cold pools, then warm pools — the warm run checks out
/// capacity the cold run retired, the exact stale-value scenario) must
/// match reuse off, bit for bit, across all ten kernels.
#[test]
fn ten_kernels_are_bit_identical_with_and_without_reuse() {
    let _g = reuse_lock();
    let prev = workspace::set_reuse(false);
    let fresh = ten_kernel_digest(42);
    workspace::set_reuse(true);
    let cold = ten_kernel_digest(42);
    let warm = ten_kernel_digest(42);
    workspace::set_reuse(prev);
    assert_eq!(
        fresh, cold,
        "reuse-on (cold pools) diverged from fresh allocation"
    );
    assert_eq!(
        fresh, warm,
        "reuse-on (warm pools) diverged from fresh allocation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cheap kernels over random shapes: reuse on (cold and warm pools)
    /// must reproduce reuse-off bits for every variant.
    #[test]
    fn random_shapes_are_bit_identical_with_and_without_reuse(
        n in 65usize..1500,
        rows in 9usize..60,
        seed in 0u64..1_000_000,
    ) {
        let _g = reuse_lock();
        let mut rng = LcgF64::new(seed + 1);
        let xs = rng.vec(n);
        let m = small_csr(rows, rows + 10, seed ^ 0xF0);
        let xv = rng.vec(rows + 10);
        let am = cubie::core::DenseMatrix::random(rows * 8, 16, seed ^ 0xA1);
        let gx = rng.vec(16);
        for v in [Variant::Tc, Variant::Cc, Variant::CcE, Variant::Baseline] {
            let digest_all = || {
                let mut h = 0u64;
                let (y, _) = scan::run(&xs, v);
                fold(&mut h, digest_f64(&y));
                let (r, _) = reduction::run(&xs, v);
                fold(&mut h, digest_f64(&[r]));
                let (sy, _) = spmv::run(&m, &xv, v);
                fold(&mut h, digest_f64(&sy));
                let (gy, _) = gemv::run(&am, &gx, v);
                fold(&mut h, digest_f64(&gy));
                h
            };
            let prev = workspace::set_reuse(false);
            let fresh = digest_all();
            workspace::set_reuse(true);
            let cold = digest_all();
            let warm = digest_all();
            workspace::set_reuse(prev);
            prop_assert_eq!(
                fresh, cold,
                "variant {} diverged with cold pools (n {} rows {})", v.label(), n, rows
            );
            prop_assert_eq!(
                fresh, warm,
                "variant {} diverged with warm pools (n {} rows {})", v.label(), n, rows
            );
        }
    }
}

// ---------------------------------------------------------------------
// Forced-SIMD × jobs × reuse cube. `CUBIE_SIMD` resolves once per
// process, so each forcing runs this binary in a subprocess against the
// `#[ignore]`d probe below.
// ---------------------------------------------------------------------

/// Worker counts the probe sweeps (the acceptance matrix of the arena
/// work: serial fast path, small pool, oversubscribed pool).
const PROBE_JOBS: [usize; 3] = [1, 2, 8];

#[test]
#[ignore = "reuse cube probe: run in a CUBIE_SIMD subprocess by the cube test"]
fn workspace_cube_probe() {
    let _g = reuse_lock();
    let mut digests = Vec::new();
    for jobs in PROBE_JOBS {
        let prev_jobs = par::set_max_workers(jobs);
        for reuse in [false, true] {
            let prev = workspace::set_reuse(reuse);
            digests.push((jobs, reuse, ten_kernel_digest(7)));
            workspace::set_reuse(prev);
        }
        par::set_max_workers(prev_jobs);
    }
    let (_, _, reference) = digests[0];
    for (jobs, reuse, d) in &digests {
        assert_eq!(
            *d,
            reference,
            "digest diverged at jobs {jobs} reuse {reuse} under CUBIE_SIMD={:?}",
            std::env::var("CUBIE_SIMD")
        );
    }
    // stdout is captured by the harness; stderr carries the digest line.
    eprintln!("workspace cube digest: {reference:#018x}");
}

/// Every supported SIMD path, forced end-to-end, × jobs {1,2,8} × reuse
/// {off,on} produces one digest: workspace reuse changes no output bit
/// anywhere in the matrix.
#[test]
fn reuse_is_bit_identical_across_forced_simd_paths_and_jobs() {
    use cubie::core::simd;
    let exe = std::env::current_exe().expect("test binary path");
    let mut digests = Vec::new();
    for path in simd::supported_paths() {
        let out = std::process::Command::new(&exe)
            .args([
                "--exact",
                "workspace_cube_probe",
                "--include-ignored",
                "--test-threads",
                "1",
                "--nocapture",
            ])
            .env("CUBIE_SIMD", path.label())
            .output()
            .expect("spawn probe subprocess");
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(
            out.status.success(),
            "probe failed under CUBIE_SIMD={}:\n{stderr}",
            path.label()
        );
        let digest = stderr
            .lines()
            .find(|l| l.starts_with("workspace cube digest: "))
            .unwrap_or_else(|| {
                panic!(
                    "no digest line under CUBIE_SIMD={}:\n{stderr}",
                    path.label()
                )
            })
            .to_string();
        digests.push((path, digest));
    }
    let (_, reference) = &digests[0];
    for (path, digest) in &digests {
        assert_eq!(
            digest,
            reference,
            "workspace cube digest diverged on forced path {}",
            path.label()
        );
    }
}

// ---------------------------------------------------------------------
// Allocator-level guarantees: steady-state reduction and bounded arenas.
// ---------------------------------------------------------------------

/// Steady-state (second and later iterations, warm pools) hot-loop
/// allocations with reuse on must be ≤ 30% of the fresh-allocation count
/// — the headline ≥ 70% reduction the arenas exist for.
///
/// Methodology: inputs are built once outside the measured loop (their
/// construction allocates identically under both modes and is not hot-
/// loop work), and each kernel's analytic `trace()` cost is measured
/// separately and subtracted — `run()` = functional execution + trace,
/// and the trace builder's allocations are mode-independent bookkeeping,
/// not the execution hot loop. BFS's trace executes the traversal
/// functionally, so its subtraction nets ~zero there (conservative: BFS
/// arena savings are under-credited, never over-credited). Serial
/// workers keep every checkout on this thread, so the process counter
/// attributes cleanly.
#[test]
fn steady_state_reuse_cuts_allocations_by_at_least_70_percent() {
    let _g = reuse_lock();
    let prev_jobs = par::set_max_workers(1);

    let mut rng = LcgF64::new(9);
    let a = cubie::core::DenseMatrix::random(24, 20, 0xA0);
    let b = cubie::core::DenseMatrix::random(20, 16, 0xB0);
    let am = cubie::core::DenseMatrix::random(120, 16, 0xC0);
    let gx = rng.vec(16);
    let case = fft::FftCase {
        h: 16,
        w: 32,
        batch: 3,
    };
    let grids: Vec<Vec<C64>> = (0..case.batch)
        .map(|_| {
            rng.vec(case.points())
                .into_iter()
                .map(|re| C64 { re, im: -re * 0.5 })
                .collect()
        })
        .collect();
    let sc = StencilCase {
        kind: StencilKind::Star2D1R,
        dims: (1, 17, 23),
    };
    let grid = rng.vec(17 * 23);
    let xs = rng.vec(1500);
    let pc = pic::PicCase { n: 60 };
    let (parts, field) = pic::input(&pc);
    let edges: Vec<(u32, u32)> = (0..400u32).map(|i| (i % 97, (i * 31 + 7) % 97)).collect();
    let g = CsrGraph::from_edges(97, &edges, true);
    let m = small_csr(40, 50, 0xD0);
    let xv = rng.vec(50);
    let sq = small_csr(32, 32, 0xE0);

    let variants = [Variant::Tc, Variant::Baseline];
    let run_all = || {
        for v in variants {
            let _ = gemm::run(&a, &b, v);
            let _ = gemv::run(&am, &gx, v);
            let _ = fft::run(&case, &grids, v);
            let _ = stencil::run(&sc, &grid, v);
            let _ = scan::run(&xs, v);
            let _ = reduction::run(&xs, v);
            let _ = pic::run(&pc, &parts, &field, v);
            let _ = bfs::run(&g, 0, v);
            let _ = spmv::run(&m, &xv, v);
            let _ = spgemm::run(&sq, v);
        }
    };
    let trace_all = || {
        for v in variants {
            let _ = gemm::trace(
                &gemm::GemmCase {
                    m: 24,
                    n: 16,
                    k: 20,
                },
                v,
            );
            let _ = gemv::trace(&gemv::GemvCase { m: 120, n: 16 }, v);
            let _ = fft::trace(&case, v);
            let _ = stencil::trace(&sc, v);
            let _ = scan::trace(&scan::ScanCase { n: 1500 }, v);
            let _ = reduction::trace(&reduction::ReductionCase { n: 1500 }, v);
            let _ = pic::trace(&pc, v);
            let _ = bfs::trace(&g, 0, v);
            let _ = spmv::trace(&m, v);
            let _ = spgemm::trace(&sq, v);
        }
    };

    let measure = |reuse: bool| -> u64 {
        let prev = workspace::set_reuse(reuse);
        run_all(); // warm-up: populate pools (or none), touch lazies
        let b0 = cubie::obs::alloc::total_allocs().0;
        for _ in 0..3 {
            run_all();
        }
        let b1 = cubie::obs::alloc::total_allocs().0;
        for _ in 0..3 {
            trace_all();
        }
        let b2 = cubie::obs::alloc::total_allocs().0;
        workspace::set_reuse(prev);
        // run() includes trace-building, so run ≥ trace per kernel;
        // saturate anyway so a counting quirk fails the ratio assert
        // with a readable message instead of an underflow panic.
        (b1 - b0).saturating_sub(b2 - b1)
    };
    let fresh = measure(false);
    let reused = measure(true);
    par::set_max_workers(prev_jobs);
    assert!(
        fresh > 0,
        "counting allocator must be installed for this test"
    );
    assert!(
        (reused as f64) <= 0.30 * fresh as f64,
        "steady-state reuse saved too little: {reused} hot-loop allocs vs {fresh} fresh \
         ({:.0}% remaining, need ≤ 30%)",
        100.0 * reused as f64 / fresh as f64
    );
}

/// Arenas must stop growing once pools reach steady state: retained
/// bytes/buffers after 100 sweeps of the ten kernels may not exceed the
/// level reached after 10 (plus nothing — the checkout/restore cycle is
/// closed), and checkout hits must dominate misses.
#[test]
fn arenas_are_bounded_over_100_sweeps() {
    let _g = reuse_lock();
    // Serial workers: parking is single-threaded, so the global retained
    // counters are deterministic between the two snapshots.
    let prev_jobs = par::set_max_workers(1);
    let prev = workspace::set_reuse(true);
    let mut at_10 = workspace::stats();
    for i in 0..100 {
        ten_kernel_digest(11);
        if i == 9 {
            at_10 = workspace::stats();
        }
    }
    let at_100 = workspace::stats();
    workspace::set_reuse(prev);
    par::set_max_workers(prev_jobs);
    assert!(
        at_100.retained_bytes <= at_10.retained_bytes,
        "arena bytes grew after steady state: {} at sweep 10 vs {} at sweep 100",
        at_10.retained_bytes,
        at_100.retained_bytes
    );
    assert!(
        at_100.retained_buffers <= at_10.retained_buffers,
        "arena buffers grew after steady state: {} at sweep 10 vs {} at sweep 100",
        at_10.retained_buffers,
        at_100.retained_buffers
    );
    let new_hits = at_100.hits - at_10.hits;
    let new_misses = at_100.misses - at_10.misses;
    assert!(
        new_hits > 9 * new_misses,
        "steady-state checkouts should be pool hits: {new_hits} hits vs {new_misses} misses"
    );
}
