//! Cross-crate consistency: the analytic traces that feed the simulator
//! must describe exactly the computation the functional kernels perform.

use cubie::core::C64;
use cubie::kernels::{fft, gemm, gemv, pic, reduction, scan, spmv, stencil, Variant};

#[test]
fn gemm_run_returns_its_analytic_trace() {
    let case = gemm::GemmCase::square(128);
    let (a, b) = gemm::inputs(&case);
    for v in [Variant::Baseline, Variant::Tc, Variant::Cc] {
        let (_, rt) = gemm::run(&a, &b, v);
        assert_eq!(rt, gemm::trace(&case, v), "{v}");
    }
}

#[test]
fn gemv_scan_reduction_traces_match() {
    let case = gemv::GemvCase { m: 512, n: 16 };
    let (a, x) = gemv::inputs(&case);
    for v in Variant::ALL {
        assert_eq!(gemv::run(&a, &x, v).1, gemv::trace(&case, v), "gemv {v}");
    }
    let sc = scan::ScanCase { n: 512 };
    let xs = scan::input(&sc);
    for v in Variant::ALL {
        assert_eq!(scan::run(&xs, v).1, scan::trace(&sc, v), "scan {v}");
    }
    let rc = reduction::ReductionCase { n: 512 };
    let xr = reduction::input(&rc);
    for v in Variant::ALL {
        assert_eq!(
            reduction::run(&xr, v).1,
            reduction::trace(&rc, v),
            "reduction {v}"
        );
    }
}

#[test]
fn spmv_trace_is_structure_determined() {
    let m = cubie::sparse::generators::chevron1_like(16);
    let x = spmv::input_vector(&m);
    for v in Variant::ALL {
        assert_eq!(spmv::run(&m, &x, v).1, spmv::trace(&m, v), "{v}");
    }
}

#[test]
fn stencil_and_pic_traces_match() {
    let case = stencil::StencilCase::star2d(48, 64);
    let x = stencil::input(&case);
    for v in [Variant::Baseline, Variant::Tc, Variant::Cc] {
        assert_eq!(
            stencil::run(&case, &x, v).1,
            stencil::trace(&case, v),
            "{v}"
        );
    }
    let pc = pic::PicCase { n: 2048 };
    let (parts, grid) = pic::input(&pc);
    for v in [Variant::Tc, Variant::Cc] {
        assert_eq!(
            pic::run(&pc, &parts, &grid, v).1,
            pic::trace(&pc, v),
            "pic {v}"
        );
    }
}

#[test]
fn fft_executed_mma_count_matches_trace() {
    // The 1-D batched kernel exposes its executed counters; they must
    // equal the analytic per-group MMA formula underlying the 2-D trace.
    for log_n in [2u32, 3, 4, 5] {
        let n = 1usize << (2 * log_n.min(4)); // 16..256 (pure radix-4)
        let mut g = cubie::core::LcgF64::new(log_n as u64);
        let mut xs: Vec<Vec<C64>> = (0..8)
            .map(|_| {
                (0..n)
                    .map(|_| C64::new(g.next_f64(), g.next_f64()))
                    .collect()
            })
            .collect();
        let ctr = fft::fft1d_batch(&mut xs, Variant::Tc);
        let l4 = (n.trailing_zeros() / 2) as u64;
        assert_eq!(
            ctr.mma_f64,
            l4 * (n as u64 / 4) * 2,
            "n={n}: executed MMA count"
        );
    }
}

#[test]
fn gemm_functional_asserts_mma_against_trace_internally() {
    // run_tiled_mma asserts executed == analytic; exercise it on ragged
    // shapes where off-by-one tiling errors would show.
    let a = cubie::core::DenseMatrix::random(72, 100, 1);
    let b = cubie::core::DenseMatrix::random(100, 88, 2);
    let (_, t) = gemm::run(&a, &b, Variant::Tc);
    assert!(t.total_ops().mma_f64 > 0);
}
