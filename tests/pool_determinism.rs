//! Process-level guarantees of the persistent worker pool: sweep results
//! stay bit-identical for any `--jobs` value, the pool survives and is
//! reused across back-to-back sweeps, `set_max_workers` takes effect
//! mid-process, and repeated `par_map` calls neither leak nor respawn
//! worker threads.
//!
//! These run as one integration-test process (separate from the unit
//! tests), so the pool observed here is exactly the one a `cubie sweep`
//! invocation would use. The pool and its cap are process singletons, so
//! every test serializes on [`pool_lock`] — the harness otherwise runs
//! them concurrently and the size assertions would race.

use std::sync::{Arc, Mutex, MutexGuard};

use cubie::bench::{SweepCache, SweepConfig, SweepRunner};
use cubie::core::par::{par_map, set_max_workers};
use cubie::core::pool;
use cubie::kernels::Workload;

static POOL_LOCK: Mutex<()> = Mutex::new(());

fn pool_lock() -> MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Set the worker cap and wait for the pool to settle at ≤ cap−1 threads
/// (retiring parked workers takes a condvar round-trip). Returns the
/// previous cap.
fn settle_to(cap: usize) -> usize {
    let prev = set_max_workers(cap);
    for _ in 0..1000 {
        if pool::worker_count() <= cap.saturating_sub(1) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    prev
}

fn small_config(jobs: Option<usize>) -> SweepConfig {
    SweepConfig {
        workloads: vec![Workload::Scan, Workload::Spmv],
        variants: None,
        devices: cubie::device::all_devices(),
        cases: None,
        precisions: vec![cubie::kernels::Precision::F64],
        sparse_scale: 64,
        graph_scale: 512,
        jobs,
    }
}

#[test]
fn sweep_results_are_bit_identical_across_jobs_1_2_8() {
    let _g = pool_lock();
    // Each run uses a private cold cache: every cell is recomputed under
    // a different worker schedule, and every f64 must still match
    // bit-for-bit (SweepCell's PartialEq is exact).
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|jobs| {
            SweepRunner::with_cache(small_config(Some(jobs)), Arc::new(SweepCache::default())).run()
        })
        .collect();
    assert!(!runs[0].cells.is_empty());
    for (jobs, run) in [2usize, 8].into_iter().zip(&runs[1..]) {
        assert_eq!(runs[0].cells.len(), run.cells.len());
        for (a, b) in runs[0].cells.iter().zip(&run.cells) {
            assert_eq!(a, b, "cell diverged between --jobs 1 and --jobs {jobs}");
        }
    }
}

#[test]
fn pool_is_reused_across_back_to_back_sweeps() {
    let _g = pool_lock();
    // Pin the ambient cap to the sweep's jobs value so the post-sweep cap
    // restore is a no-op and worker counts are stable between runs.
    let prev = settle_to(4);
    let first =
        SweepRunner::with_cache(small_config(Some(4)), Arc::new(SweepCache::default())).run();
    let after_first = pool::worker_count();
    assert!(
        (1..=3).contains(&after_first),
        "a --jobs 4 sweep must leave 1..=3 pool workers alive, saw {after_first}"
    );
    let second =
        SweepRunner::with_cache(small_config(Some(4)), Arc::new(SweepCache::default())).run();
    let after_second = pool::worker_count();
    set_max_workers(prev);
    assert_eq!(
        after_first, after_second,
        "second sweep must reuse the pool, not grow it"
    );
    assert_eq!(first.cells, second.cells);
}

#[test]
fn set_max_workers_takes_effect_mid_process() {
    let _g = pool_lock();
    // Grow, observe, shrink, observe: the cap governs the live pool, not
    // just future processes.
    let prev = settle_to(5);
    let _ = par_map(512, |i| i * 3);
    let grown = pool::worker_count();
    assert_eq!(grown, 4, "cap 5 must grow the pool to 4 helpers");
    settle_to(2);
    let shrunk = pool::worker_count();
    set_max_workers(prev);
    assert!(shrunk <= 1, "cap 2 leaves at most 1 helper, saw {shrunk}");
}

#[test]
fn resizing_the_pool_mid_sweep_keeps_results_bit_identical() {
    let _g = pool_lock();
    let prev = settle_to(4);
    let baseline =
        SweepRunner::with_cache(small_config(Some(4)), Arc::new(SweepCache::default())).run();
    // Thrash the worker cap from another thread for the whole duration of
    // a second cold-cache sweep: workers retire and respawn underneath
    // the running `par_map` calls, yet chunk results are merged by index,
    // so every f64 must still land bit-identically.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_resizer = Arc::clone(&stop);
    let resizer = std::thread::spawn(move || {
        while !stop_resizer.load(std::sync::atomic::Ordering::Relaxed) {
            for cap in [1usize, 6, 2, 4] {
                set_max_workers(cap);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    });
    let resized =
        SweepRunner::with_cache(small_config(Some(4)), Arc::new(SweepCache::default())).run();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    resizer.join().expect("resizer thread");
    set_max_workers(prev);
    assert_eq!(baseline.cells.len(), resized.cells.len());
    for (a, b) in baseline.cells.iter().zip(&resized.cells) {
        assert_eq!(a, b, "cell diverged under mid-sweep pool resizing");
    }
    // The canonical serialization agrees too — the same oracle the
    // cubied store uses for hit validation.
    assert_eq!(
        baseline.to_artifact().to_json().to_pretty_string(),
        resized.to_artifact().to_json().to_pretty_string(),
        "canonical sweep artifacts diverged under mid-sweep pool resizing"
    );
}

#[test]
fn one_hundred_par_maps_do_not_leak_threads() {
    let _g = pool_lock();
    let prev = settle_to(4);
    let _ = par_map(256, |i| i);
    let baseline = pool::worker_count();
    for round in 0..100 {
        let v = par_map(256, move |i| i + round);
        assert_eq!(v[255], 255 + round);
    }
    let after = pool::worker_count();
    set_max_workers(prev);
    assert_eq!(
        baseline, after,
        "thread count must be stable across 100 par_map calls"
    );
    assert!(after <= 3, "cap 4 means at most 3 helpers, saw {after}");
}
