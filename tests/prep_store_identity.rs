//! Prepared-input store bit-identity suite: inputs served from the
//! snapshot store — cold (generate + record), warm (mmap'd zero-copy
//! view), warm-copied (`CUBIE_PREP_MMAP=off`) — must be bit-identical
//! to a fresh in-memory generation, and so must everything computed
//! from them. Corrupted, truncated, or version-skewed snapshots are
//! detected at open, deleted, and regenerated — never a panic, never a
//! silently wrong input.
//!
//! Three tiers:
//!
//! 1. in-process digests: Table 4 matrices + Table 3 graphs and the
//!    SpMV/SpGEMM/BFS outputs computed from them, fresh vs cold-store
//!    vs warm-mmap vs warm-copied;
//! 2. sabotage: doctored version-skew keys, bit-rotted payloads,
//!    truncated files, and stray `.tmp`s must all be invalidated and
//!    regenerated with the digest unchanged;
//! 3. subprocess probes: the digest is re-derived under
//!    `CUBIE_PREP_CACHE` off/on × every forced `CUBIE_SIMD` path ×
//!    worker counts {1, 2, 8} (one shared store across paths — a
//!    snapshot recorded under the scalar path must serve the AVX2 run
//!    bit-identically), plus two processes racing cold on the same
//!    store directory.

use std::path::{Path, PathBuf};

use cubie::graph::generators::GraphInfo;
use cubie::graph::CsrGraph;
use cubie::kernels::{bfs, spgemm, spmv, Variant};
use cubie::prep::{self, LoadMode, PrepConfig};
use cubie::sparse::generators::MatrixInfo;
use cubie::sparse::Csr;

/// Matrix/graph scales of the suite: cheap enough for CI, large enough
/// that every Table 4/Table 3 entry has non-trivial structure.
const SPARSE_SCALE: usize = 64;
const GRAPH_SCALE: usize = 512;

/// FNV-1a over a byte stream.
fn fnv(h: &mut u64, bytes: impl IntoIterator<Item = u8>) {
    for b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x1_0000_01B3);
    }
}

fn fold_f64(h: &mut u64, vals: &[f64]) {
    for v in vals {
        fnv(h, v.to_bits().to_le_bytes());
    }
}

fn fold_usize(h: &mut u64, vals: &[usize]) {
    for v in vals {
        fnv(h, (*v as u64).to_le_bytes());
    }
}

fn fold_u32(h: &mut u64, vals: &[u32]) {
    for v in vals {
        fnv(h, v.to_le_bytes());
    }
}

/// Every input bit plus every output bit computed from the inputs: the
/// five Table 4 matrices (structure + values + SpMV + SpGEMM) and the
/// five Table 3 graphs (structure + BFS levels).
fn table_digest(matrices: &[(MatrixInfo, Csr)], graphs: &[(GraphInfo, CsrGraph)]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for (info, m) in matrices {
        fnv(&mut h, info.name.bytes());
        fold_usize(&mut h, &[m.rows, m.cols]);
        fold_usize(&mut h, &m.row_ptr);
        fold_u32(&mut h, &m.col_idx);
        fold_f64(&mut h, &m.vals);
        let x: Vec<f64> = (0..m.cols).map(|i| (i % 13) as f64 * 0.25 - 1.0).collect();
        let (y, _) = spmv::run(m, &x, Variant::Tc);
        fold_f64(&mut h, &y);
    }
    // SpGEMM on the smallest matrix only (A·A is quadratic in nnz).
    let (_, smallest) = matrices
        .iter()
        .min_by_key(|(_, m)| m.nnz())
        .expect("non-empty table");
    let (c, _) = spgemm::run(smallest, Variant::Tc);
    fold_usize(&mut h, &c.row_ptr);
    fold_u32(&mut h, &c.col_idx);
    fold_f64(&mut h, &c.vals);
    for (info, g) in graphs {
        fnv(&mut h, info.name.bytes());
        fold_usize(&mut h, &[g.n, g.num_arcs()]);
        fold_usize(&mut h, &g.offsets);
        fold_u32(&mut h, &g.adj);
        let (levels, _) = bfs::run(g, g.max_degree_vertex(), Variant::Tc);
        let flat: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
        fold_f64(&mut h, &flat);
    }
    h
}

fn digest_with(cfg: &PrepConfig) -> (u64, prep::LoadReport, prep::LoadReport) {
    let (matrices, mrep) = prep::table4_matrices_with(cfg, SPARSE_SCALE);
    let (graphs, grep) = prep::table3_graphs_with(cfg, GRAPH_SCALE);
    (table_digest(&matrices, &graphs), mrep, grep)
}

/// A unique store directory per test (and per process, for the racing
/// subprocesses), removed on drop.
struct TempStore(PathBuf);

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let dir =
            std::env::temp_dir().join(format!("cubie_prep_identity_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempStore(dir)
    }

    fn cfg(&self, mode: LoadMode) -> PrepConfig {
        PrepConfig {
            enabled: true,
            dir: self.0.clone(),
            mode,
        }
    }

    fn snapshot_files(&self) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = std::fs::read_dir(&self.0)
            .expect("store dir exists")
            .filter_map(|e| Some(e.ok()?.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "bin"))
            .collect();
        out.sort();
        out
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tmp_leftovers(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
                .count()
        })
        .unwrap_or(0)
}

/// Fresh generation, cold store (generate + record), warm mmap load,
/// and warm copied load all produce the same input and output bits —
/// and the warm runs really are served from snapshots, zero-copy where
/// the platform allows it.
#[test]
fn fresh_cold_warm_digests_are_bit_identical() {
    let store = TempStore::new("fresh_cold_warm");

    let (fresh, _, _) = digest_with(&PrepConfig::disabled());

    let cfg = store.cfg(LoadMode::Mmap);
    let (cold, cold_m, cold_g) = digest_with(&cfg);
    assert_eq!(cold_m.hits, 0, "first run must be a full miss");
    assert_eq!(cold_m.misses, 5);
    assert_eq!(cold_g.misses, 5);
    assert!(cold_m.bytes_written > 0, "cold run must record snapshots");
    assert_eq!(store.snapshot_files().len(), 10, "5 matrices + 5 graphs");
    assert_eq!(tmp_leftovers(&store.0), 0, "atomic writes leave no .tmp");

    let (warm, warm_m, warm_g) = digest_with(&cfg);
    assert_eq!((warm_m.hits, warm_m.misses), (5, 0), "second run all hits");
    assert_eq!((warm_g.hits, warm_g.misses), (5, 0));
    assert!(warm_m.bytes_loaded > 0);

    let (copied, copied_m, _) = digest_with(&store.cfg(LoadMode::Copied));
    assert_eq!((copied_m.hits, copied_m.misses), (5, 0));

    assert_eq!(fresh, cold, "cold store run diverged from fresh generation");
    assert_eq!(fresh, warm, "warm mmap run diverged from fresh generation");
    assert_eq!(
        fresh, copied,
        "warm copied run diverged from fresh generation"
    );

    // The warm mmap matrices are really zero-copy views on LE 64-bit.
    if cubie::prep::format::ZERO_COPY_OK {
        let (matrices, _) = prep::table4_matrices_with(&cfg, SPARSE_SCALE);
        assert!(
            matrices.iter().all(|(_, m)| m.is_mapped()),
            "warm mmap loads must borrow the snapshot, not copy it"
        );
    }
}

/// A snapshot whose embedded key carries a different generator version
/// (a doctored `gen=` field) is invalidated at open — deleted and
/// regenerated, digest unchanged.
#[test]
fn version_skew_is_invalidated_and_regenerated() {
    let store = TempStore::new("version_skew");
    let cfg = store.cfg(LoadMode::Mmap);
    let (fresh, _, _) = digest_with(&cfg);

    // Doctor every snapshot: flip `gen=1` to `gen=0` in the embedded
    // key, simulating files recorded by an older generator.
    let mut doctored = 0;
    for path in store.snapshot_files() {
        let mut bytes = std::fs::read(&path).unwrap();
        if let Some(pos) = bytes.windows(5).position(|w| w == b"gen=1") {
            bytes[pos + 4] = b'0';
            std::fs::write(&path, &bytes).unwrap();
            doctored += 1;
        }
    }
    assert_eq!(doctored, 10, "every snapshot embeds its generator version");

    let (redone, m, g) = digest_with(&cfg);
    assert_eq!(fresh, redone, "regeneration after skew diverged");
    assert_eq!(m.hits + g.hits, 0, "skewed snapshots must not serve hits");
    assert_eq!(
        m.invalidated + g.invalidated,
        10,
        "every doctored snapshot must be invalidated"
    );

    // The re-recorded snapshots serve hits again.
    let (rewarm, m2, g2) = digest_with(&cfg);
    assert_eq!(fresh, rewarm);
    assert_eq!(m2.hits + g2.hits, 10);
}

/// Bit-rot in a payload, a truncated file, and a stray `.tmp` from a
/// crashed writer: all detected (checksum/length at open, sweep at
/// revalidation), none panic, none serve wrong bits.
#[test]
fn corruption_and_truncation_fall_back_to_regeneration() {
    let store = TempStore::new("corruption");
    let cfg = store.cfg(LoadMode::Mmap);
    let (fresh, _, _) = digest_with(&cfg);

    let files = store.snapshot_files();
    assert!(files.len() >= 3);

    // File 0: flip one payload bit (past the 0x40-byte header + key).
    let mut bytes = std::fs::read(&files[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&files[0], &bytes).unwrap();

    // File 1: truncate to half.
    let bytes = std::fs::read(&files[1]).unwrap();
    std::fs::write(&files[1], &bytes[..bytes.len() / 2]).unwrap();

    // File 2: empty out entirely.
    std::fs::write(&files[2], b"").unwrap();

    // A stray .tmp from a writer that died mid-record.
    let stray = store.0.join("00000000deadbeef.12345.0.tmp");
    std::fs::write(&stray, b"partial snapshot").unwrap();

    let (redone, m, g) = digest_with(&cfg);
    assert_eq!(fresh, redone, "regeneration after corruption diverged");
    assert_eq!(
        m.invalidated + g.invalidated,
        3,
        "all three sabotaged snapshots must be invalidated"
    );
    assert_eq!(m.hits + g.hits, 7, "intact snapshots still serve");

    // Startup revalidation (what `cubied` runs) sweeps the stray .tmp
    // and confirms every re-recorded snapshot checks out.
    let report = prep::prewarm(&cfg);
    assert!(!stray.exists(), "prewarm must sweep stray .tmp files");
    assert_eq!(report.removed_tmp, 1);
    assert_eq!(report.kept, 10);
    assert_eq!(report.removed_invalid, 0);
}

/// A store rooted somewhere unusable degrades to in-memory generation
/// with the same bits — never a panic, never a partial result.
#[test]
fn unusable_store_dir_degrades_to_generation() {
    let (fresh, _, _) = digest_with(&PrepConfig::disabled());
    // A *file* where the store directory should be: create_dir_all fails.
    let blocker = std::env::temp_dir().join(format!(
        "cubie_prep_identity_blocker_{}",
        std::process::id()
    ));
    std::fs::write(&blocker, b"i am a file, not a directory").unwrap();
    let cfg = PrepConfig {
        enabled: true,
        dir: blocker.join("prep"),
        mode: LoadMode::Mmap,
    };
    let (degraded, m, _) = digest_with(&cfg);
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(fresh, degraded, "degraded mode diverged from fresh bits");
    assert_eq!(m.hits, 0);
}

// ---------------------------------------------------------------------
// Subprocess tiers: forced-SIMD × jobs × cache cube, and racing cold
// starts. `CUBIE_SIMD` resolves once per process, so each forcing runs
// this binary against the `#[ignore]`d probe below.
// ---------------------------------------------------------------------

/// Worker counts the probe sweeps (serial fast path, small pool,
/// oversubscribed pool) — the acceptance matrix of the store work.
const PROBE_JOBS: [usize; 3] = [1, 2, 8];

/// Re-derives the table digest under the ambient `CUBIE_PREP_*` env
/// (consumed by [`prep::table4_matrices`]) at jobs {1, 2, 8}, asserting
/// one digest across worker counts, and prints it on stderr for the
/// parent. With the cache on and a shared directory, the first
/// iteration runs cold (records) and later ones warm (mmap hits), so a
/// single probe already crosses the cold/warm boundary.
#[test]
#[ignore = "prep cube probe: run in a CUBIE_SIMD/CUBIE_PREP_* subprocess by the cube test"]
fn prep_cube_probe() {
    let mut digests = Vec::new();
    for jobs in PROBE_JOBS {
        let prev = cubie::core::par::set_max_workers(jobs);
        let matrices = prep::table4_matrices(SPARSE_SCALE);
        let graphs = prep::table3_graphs(GRAPH_SCALE);
        digests.push((jobs, table_digest(&matrices, &graphs)));
        cubie::core::par::set_max_workers(prev);
    }
    let (_, reference) = digests[0];
    for (jobs, d) in &digests {
        assert_eq!(
            *d,
            reference,
            "digest diverged at jobs {jobs} under CUBIE_SIMD={:?} CUBIE_PREP_CACHE={:?}",
            std::env::var("CUBIE_SIMD"),
            std::env::var("CUBIE_PREP_CACHE")
        );
    }
    eprintln!("prep cube digest: {reference:#018x}");
}

fn run_probe(probe: &str, envs: &[(&str, &str)]) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = std::process::Command::new(&exe);
    cmd.args([
        "--exact",
        probe,
        "--include-ignored",
        "--test-threads",
        "1",
        "--nocapture",
    ]);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn probe subprocess");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        out.status.success(),
        "probe failed under {envs:?}:\n{stderr}"
    );
    stderr
        .lines()
        .find(|l| l.contains("digest: "))
        .unwrap_or_else(|| panic!("no digest line under {envs:?}:\n{stderr}"))
        .split("digest: ")
        .nth(1)
        .unwrap()
        .to_string()
}

/// Cache off × cache on (cold then warm, one store shared across SIMD
/// paths) × every forced `CUBIE_SIMD` path × jobs {1, 2, 8}: one
/// digest. A snapshot recorded under the scalar path must serve the
/// vector paths bit-identically, and vice versa.
#[test]
fn prep_cache_is_bit_identical_across_forced_simd_paths_and_jobs() {
    let store = TempStore::new("simd_cube");
    let dir = store.0.to_string_lossy().to_string();
    let mut digests = Vec::new();
    for path in cubie::core::simd::supported_paths() {
        for cache in ["off", "on"] {
            let d = run_probe(
                "prep_cube_probe",
                &[
                    ("CUBIE_SIMD", path.label()),
                    ("CUBIE_PREP_CACHE", cache),
                    ("CUBIE_PREP_DIR", dir.as_str()),
                ],
            );
            digests.push((path.label(), cache, d));
        }
    }
    let (_, _, reference) = digests[0].clone();
    for (path, cache, d) in &digests {
        assert_eq!(
            d, &reference,
            "prep digest diverged at CUBIE_SIMD={path} CUBIE_PREP_CACHE={cache}"
        );
    }
    assert_eq!(tmp_leftovers(&store.0), 0, "cube left .tmp files behind");
}

/// Two processes racing the same cold store: both must succeed with the
/// same digest (last rename wins with identical bytes), and the store
/// must end clean — fully populated, no `.tmp` leftovers.
#[test]
fn racing_cold_processes_on_one_store_both_succeed() {
    let store = TempStore::new("race");
    let dir = store.0.to_string_lossy().to_string();
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        std::process::Command::new(&exe)
            .args([
                "--exact",
                "prep_cube_probe",
                "--include-ignored",
                "--test-threads",
                "1",
                "--nocapture",
            ])
            .env("CUBIE_PREP_CACHE", "on")
            .env("CUBIE_PREP_DIR", &dir)
            .stderr(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn racing probe")
    };
    let a = spawn();
    let b = spawn();
    let outs = [a.wait_with_output().unwrap(), b.wait_with_output().unwrap()];
    let mut digests = Vec::new();
    for out in &outs {
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(out.status.success(), "racing probe failed:\n{stderr}");
        digests.push(
            stderr
                .lines()
                .find(|l| l.contains("digest: "))
                .expect("digest line")
                .to_string(),
        );
    }
    assert_eq!(digests[0], digests[1], "racing processes disagreed");
    assert_eq!(store.snapshot_files().len(), 10, "store fully populated");
    assert_eq!(tmp_leftovers(&store.0), 0, "race left .tmp files behind");
}
