//! Record → check round-trip over the full golden registry: every
//! artifact the harness can snapshot must survive canonical JSON
//! serialization bit-for-bit and diff clean against itself.
//!
//! The context uses a reduced workload set and corpus sizes (this runs
//! in the debug profile under `cargo test`); the committed goldens under
//! `results/golden/` are recorded at the full ten-workload pinned scale
//! by `cubie golden record` and checked by the CI `golden-check` job.

use cubie::bench::artifacts::{self, GoldenConfig, GoldenCtx};
use cubie::golden::{diff, Artifact, Json};
use cubie::kernels::Workload;

fn test_ctx() -> GoldenCtx {
    GoldenCtx::new(GoldenConfig {
        matrix_corpus: 30,
        graph_corpus: 15,
        power_samples: 12,
        workloads: vec![
            Workload::Scan,
            Workload::Reduction,
            Workload::Spmv,
            Workload::Gemv,
            Workload::Bfs,
        ],
        ..GoldenConfig::default()
    })
}

#[test]
fn every_artifact_survives_record_then_check() {
    let ctx = test_ctx();
    let dir = std::env::temp_dir().join(format!("cubie-golden-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for name in artifacts::GOLDEN_ARTIFACTS {
        let built = artifacts::build(&ctx, name)
            .unwrap_or_else(|| panic!("{name} missing from the builder registry"));
        assert_eq!(built.name, *name);
        assert!(!built.rows.is_empty(), "{name} produced no rows");

        // Record: write the canonical JSON document.
        let path = dir.join(format!("{name}.json"));
        built.write(&path).unwrap();

        // Check: parse it back and diff against the in-memory original.
        let reread = Artifact::read(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let d = diff(&built, &reread);
        assert!(
            d.passed(),
            "{name} failed its own round-trip:\n{:?}\n{:?}",
            d.structural,
            d.cells
        );

        // The canonical text itself must be byte-stable.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            reread.to_json().to_pretty_string(),
            "{name}: reserialization changed bytes"
        );

        // And the CSV projection must agree with the row count.
        let (headers, rows) = built.csv();
        assert_eq!(headers.len(), built.columns.len());
        assert_eq!(rows.len(), built.rows.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn builders_reject_unknown_names() {
    let ctx = test_ctx();
    assert!(artifacts::build(&ctx, "fig99_imaginary").is_none());
}

#[test]
fn committed_goldens_parse_and_declare_the_schema() {
    // The snapshots under results/golden/ are part of the repository;
    // every one must parse as a cubie-golden/v1 artifact with rows.
    let dir = std::path::Path::new("results/golden");
    let mut seen = 0;
    for name in artifacts::GOLDEN_ARTIFACTS {
        let path = dir.join(format!("{name}.json"));
        let a = Artifact::read(&path).unwrap_or_else(|e| panic!("committed golden {name}: {e}"));
        assert_eq!(a.name, *name);
        assert!(!a.rows.is_empty());
        seen += 1;
    }
    assert_eq!(seen, artifacts::GOLDEN_ARTIFACTS.len());
    // The smoke baseline is committed alongside them.
    let smoke = std::fs::read_to_string(dir.join("BENCH_sweep.json")).unwrap();
    let doc = Json::parse(&smoke).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("cubie-bench-smoke/v2")
    );
}
