//! End-to-end guarantees of `cubied`, the sweep-as-a-service daemon:
//! concurrent identical requests deduplicate to a single execution, a
//! daemon restart serves a pure content-addressed store hit that is
//! bit-identical to the original computation, and a version-skewed
//! store entry is invalidated and recomputed rather than served.
//!
//! Each test runs its own daemon on a private socket + store under a
//! unique temp directory, and reads the daemon's per-process `stats`
//! counters (not the global obs counters, which other tests share).

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};

use cubie::golden::Json;
use cubie::serve::{client_request, Daemon, ServeConfig, SweepSpec};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cubied_it_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn cfg_in(dir: &Path, exec_delay_ms: u64) -> ServeConfig {
    ServeConfig {
        socket: dir.join("cubied.sock"),
        store_dir: dir.join("store"),
        max_jobs: 1,
        heavy_slots: 1,
        queue_limit: 16,
        exec_delay_ms,
    }
}

/// The cheapest single-cell request: scan, case 2, TC on H200 at the
/// deep-test reduced scales.
fn sweep_request() -> Json {
    SweepSpec {
        filters: ["workload=scan", "case=2", "device=h200", "variant=tc"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        jobs: Some(1),
        sparse_scale: Some(64),
        graph_scale: Some(512),
        verify: false,
    }
    .to_json("sweep")
}

fn field<'a>(resp: &'a Json, name: &str) -> &'a Json {
    resp.get(name)
        .unwrap_or_else(|| panic!("response missing `{name}`: {}", resp.to_canonical_string()))
}

fn counter(stats: &Json, name: &str) -> i128 {
    field(field(stats, "counters"), name)
        .as_int()
        .expect("counter is an integer")
}

#[test]
fn concurrent_identical_sweeps_execute_once_and_dedup() {
    let dir = scratch("dedup");
    let mut handle = Daemon::start(cfg_in(&dir, 800)).expect("daemon");
    let socket = handle.socket().to_path_buf();

    const N: usize = 4;
    let barrier = Arc::new(Barrier::new(N));
    let clients: Vec<_> = (0..N)
        .map(|_| {
            let socket = socket.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                client_request(&socket, &sweep_request()).expect("sweep response")
            })
        })
        .collect();
    let responses: Vec<Json> = clients
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    let stores: Vec<&str> = responses
        .iter()
        .map(|r| field(r, "store").as_str().expect("store is a string"))
        .collect();
    assert_eq!(
        stores.iter().filter(|s| **s == "miss").count(),
        1,
        "exactly one request executes, saw {stores:?}"
    );
    assert_eq!(
        stores.iter().filter(|s| **s == "dedup").count(),
        N - 1,
        "the rest join the in-flight execution, saw {stores:?}"
    );
    let payloads: Vec<String> = responses
        .iter()
        .map(|r| field(r, "artifact").to_canonical_string())
        .collect();
    assert!(
        payloads.iter().all(|p| *p == payloads[0]),
        "every deduplicated client must receive the identical payload"
    );

    let stats = client_request(&socket, &cubie::serve::proto::simple_request("stats"))
        .expect("stats response");
    assert_eq!(counter(&stats, "exec"), 1, "one execution for {N} clients");
    assert_eq!(counter(&stats, "dedup"), (N - 1) as i128);
    handle.shutdown();
}

#[test]
fn restart_serves_a_pure_store_hit_bit_identically() {
    let dir = scratch("restart");

    let mut first = Daemon::start(cfg_in(&dir, 0)).expect("first daemon");
    let socket = first.socket().to_path_buf();
    let cold = client_request(&socket, &sweep_request()).expect("cold sweep");
    assert_eq!(field(&cold, "store").as_str(), Some("miss"));
    first.shutdown();

    // A fresh daemon process state over the same store directory: the
    // result must come back as a pure store hit, with zero executions.
    let mut second = Daemon::start(cfg_in(&dir, 0)).expect("second daemon");
    let warm = client_request(&socket, &sweep_request()).expect("warm sweep");
    assert_eq!(field(&warm, "store").as_str(), Some("hit"));

    let stats = client_request(&socket, &cubie::serve::proto::simple_request("stats"))
        .expect("stats response");
    assert_eq!(counter(&stats, "exec"), 0, "a restart hit must not execute");
    assert_eq!(counter(&stats, "hit"), 1);
    assert_eq!(counter(&stats, "miss"), 0);
    second.shutdown();

    // Bit-identical through the canonical writer, and clean through the
    // golden differ — the store's validation oracle.
    assert_eq!(
        field(&cold, "artifact").to_canonical_string(),
        field(&warm, "artifact").to_canonical_string(),
        "restart hit diverged from the original computation"
    );
    let a = cubie::golden::Artifact::from_json(field(&cold, "artifact")).expect("cold artifact");
    let b = cubie::golden::Artifact::from_json(field(&warm, "artifact")).expect("warm artifact");
    cubie::golden::verify_bit_identical(&a, &b).expect("differ agrees the hit is bit-identical");
}

#[test]
fn version_skewed_store_entry_is_invalidated_and_recomputed() {
    let dir = scratch("skew");
    let mut handle = Daemon::start(cfg_in(&dir, 0)).expect("daemon");
    let socket = handle.socket().to_path_buf();

    let cold = client_request(&socket, &sweep_request()).expect("cold sweep");
    assert_eq!(field(&cold, "store").as_str(), Some("miss"));

    // Doctor the stored entry into one written by an older golden
    // schema. The daemon must treat it as version skew on the next
    // lookup: invalidate, recompute, re-store.
    let store_dir = dir.join("store");
    let entries: Vec<_> = std::fs::read_dir(&store_dir)
        .expect("store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(entries.len(), 1, "one sweep stored exactly one entry");
    let text = std::fs::read_to_string(&entries[0]).expect("read entry");
    let skewed = text.replace("golden=cubie-golden/v1", "golden=cubie-golden/v0");
    assert_ne!(
        text, skewed,
        "entry key must carry the golden schema version"
    );
    std::fs::write(&entries[0], skewed).expect("write skewed entry");

    let redo = client_request(&socket, &sweep_request()).expect("post-skew sweep");
    assert_eq!(
        field(&redo, "store").as_str(),
        Some("miss"),
        "a skewed entry must be recomputed, not served"
    );
    assert_eq!(
        field(&cold, "artifact").to_canonical_string(),
        field(&redo, "artifact").to_canonical_string(),
        "recomputation must reproduce the original payload"
    );

    let stats = client_request(&socket, &cubie::serve::proto::simple_request("stats"))
        .expect("stats response");
    assert_eq!(counter(&stats, "invalidated"), 1);
    assert_eq!(counter(&stats, "exec"), 2);

    // The re-stored entry is valid again: the next lookup is a hit.
    let warm = client_request(&socket, &sweep_request()).expect("warm sweep");
    assert_eq!(field(&warm, "store").as_str(), Some("hit"));
    handle.shutdown();
}
