//! Cross-path SIMD differential suite: every compiled-and-supported
//! `cubie_core::simd` path must produce **bit-identical** outputs to the
//! scalar reference, for random shapes (aligned, ragged, empty-row CSR,
//! single-element stencil rows) and for every precision.
//!
//! Two tiers:
//!
//! 1. property tests drive the three vectorized primitives directly
//!    through their `_on(path, …)` entry points, comparing every
//!    supported path against [`SimdPath::Scalar`] in-process;
//! 2. a subprocess test re-runs a kernel-level digest (SpMV and stencil
//!    baselines in FP64, tiled MMAs in FP64/FP16/BF16/TF32) under each
//!    forced `CUBIE_SIMD` value — the dispatch decision is a per-process
//!    `OnceLock`, so forcing requires a fresh process — asserting the
//!    digests agree *and* that the dispatch log line names the forced
//!    path (a silent scalar fallback fails the test, not just CI).
//!
//! Regression seeds live in `proptest-regressions/simd_differential.txt`
//! and replay before the random cases.

use cubie::core::mma::{mma_tiled_f64, mma_tiled_mixed};
use cubie::core::simd::{self, SimdPath, StarTap};
use cubie::core::{LcgF64, MmaGen, OpCounters, Precision};
use proptest::prelude::*;

/// FNV-1a over the raw bits of a float slice: one digest pinning every
/// output bit (any single-bit divergence changes it).
fn digest_f64(vals: &[f64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for v in vals {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        }
    }
    h
}

/// [`digest_f64`] for the `f32` accumulators of the mixed-precision MMAs.
fn digest_f32(vals: &[f32]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for v in vals {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Strided MMA core: random (possibly ragged) strides and offsets.
    /// Every supported path must reproduce the scalar bits of both the
    /// written 8×8 block and the untouched gap columns.
    #[test]
    fn mma_strided_core_is_bit_identical_across_paths(
        (a0, lda) in (0usize..8, 4usize..20),
        (b0, ldb) in (0usize..8, 8usize..24),
        (c0, ldc) in (0usize..8, 8usize..24),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = LcgF64::new(seed + 1);
        let a = rng.vec(a0 + 8 * lda);
        let b = rng.vec(b0 + 4 * ldb + 8);
        let c_init = rng.vec(c0 + 8 * ldc + 8);
        let run = |p: SimdPath| {
            let mut c = c_init.clone();
            simd::mma_f64_m8n8k4_strided_on(p, &a, a0, lda, &b, b0, ldb, &mut c, c0, ldc);
            c
        };
        let reference = run(SimdPath::Scalar);
        for p in simd::supported_paths() {
            let got = run(p);
            prop_assert_eq!(
                digest_f64(&got), digest_f64(&reference),
                "path {} diverged from scalar (lda {} ldb {} ldc {})",
                p.label(), lda, ldb, ldc
            );
        }
    }

    /// CSR SpMV row dot product: row lengths straddle the 32-lane block
    /// boundary (empty rows, single elements, exact multiples, ragged
    /// tails) with repeated and unordered column indices.
    #[test]
    fn spmv_rows_are_bit_identical_across_paths(
        nnz in prop_oneof![Just(0usize), Just(1), Just(31), Just(32), Just(64), 2usize..97],
        xlen in 1usize..300,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = LcgF64::new(seed + 1);
        let vals = rng.vec(nnz);
        let x = rng.vec(xlen);
        let cols: Vec<u32> = (0..nnz)
            .map(|i| ((i as u64 * 2654435761 + seed) % xlen as u64) as u32)
            .collect();
        let reference = simd::spmv_csr_row_on(SimdPath::Scalar, &vals, &cols, &x);
        for p in simd::supported_paths() {
            let got = simd::spmv_csr_row_on(p, &vals, &cols, &x);
            prop_assert_eq!(
                got.to_bits(), reference.to_bits(),
                "path {} diverged from scalar (nnz {} xlen {})",
                p.label(), nnz, xlen
            );
        }
    }

    /// Stencil star row: row widths from a single element through
    /// several vector blocks plus tails, with one to four taps (the 2-D,
    /// radius-2 and 3-D shapes).
    #[test]
    fn star_rows_are_bit_identical_across_paths(
        n in prop_oneof![Just(1usize), Just(2), Just(7), Just(8), 1usize..70],
        ntaps in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = LcgF64::new(seed + 1);
        let center = rng.vec(n);
        let cw = rng.vec(1)[0];
        let weights = rng.vec(ntaps);
        let rows: Vec<(Vec<f64>, Vec<f64>)> =
            (0..ntaps).map(|_| (rng.vec(n), rng.vec(n))).collect();
        let run = |p: SimdPath| {
            let taps: Vec<StarTap> = rows
                .iter()
                .zip(&weights)
                .map(|((a, b), &weight)| StarTap { weight, a, b })
                .collect();
            let mut out = vec![0.0f64; n];
            simd::star_row_on(p, cw, &center, &taps, &mut out);
            out
        };
        let reference = run(SimdPath::Scalar);
        for p in simd::supported_paths() {
            let got = run(p);
            prop_assert_eq!(
                digest_f64(&got), digest_f64(&reference),
                "path {} diverged from scalar (n {} taps {})",
                p.label(), n, ntaps
            );
        }
    }
}

// ---------------------------------------------------------------------
// Kernel-level forced-path digests. `active_path()` resolves once per
// process, so each forcing runs this same test binary in a subprocess
// against the `#[ignore]`d probe below.
// ---------------------------------------------------------------------

/// Digest the kernels that route through the dispatched (not `_on`)
/// SIMD entry points, plus every mixed precision: SpMV baseline over a
/// CSR with empty/ragged/long rows, all three stencil shapes (including
/// a degenerate-width grid with no vectorizable interior), the FP64
/// tiled MMA, and FP16/BF16/TF32 tiled MMAs.
fn kernel_digest() -> u64 {
    use cubie::kernels::stencil::{self, StencilCase, StencilKind};
    use cubie::kernels::{spmv, Variant};
    use cubie::sparse::{Coo, Csr};

    let mut h: u64 = 0;
    let mut rng = LcgF64::new(20_260_808);

    // SpMV: 40×50, row r holds r % 37 nonzeros — rows 0 and 37+ are
    // empty, row 36 spans a full 32-lane block plus a tail.
    let mut coo = Coo::new(40, 50);
    for r in 0..40usize {
        for i in 0..(r % 37) {
            coo.push(r, (r * 7 + i * 11) % 50, rng.vec(1)[0]);
        }
    }
    let m = Csr::from_coo(coo);
    let x = rng.vec(50);
    let (y, _) = spmv::run(&m, &x, Variant::Baseline);
    h ^= digest_f64(&y);

    // Stencils: each shape once, plus a 3-wide radius-2 grid whose rows
    // are entirely border (the scalar column loop covers everything).
    for case in [
        StencilCase {
            kind: StencilKind::Star2D1R,
            dims: (1, 13, 17),
        },
        StencilCase {
            kind: StencilKind::Star2D2R,
            dims: (1, 11, 19),
        },
        StencilCase {
            kind: StencilKind::Star2D2R,
            dims: (1, 9, 3),
        },
        StencilCase {
            kind: StencilKind::Star3D1R,
            dims: (3, 7, 12),
        },
    ] {
        let (nz, ny, nx) = case.dims;
        let grid = rng.vec(nz * ny * nx);
        let (out, _) = stencil::run(&case, &grid, Variant::Baseline);
        h = h.rotate_left(11) ^ digest_f64(&out);
    }

    // Tiled MMAs: FP64 routes through the dispatched strided core;
    // the reduced precisions pin the mixed accumulation chains under
    // every forcing (they must not care which path is active).
    let mut ctr = OpCounters::new();
    let (mm, nn, kk) = (24, 16, 20);
    let a = rng.vec(mm * kk);
    let b = rng.vec(kk * nn);
    let mut c = vec![0.0f64; mm * nn];
    mma_tiled_f64(&a, &b, &mut c, mm, nn, kk, &mut ctr);
    h = h.rotate_left(11) ^ digest_f64(&c);
    for precision in [Precision::F16, Precision::Bf16, Precision::Tf32] {
        for gen in [MmaGen::Volta, MmaGen::Ampere] {
            let aq: Vec<f64> = a.iter().map(|&v| precision.quantize(v)).collect();
            let bq: Vec<f64> = b.iter().map(|&v| precision.quantize(v)).collect();
            let mut cq = vec![0.0f32; mm * nn];
            mma_tiled_mixed(
                precision, gen, &aq, &bq, &mut cq, mm, nn, kk, false, &mut ctr,
            );
            h = h.rotate_left(11) ^ digest_f32(&cq);
        }
    }
    h
}

#[test]
#[ignore = "forced-path probe: run in a CUBIE_SIMD subprocess by the digest test"]
fn forced_path_probe() {
    // stdout is captured by the harness unless the test fails; print the
    // digest through stderr, which also carries the dispatch log line.
    eprintln!("kernel digest: {:#018x}", kernel_digest());
    assert_eq!(simd::active_path().label(), {
        let forced = std::env::var("CUBIE_SIMD").expect("probe runs under CUBIE_SIMD");
        let parsed = SimdPath::parse(&forced).expect("probe forces a valid path");
        parsed.label()
    });
}

/// Run the probe with `CUBIE_SIMD=path`; return (digest line, stderr).
fn run_probe(path: SimdPath) -> (String, String) {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args([
            "--exact",
            "forced_path_probe",
            "--include-ignored",
            "--test-threads",
            "1",
            // Without this, libtest swallows the probe's stderr (digest
            // and dispatch lines) on success.
            "--nocapture",
        ])
        .env("CUBIE_SIMD", path.label())
        .output()
        .expect("spawn probe subprocess");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        out.status.success(),
        "probe failed under CUBIE_SIMD={}:\n{stderr}\n{}",
        path.label(),
        String::from_utf8_lossy(&out.stdout)
    );
    let digest = stderr
        .lines()
        .find(|l| l.starts_with("kernel digest: "))
        .unwrap_or_else(|| {
            panic!(
                "no digest line under CUBIE_SIMD={}:\n{stderr}",
                path.label()
            )
        })
        .to_string();
    (digest, stderr)
}

/// Every supported path, forced end-to-end through the real kernels,
/// produces the same output bits — and really ran (the dispatch log
/// line must name the forced path, so a silent fallback cannot pass).
#[test]
fn forced_paths_produce_identical_kernel_digests() {
    let mut digests = Vec::new();
    for path in simd::supported_paths() {
        let (digest, stderr) = run_probe(path);
        let announce = format!("cubie: simd path {} (forced via CUBIE_SIMD)", path.label());
        assert!(
            stderr.contains(&announce),
            "probe under CUBIE_SIMD={} never announced `{announce}`:\n{stderr}",
            path.label()
        );
        digests.push((path, digest));
    }
    let (_, reference) = &digests[0];
    for (path, digest) in &digests {
        assert_eq!(
            digest,
            reference,
            "kernel digest diverged on forced path {}",
            path.label()
        );
    }
}

/// Garbage `CUBIE_SIMD` values warn (PR 3 convention) and fall back to
/// detection instead of dying or silently going scalar.
#[test]
fn garbage_cubie_simd_warns_and_falls_back() {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args([
            "--exact",
            "forced_path_probe",
            "--include-ignored",
            "--test-threads",
            "1",
            "--nocapture",
        ])
        .env("CUBIE_SIMD", "avx1024")
        .output()
        .expect("spawn probe subprocess");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The probe itself fails (it asserts a *valid* forced path) but the
    // process must have warned and announced an auto-detected path first.
    assert!(
        stderr.contains("warning: ignoring CUBIE_SIMD=avx1024: not a valid value"),
        "missing warn-on-unparseable line:\n{stderr}"
    );
    assert!(
        stderr.contains("(auto-detected)"),
        "garbage override must fall back to detection:\n{stderr}"
    );
}
