//! Property-tested rounding semantics of the mixed-precision MMA
//! emulation, against the published tensor-core numerical models:
//!
//! * Fasi, Higham, Mikaitis, Pranesh, "Numerical behavior of NVIDIA
//!   tensor cores" (PeerJ CS, 2021) — Volta accumulates serially with
//!   round-toward-zero and flushes subnormal step results to zero,
//!   while operand products are computed exactly (no product rounding).
//! * Khattak & Mikaitis, "Accurate Models of NVIDIA Tensor Cores"
//!   (2024/25 model series) — Ampere-and-later parts compute each
//!   `k = 4` slice as a fused five-term dot product with one
//!   round-to-nearest-even and gradual underflow.
//!
//! Each published behavior is pinned twice: a hand-checkable **oracle
//! vector** (the exact bit patterns the model mandates — reproduced by
//! hand in EXPERIMENTS.md) and a **property family** generalizing it
//! over random operands. Each oracle also has a **fault-injection
//! proof**: re-running it in a subprocess with `CUBIE_MMA_PERTURB_ULP=1`
//! (a one-ulp fault in every accumulation chain) must make it fail,
//! demonstrating the oracle genuinely pins the last mantissa bit — the
//! same mechanism by which the `ext_precision_mma` golden gate trips.

use cubie::core::frag::{pack_a_m16n8k16, pack_b_m16n8k16, unpack_a_m16n8k16, unpack_b_m16n8k16};
use cubie::core::mma::{
    cc_mma_f16_m16n8k16, cc_mma_tf32_m16n8k8, mma_bf16_m16n8k16, mma_f16_m16n8k16, mma_tf32_m16n8k8,
};
use cubie::core::scalar::{ftz_f32, round_to_format, Bf16, MmaGen, Precision, Round, Tf32, F16};
use cubie::core::OpCounters;
use proptest::prelude::*;

/// One f16 `m16n8k16` MMA into a zero (or given) accumulator, returning
/// the 16×8 output.
fn f16_mma(a: &[F16; 256], b: &[F16; 128], c0: &[f32; 128], gen: MmaGen) -> [f32; 128] {
    let mut c = *c0;
    let mut ctr = OpCounters::new();
    mma_f16_m16n8k16(a, b, &mut c, gen, &mut ctr);
    assert_eq!(ctr.mma_f16, 1);
    c
}

/// Operand matrices that put `row` of values in `A` row 0, `B` column 0
/// at depths `k = 0..row.len()`, zero elsewhere: output element (0,0)
/// accumulates exactly those products, every other element only zeros.
fn probe_f16(av: &[f64], bv: &[f64]) -> ([F16; 256], [F16; 128]) {
    assert_eq!(av.len(), bv.len());
    let mut a = [F16::from_f64_rn(0.0); 256];
    let mut b = [F16::from_f64_rn(0.0); 128];
    for (k, (&x, &y)) in av.iter().zip(bv).enumerate() {
        a[k] = F16::from_f64_rn(x); // A[0][k], row-major 16×16
        b[k * 8] = F16::from_f64_rn(y); // B[k][0], row-major 16×8
    }
    (a, b)
}

// ---------------------------------------------------------------------
// Oracle vectors (one per published behavior).
// ---------------------------------------------------------------------

/// Behavior 1 (Fasi et al. §4): Volta rounds toward zero after every
/// serial addition; Ampere rounds the exact slice sum to nearest once.
/// Four products of `2^-25` under `c = 1.0`: every Volta step truncates
/// back to 1.0, while the fused sum `1 + 2^-23` is exactly
/// representable.
fn oracle_rz_vs_rn() {
    let p = (-12f64).exp2() * (-13f64).exp2(); // 2^-25, exact in f16·f16
    assert_eq!(p, (-25f64).exp2());
    let (a, b) = probe_f16(&[(-12f64).exp2(); 4], &[(-13f64).exp2(); 4]);
    let c0 = {
        let mut c = [0.0f32; 128];
        c[0] = 1.0;
        c
    };
    let volta = f16_mma(&a, &b, &c0, MmaGen::Volta)[0];
    let ampere = f16_mma(&a, &b, &c0, MmaGen::Ampere)[0];
    assert_eq!(volta.to_bits(), 1.0f32.to_bits(), "Volta RZ must truncate");
    assert_eq!(
        ampere.to_bits(),
        0x3F80_0001, // 1 + 2^-23
        "Ampere fused RN must keep the exact slice sum"
    );
}

/// Behavior 2 (Fasi et al. §5): Volta flushes subnormal accumulator
/// values to zero; Ampere preserves gradual underflow. One bf16 product
/// `2^-70 · 2^-70 = 2^-140` (an f32 subnormal) under `c = 0`.
fn oracle_ftz_vs_gradual_underflow() {
    let mut a = [Bf16::from_f64_rn(0.0); 256];
    let mut b = [Bf16::from_f64_rn(0.0); 128];
    a[0] = Bf16::from_f64_rn((-70f64).exp2());
    b[0] = Bf16::from_f64_rn((-70f64).exp2());
    let run = |gen| {
        let mut c = [0.0f32; 128];
        let mut ctr = OpCounters::new();
        mma_bf16_m16n8k16(&a, &b, &mut c, gen, &mut ctr);
        c[0]
    };
    let volta = run(MmaGen::Volta);
    let ampere = run(MmaGen::Ampere);
    assert_eq!(volta.to_bits(), 0.0f32.to_bits(), "Volta must flush 2^-140");
    assert!(ampere.is_subnormal(), "Ampere must keep the subnormal");
    assert_eq!(
        ampere.to_bits(),
        1u32 << 9, // 2^-140 = 2^-149 · 2^9
        "Ampere gradual underflow must be exact"
    );
}

/// Behavior 3 (Khattak & Mikaitis §3): the fused dot holds all five
/// terms at full precision before its single rounding, so a large
/// accumulator does not swallow small products the way a serial f32
/// chain does. `c = 2^24` plus four products of 1.0.
fn oracle_fused_vs_serial_wide_accumulator() {
    let (a, b) = probe_f16(&[1.0; 4], &[1.0; 4]);
    let c0 = {
        let mut c = [0.0f32; 128];
        c[0] = 24f32.exp2();
        c
    };
    let volta = f16_mma(&a, &b, &c0, MmaGen::Volta)[0];
    let ampere = f16_mma(&a, &b, &c0, MmaGen::Ampere)[0];
    assert_eq!(
        volta.to_bits(),
        24f32.exp2().to_bits(),
        "Volta serial RZ must lose each +1 below the 2^24 ulp"
    );
    assert_eq!(
        ampere.to_bits(),
        (24f32.exp2() + 4.0).to_bits(),
        "Ampere fused sum must land 2^24 + 4 exactly"
    );
}

/// Behavior 4 (Fasi et al. §3): operand products are exact — computed
/// at full precision, not rounded to the operand format. `(1+2^-10)²`
/// keeps its `2^-20` bit on both generations; hardware that rounded the
/// product to f16 would return `1 + 2^-9`.
fn oracle_products_are_exact() {
    let x = 1.0 + (-10f64).exp2(); // exactly representable in f16
    let (a, b) = probe_f16(&[x], &[x]);
    let expected = (1.0 + (-9f64).exp2() + (-20f64).exp2()) as f32; // exact in f32
    let c0 = [0.0f32; 128];
    for gen in [MmaGen::Volta, MmaGen::Ampere] {
        let got = f16_mma(&a, &b, &c0, gen)[0];
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "{gen:?}: product must keep the 2^-20 bit"
        );
    }
}

/// TF32 quantization oracle: ties round to even at the 10-bit operand
/// mantissa, so `1 + 2^-11` enters the unit as exactly 1.0 (while bf16,
/// with 7 mantissa bits, already dropped `1 + 2^-8` the same way).
fn oracle_tf32_quantization() {
    assert_eq!(Tf32::from_f64_rn(1.0 + (-11f64).exp2()).to_f64(), 1.0);
    assert_eq!(Precision::Tf32.quantize(1.0 + (-11f64).exp2()), 1.0);
    assert_eq!(Precision::Bf16.quantize(1.0 + (-8f64).exp2()), 1.0);
    // One step above the tie rounds up to the next representable value.
    let up = Precision::Tf32.quantize(1.0 + (-11f64).exp2() + (-30f64).exp2());
    assert_eq!(up, 1.0 + (-10f64).exp2());
    // And the m16n8k8 MMA sees the quantized operand: 1·(1+2^-11) == 1.
    let mut a = [Tf32::from_f64_rn(0.0); 128];
    let mut b = [Tf32::from_f64_rn(0.0); 64];
    a[0] = Tf32::from_f64_rn(1.0);
    b[0] = Tf32::from_f64_rn(1.0 + (-11f64).exp2());
    let mut c = [0.0f32; 128];
    let mut ctr = OpCounters::new();
    mma_tf32_m16n8k8(&a, &b, &mut c, MmaGen::Ampere, &mut ctr);
    assert_eq!(c[0].to_bits(), 1.0f32.to_bits());
}

#[test]
fn oracle_vectors_hold_on_clean_hardware_model() {
    oracle_rz_vs_rn();
    oracle_ftz_vs_gradual_underflow();
    oracle_fused_vs_serial_wide_accumulator();
    oracle_products_are_exact();
    oracle_tf32_quantization();
}

// ---------------------------------------------------------------------
// Fault-injection proofs: each oracle, re-run under a one-ulp fault,
// must FAIL — the bit patterns above genuinely pin the last mantissa
// bit of the accumulation chain. `CUBIE_MMA_PERTURB_ULP` is read once
// per process, so the perturbed run happens in a subprocess (this same
// test binary, re-executed against the `#[ignore]`d probe).
// ---------------------------------------------------------------------

#[test]
#[ignore = "perturbation probe: run by the fault-injection proofs"]
fn perturb_probe_rz_vs_rn() {
    oracle_rz_vs_rn();
}

#[test]
#[ignore = "perturbation probe: run by the fault-injection proofs"]
fn perturb_probe_ftz() {
    oracle_ftz_vs_gradual_underflow();
}

#[test]
#[ignore = "perturbation probe: run by the fault-injection proofs"]
fn perturb_probe_fused_accumulator() {
    oracle_fused_vs_serial_wide_accumulator();
}

#[test]
#[ignore = "perturbation probe: run by the fault-injection proofs"]
fn perturb_probe_exact_products() {
    oracle_products_are_exact();
}

/// Re-run one `#[ignore]`d probe of this binary in a subprocess: it must
/// pass with the fault switch off and fail with it on.
fn assert_probe_trips_under_ulp_fault(probe: &str) {
    let exe = std::env::current_exe().expect("test binary path");
    let run = |perturb: &str| {
        std::process::Command::new(&exe)
            .args(["--exact", probe, "--include-ignored", "--test-threads", "1"])
            .env("CUBIE_MMA_PERTURB_ULP", perturb)
            .output()
            .expect("spawn test subprocess")
    };
    let clean = run("0");
    assert!(
        clean.status.success(),
        "{probe} must pass without fault injection:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );
    let faulted = run("1");
    assert!(
        !faulted.status.success(),
        "{probe} did NOT trip under a one-ulp fault — the oracle does not \
         pin the accumulation chain bits:\n{}",
        String::from_utf8_lossy(&faulted.stdout)
    );
}

#[test]
fn rz_vs_rn_oracle_trips_under_ulp_fault() {
    assert_probe_trips_under_ulp_fault("perturb_probe_rz_vs_rn");
}

#[test]
fn ftz_oracle_trips_under_ulp_fault() {
    assert_probe_trips_under_ulp_fault("perturb_probe_ftz");
}

#[test]
fn fused_accumulator_oracle_trips_under_ulp_fault() {
    assert_probe_trips_under_ulp_fault("perturb_probe_fused_accumulator");
}

#[test]
fn exact_products_oracle_trips_under_ulp_fault() {
    assert_probe_trips_under_ulp_fault("perturb_probe_exact_products");
}

// ---------------------------------------------------------------------
// Property families generalizing the oracles over random operands.
// ---------------------------------------------------------------------

/// Random finite f16 value spanning normals, subnormals and exact zeros.
fn f16_val() -> impl Strategy<Value = F16> {
    prop_oneof![
        (-8.0..8.0f64).prop_map(F16::from_f64_rn),
        (-1e-4..1e-4f64).prop_map(F16::from_f64_rn),
        Just(F16::from_f64_rn(0.0)),
        Just(F16::from_f64_rn(1.0)),
    ]
}

fn f16_tile() -> impl Strategy<Value = ([F16; 256], [F16; 128])> {
    (
        proptest::collection::vec(f16_val(), 256),
        proptest::collection::vec(f16_val(), 128),
    )
        .prop_map(|(a, b)| {
            let mut aa = [F16::from_f64_rn(0.0); 256];
            let mut bb = [F16::from_f64_rn(0.0); 128];
            aa.copy_from_slice(&a);
            bb.copy_from_slice(&b);
            (aa, bb)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observation 7 extended to the mixed-precision units: the CUDA-core
    /// replacement of every reduced-precision MMA is bit-identical to the
    /// tensor-core emulation, on both generations, for ANY operands.
    #[test]
    fn mixed_cc_replacement_is_bit_identical(
        (a, b) in f16_tile(),
        volta in any::<bool>(),
    ) {
        let gen = if volta { MmaGen::Volta } else { MmaGen::Ampere };
        let mut c_tc = [0.0f32; 128];
        let mut c_cc = [0.0f32; 128];
        let mut k1 = OpCounters::new();
        let mut k2 = OpCounters::new();
        mma_f16_m16n8k16(&a, &b, &mut c_tc, gen, &mut k1);
        cc_mma_f16_m16n8k16(&a, &b, &mut c_cc, gen, &mut k2);
        for (x, y) in c_tc.iter().zip(&c_cc) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(k1.tc_f16_flops(), k2.cc_f32_flops());

        // And for the tf32 m16n8k8 shape, reusing the generated bits.
        let mut a8 = [Tf32::from_f64_rn(0.0); 128];
        let mut b8 = [Tf32::from_f64_rn(0.0); 64];
        for (dst, src) in a8.iter_mut().zip(a.iter()) {
            *dst = Tf32::from_f64_rn(src.to_f64());
        }
        for (dst, src) in b8.iter_mut().zip(b.iter()) {
            *dst = Tf32::from_f64_rn(src.to_f64());
        }
        let mut t_tc = [0.0f32; 128];
        let mut t_cc = [0.0f32; 128];
        mma_tf32_m16n8k8(&a8, &b8, &mut t_tc, gen, &mut k1);
        cc_mma_tf32_m16n8k8(&a8, &b8, &mut t_cc, gen, &mut k2);
        for (x, y) in t_tc.iter().zip(&t_cc) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Behavior 1 generalized: truncation underestimates. With all
    /// operands and the accumulator non-negative, every Volta RZ step
    /// rounds down (and FTZ only moves toward zero), so Volta can never
    /// exceed Ampere's round-to-nearest of the exact sum.
    #[test]
    fn volta_truncation_never_overestimates_ampere(
        (a, b) in f16_tile(),
    ) {
        let abs = |v: F16| F16::from_f64_rn(v.to_f64().abs());
        let a: [F16; 256] = a.map(abs);
        let b: [F16; 128] = b.map(abs);
        let c0 = [0.0f32; 128];
        let volta = f16_mma(&a, &b, &c0, MmaGen::Volta);
        let ampere = f16_mma(&a, &b, &c0, MmaGen::Ampere);
        for (i, (v, r)) in volta.iter().zip(&ampere).enumerate() {
            prop_assert!(
                v <= r,
                "element {i}: Volta {v} ({:#010x}) > Ampere {r} ({:#010x})",
                v.to_bits(), r.to_bits()
            );
        }
    }

    /// Behavior 2 generalized: any single power-of-two product landing in
    /// the f32 subnormal range is flushed by Volta and kept exactly by
    /// Ampere (bf16 reaches these exponents; f16 cannot).
    #[test]
    fn volta_flushes_any_subnormal_product_ampere_keeps_it(
        (e1, e2) in (-90i32..-40).prop_flat_map(|e1| {
            // Pick e2 so the product exponent lands in the f32
            // subnormal band [-148, -127].
            ((-148 - e1)..(-126 - e1)).prop_map(move |e2| (e1, e2))
        }),
        lane in 0usize..8,
    ) {
        let mut a = [Bf16::from_f64_rn(0.0); 256];
        let mut b = [Bf16::from_f64_rn(0.0); 128];
        // Product lands at output element (0, lane).
        a[0] = Bf16::from_f64_rn((e1 as f64).exp2());
        b[lane] = Bf16::from_f64_rn((e2 as f64).exp2());
        let run = |gen| {
            let mut c = [0.0f32; 128];
            let mut ctr = OpCounters::new();
            mma_bf16_m16n8k16(&a, &b, &mut c, gen, &mut ctr);
            c[lane]
        };
        let volta = run(MmaGen::Volta);
        let ampere = run(MmaGen::Ampere);
        prop_assert_eq!(volta.to_bits(), 0u32);
        prop_assert!(ampere.is_subnormal());
        prop_assert_eq!(ampere as f64, ((e1 + e2) as f64).exp2());
    }

    /// Behavior 4 generalized: a lone product rounds per the generation's
    /// mode — `RN(a·b)` on Ampere, `FTZ(RZ(a·b))` on Volta — computed
    /// here against independent IEEE-754 round-to-format oracles (the
    /// product of two f16 values is always exact in f64).
    #[test]
    fn single_products_round_per_generation(x in f16_val(), y in f16_val()) {
        let prod = x.to_f64() * y.to_f64();
        let (a, b) = probe_f16(&[x.to_f64()], &[y.to_f64()]);
        let c0 = [0.0f32; 128];
        let ampere = f16_mma(&a, &b, &c0, MmaGen::Ampere)[0];
        let volta = f16_mma(&a, &b, &c0, MmaGen::Volta)[0];
        if prod == 0.0 {
            // A ±0 product accumulates by IEEE zero-sign addition rules
            // (+0 + -0 = +0), not by the sign of the product itself.
            prop_assert_eq!(ampere, 0.0);
            prop_assert_eq!(volta, 0.0);
        } else {
            // f64 → f32 casts round to nearest-even and the product is
            // exact, so the cast IS the correctly-rounded oracle.
            prop_assert_eq!(ampere.to_bits(), (prod as f32).to_bits());
            let rz = round_to_format(prod, 24, -126, 127, Round::Zero) as f32;
            prop_assert_eq!(volta.to_bits(), ftz_f32(rz).to_bits());
        }
    }

    /// Quantization properties shared by all three operand formats:
    /// idempotent, sign-symmetric, monotone, and exact on representable
    /// values (here: the format's own outputs).
    #[test]
    fn quantization_is_idempotent_and_monotone(
        v in prop_oneof![-60000.0..60000.0f64, -1.0..1.0f64, -1e-6..1e-6f64],
        w in prop_oneof![-60000.0..60000.0f64, -1.0..1.0f64],
    ) {
        for p in [Precision::F16, Precision::Bf16, Precision::Tf32] {
            let q = p.quantize(v);
            prop_assert_eq!(p.quantize(q), q, "idempotence for {:?}", p);
            prop_assert_eq!(p.quantize(-v), -q, "sign symmetry for {:?}", p);
            let (lo, hi) = if v <= w { (v, w) } else { (w, v) };
            prop_assert!(
                p.quantize(lo) <= p.quantize(hi),
                "monotonicity for {:?}: q({lo}) > q({hi})", p
            );
        }
    }

    /// `m16n8k16` operand fragments round-trip losslessly through the
    /// PTX lane layout for arbitrary bit patterns (every NaN payload and
    /// subnormal included — the pack is a pure permutation).
    #[test]
    fn mixed_fragments_roundtrip_all_bit_patterns(
        bits_a in proptest::collection::vec((0u32..0x1_0000).prop_map(|v| v as u16), 256),
        bits_b in proptest::collection::vec((0u32..0x1_0000).prop_map(|v| v as u16), 128),
    ) {
        let mut a = [0u16; 256];
        let mut b = [0u16; 128];
        a.copy_from_slice(&bits_a);
        b.copy_from_slice(&bits_b);
        prop_assert_eq!(unpack_a_m16n8k16(&pack_a_m16n8k16(&a)), a);
        prop_assert_eq!(unpack_b_m16n8k16(&pack_b_m16n8k16(&b)), b);
    }
}
