//! Integration tests asserting the paper's headline result *shapes*:
//! which variant wins per workload/quadrant/device and by roughly what
//! factor (Figures 3–6 and the nine observations). Absolute numbers are
//! not asserted — the substrate is a model, not the authors' testbed.

use std::sync::Arc;

use cubie::bench::SweepCache;
use cubie::device::{all_devices, DeviceSpec};
use cubie::kernels::{Variant, Workload};
use cubie::sim::{time_workload, WorkloadTrace};

/// Sparse matrices run at the paper's full published sizes; graphs are
/// generated at 1/16 scale (the full 90–234M-arc graphs need several GB)
/// — the degree-distribution classes, and hence the shapes, persist.
const SPARSE_SCALE: usize = 1;
const GRAPH_SCALE: usize = 16;

/// Cached trace of (workload, case index, variant), via the shared sweep
/// cache: each workload's five cases and all variant traces are prepared
/// once per test process, no matter which test asks first.
fn trace_of(w: Workload, idx: usize, v: Variant) -> Option<Arc<WorkloadTrace>> {
    let cache = SweepCache::global();
    cache.ensure(w, SPARSE_SCALE, GRAPH_SCALE);
    cache.trace(w, idx, v, SPARSE_SCALE, GRAPH_SCALE)
}

/// Geomean speedup of `a` over `b` across the five Table 2 cases.
fn geomean_speedup(w: Workload, dev: &DeviceSpec, a: Variant, b: Variant) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for idx in 0..5 {
        let (Some(ta), Some(tb)) = (trace_of(w, idx, a), trace_of(w, idx, b)) else {
            continue;
        };
        let sa = time_workload(dev, &ta).total_s;
        let sb = time_workload(dev, &tb).total_s;
        log_sum += (sb / sa).ln();
        count += 1;
    }
    assert!(count > 0, "no comparable cases for {w:?}");
    (log_sum / count as f64).exp()
}

fn print_speedup(w: Workload, dev: &DeviceSpec, a: Variant, b: Variant) -> f64 {
    let s = geomean_speedup(w, dev, a, b);
    println!(
        "{:>9} {:28} {a} vs {b}: {s:.2}x",
        format!("{w:?}"),
        dev.name
    );
    s
}

#[test]
fn fig4_tc_beats_baseline_where_paper_says() {
    for dev in all_devices() {
        for w in [
            Workload::Gemm,
            Workload::Stencil,
            Workload::Scan,
            Workload::Reduction,
            Workload::Bfs,
            Workload::Gemv,
            Workload::Spmv,
            Workload::Spgemm,
        ] {
            let s = print_speedup(w, &dev, Variant::Tc, Variant::Baseline);
            assert!(
                s > 1.05,
                "{w:?} on {}: TC speedup {s:.2} should exceed 1 (paper Fig. 4)",
                dev.name
            );
            assert!(
                s < 10.0,
                "{w:?} on {}: TC speedup {s:.2} implausibly large",
                dev.name
            );
        }
    }
}

#[test]
fn fig4_fft_tc_loses_to_cufft() {
    for dev in all_devices() {
        let s = print_speedup(Workload::Fft, &dev, Variant::Tc, Variant::Baseline);
        assert!(
            s < 1.0,
            "FFT TC should underperform the cuFFT-style baseline (paper §6.1); got {s:.2}"
        );
        assert!(s > 0.3, "FFT TC loss {s:.2} too extreme");
    }
}

#[test]
fn fig5_cc_is_slower_than_tc() {
    for dev in all_devices() {
        for w in Workload::ALL {
            let s = geomean_speedup(w, &dev, Variant::Cc, Variant::Tc);
            println!("{:>9} {:28} CC vs TC: {s:.2}x", format!("{w:?}"), dev.name);
            assert!(
                s <= 1.02,
                "{w:?} on {}: CC should not beat TC (paper Fig. 5); got {s:.2}",
                dev.name
            );
            assert!(
                s > 0.08,
                "{w:?} on {}: CC slowdown {s:.2} implausible",
                dev.name
            );
        }
    }
}

#[test]
fn fig5_gemm_cc_tracks_the_peak_ratio() {
    for dev in all_devices() {
        let s = geomean_speedup(Workload::Gemm, &dev, Variant::Cc, Variant::Tc);
        let expected = 1.0 / dev.tc_cc_ratio();
        assert!(
            (s - expected).abs() < 0.2,
            "GEMM CC/TC on {}: {s:.2} vs peak ratio {expected:.2}",
            dev.name
        );
    }
}

#[test]
fn fig6_spmv_cce_recovers_redundancy() {
    for dev in all_devices() {
        let s = geomean_speedup(Workload::Spmv, &dev, Variant::CcE, Variant::Tc);
        println!("SpMV CC-E vs TC on {}: {s:.2}x", dev.name);
        assert!(
            (0.95..=1.4).contains(&s),
            "SpMV CC-E should be around 1.0–1.2× of TC (paper Fig. 6); got {s:.2} on {}",
            dev.name
        );
    }
}

#[test]
fn fig6_scan_reduction_cce_underperforms_tc() {
    for dev in all_devices() {
        for w in [Workload::Scan, Workload::Reduction] {
            let s = geomean_speedup(w, &dev, Variant::CcE, Variant::Tc);
            println!("{w:?} CC-E vs TC on {}: {s:.2}x", dev.name);
            assert!(
                s < 0.9,
                "{w:?} CC-E should clearly underperform TC (paper Fig. 6); got {s:.2} on {}",
                dev.name
            );
        }
    }
}

#[test]
fn quadrant_iv_benefits_from_b200_bandwidth() {
    // B200 has lower FP64 TC peak than H200 but double the bandwidth:
    // memory-bound Quadrant IV TC kernels must not regress (paper §6.1).
    let devs = all_devices();
    let (h200, b200) = (&devs[1], &devs[2]);
    for w in [Workload::Spmv, Workload::Bfs, Workload::Spgemm] {
        let mut h_total = 0.0;
        let mut b_total = 0.0;
        for idx in 0..5 {
            let t = trace_of(w, idx, Variant::Tc).unwrap();
            h_total += time_workload(h200, &t).total_s;
            b_total += time_workload(b200, &t).total_s;
        }
        println!("{w:?}: H200 {h_total:.3e}s vs B200 {b_total:.3e}s");
        assert!(
            b_total < h_total * 1.05,
            "{w:?}: B200 ({b_total:.3e}s) should be competitive with H200 ({h_total:.3e}s)"
        );
    }
}
