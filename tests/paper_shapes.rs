//! Integration tests asserting the paper's headline result *shapes*:
//! which variant wins per workload/quadrant/device and by roughly what
//! factor (Figures 3–6 and the nine observations). Absolute numbers are
//! not asserted — the substrate is a model, not the authors' testbed.
//!
//! The regular tests run at the pinned reduced golden scales (sparse
//! matrices ÷64, graphs ÷512) so the suite stays inside the tier-1 time
//! budget; the degree-distribution classes — and hence the shapes —
//! persist across scale. The published full sizes are still covered by
//! [`full_scale_paper_shapes`], an `#[ignore]`d test that only runs when
//! `CUBIE_FULL_SCALE_TESTS=1` is set:
//!
//! ```text
//! CUBIE_FULL_SCALE_TESTS=1 cargo test --release --test paper_shapes -- --ignored
//! ```

use std::sync::Arc;

use cubie::bench::SweepCache;
use cubie::device::{all_devices, DeviceSpec};
use cubie::kernels::{Variant, Workload};
use cubie::sim::{time_workload, WorkloadTrace};

/// (sparse_scale, graph_scale) of the regular tier-1 runs — the same
/// pinned reduction the golden artifacts use.
const REDUCED: (usize, usize) = (64, 512);

/// The paper's published sizes: sparse matrices at full scale, graphs at
/// 1/16 (the full 90–234M-arc graphs need several GB).
const FULL: (usize, usize) = (1, 16);

/// Cached trace of (workload, case index, variant), via the shared sweep
/// cache: each workload's five cases and all variant traces are prepared
/// once per test process, no matter which test asks first.
fn trace_of(
    w: Workload,
    idx: usize,
    v: Variant,
    (ss, gs): (usize, usize),
) -> Option<Arc<WorkloadTrace>> {
    let cache = SweepCache::global();
    cache.ensure(w, ss, gs);
    cache.trace(w, idx, v, ss, gs)
}

/// Geomean speedup of `a` over `b` across the five Table 2 cases.
fn geomean_speedup(
    w: Workload,
    dev: &DeviceSpec,
    a: Variant,
    b: Variant,
    scales: (usize, usize),
) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for idx in 0..5 {
        let (Some(ta), Some(tb)) = (trace_of(w, idx, a, scales), trace_of(w, idx, b, scales))
        else {
            continue;
        };
        let sa = time_workload(dev, &ta).total_s;
        let sb = time_workload(dev, &tb).total_s;
        log_sum += (sb / sa).ln();
        count += 1;
    }
    assert!(count > 0, "no comparable cases for {w:?}");
    (log_sum / count as f64).exp()
}

fn print_speedup(
    w: Workload,
    dev: &DeviceSpec,
    a: Variant,
    b: Variant,
    scales: (usize, usize),
) -> f64 {
    let s = geomean_speedup(w, dev, a, b, scales);
    println!(
        "{:>9} {:28} {a} vs {b}: {s:.2}x",
        format!("{w:?}"),
        dev.name
    );
    s
}

fn assert_fig4_tc_beats_baseline(workloads: &[Workload], scales: (usize, usize)) {
    for dev in all_devices() {
        for &w in workloads {
            let s = print_speedup(w, &dev, Variant::Tc, Variant::Baseline, scales);
            assert!(
                s > 1.05,
                "{w:?} on {}: TC speedup {s:.2} should exceed 1 (paper Fig. 4)",
                dev.name
            );
            assert!(
                s < 10.0,
                "{w:?} on {}: TC speedup {s:.2} implausibly large",
                dev.name
            );
        }
    }
}

fn assert_fig4_fft_tc_loses(scales: (usize, usize)) {
    for dev in all_devices() {
        let s = print_speedup(Workload::Fft, &dev, Variant::Tc, Variant::Baseline, scales);
        assert!(
            s < 1.0,
            "FFT TC should underperform the cuFFT-style baseline (paper §6.1); got {s:.2}"
        );
        assert!(s > 0.3, "FFT TC loss {s:.2} too extreme");
    }
}

fn assert_fig5_cc_is_slower(scales: (usize, usize)) {
    for dev in all_devices() {
        for w in Workload::ALL {
            let s = geomean_speedup(w, &dev, Variant::Cc, Variant::Tc, scales);
            println!("{:>9} {:28} CC vs TC: {s:.2}x", format!("{w:?}"), dev.name);
            assert!(
                s <= 1.02,
                "{w:?} on {}: CC should not beat TC (paper Fig. 5); got {s:.2}",
                dev.name
            );
            assert!(
                s > 0.08,
                "{w:?} on {}: CC slowdown {s:.2} implausible",
                dev.name
            );
        }
    }
}

fn assert_fig5_gemm_cc_tracks_peak_ratio(scales: (usize, usize)) {
    for dev in all_devices() {
        let s = geomean_speedup(Workload::Gemm, &dev, Variant::Cc, Variant::Tc, scales);
        let expected = 1.0 / dev.tc_cc_ratio();
        assert!(
            (s - expected).abs() < 0.2,
            "GEMM CC/TC on {}: {s:.2} vs peak ratio {expected:.2}",
            dev.name
        );
    }
}

fn assert_fig6_spmv_cce_recovers(scales: (usize, usize)) {
    for dev in all_devices() {
        let s = geomean_speedup(Workload::Spmv, &dev, Variant::CcE, Variant::Tc, scales);
        println!("SpMV CC-E vs TC on {}: {s:.2}x", dev.name);
        assert!(
            (0.95..=1.4).contains(&s),
            "SpMV CC-E should be around 1.0–1.2× of TC (paper Fig. 6); got {s:.2} on {}",
            dev.name
        );
    }
}

fn assert_fig6_scan_reduction_cce_underperforms(scales: (usize, usize)) {
    for dev in all_devices() {
        for w in [Workload::Scan, Workload::Reduction] {
            let s = geomean_speedup(w, &dev, Variant::CcE, Variant::Tc, scales);
            println!("{w:?} CC-E vs TC on {}: {s:.2}x", dev.name);
            assert!(
                s < 0.9,
                "{w:?} CC-E should clearly underperform TC (paper Fig. 6); got {s:.2} on {}",
                dev.name
            );
        }
    }
}

fn assert_quadrant_iv_benefits_from_b200(scales: (usize, usize)) {
    // B200 has lower FP64 TC peak than H200 but double the bandwidth:
    // memory-bound Quadrant IV TC kernels must not regress (paper §6.1).
    let devs = all_devices();
    let (h200, b200) = (&devs[1], &devs[2]);
    for w in [Workload::Spmv, Workload::Bfs, Workload::Spgemm] {
        let mut h_total = 0.0;
        let mut b_total = 0.0;
        for idx in 0..5 {
            let t = trace_of(w, idx, Variant::Tc, scales).unwrap();
            h_total += time_workload(h200, &t).total_s;
            b_total += time_workload(b200, &t).total_s;
        }
        println!("{w:?}: H200 {h_total:.3e}s vs B200 {b_total:.3e}s");
        assert!(
            b_total < h_total * 1.05,
            "{w:?}: B200 ({b_total:.3e}s) should be competitive with H200 ({h_total:.3e}s)"
        );
    }
}

/// The eight Fig. 4 workloads where TC wins. SpMV is excluded here: its
/// TC advantage comes from the dense block structure of the full Table 4
/// matrices and genuinely inverts below ~half the published size, so it
/// keeps full sparse scale in [`fig4_spmv_tc_beats_baseline`].
const FIG4_SCALE_ROBUST: [Workload; 6] = [
    Workload::Gemm,
    Workload::Stencil,
    Workload::Scan,
    Workload::Reduction,
    Workload::Bfs,
    Workload::Gemv,
];

#[test]
fn fig4_tc_beats_baseline_where_paper_says() {
    assert_fig4_tc_beats_baseline(&FIG4_SCALE_ROBUST, REDUCED);
}

#[test]
fn fig4_spmv_tc_beats_baseline() {
    // Full sparse scale (the shape is scale-sensitive); graphs are unused
    // by SpMV, so the graph divisor stays at the cheap pinned value.
    assert_fig4_tc_beats_baseline(&[Workload::Spmv], (1, REDUCED.1));
}

#[test]
fn fig4_spgemm_tc_beats_baseline() {
    // SpGEMM's B200 advantage thins below ~1/16 of the published sizes
    // (1.02× at ÷32), so it gets the mildest reduction that stays cheap.
    assert_fig4_tc_beats_baseline(&[Workload::Spgemm], (16, REDUCED.1));
}

#[test]
fn fig4_fft_tc_loses_to_cufft() {
    assert_fig4_fft_tc_loses(REDUCED);
}

#[test]
fn fig5_cc_is_slower_than_tc() {
    assert_fig5_cc_is_slower(REDUCED);
}

#[test]
fn fig5_gemm_cc_tracks_the_peak_ratio() {
    assert_fig5_gemm_cc_tracks_peak_ratio(REDUCED);
}

#[test]
fn fig6_spmv_cce_recovers_redundancy() {
    assert_fig6_spmv_cce_recovers(REDUCED);
}

#[test]
fn fig6_scan_reduction_cce_underperforms_tc() {
    assert_fig6_scan_reduction_cce_underperforms(REDUCED);
}

#[test]
fn quadrant_iv_benefits_from_b200_bandwidth() {
    assert_quadrant_iv_benefits_from_b200(REDUCED);
}

/// Every shape assertion at the paper's published sizes. Ignored by
/// default (multi-minute in debug builds); opt in with
/// `CUBIE_FULL_SCALE_TESTS=1 cargo test --release -- --ignored`.
#[test]
#[ignore = "published full scales; set CUBIE_FULL_SCALE_TESTS=1 and pass --ignored"]
fn full_scale_paper_shapes() {
    if std::env::var("CUBIE_FULL_SCALE_TESTS").ok().as_deref() != Some("1") {
        eprintln!("skipping full-scale shapes: set CUBIE_FULL_SCALE_TESTS=1 to opt in");
        return;
    }
    assert_fig4_tc_beats_baseline(&FIG4_SCALE_ROBUST, FULL);
    assert_fig4_tc_beats_baseline(&[Workload::Spmv, Workload::Spgemm], FULL);
    assert_fig4_fft_tc_loses(FULL);
    assert_fig5_cc_is_slower(FULL);
    assert_fig5_gemm_cc_tracks_peak_ratio(FULL);
    assert_fig6_spmv_cce_recovers(FULL);
    assert_fig6_scan_reduction_cce_underperforms(FULL);
    assert_quadrant_iv_benefits_from_b200(FULL);
}
