//! Compressed sparse row storage and the serial reference kernels that
//! serve as the paper's CPU ground truth (Section 8: "a naive CPU serial
//! implementation (e.g., CSR-based SpMV)").

use cubie_core::slab::Slab;
use serde::{Deserialize, Serialize};

use crate::coo::Coo;

/// A CSR sparse matrix.
///
/// The index and value arrays live in [`Slab`]s: freshly generated
/// matrices own their storage, matrices loaded from the prepared-input
/// snapshot store borrow it zero-copy out of an mmap. Both deref to
/// slices, so every kernel sees identical data either way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointer array, length `rows + 1`.
    pub row_ptr: Slab<usize>,
    /// Column indices, length `nnz`.
    pub col_idx: Slab<u32>,
    /// Values, length `nnz`.
    pub vals: Slab<f64>,
}

impl Csr {
    /// An empty matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1].into(),
            col_idx: Slab::new(),
            vals: Slab::new(),
        }
    }

    /// Assemble from already-built CSR arrays (the snapshot-store load
    /// path hands in mapped slabs; generators hand in owned vectors).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Slab<usize>,
        col_idx: Slab<u32>,
        vals: Slab<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length mismatch");
        assert_eq!(col_idx.len(), vals.len(), "col_idx/vals length mismatch");
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Whether any index/value array borrows from a file mapping.
    pub fn is_mapped(&self) -> bool {
        self.row_ptr.is_mapped() || self.col_idx.is_mapped() || self.vals.is_mapped()
    }

    /// Build from (sorted, deduplicated) COO triplets.
    pub fn from_coo(mut coo: Coo) -> Self {
        coo.sort_dedup();
        let mut row_ptr = vec![0usize; coo.rows + 1];
        for &r in &coo.row_idx {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..coo.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self {
            rows: coo.rows,
            cols: coo.cols,
            row_ptr: row_ptr.into(),
            col_idx: coo.col_idx.into(),
            vals: coo.vals.into(),
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Nonzero count of row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[s..e], &self.vals[s..e])
    }

    /// Serial CSR SpMV — the CPU ground truth: per row, ascending-column
    /// accumulation with separate multiply and add.
    pub fn spmv_naive(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0f64; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0f64;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            *yr = acc;
        }
        y
    }

    /// Serial row-wise SpGEMM (`C = A · B`) — the CPU ground truth for
    /// the SpGEMM workload. Uses a dense accumulator per row.
    pub fn spgemm_naive(&self, b: &Csr) -> Csr {
        assert_eq!(self.cols, b.rows, "inner dimensions must agree");
        let mut acc = vec![0.0f64; b.cols];
        let mut touched: Vec<u32> = Vec::new();
        let mut out = Coo::new(self.rows, b.cols);
        for r in 0..self.rows {
            touched.clear();
            let (acols, avals) = self.row(r);
            for (ac, av) in acols.iter().zip(avals) {
                let (bcols, bvals) = b.row(*ac as usize);
                for (bc, bv) in bcols.iter().zip(bvals) {
                    if acc[*bc as usize] == 0.0 && !touched.contains(bc) {
                        touched.push(*bc);
                    }
                    acc[*bc as usize] += av * bv;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                out.push(r, c as usize, acc[c as usize]);
                acc[c as usize] = 0.0;
            }
        }
        Csr::from_coo(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        let mut coo = Coo::new(self.cols, self.rows);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(*c as usize, r, *v);
            }
        }
        Csr::from_coo(coo)
    }

    /// Dense row-major expansion (for small test matrices).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows * self.cols];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[r * self.cols + *c as usize] = *v;
            }
        }
        d
    }

    /// Average nonzeros per row.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        Csr::from_coo(coo)
    }

    #[test]
    fn from_coo_builds_row_ptr() {
        let m = small();
        assert_eq!(m.row_ptr, vec![0, 2, 3, 5]);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_nnz(0), 2);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = small();
        let x = vec![1.0, 2.0, 3.0];
        let y = m.spmv_naive(&x);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn spgemm_identity() {
        let m = small();
        let mut id = Coo::new(3, 3);
        for i in 0..3 {
            id.push(i, i, 1.0);
        }
        let id = Csr::from_coo(id);
        let p = m.spgemm_naive(&id);
        assert_eq!(p.to_dense(), m.to_dense());
    }

    #[test]
    fn spgemm_matches_dense_product() {
        let a = small();
        let b = a.transpose();
        let p = a.spgemm_naive(&b);
        // dense check
        let (da, db) = (a.to_dense(), b.to_dense());
        let mut expect = vec![0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    expect[i * 3 + j] += da[i * 3 + k] * db[k * 3 + j];
                }
            }
        }
        let got = p.to_dense();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn empty_matrix_spmv() {
        let m = Csr::empty(4, 4);
        let y = m.spmv_naive(&[1.0; 4]);
        assert_eq!(y, vec![0.0; 4]);
    }
}
