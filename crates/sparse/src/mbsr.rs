//! The mBSR (modified block sparse row) format used by the AmgT SpGEMM
//! kernel: the matrix is tiled into dense 4×4 blocks; nonempty blocks are
//! stored contiguously per block row. Two vertically adjacent 4×4 blocks
//! combine into one 8×4 MMA `A`-operand tile (Section 3, SpGEMM).

use cubie_core::workspace;
use serde::{Deserialize, Serialize};

use crate::csr::Csr;

/// Block edge length (4, fixed by the `m8n8k4` operand shape).
pub const BLOCK: usize = 4;

/// A sparse matrix of dense 4×4 blocks in block-CSR layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mbsr {
    /// Rows of the underlying scalar matrix.
    pub rows: usize,
    /// Columns of the underlying scalar matrix.
    pub cols: usize,
    /// Number of block rows (`ceil(rows / 4)`).
    pub block_rows: usize,
    /// Number of block columns (`ceil(cols / 4)`).
    pub block_cols: usize,
    /// Block-row pointer, length `block_rows + 1`.
    pub row_ptr: Vec<usize>,
    /// Block column indices.
    pub col_idx: Vec<u32>,
    /// Dense 4×4 blocks, row-major within each block.
    pub blocks: Vec<[f64; BLOCK * BLOCK]>,
}

impl Mbsr {
    /// Tile a CSR matrix into mBSR.
    pub fn from_csr(m: &Csr) -> Self {
        let block_rows = m.rows.div_ceil(BLOCK);
        let block_cols = m.cols.div_ceil(BLOCK);
        let mut row_ptr = vec![0usize; block_rows + 1];
        let mut col_idx = Vec::new();
        let mut blocks: Vec<[f64; BLOCK * BLOCK]> = Vec::new();

        // Per block row: gather the scalar rows, bucket by block column.
        // All per-row scratch is workspace-recycled across calls.
        let mut marker = workspace::take(block_cols, -1i64);
        let mut order = workspace::take_in::<usize>(0);
        let mut sorted_cols = workspace::take_in::<u32>(0);
        let mut sorted_blocks = workspace::take_in::<[f64; BLOCK * BLOCK]>(0);
        for br in 0..block_rows {
            let start = col_idx.len();
            for r in br * BLOCK..((br + 1) * BLOCK).min(m.rows) {
                let (cols, vals) = m.row(r);
                for (c, v) in cols.iter().zip(vals) {
                    let bc = *c as usize / BLOCK;
                    let slot = if marker[bc] >= 0 && (marker[bc] as usize) >= start {
                        marker[bc] as usize
                    } else {
                        marker[bc] = col_idx.len() as i64;
                        col_idx.push(bc as u32);
                        blocks.push([0.0; BLOCK * BLOCK]);
                        col_idx.len() - 1
                    };
                    let lr = r - br * BLOCK;
                    let lc = *c as usize - bc * BLOCK;
                    blocks[slot][lr * BLOCK + lc] = *v;
                }
            }
            // Sort this block row's entries by block column for
            // deterministic layout.
            order.clear();
            order.extend(start..col_idx.len());
            order.sort_unstable_by_key(|&i| col_idx[i]);
            sorted_cols.clear();
            sorted_cols.extend(order.iter().map(|&i| col_idx[i]));
            sorted_blocks.clear();
            sorted_blocks.extend(order.iter().map(|&i| blocks[i]));
            col_idx[start..].copy_from_slice(&sorted_cols);
            blocks[start..].copy_from_slice(&sorted_blocks);
            for bc in sorted_cols.iter() {
                marker[*bc as usize] = -1;
            }
            row_ptr[br + 1] = col_idx.len();
        }
        Self {
            rows: m.rows,
            cols: m.cols,
            block_rows,
            block_cols,
            row_ptr,
            col_idx,
            blocks,
        }
    }

    /// Number of stored 4×4 blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Fraction of stored block slots holding an actual nonzero — the
    /// fill efficiency of the blocked representation.
    pub fn fill_ratio(&self, scalar_nnz: usize) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        scalar_nnz as f64 / (self.nnz_blocks() * BLOCK * BLOCK) as f64
    }

    /// Expand back to CSR (drops explicit zeros inside blocks).
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::coo::Coo::new(self.rows, self.cols);
        for br in 0..self.block_rows {
            for i in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[i] as usize;
                let blk = &self.blocks[i];
                for lr in 0..BLOCK {
                    for lc in 0..BLOCK {
                        let v = blk[lr * BLOCK + lc];
                        if v != 0.0 {
                            let (r, c) = (br * BLOCK + lr, bc * BLOCK + lc);
                            if r < self.rows && c < self.cols {
                                coo.push(r, c, v);
                            }
                        }
                    }
                }
            }
        }
        Csr::from_coo(coo)
    }

    /// Block-row entry range.
    pub fn block_row(&self, br: usize) -> (&[u32], &[[f64; BLOCK * BLOCK]]) {
        let (s, e) = (self.row_ptr[br], self.row_ptr[br + 1]);
        (&self.col_idx[s..e], &self.blocks[s..e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use cubie_core::SplitMix64;

    fn random_csr(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
        let mut g = SplitMix64::new(seed);
        let mut coo = Coo::new(rows, cols);
        for _ in 0..nnz {
            coo.push(
                g.next_range(rows as u64) as usize,
                g.next_range(cols as u64) as usize,
                g.next_unit() * 2.0 - 1.0,
            );
        }
        Csr::from_coo(coo)
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let m = random_csr(37, 29, 200, 1);
        let b = Mbsr::from_csr(&m);
        assert_eq!(b.to_csr(), m);
    }

    #[test]
    fn block_dims_round_up() {
        let m = random_csr(9, 5, 10, 2);
        let b = Mbsr::from_csr(&m);
        assert_eq!(b.block_rows, 3);
        assert_eq!(b.block_cols, 2);
    }

    #[test]
    fn dense_diagonal_packs_tightly() {
        let mut coo = Coo::new(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                if (i / 4) == (j / 4) {
                    coo.push(i, j, 1.0);
                }
            }
        }
        let m = Csr::from_coo(coo);
        let b = Mbsr::from_csr(&m);
        assert_eq!(b.nnz_blocks(), 2);
        assert!((b.fill_ratio(m.nnz()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_nonzeros_fill_poorly() {
        // One nonzero per 4x4 block → fill ratio 1/16.
        let mut coo = Coo::new(16, 16);
        for bi in 0..4 {
            for bj in 0..4 {
                coo.push(bi * 4, bj * 4, 1.0);
            }
        }
        let m = Csr::from_coo(coo);
        let b = Mbsr::from_csr(&m);
        assert_eq!(b.nnz_blocks(), 16);
        assert!((b.fill_ratio(m.nnz()) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn block_rows_sorted_by_column() {
        let m = random_csr(64, 64, 500, 3);
        let b = Mbsr::from_csr(&m);
        for br in 0..b.block_rows {
            let (cols, _) = b.block_row(br);
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "block row {br} not sorted");
            }
        }
    }
}
