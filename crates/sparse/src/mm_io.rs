//! MatrixMarket coordinate-format I/O.
//!
//! Supports the subset SuiteSparse uses for the Table 4 matrices:
//! `%%MatrixMarket matrix coordinate (real|integer|pattern)
//! (general|symmetric)`. Pattern entries get value 1.0; symmetric files
//! are expanded to full storage (mirroring off-diagonal entries), which is
//! what the SpMV/SpGEMM kernels consume.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::coo::Coo;
use crate::csr::Csr;

/// Errors from MatrixMarket parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file, with a description.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "MatrixMarket parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a MatrixMarket coordinate file from any buffered reader.
pub fn read_matrix<R: BufRead>(mut reader: R) -> Result<Csr, MmError> {
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() < 5 || !h[0].starts_with("%%MatrixMarket") {
        return Err(parse_err("missing %%MatrixMarket header"));
    }
    if !h[1].eq_ignore_ascii_case("matrix") || !h[2].eq_ignore_ascii_case("coordinate") {
        return Err(parse_err("only `matrix coordinate` files are supported"));
    }
    let field = h[3].to_ascii_lowercase();
    let symmetry = h[4].to_ascii_lowercase();
    let pattern = match field.as_str() {
        "real" | "integer" | "double" => false,
        "pattern" => true,
        other => return Err(parse_err(format!("unsupported field type `{other}`"))),
    };
    let symmetric = match symmetry.as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry `{other}`"))),
    };

    let mut line = String::new();
    // Skip comments.
    let dims = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(parse_err("unexpected EOF before size line"));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break t.to_string();
    };
    let mut it = dims.split_whitespace();
    let rows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad row count"))?;
    let cols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad column count"))?;
    let nnz: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad nnz count"))?;

    let mut coo = Coo::new(rows, cols);
    let mut read = 0usize;
    while read < nnz {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(parse_err(format!("EOF after {read} of {nnz} entries")));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad row index"))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad col index"))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(format!("entry ({r},{c}) out of 1-based bounds")));
        }
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err("bad value"))?
        };
        coo.push(r - 1, c - 1, v);
        if symmetric && r != c {
            coo.push(c - 1, r - 1, v);
        }
        read += 1;
    }
    Ok(Csr::from_coo(coo))
}

/// Read a MatrixMarket file from disk.
pub fn read_matrix_file(path: impl AsRef<Path>) -> Result<Csr, MmError> {
    let file = std::fs::File::open(path)?;
    read_matrix(std::io::BufReader::new(file))
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix<W: Write>(m: &Csr, writer: W) -> Result<(), MmError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.rows, m.cols, m.nnz())?;
    for r in 0..m.rows {
        let (cols, vals) = m.row(r);
        for (c, v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:.17e}", r + 1, *c + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 2\n\
                    1 1 1.5\n\
                    3 2 -2.0\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.rows, 3);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(0).1, &[1.5]);
        assert_eq!(m.row(2).0, &[1]);
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    2 1 5.0\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).0, &[0, 1]);
        assert_eq!(m.row(0).1, &[1.0, 5.0]);
    }

    #[test]
    fn parse_pattern_gets_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 1\n\
                    2 2\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.row(1).1, &[1.0]);
    }

    #[test]
    fn roundtrip_write_read() {
        let mut coo = crate::coo::Coo::new(4, 3);
        coo.push(0, 0, 1.25);
        coo.push(3, 2, -0.5);
        coo.push(1, 1, 1e-30);
        let m = Csr::from_coo(coo);
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let m2 = read_matrix(buf.as_slice()).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix("nonsense\n1 1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix(text.as_bytes()).is_err());
    }
}
