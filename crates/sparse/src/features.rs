//! Structural feature extraction for the PCA coverage study (Figure 10).
//!
//! The paper standardizes "sparsity, row and column degree statistics, and
//! block structures" before applying PCA to the SuiteSparse collection.
//! [`MatrixFeatures`] computes exactly that family of descriptors.

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::mbsr::Mbsr;

/// Names of the feature dimensions, in [`MatrixFeatures::to_vec`] order.
pub const FEATURE_NAMES: [&str; 10] = [
    "log_rows",
    "log_nnz",
    "log_density",
    "row_mean",
    "row_cv",
    "row_max_ratio",
    "col_cv",
    "bandwidth_ratio",
    "diag_fraction",
    "block_fill",
];

/// Structural features of a sparse matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixFeatures {
    /// `ln(rows)`.
    pub log_rows: f64,
    /// `ln(nnz)`.
    pub log_nnz: f64,
    /// `ln(nnz / (rows·cols))`.
    pub log_density: f64,
    /// Mean nonzeros per row.
    pub row_mean: f64,
    /// Coefficient of variation of row lengths (std/mean).
    pub row_cv: f64,
    /// Max row length divided by the mean.
    pub row_max_ratio: f64,
    /// Coefficient of variation of column degrees.
    pub col_cv: f64,
    /// Mean |col − row| distance normalized by the matrix dimension.
    pub bandwidth_ratio: f64,
    /// Fraction of rows with an explicit diagonal entry.
    pub diag_fraction: f64,
    /// Fill ratio of the occupied 4×4 blocks (mBSR fill efficiency).
    pub block_fill: f64,
}

impl MatrixFeatures {
    /// Extract features from a CSR matrix.
    pub fn of(m: &Csr) -> Self {
        assert!(m.rows > 0 && m.nnz() > 0, "features need a nonempty matrix");
        let rows = m.rows as f64;
        let nnz = m.nnz() as f64;

        let mut row_sum = 0.0f64;
        let mut row_sq = 0.0f64;
        let mut row_max = 0usize;
        let mut diag = 0usize;
        let mut band = 0.0f64;
        let mut col_deg = vec![0u32; m.cols];
        for r in 0..m.rows {
            let (cols, _) = m.row(r);
            let len = cols.len();
            row_sum += len as f64;
            row_sq += (len * len) as f64;
            row_max = row_max.max(len);
            for &c in cols {
                col_deg[c as usize] += 1;
                band += (c as f64 - r as f64).abs();
                if c as usize == r {
                    diag += 1;
                }
            }
        }
        let row_mean = row_sum / rows;
        let row_var = (row_sq / rows - row_mean * row_mean).max(0.0);
        let row_cv = if row_mean > 0.0 {
            row_var.sqrt() / row_mean
        } else {
            0.0
        };

        let cols_n = m.cols as f64;
        let col_mean = nnz / cols_n;
        let col_sq: f64 = col_deg.iter().map(|&d| (d as f64) * (d as f64)).sum();
        let col_var = (col_sq / cols_n - col_mean * col_mean).max(0.0);
        let col_cv = if col_mean > 0.0 {
            col_var.sqrt() / col_mean
        } else {
            0.0
        };

        let blocked = Mbsr::from_csr(m);
        let block_fill = blocked.fill_ratio(m.nnz());

        Self {
            log_rows: rows.ln(),
            log_nnz: nnz.ln(),
            log_density: (nnz / (rows * cols_n)).ln(),
            row_mean,
            row_cv,
            row_max_ratio: row_max as f64 / row_mean.max(1e-12),
            col_cv,
            bandwidth_ratio: band / nnz / (m.cols.max(m.rows) as f64),
            diag_fraction: diag as f64 / rows,
            block_fill,
        }
    }

    /// Flatten into the PCA input ordering of [`FEATURE_NAMES`].
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.log_rows,
            self.log_nnz,
            self.log_density,
            self.row_mean,
            self.row_cv,
            self.row_max_ratio,
            self.col_cv,
            self.bandwidth_ratio,
            self.diag_fraction,
            self.block_fill,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::generators;

    fn diag_matrix(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        Csr::from_coo(coo)
    }

    #[test]
    fn diagonal_matrix_features() {
        let f = MatrixFeatures::of(&diag_matrix(64));
        assert!((f.row_mean - 1.0).abs() < 1e-12);
        assert!(f.row_cv.abs() < 1e-9);
        assert!((f.diag_fraction - 1.0).abs() < 1e-12);
        assert!(f.bandwidth_ratio.abs() < 1e-12);
        // A diagonal hits 4 of the 16 slots in each occupied 4×4 block.
        assert!((f.block_fill - 0.25).abs() < 1e-12);
    }

    #[test]
    fn feature_vector_matches_names() {
        let f = MatrixFeatures::of(&diag_matrix(16));
        assert_eq!(f.to_vec().len(), FEATURE_NAMES.len());
    }

    #[test]
    fn irregular_rows_raise_cv() {
        // One dense row in an otherwise diagonal matrix.
        let n = 128;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for j in 0..n {
            if j != 5 {
                coo.push(5, j, 1.0);
            }
        }
        let irregular = MatrixFeatures::of(&Csr::from_coo(coo));
        let regular = MatrixFeatures::of(&diag_matrix(n));
        assert!(irregular.row_cv > regular.row_cv + 0.5);
        assert!(irregular.row_max_ratio > 10.0);
    }

    #[test]
    fn qcd_generator_has_uniform_rows() {
        let f = MatrixFeatures::of(&generators::conf5_like(8));
        assert!(f.row_cv < 1e-9, "QCD rows must be perfectly uniform");
        assert!((f.row_mean - 39.0).abs() < 1e-12);
    }

    #[test]
    fn blocked_generator_fills_blocks_better_than_random() {
        let fem = MatrixFeatures::of(&generators::raefsky3_like(8));
        let rnd = MatrixFeatures::of(&generators::random_sparse(2000, 2000, 16_000, 3));
        assert!(
            fem.block_fill > 2.0 * rnd.block_fill,
            "FEM fill {} vs random fill {}",
            fem.block_fill,
            rnd.block_fill
        );
    }
}
