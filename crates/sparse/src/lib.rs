//! # cubie-sparse
//!
//! Sparse-matrix substrate for the SpMV / SpGEMM workloads and the
//! benchmark-coverage analysis:
//!
//! * [`coo`] / [`csr`] — coordinate and compressed-sparse-row storage,
//!   with serial reference kernels (the paper's CPU ground truth).
//! * [`mbsr`] — the mBSR blocked format (4×4 blocks, pairable into the
//!   8×4 MMA operand shape) used by the AmgT SpGEMM kernel.
//! * [`mm_io`] — MatrixMarket coordinate-format reader/writer, so real
//!   SuiteSparse files can be dropped in when available.
//! * [`generators`] — synthetic stand-ins for the five SuiteSparse
//!   matrices of Table 4 (paper inputs are not redistributable here);
//!   each generator reproduces the published row count, a closely
//!   matching nonzero count, and the structure class that drives sparse
//!   kernel behaviour (lattice stencil, stiffness band, FEM blocks…).
//! * [`features`] — structural feature extraction (sparsity, degree
//!   statistics, bandwidth, block structure) feeding the PCA coverage
//!   study of Figure 10.
//! * [`rcm`] — reverse Cuthill–McKee reordering, a pre-conditioner that
//!   improves blocked-format fill for user-supplied matrices.

#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod features;
pub mod generators;
pub mod mbsr;
pub mod mm_io;
pub mod rcm;

pub use coo::Coo;
pub use csr::Csr;
pub use features::MatrixFeatures;
pub use generators::{table4_matrices, table4_specs, MatrixInfo};
pub use mbsr::Mbsr;
