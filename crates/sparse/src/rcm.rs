//! Reverse Cuthill–McKee (RCM) reordering — the classic bandwidth-
//! reducing permutation. Exposed as a substrate utility: blocked MMU
//! formats (mBSR, DASP bundles) fill better on low-bandwidth orderings,
//! so users bringing their own matrices can pre-condition them the same
//! way SuiteSparse's FEM matrices already are.

use crate::coo::Coo;
use crate::csr::Csr;

/// Compute the RCM permutation of the *symmetrized* pattern of `m`:
/// `perm[new] = old`.
pub fn rcm_permutation(m: &Csr) -> Vec<u32> {
    let n = m.rows;
    // Symmetrized adjacency (pattern only).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for r in 0..n {
        for &c in m.row(r).0 {
            let c = c as usize;
            if c < n && c != r {
                adj[r].push(c as u32);
                adj[c].push(r as u32);
            }
        }
    }
    for a in adj.iter_mut() {
        a.sort_unstable();
        a.dedup();
    }
    let deg = |v: usize| adj[v].len();

    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Process every connected component, starting from a minimal-degree
    // vertex (the George–Liu pseudo-peripheral heuristic simplified).
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&v| deg(v as usize));
    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            // Neighbours in ascending degree order (Cuthill–McKee).
            let mut nb: Vec<u32> = adj[u as usize]
                .iter()
                .copied()
                .filter(|&v| !visited[v as usize])
                .collect();
            nb.sort_by_key(|&v| deg(v as usize));
            for v in nb {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse(); // the "reverse" in RCM
    order
}

/// Apply a permutation symmetrically: `out[i][j] = m[perm[i]][perm[j]]`.
pub fn permute_symmetric(m: &Csr, perm: &[u32]) -> Csr {
    assert_eq!(perm.len(), m.rows);
    assert_eq!(
        m.rows, m.cols,
        "symmetric permutation needs a square matrix"
    );
    let mut inv = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    let mut coo = Coo::new(m.rows, m.cols);
    for r in 0..m.rows {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            coo.push(inv[r] as usize, inv[c as usize] as usize, v);
        }
    }
    Csr::from_coo(coo)
}

/// RCM-reorder a square matrix (permutation + symmetric application).
pub fn rcm(m: &Csr) -> Csr {
    permute_symmetric(m, &rcm_permutation(m))
}

/// Matrix bandwidth: `max |i - j|` over stored entries.
pub fn bandwidth(m: &Csr) -> usize {
    let mut bw = 0usize;
    for r in 0..m.rows {
        for &c in m.row(r).0 {
            bw = bw.max(r.abs_diff(c as usize));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::SplitMix64;

    /// A banded matrix with its rows randomly permuted (high bandwidth).
    fn shuffled_band(n: usize, half_bw: usize, seed: u64) -> Csr {
        let mut g = SplitMix64::new(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = g.next_range(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..=(i + half_bw).min(n - 1) {
                coo.push(perm[i], perm[j], 1.0 + (i + j) as f64);
            }
        }
        Csr::from_coo(coo)
    }

    #[test]
    fn permutation_is_a_bijection() {
        let m = shuffled_band(200, 3, 1);
        let p = rcm_permutation(&m);
        let mut seen = [false; 200];
        for &v in &p {
            assert!(!seen[v as usize], "duplicate {v}");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn rcm_recovers_a_narrow_band() {
        let m = shuffled_band(300, 2, 7);
        let before = bandwidth(&m);
        let after = bandwidth(&rcm(&m));
        assert!(
            after * 4 < before,
            "bandwidth should collapse: {before} → {after}"
        );
        assert!(
            after <= 8,
            "a shuffled ±2 band reorders to ≤ ~2·bw: {after}"
        );
    }

    #[test]
    fn permutation_preserves_values_and_nnz() {
        let m = shuffled_band(150, 3, 3);
        let r = rcm(&m);
        assert_eq!(r.nnz(), m.nnz());
        let mut a: Vec<u64> = m.vals.iter().map(|v| v.to_bits()).collect();
        let mut b: Vec<u64> = r.vals.iter().map(|v| v.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rcm_improves_block_fill() {
        use crate::mbsr::Mbsr;
        let m = shuffled_band(256, 3, 9);
        let fill_before = Mbsr::from_csr(&m).fill_ratio(m.nnz());
        let r = rcm(&m);
        let fill_after = Mbsr::from_csr(&r).fill_ratio(r.nnz());
        assert!(
            fill_after > 1.5 * fill_before,
            "mBSR fill should improve: {fill_before:.3} → {fill_after:.3}"
        );
    }

    #[test]
    fn disconnected_components_are_all_ordered() {
        // Two separate chains.
        let mut coo = Coo::new(10, 10);
        for i in 0..4usize {
            coo.push(i, (i + 1) % 5, 1.0);
        }
        for i in 5..9usize {
            coo.push(i, i + 1, 1.0);
        }
        let m = Csr::from_coo(coo);
        let p = rcm_permutation(&m);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn spmv_result_is_permutation_invariant() {
        use cubie_core::LcgF64;
        let m = shuffled_band(128, 2, 11);
        let perm = rcm_permutation(&m);
        let r = permute_symmetric(&m, &perm);
        let x: Vec<f64> = LcgF64::new(5).vec(128);
        // Permute x accordingly: x_new[i] = x[perm[i]].
        let xp: Vec<f64> = perm.iter().map(|&o| x[o as usize]).collect();
        let y = m.spmv_naive(&x);
        let yp = r.spmv_naive(&xp);
        for (i, &o) in perm.iter().enumerate() {
            assert!((yp[i] - y[o as usize]).abs() < 1e-12);
        }
    }
}
