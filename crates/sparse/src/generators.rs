//! Synthetic stand-ins for the five SuiteSparse matrices of Table 4.
//!
//! The paper's SpMV/SpGEMM inputs come from the SuiteSparse Matrix
//! Collection, which is not redistributable inside this repository. Each
//! generator below reproduces the published **row count exactly**, the
//! published **nonzero count exactly or within ~1 %**, and — most
//! importantly for kernel behaviour — the **structure class**: what
//! drives DASP's row categorization and mBSR's block fill is the
//! row-length distribution, bandwidth, and block density, not the
//! particular values. Real `.mtx` files can be substituted at any time via
//! [`crate::mm_io::read_matrix_file`].
//!
//! | matrix           | class reproduced                                   |
//! |------------------|----------------------------------------------------|
//! | `spmsrts`        | indefinite saddle-point: short banded rows + scattered couplings |
//! | `Chevron1`       | seismic 2-D grid: 9-point stencil on a 141×265 grid |
//! | `raefsky3`       | fluid/structure FEM: dense 8×8 node blocks on a 2-D node grid |
//! | `conf5_4-8x8-10` | QCD lattice: exactly 39 nonzeros in *every* row     |
//! | `bcsstk39`       | stiffness band: symmetric 3-DOF banded coupling     |
//!
//! Every generator accepts a `scale ≥ 1` divisor so tests can exercise the
//! same structure at a fraction of the size; `scale == 1` is the
//! full-size, paper-matching matrix.

use cubie_core::{LcgF64, SplitMix64};
use serde::{Deserialize, Serialize};

use crate::coo::Coo;
use crate::csr::Csr;

/// Published metadata of one Table 4 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixInfo {
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// SuiteSparse group.
    pub group: &'static str,
    /// Published row count.
    pub rows: usize,
    /// Published nonzero count.
    pub nnz: usize,
}

/// The five Table 4 entries, in the paper's order.
pub fn table4_specs() -> [MatrixInfo; 5] {
    [
        MatrixInfo {
            name: "spmsrts",
            group: "GHS_indef",
            rows: 29_995,
            nnz: 229_947,
        },
        MatrixInfo {
            name: "Chevron1",
            group: "Chevron",
            rows: 37_365,
            nnz: 330_633,
        },
        MatrixInfo {
            name: "raefsky3",
            group: "Simon",
            rows: 21_200,
            nnz: 1_488_768,
        },
        MatrixInfo {
            name: "conf5_4-8x8-10",
            group: "QCD",
            rows: 49_152,
            nnz: 1_916_928,
        },
        MatrixInfo {
            name: "bcsstk39",
            group: "Boeing",
            rows: 46_772,
            nnz: 2_089_294,
        },
    ]
}

/// Generate the synthetic counterpart of a Table 4 matrix by name.
///
/// # Panics
/// Panics on an unknown name.
pub fn generate(name: &str, scale: usize) -> Csr {
    match name {
        "spmsrts" => spmsrts_like(scale),
        "Chevron1" => chevron1_like(scale),
        "raefsky3" => raefsky3_like(scale),
        "conf5_4-8x8-10" => conf5_like(scale),
        "bcsstk39" => bcsstk39_like(scale),
        other => panic!("unknown Table 4 matrix `{other}`"),
    }
}

/// All five Table 4 matrices with their metadata at the given scale
/// divisor (`scale == 1` → paper-matching sizes).
///
/// Generation fans out across the worker pool, dispatched heaviest
/// first (LPT by the published nnz, which scales uniformly, so the
/// published counts rank the scaled costs too). Each matrix is built by
/// its own deterministic generator, so output order and every bit are
/// identical to the previous serial loop.
pub fn table4_matrices(scale: usize) -> Vec<(MatrixInfo, Csr)> {
    let specs = table4_specs();
    let matrices = cubie_core::par::par_map_lpt(
        specs.len(),
        |i| specs[i].nnz as f64,
        |i| generate(specs[i].name, scale),
    );
    specs.into_iter().zip(matrices).collect()
}

fn values(seed: u64) -> LcgF64 {
    LcgF64::new(seed)
}

/// `spmsrts`-like: saddle-point/indefinite structure — every row has a
/// short tridiagonal band plus 4–5 pseudo-random far couplings, matching
/// the published nonzero count exactly at `scale == 1`.
pub fn spmsrts_like(scale: usize) -> Csr {
    let scale = scale.max(1);
    let rows = 29_995 / scale;
    let nnz_target = 229_947 / scale;
    let band_nnz: usize = (0..rows)
        .map(|r| 1 + usize::from(r > 0) + usize::from(r + 1 < rows))
        .sum();
    let extra_total = nnz_target.saturating_sub(band_nnz);
    let base_extra = extra_total / rows;
    let remainder = extra_total % rows;

    let mut g = SplitMix64::new(0x5051);
    let mut vg = values(11);
    let mut coo = Coo::new(rows, rows);
    let mut taken: Vec<u32> = Vec::with_capacity(16);
    for r in 0..rows {
        taken.clear();
        if r > 0 {
            coo.push(r, r - 1, vg.next_f64());
            taken.push((r - 1) as u32);
        }
        coo.push(r, r, vg.next_f64() + 4.0); // keep the diagonal dominant
        taken.push(r as u32);
        if r + 1 < rows {
            coo.push(r, r + 1, vg.next_f64());
            taken.push((r + 1) as u32);
        }
        let extras = base_extra + usize::from(r < remainder);
        let mut added = 0;
        while added < extras {
            let c = g.next_range(rows as u64) as u32;
            if !taken.contains(&c) {
                taken.push(c);
                coo.push(r, c as usize, vg.next_f64());
                added += 1;
            }
        }
    }
    Csr::from_coo(coo)
}

/// `Chevron1`-like: a 9-point stencil on a 141×265 structured grid
/// (141 × 265 = 37 365 rows), the classic seismic-modelling pattern.
pub fn chevron1_like(scale: usize) -> Csr {
    let scale = scale.max(1);
    let (nx, ny) = if scale == 1 {
        (141usize, 265usize)
    } else {
        ((141 / scale).max(3), (265 / scale).max(3))
    };
    let rows = nx * ny;
    let mut vg = values(12);
    let mut coo = Coo::new(rows, rows);
    for i in 0..nx as i64 {
        for j in 0..ny as i64 {
            let r = (i * ny as i64 + j) as usize;
            for di in -1..=1i64 {
                for dj in -1..=1i64 {
                    let (ni, nj) = (i + di, j + dj);
                    if ni >= 0 && ni < nx as i64 && nj >= 0 && nj < ny as i64 {
                        let c = (ni * ny as i64 + nj) as usize;
                        let v = if r == c {
                            8.0 + vg.next_f64()
                        } else {
                            -1.0 + 0.25 * vg.next_f64()
                        };
                        coo.push(r, c, v);
                    }
                }
            }
        }
    }
    Csr::from_coo(coo)
}

/// `raefsky3`-like: fluid–structure interaction FEM — 8×8 dense node
/// blocks on a 53×50 node grid with 9-point node connectivity
/// (53 × 50 × 8 = 21 200 rows, ≈ 70 nonzeros/row).
pub fn raefsky3_like(scale: usize) -> Csr {
    let scale = scale.max(1);
    let (nx, ny, dof) = if scale == 1 {
        (53usize, 50usize, 8usize)
    } else {
        ((53 / scale).max(2), (50 / scale).max(2), 8usize)
    };
    let rows = nx * ny * dof;
    let mut vg = values(13);
    let mut coo = Coo::new(rows, rows);
    for i in 0..nx as i64 {
        for j in 0..ny as i64 {
            let node = (i * ny as i64 + j) as usize;
            for di in -1..=1i64 {
                for dj in -1..=1i64 {
                    let (ni, nj) = (i + di, j + dj);
                    if ni >= 0 && ni < nx as i64 && nj >= 0 && nj < ny as i64 {
                        let nnode = (ni * ny as i64 + nj) as usize;
                        // Dense dof×dof coupling block between the nodes.
                        for a in 0..dof {
                            for b in 0..dof {
                                let (r, c) = (node * dof + a, nnode * dof + b);
                                let v = if r == c {
                                    16.0 + vg.next_f64()
                                } else {
                                    vg.next_f64() * 0.5
                                };
                                coo.push(r, c, v);
                            }
                        }
                    }
                }
            }
        }
    }
    Csr::from_coo(coo)
}

/// `conf5_4-8x8-10`-like: a QCD lattice operator on an 8×8×8×16 torus
/// with 6 components per site (8·8·8·16·6 = 49 152 rows). Every row has
/// **exactly 39** nonzeros — the published count is matched exactly:
/// a dense 6-wide on-site block (6) plus 4 components on each of the 8
/// forward/backward lattice neighbours (32) plus one extra coupling into
/// the first neighbour (1).
pub fn conf5_like(scale: usize) -> Csr {
    let scale = scale.max(1);
    let (lx, ly, lz, lt, comp) = if scale == 1 {
        (8usize, 8, 8, 16, 6usize)
    } else {
        // Keep every lattice extent ≥ 3 so the ±1 torus neighbours stay
        // distinct and every row keeps exactly 39 nonzeros.
        (4usize, 4, 4, (16 / scale).max(4), 6usize)
    };
    let sites = lx * ly * lz * lt;
    let rows = sites * comp;
    let site_of = |x: usize, y: usize, z: usize, t: usize| ((x * ly + y) * lz + z) * lt + t;
    let mut vg = values(14);
    let mut coo = Coo::new(rows, rows);
    for x in 0..lx {
        for y in 0..ly {
            for z in 0..lz {
                for t in 0..lt {
                    let s = site_of(x, y, z, t);
                    let neighbours = [
                        site_of((x + 1) % lx, y, z, t),
                        site_of((x + lx - 1) % lx, y, z, t),
                        site_of(x, (y + 1) % ly, z, t),
                        site_of(x, (y + ly - 1) % ly, z, t),
                        site_of(x, y, (z + 1) % lz, t),
                        site_of(x, y, (z + lz - 1) % lz, t),
                        site_of(x, y, z, (t + 1) % lt),
                        site_of(x, y, z, (t + lt - 1) % lt),
                    ];
                    for a in 0..comp {
                        let r = s * comp + a;
                        // On-site dense block: 6 entries.
                        for b in 0..comp {
                            let v = if a == b {
                                8.0 + vg.next_f64()
                            } else {
                                vg.next_f64() * 0.5
                            };
                            coo.push(r, s * comp + b, v);
                        }
                        // 4 components per neighbour: 32 entries.
                        for (ni, &n) in neighbours.iter().enumerate() {
                            for b in 0..4 {
                                let col = n * comp + (a + b + ni) % comp;
                                coo.push(r, col, vg.next_f64() * 0.5);
                            }
                            // One extra coupling into the first neighbour
                            // brings the row to exactly 39.
                            if ni == 0 {
                                let col = n * comp + (a + 4) % comp;
                                coo.push(r, col, vg.next_f64() * 0.5);
                            }
                        }
                    }
                }
            }
        }
    }
    Csr::from_coo(coo)
}

/// `bcsstk39`-like: a structural stiffness matrix — symmetric banded
/// coupling of 3-DOF nodes along a solid-rocket-booster-like shell strip,
/// ≈ 44.7 nonzeros/row.
pub fn bcsstk39_like(scale: usize) -> Csr {
    let scale = scale.max(1);
    let rows = 46_772 / scale;
    // 3 DOF per node; each node couples to itself and 7 forward
    // neighbours at node distances {1, 2, 3, 22, 23, 24, 25} (shell ring
    // of ~24 nodes), giving a symmetric band of (1 + 2·7)·3 = 45
    // entries/row in the interior.
    let nodes = rows / 3;
    let offsets: [usize; 7] = [1, 2, 3, 22, 23, 24, 25];
    let mut vg = values(15);
    let mut coo = Coo::new(rows, rows);
    for n in 0..nodes {
        // Diagonal block.
        for a in 0..3 {
            for b in 0..3 {
                let (r, c) = (n * 3 + a, n * 3 + b);
                let v = if a == b {
                    32.0 + vg.next_f64()
                } else {
                    vg.next_f64()
                };
                coo.push(r, c, v);
            }
        }
        for &d in &offsets {
            if n + d < nodes {
                for a in 0..3 {
                    for b in 0..3 {
                        let v = vg.next_f64();
                        coo.push(n * 3 + a, (n + d) * 3 + b, v);
                        coo.push((n + d) * 3 + b, n * 3 + a, v);
                    }
                }
            }
        }
    }
    // Rows not covered by whole nodes (rows % 3) get a diagonal entry.
    for r in nodes * 3..rows {
        coo.push(r, r, 32.0 + vg.next_f64());
    }
    Csr::from_coo(coo)
}

/// A fully random sparse matrix (uniform row lengths, uniform columns) —
/// used by property tests and the coverage corpus.
pub fn random_sparse(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
    let mut g = SplitMix64::new(seed);
    let mut vg = values(seed ^ 0xABCD);
    let mut coo = Coo::new(rows, cols);
    for _ in 0..nnz {
        coo.push(
            g.next_range(rows as u64) as usize,
            g.next_range(cols as u64) as usize,
            vg.next_f64(),
        );
    }
    Csr::from_coo(coo)
}

/// The corpus entry classes used by the Figure 10 coverage study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CorpusClass {
    Banded,
    Grid9,
    Blocked,
    PowerLaw,
    Random,
}

/// Generate a diverse synthetic corpus standing in for the SuiteSparse
/// collection in the PCA coverage study (Figure 10b): `n` small matrices
/// drawn from banded / grid / blocked / power-law / random structure
/// classes with randomized parameters.
pub fn diverse_corpus(n: usize, seed: u64) -> Vec<(String, Csr)> {
    let classes = [
        CorpusClass::Banded,
        CorpusClass::Grid9,
        CorpusClass::Blocked,
        CorpusClass::PowerLaw,
        CorpusClass::Random,
    ];
    let mut g = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let class = classes[i % classes.len()];
            let s = g.next_u64();
            let m = corpus_matrix(class, s);
            (format!("{class:?}-{i}"), m)
        })
        .collect()
}

fn corpus_matrix(class: CorpusClass, seed: u64) -> Csr {
    let mut g = SplitMix64::new(seed);
    match class {
        CorpusClass::Banded => {
            let rows = 400 + g.next_range(2000) as usize;
            let half_bw = 1 + g.next_range(8) as usize;
            let mut vg = values(seed);
            let mut coo = Coo::new(rows, rows);
            for r in 0..rows {
                let lo = r.saturating_sub(half_bw);
                let hi = (r + half_bw).min(rows - 1);
                for c in lo..=hi {
                    coo.push(r, c, vg.next_f64());
                }
            }
            Csr::from_coo(coo)
        }
        CorpusClass::Grid9 => {
            let nx = 15 + g.next_range(40) as usize;
            let ny = 15 + g.next_range(40) as usize;
            let mut vg = values(seed);
            let mut coo = Coo::new(nx * ny, nx * ny);
            for i in 0..nx as i64 {
                for j in 0..ny as i64 {
                    for di in -1..=1i64 {
                        for dj in -1..=1i64 {
                            let (ni, nj) = (i + di, j + dj);
                            if ni >= 0 && ni < nx as i64 && nj >= 0 && nj < ny as i64 {
                                coo.push(
                                    (i * ny as i64 + j) as usize,
                                    (ni * ny as i64 + nj) as usize,
                                    vg.next_f64(),
                                );
                            }
                        }
                    }
                }
            }
            Csr::from_coo(coo)
        }
        CorpusClass::Blocked => {
            let nodes = 40 + g.next_range(200) as usize;
            let dof = 2 + g.next_range(7) as usize;
            let mut vg = values(seed);
            let mut coo = Coo::new(nodes * dof, nodes * dof);
            for n in 0..nodes {
                for d in [0usize, 1, nodes.saturating_sub(1).min(7)] {
                    if n + d < nodes {
                        for a in 0..dof {
                            for b in 0..dof {
                                coo.push(n * dof + a, (n + d) * dof + b, vg.next_f64());
                                if d != 0 {
                                    coo.push((n + d) * dof + b, n * dof + a, vg.next_f64());
                                }
                            }
                        }
                    }
                }
            }
            Csr::from_coo(coo)
        }
        CorpusClass::PowerLaw => {
            let rows = 500 + g.next_range(3000) as usize;
            let mut vg = values(seed);
            let mut coo = Coo::new(rows, rows);
            for r in 0..rows {
                // Zipf-ish row length: a few very long rows.
                let u = g.next_unit().max(1e-6);
                let len = ((2.0 / u.powf(0.7)) as usize).clamp(1, rows / 2);
                let mut c = g.next_range(rows as u64) as usize;
                for _ in 0..len {
                    coo.push(r, c, vg.next_f64());
                    c = (c + 1 + g.next_range(16) as usize) % rows;
                }
            }
            Csr::from_coo(coo)
        }
        CorpusClass::Random => {
            let rows = 300 + g.next_range(2500) as usize;
            let nnz = rows * (2 + g.next_range(12) as usize);
            random_sparse(rows, rows, nnz, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table4() {
        let s = table4_specs();
        assert_eq!(s[3].name, "conf5_4-8x8-10");
        assert_eq!(s[3].rows, 49_152);
        assert_eq!(s[3].nnz, 1_916_928);
        assert_eq!(s[4].nnz, 2_089_294);
    }

    #[test]
    fn conf5_full_size_is_exact() {
        let m = conf5_like(1);
        assert_eq!(m.rows, 49_152);
        assert_eq!(m.nnz(), 1_916_928, "QCD generator must match exactly");
        for r in 0..m.rows {
            assert_eq!(m.row_nnz(r), 39, "row {r} must have exactly 39 nnz");
        }
    }

    #[test]
    fn spmsrts_full_size_matches_published_nnz() {
        let m = spmsrts_like(1);
        assert_eq!(m.rows, 29_995);
        assert_eq!(m.nnz(), 229_947);
    }

    #[test]
    fn chevron_rows_exact_nnz_close() {
        let m = chevron1_like(1);
        let spec = table4_specs()[1];
        assert_eq!(m.rows, spec.rows);
        let err = (m.nnz() as f64 - spec.nnz as f64).abs() / spec.nnz as f64;
        assert!(err < 0.01, "nnz {} vs published {}", m.nnz(), spec.nnz);
    }

    #[test]
    fn raefsky_rows_exact_nnz_close() {
        let m = raefsky3_like(1);
        let spec = table4_specs()[2];
        assert_eq!(m.rows, spec.rows);
        let err = (m.nnz() as f64 - spec.nnz as f64).abs() / spec.nnz as f64;
        assert!(err < 0.02, "nnz {} vs published {}", m.nnz(), spec.nnz);
    }

    #[test]
    fn bcsstk_rows_exact_nnz_close_and_symmetric() {
        let m = bcsstk39_like(1);
        let spec = table4_specs()[4];
        assert_eq!(m.rows, spec.rows);
        let err = (m.nnz() as f64 - spec.nnz as f64).abs() / spec.nnz as f64;
        assert!(err < 0.02, "nnz {} vs published {}", m.nnz(), spec.nnz);
        // Structural symmetry (pattern): transpose has the same pattern.
        let t = m.transpose();
        assert_eq!(t.row_ptr, m.row_ptr);
        assert_eq!(t.col_idx, m.col_idx);
    }

    #[test]
    fn scaled_generators_shrink() {
        for name in [
            "spmsrts",
            "Chevron1",
            "raefsky3",
            "conf5_4-8x8-10",
            "bcsstk39",
        ] {
            let small = generate(name, 8);
            let spec = table4_specs().into_iter().find(|s| s.name == name).unwrap();
            assert!(small.rows < spec.rows, "{name} did not shrink");
            assert!(small.rows > 0);
            assert!(small.nnz() > 0);
        }
    }

    #[test]
    fn random_sparse_respects_bounds() {
        let m = random_sparse(100, 50, 400, 9);
        assert_eq!(m.rows, 100);
        assert_eq!(m.cols, 50);
        assert!(m.nnz() <= 400); // duplicates merge
        for r in 0..m.rows {
            for &c in m.row(r).0 {
                assert!((c as usize) < 50);
            }
        }
    }

    #[test]
    fn corpus_is_diverse() {
        let corpus = diverse_corpus(10, 7);
        assert_eq!(corpus.len(), 10);
        let mut avg_rows: Vec<f64> = corpus.iter().map(|(_, m)| m.avg_row_nnz()).collect();
        avg_rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            avg_rows.last().unwrap() > &(avg_rows.first().unwrap() * 1.5),
            "corpus row densities too uniform: {avg_rows:?}"
        );
    }
}
