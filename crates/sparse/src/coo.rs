//! Coordinate (triplet) sparse storage — the assembly format produced by
//! the generators and the MatrixMarket reader.

use cubie_core::workspace;
use serde::{Deserialize, Serialize};

/// A sparse matrix as `(row, col, value)` triplets.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Coo {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row indices.
    pub row_idx: Vec<u32>,
    /// Column indices.
    pub col_idx: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
}

impl Coo {
    /// An empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            ..Default::default()
        }
    }

    /// An empty matrix with room for `cap` entries. Assembly loops that
    /// know their entry count up front avoid the doubling reallocations
    /// of growing the three triplet vectors from zero.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Self {
            rows,
            cols,
            row_idx: Vec::with_capacity(cap),
            col_idx: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of stored entries (before deduplication).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Panics (debug) if indices are out of bounds.
    #[inline]
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.row_idx.push(r as u32);
        self.col_idx.push(c as u32);
        self.vals.push(v);
    }

    /// Sort entries by `(row, col)` and sum duplicates.
    ///
    /// The permutation and the deduplicated triplets are staged in
    /// workspace scratch; the result is copied back into the existing
    /// triplet vectors (the deduplicated count never exceeds the stored
    /// count, so their capacity is reused rather than reallocated).
    pub fn sort_dedup(&mut self) {
        let n = self.nnz();
        let mut order = workspace::take_in::<u32>(n);
        order.extend(0..n as u32);
        order.sort_unstable_by_key(|&i| (self.row_idx[i as usize], self.col_idx[i as usize]));
        let mut row = workspace::take_in::<u32>(n);
        let mut col = workspace::take_in::<u32>(n);
        let mut val = workspace::take_in::<f64>(n);
        for &i in order.iter() {
            let (r, c, v) = (
                self.row_idx[i as usize],
                self.col_idx[i as usize],
                self.vals[i as usize],
            );
            if let (Some(&lr), Some(&lc)) = (row.last(), col.last()) {
                if lr == r && lc == c {
                    *val.last_mut().unwrap() += v;
                    continue;
                }
            }
            row.push(r);
            col.push(c);
            val.push(v);
        }
        self.row_idx.clear();
        self.row_idx.extend_from_slice(&row);
        self.col_idx.clear();
        self.col_idx.extend_from_slice(&col);
        self.vals.clear();
        self.vals.extend_from_slice(&val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(2, 1, -2.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn sort_dedup_sums_duplicates() {
        let mut m = Coo::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 1, 3.0);
        m.sort_dedup();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row_idx, vec![0, 1]);
        assert_eq!(m.vals, vec![2.0, 4.0]);
    }

    #[test]
    fn sort_orders_by_row_then_col() {
        let mut m = Coo::new(2, 3);
        m.push(1, 0, 1.0);
        m.push(0, 2, 2.0);
        m.push(0, 1, 3.0);
        m.sort_dedup();
        assert_eq!(m.row_idx, vec![0, 0, 1]);
        assert_eq!(m.col_idx, vec![1, 2, 0]);
    }
}
