//! Property-based tests of the sparse substrate.

use cubie_core::SplitMix64;
use cubie_sparse::{mm_io, Coo, Csr, Mbsr};
use proptest::prelude::*;

/// Arbitrary small sparse matrix as (rows, cols, triplets).
fn arb_matrix() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..40, 1usize..40).prop_flat_map(|(r, c)| {
        let triplets = proptest::collection::vec(
            (0..r, 0..c, -10.0..10.0f64).prop_map(|(i, j, v)| (i, j, v)),
            0..200,
        );
        (Just(r), Just(c), triplets)
    })
}

fn build(r: usize, c: usize, t: &[(usize, usize, f64)]) -> Csr {
    let mut coo = Coo::new(r, c);
    for &(i, j, v) in t {
        coo.push(i, j, v);
    }
    Csr::from_coo(coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction produces sorted, in-bound rows whose values sum
    /// duplicates (validated against a dense accumulation).
    #[test]
    fn csr_matches_dense_accumulation((r, c, t) in arb_matrix()) {
        let m = build(r, c, &t);
        let mut dense = vec![0.0f64; r * c];
        for &(i, j, v) in &t {
            dense[i * c + j] += v;
        }
        let got = m.to_dense();
        for (g, d) in got.iter().zip(&dense) {
            prop_assert!((g - d).abs() < 1e-9);
        }
        for row in 0..r {
            let (cols, _) = m.row(row);
            for w in cols.windows(2) {
                prop_assert!(w[0] < w[1], "row {row} not strictly sorted");
            }
        }
    }

    /// SpMV against the dense mat-vec.
    #[test]
    fn spmv_matches_dense((r, c, t) in arb_matrix(), seed in 0u64..1000) {
        let m = build(r, c, &t);
        let mut g = SplitMix64::new(seed);
        let x: Vec<f64> = (0..c).map(|_| g.next_unit() * 2.0 - 1.0).collect();
        let y = m.spmv_naive(&x);
        let dense = m.to_dense();
        for i in 0..r {
            let mut acc = 0.0f64;
            for j in 0..c {
                acc += dense[i * c + j] * x[j];
            }
            prop_assert!((y[i] - acc).abs() < 1e-9, "row {i}");
        }
    }

    /// Transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution((r, c, t) in arb_matrix()) {
        let m = build(r, c, &t);
        let tt = m.transpose().transpose();
        prop_assert_eq!(tt, m);
    }

    /// SpGEMM against the dense product.
    #[test]
    fn spgemm_matches_dense((r, c, t) in arb_matrix(), (c2, t2) in (1usize..20, proptest::collection::vec((0usize..40, 0usize..20, -4.0..4.0f64), 0..100))) {
        let a = build(r, c, &t);
        let b = build(
            c,
            c2,
            &t2.iter()
                .filter(|(i, j, _)| *i < c && *j < c2)
                .map(|&(i, j, v)| (i, j, v))
                .collect::<Vec<_>>(),
        );
        let p = a.spgemm_naive(&b);
        let (da, db, dp) = (a.to_dense(), b.to_dense(), p.to_dense());
        for i in 0..r {
            for j in 0..c2 {
                let mut acc = 0.0f64;
                for k in 0..c {
                    acc += da[i * c + k] * db[k * c2 + j];
                }
                prop_assert!((dp[i * c2 + j] - acc).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    /// mBSR tiling round-trips exactly.
    #[test]
    fn mbsr_roundtrip((r, c, t) in arb_matrix()) {
        let m = build(r, c, &t);
        let blocked = Mbsr::from_csr(&m);
        prop_assert_eq!(blocked.to_csr(), m);
    }

    /// MatrixMarket write/read round-trips exactly (bit-precise values
    /// via the %.17e format).
    #[test]
    fn matrix_market_roundtrip((r, c, t) in arb_matrix()) {
        let m = build(r, c, &t);
        let mut buf = Vec::new();
        mm_io::write_matrix(&m, &mut buf).unwrap();
        let back = mm_io::read_matrix(buf.as_slice()).unwrap();
        prop_assert_eq!(back, m);
    }
}
