//! A minimal canonical JSON value with a byte-deterministic writer and a
//! strict parser.
//!
//! The golden subsystem needs diffs to be *byte-meaningful*: two runs
//! that produce the same data must produce the same bytes, and a one-ulp
//! change in any `f64` must change the bytes. The canonical rules are:
//!
//! * **Object keys keep insertion order.** Builders construct objects in
//!   schema order, so the serialized key order is part of the schema —
//!   no locale- or hash-dependent reordering.
//! * **`f64` uses Rust's shortest round-trip representation** (`{:?}`),
//!   which is guaranteed to parse back to the identical bits. `1.0`
//!   stays `1.0` (never `1`), tiny values use exponent form (`3.1e-13`).
//! * **Non-finite floats serialize as `null`** — no artifact should
//!   produce them, and the differ treats an unexpected `null` as a
//!   mismatch against any number.
//! * **Integers are arbitrary-width** (`i128` internally) so `u64`
//!   instruction/byte counters round-trip without precision loss; a
//!   token is parsed as [`Json::Int`] exactly when it contains no `.`,
//!   `e` or `E`.
//!
//! The vendored `serde` stand-in (see the workspace README) is a no-op
//! marker, so this module is the workspace's real serialization layer.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects and lossless numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer token (no fraction or exponent in the source text).
    Int(i128),
    /// A floating-point token. Exact-class comparisons use the bits.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order (canonical key order).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`: floats directly, integers converted.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render a scalar the way CSV/report cells render it (`null` → `-`).
    /// Arrays/objects render as canonical JSON.
    pub fn render(&self) -> String {
        match self {
            Json::Null => "-".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Int(v) => v.to_string(),
            Json::Float(v) => fmt_f64(*v),
            Json::Str(s) => s.clone(),
            other => other.to_canonical_string(),
        }
    }

    /// Serialize compactly (no whitespace), canonically.
    pub fn to_canonical_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serialize pretty-printed with two-space indentation, canonically.
    /// This is the on-disk golden format: line-oriented, so text diffs of
    /// two goldens point at the changed cell.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parse canonical (or any strict) JSON text.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the top-level value"));
        }
        Ok(v)
    }
}

/// Canonical `f64` formatting: shortest representation that round-trips
/// to the identical bits (Rust's `{:?}`); non-finite values map to
/// `null`'s spelling since JSON has no NaN/Infinity.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Float(f) => out.push_str(&fmt_f64(*f)),
        Json::Str(s) => write_escaped(out, s),
        Json::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            write_value,
        ),
        Json::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, val), ind, d| {
                write_escaped(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => self.expect("null").map(|()| Json::Null),
            b't' => self.expect("true").map(|()| Json::Bool(true)),
            b'f' => self.expect("false").map(|()| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the canonical
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

/// Build an object from pairs, preserving order.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v as i128)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(i128::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i128)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v as i128)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting_round_trips_bits() {
        for v in [
            0.0,
            -0.0,
            1.0,
            3.119e-13,
            f64::MIN_POSITIVE,
            1.0 + f64::EPSILON,
            123_456_789.123_456_79,
            1e308,
        ] {
            let text = fmt_f64(v);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text} did not round-trip");
        }
    }

    #[test]
    fn one_ulp_changes_the_bytes() {
        let v = 0.1_f64;
        let bumped = f64::from_bits(v.to_bits() ^ 1);
        assert_ne!(fmt_f64(v), fmt_f64(bumped));
    }

    #[test]
    fn parse_round_trips_canonical_output() {
        let v = obj(vec![
            ("schema", "cubie-golden/v1".into()),
            ("count", 42u64.into()),
            ("big", Json::Int(u64::MAX as i128)),
            ("time_s", 3.119e-13.into()),
            ("flag", true.into()),
            ("name", "a \"quoted\" name, with commas\n".into()),
            (
                "list",
                Json::Array(vec![Json::Null, 1.5.into(), "x".into()]),
            ),
        ]);
        for text in [v.to_canonical_string(), v.to_pretty_string()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn pretty_output_is_line_oriented() {
        let v = obj(vec![("rows", Json::Array(vec![1u64.into(), 2u64.into()]))]);
        let text = v.to_pretty_string();
        assert_eq!(text, "{\n  \"rows\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn int_vs_float_tokens_are_distinguished() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::parse("7e0").unwrap(), Json::Float(7.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "1 2", "nul"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = "{\"z\": 1, \"a\": 2}";
        let v = Json::parse(text).unwrap();
        match &v {
            Json::Object(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }
}
