//! # cubie-golden
//!
//! The golden-artifact regression subsystem: turns `results/` from
//! write-only output into a verified contract.
//!
//! The repo's paper claims live in the CSVs the figure/table binaries
//! emit — a silent numerical regression in the MMU emulator or the
//! timing simulator would ship unnoticed. This crate provides the three
//! pieces that prevent that:
//!
//! 1. [`json`] — a canonical serialization layer (stable key order,
//!    shortest-round-trip `f64` formatting) so artifact diffs are
//!    byte-meaningful;
//! 2. [`artifact`] — schema-versioned result tables whose columns carry
//!    a comparison [`Class`]: **bit-exact** for emulator numerics and
//!    instruction/byte counters, **relative-epsilon** for simulated
//!    times/energy/EDP, and **ordinal** for who-wins/limiter/quadrant
//!    claims;
//! 3. [`mod@diff`] — the tolerance-aware differ producing per-artifact
//!    pass/fail with the offending cells.
//!
//! The artifact *builders* live in `cubie-bench` (they need the sweep
//! engine); the `cubie golden record|check` CLI drives them against
//! committed snapshots under `results/golden/`.

#![warn(missing_docs)]

pub mod artifact;
pub mod diff;
pub mod json;

pub use artifact::{Artifact, Class, Column, DEFAULT_EPS, SCHEMA};
pub use diff::{diff, verify_bit_identical, ArtifactDiff, CellDiff, DiffReport};
pub use json::{fmt_f64, obj, Json};
