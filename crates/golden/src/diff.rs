//! The tolerance-aware differ.
//!
//! [`diff`] compares an *actual* artifact against its recorded *golden*
//! twin cell by cell, honouring each column's [`Class`]:
//!
//! * `Exact` cells must match bit-for-bit (floats compared on their IEEE
//!   bits, so a one-ulp flip in the MMA accumulation chain is caught);
//! * `Epsilon` cells may drift within the column's relative tolerance;
//! * `Ordinal` cells must match exactly, and a mismatch is reported as
//!   an inverted claim — the paper's observations keep their direction.
//!
//! Rows are matched by their key columns, so the report names rows
//! (`gemm / H200`) instead of indices and distinguishes changed cells
//! from missing/extra rows. A [`DiffReport`] aggregates per-artifact
//! results and renders both human-readable text and a canonical JSON
//! document (`results/golden_diff.json`, uploaded by CI).

use crate::artifact::{Artifact, Class};
use crate::json::{obj, Json};

/// One mismatched cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// Row identity (key columns joined, or `row N`).
    pub row: String,
    /// Column name.
    pub column: String,
    /// The column's comparison class.
    pub class: Class,
    /// Golden value (rendered).
    pub expected: String,
    /// Actual value (rendered).
    pub actual: String,
    /// Class-specific explanation.
    pub detail: String,
}

/// The comparison result for one artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArtifactDiff {
    /// Artifact name.
    pub name: String,
    /// Structural problems: schema/meta mismatches, missing or extra
    /// rows, column changes. Any entry fails the artifact.
    pub structural: Vec<String>,
    /// Cell-level mismatches.
    pub cells: Vec<CellDiff>,
}

impl ArtifactDiff {
    /// Did the artifact match its golden?
    pub fn passed(&self) -> bool {
        self.structural.is_empty() && self.cells.is_empty()
    }
}

/// Compare `actual` against the recorded `golden`.
pub fn diff(golden: &Artifact, actual: &Artifact) -> ArtifactDiff {
    let mut d = ArtifactDiff {
        name: golden.name.clone(),
        ..ArtifactDiff::default()
    };
    if golden.name != actual.name {
        d.structural.push(format!(
            "artifact name changed: golden `{}` vs actual `{}`",
            golden.name, actual.name
        ));
        return d;
    }
    if golden.columns != actual.columns {
        let names = |a: &Artifact| -> Vec<String> {
            a.columns
                .iter()
                .map(|c| format!("{}({})", c.name, tag(c.class)))
                .collect()
        };
        d.structural.push(format!(
            "column schema changed: golden [{}] vs actual [{}] — re-record the golden if intentional",
            names(golden).join(", "),
            names(actual).join(", ")
        ));
        return d;
    }
    for (k, v) in &golden.meta {
        match actual.meta.iter().find(|(ak, _)| ak == k) {
            None => d
                .structural
                .push(format!("meta `{k}` missing from the actual artifact")),
            Some((_, av)) if av != v => d.structural.push(format!(
                "meta `{k}` changed: golden {} vs actual {} — runs are not comparable",
                v.render(),
                av.render()
            )),
            Some(_) => {}
        }
    }
    for (k, _) in &actual.meta {
        if !golden.meta.iter().any(|(gk, _)| gk == k) {
            d.structural
                .push(format!("meta `{k}` not present in the golden"));
        }
    }
    if !d.structural.is_empty() {
        return d;
    }

    // Match rows by key identity.
    let golden_keys: Vec<String> = (0..golden.rows.len()).map(|i| golden.row_key(i)).collect();
    let actual_keys: Vec<String> = (0..actual.rows.len()).map(|i| actual.row_key(i)).collect();
    for (i, key) in golden_keys.iter().enumerate() {
        let Some(j) = actual_keys.iter().position(|k| k == key) else {
            d.structural
                .push(format!("row `{key}` missing from the actual artifact"));
            continue;
        };
        diff_row(golden, key, &golden.rows[i], &actual.rows[j], &mut d);
    }
    for key in &actual_keys {
        if !golden_keys.contains(key) {
            d.structural
                .push(format!("row `{key}` not present in the golden"));
        }
    }
    d
}

fn tag(class: Class) -> &'static str {
    match class {
        Class::Exact => "exact",
        Class::Epsilon(_) => "epsilon",
        Class::Ordinal => "ordinal",
    }
}

fn diff_row(a: &Artifact, key: &str, golden: &[Json], actual: &[Json], d: &mut ArtifactDiff) {
    for ((col, g), act) in a.columns.iter().zip(golden).zip(actual) {
        let mismatch = |detail: String| CellDiff {
            row: key.to_string(),
            column: col.name.clone(),
            class: col.class,
            expected: g.render(),
            actual: act.render(),
            detail,
        };
        match col.class {
            Class::Exact => {
                if !exact_eq(g, act) {
                    let detail = match (g, act) {
                        (Json::Float(e), Json::Float(v)) => format!(
                            "bit-exact class: {} vs {} ({} ulp apart)",
                            crate::json::fmt_f64(*e),
                            crate::json::fmt_f64(*v),
                            ulp_distance(*e, *v)
                        ),
                        _ => "bit-exact class: values differ".to_string(),
                    };
                    d.cells.push(mismatch(detail));
                }
            }
            Class::Epsilon(rel) => match (g.as_f64(), act.as_f64()) {
                (Some(e), Some(v)) => {
                    if !within_rel(e, v, rel) {
                        d.cells.push(mismatch(format!(
                            "relative error {:.3e} exceeds tolerance {rel:.1e}",
                            rel_err(e, v)
                        )));
                    }
                }
                _ => {
                    if !exact_eq(g, act) {
                        d.cells
                            .push(mismatch("non-numeric cell in an epsilon column".into()));
                    }
                }
            },
            Class::Ordinal => {
                if !exact_eq(g, act) {
                    d.cells.push(mismatch(format!(
                        "ordinal claim changed direction: `{}` became `{}`",
                        g.render(),
                        act.render()
                    )));
                }
            }
        }
    }
}

/// Bit-exact JSON equality: floats compare on their IEEE-754 bits (so
/// `0.0 != -0.0` and NaN payloads matter), everything else structurally.
pub fn exact_eq(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Float(x), Json::Float(y)) => x.to_bits() == y.to_bits(),
        (Json::Array(x), Json::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| exact_eq(a, b))
        }
        (Json::Object(x), Json::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && exact_eq(va, vb))
        }
        _ => a == b,
    }
}

/// `|a-b| <= rel * max(|a|,|b|)`, with exact equality always accepted.
pub fn within_rel(a: f64, b: f64, rel: f64) -> bool {
    if a.to_bits() == b.to_bits() {
        return true;
    }
    (a - b).abs() <= rel * a.abs().max(b.abs())
}

fn rel_err(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Distance in units-in-the-last-place between two same-sign finite
/// floats (saturating, for readable reports).
fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_finite() && b.is_finite() && a.is_sign_positive() == b.is_sign_positive() {
        (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
    } else {
        u64::MAX
    }
}

/// Cache-validation oracle: require `actual` to reproduce `golden`
/// **bit-for-bit**, not merely within tolerance. Runs the regular
/// [`diff`] first (so a failure names the offending rows/cells in the
/// familiar report spelling), then compares the canonical
/// serializations byte-for-byte — catching drift an `Epsilon`/`Ordinal`
/// column class would have tolerated. This is the store-validation path
/// of the `cubied` content-addressed result store, where a hit must be
/// indistinguishable from a fresh run.
pub fn verify_bit_identical(golden: &Artifact, actual: &Artifact) -> Result<(), String> {
    let d = diff(golden, actual);
    if !d.passed() {
        return Err(DiffReport { artifacts: vec![d] }.render());
    }
    let g = golden.to_json().to_pretty_string();
    let a = actual.to_json().to_pretty_string();
    if g != a {
        return Err(format!(
            "artifact `{}` diffs clean but its canonical serialization differs \
             (a tolerance-class column absorbed real drift)",
            golden.name
        ));
    }
    Ok(())
}

/// The aggregated result of checking a set of artifacts.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Per-artifact results, in check order.
    pub artifacts: Vec<ArtifactDiff>,
}

impl DiffReport {
    /// Did every artifact pass?
    pub fn passed(&self) -> bool {
        self.artifacts.iter().all(ArtifactDiff::passed)
    }

    /// Human-readable per-artifact report with the offending cells.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for a in &self.artifacts {
            if a.passed() {
                out.push_str(&format!("PASS  {}\n", a.name));
                continue;
            }
            out.push_str(&format!(
                "FAIL  {} ({} structural, {} cell mismatches)\n",
                a.name,
                a.structural.len(),
                a.cells.len()
            ));
            for s in &a.structural {
                out.push_str(&format!("      ! {s}\n"));
            }
            const MAX_CELLS: usize = 20;
            for c in a.cells.iter().take(MAX_CELLS) {
                out.push_str(&format!(
                    "      x [{}] {} · {}: expected {}, got {} — {}\n",
                    tag(c.class),
                    c.row,
                    c.column,
                    c.expected,
                    c.actual,
                    c.detail
                ));
            }
            if a.cells.len() > MAX_CELLS {
                out.push_str(&format!(
                    "      … and {} more cell mismatches\n",
                    a.cells.len() - MAX_CELLS
                ));
            }
        }
        let failed = self.artifacts.iter().filter(|a| !a.passed()).count();
        out.push_str(&format!(
            "\n{} of {} artifacts passed.\n",
            self.artifacts.len() - failed,
            self.artifacts.len()
        ));
        out
    }

    /// Canonical JSON for `results/golden_diff.json`.
    pub fn to_json(&self) -> Json {
        let artifacts = self
            .artifacts
            .iter()
            .map(|a| {
                obj(vec![
                    ("artifact", Json::Str(a.name.clone())),
                    ("passed", Json::Bool(a.passed())),
                    (
                        "structural",
                        Json::Array(a.structural.iter().map(|s| Json::Str(s.clone())).collect()),
                    ),
                    (
                        "cells",
                        Json::Array(
                            a.cells
                                .iter()
                                .map(|c| {
                                    obj(vec![
                                        ("row", Json::Str(c.row.clone())),
                                        ("column", Json::Str(c.column.clone())),
                                        ("class", Json::Str(tag(c.class).to_string())),
                                        ("expected", Json::Str(c.expected.clone())),
                                        ("actual", Json::Str(c.actual.clone())),
                                        ("detail", Json::Str(c.detail.clone())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("schema", "cubie-golden-diff/v1".into()),
            ("passed", Json::Bool(self.passed())),
            ("artifacts", Json::Array(artifacts)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Column;

    fn base() -> Artifact {
        let mut a = Artifact::new(
            "t",
            vec![
                Column::exact("who").key(),
                Column::exact("err"),
                Column::eps("time_s", 1e-3),
                Column::ordinal("winner"),
            ],
        )
        .with_meta("sparse_scale", 64usize);
        a.push(vec![
            "gemm".into(),
            3.119e-13.into(),
            1.0e-3.into(),
            "tc".into(),
        ]);
        a.push(vec!["scan".into(), 0.0.into(), 2.0e-6.into(), "tc".into()]);
        a
    }

    #[test]
    fn identical_artifacts_pass() {
        assert!(diff(&base(), &base()).passed());
    }

    #[test]
    fn bit_exact_class_rejects_a_one_ulp_flip() {
        let golden = base();
        let mut actual = base();
        let flipped = f64::from_bits(3.119e-13_f64.to_bits() ^ 1);
        actual.rows[0][1] = Json::Float(flipped);
        let d = diff(&golden, &actual);
        assert!(!d.passed());
        assert_eq!(d.cells.len(), 1);
        let c = &d.cells[0];
        assert_eq!((c.row.as_str(), c.column.as_str()), ("gemm", "err"));
        assert!(c.detail.contains("1 ulp"), "detail: {}", c.detail);
    }

    #[test]
    fn epsilon_class_accepts_drift_inside_tolerance() {
        let golden = base();
        let mut actual = base();
        actual.rows[0][2] = Json::Float(1.0e-3 * (1.0 + 5e-4)); // rel 5e-4 < 1e-3
        assert!(diff(&golden, &actual).passed());
    }

    #[test]
    fn epsilon_class_rejects_drift_outside_tolerance() {
        let golden = base();
        let mut actual = base();
        actual.rows[0][2] = Json::Float(1.0e-3 * 1.01); // rel 1e-2 > 1e-3
        let d = diff(&golden, &actual);
        assert_eq!(d.cells.len(), 1);
        assert!(d.cells[0].detail.contains("tolerance"));
    }

    #[test]
    fn ordinal_class_rejects_a_who_wins_inversion() {
        let golden = base();
        let mut actual = base();
        actual.rows[1][3] = "baseline".into();
        let d = diff(&golden, &actual);
        assert_eq!(d.cells.len(), 1);
        assert!(
            d.cells[0].detail.contains("direction"),
            "{}",
            d.cells[0].detail
        );
    }

    #[test]
    fn missing_and_extra_rows_are_structural() {
        let golden = base();
        let mut actual = base();
        actual.rows.remove(1);
        actual.push(vec!["spmv".into(), 0.0.into(), 1.0.into(), "tc".into()]);
        let d = diff(&golden, &actual);
        assert_eq!(d.structural.len(), 2);
        assert!(d.structural[0].contains("scan"));
        assert!(d.structural[1].contains("spmv"));
    }

    #[test]
    fn meta_change_means_runs_not_comparable() {
        let golden = base();
        let actual = {
            let mut a = base();
            a.meta[0].1 = Json::Int(32);
            a
        };
        let d = diff(&golden, &actual);
        assert!(!d.passed());
        assert!(d.structural[0].contains("not comparable"));
    }

    #[test]
    fn column_schema_change_asks_for_rerecord() {
        let golden = base();
        let mut actual = base();
        actual.columns[2] = Column::eps("time_s", 1e-2);
        let d = diff(&golden, &actual);
        assert!(d.structural[0].contains("re-record"));
    }

    #[test]
    fn report_renders_pass_fail_lines() {
        let mut r = DiffReport::default();
        r.artifacts.push(diff(&base(), &base()));
        let mut bad = base();
        bad.rows[1][3] = "baseline".into();
        r.artifacts.push(diff(&base(), &bad));
        let text = r.render();
        assert!(text.contains("PASS  t"));
        assert!(text.contains("FAIL  t"));
        assert!(text.contains("1 of 2 artifacts passed"));
        assert!(!r.passed());
        // The JSON report carries the same verdicts.
        let doc = r.to_json();
        assert_eq!(doc.get("passed"), Some(&Json::Bool(false)));
    }

    #[test]
    fn verify_bit_identical_rejects_tolerated_epsilon_drift() {
        assert!(verify_bit_identical(&base(), &base()).is_ok());
        // A one-ulp flip in an Exact column fails via the differ, with
        // the familiar cell report.
        let mut flipped = base();
        flipped.rows[0][1] = Json::Float(f64::from_bits(3.119e-13_f64.to_bits() ^ 1));
        let err = verify_bit_identical(&base(), &flipped).unwrap_err();
        assert!(err.contains("FAIL  t"), "{err}");
        // Drift inside the Epsilon tolerance passes the differ but must
        // still fail bit-identity — the store serves bytes, not bounds.
        let mut drifted = base();
        drifted.rows[0][2] = Json::Float(1.0e-3 * (1.0 + 5e-4));
        assert!(diff(&base(), &drifted).passed());
        let err = verify_bit_identical(&base(), &drifted).unwrap_err();
        assert!(err.contains("canonical serialization"), "{err}");
    }

    #[test]
    fn negative_zero_is_not_zero_in_exact_class() {
        let golden = base();
        let mut actual = base();
        actual.rows[1][1] = Json::Float(-0.0);
        assert!(!diff(&golden, &actual).passed());
    }
}
