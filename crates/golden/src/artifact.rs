//! Schema-versioned result artifacts.
//!
//! An [`Artifact`] is a named table with typed columns, written as
//! canonical JSON next to the CSV every harness binary already emits.
//! Each column carries a [`Class`] telling the differ how its cells must
//! compare across runs:
//!
//! * [`Class::Exact`] — bit-exact. Emulator numerics (FP64 error stats)
//!   and instruction/byte counters: a refactor must not move a single
//!   ulp or count.
//! * [`Class::Epsilon`] — relative tolerance. Simulated times, energy,
//!   EDP, throughputs: model-parameter tweaks may drift magnitudes
//!   slightly without invalidating the artifact.
//! * [`Class::Ordinal`] — directional claims (who wins, which pipe
//!   limits, which quadrant). The paper's observations must keep their
//!   *direction* even when magnitudes drift; any change is a failure
//!   regardless of how close the underlying numbers were.
//!
//! Columns flagged `key` identify a row across runs, so the differ can
//! report missing/extra rows by name instead of by index.

use std::path::Path;

use crate::json::{obj, Json};

/// The on-disk schema identifier. Bump when the artifact layout changes
/// incompatibly; `check` refuses to compare across schema versions.
pub const SCHEMA: &str = "cubie-golden/v1";

/// How cells of a column must compare across runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Class {
    /// Bit-exact: strings, integers, and `f64`s compared by bits.
    Exact,
    /// Relative epsilon: `|a-b| <= rel * max(|a|,|b|)`.
    Epsilon(f64),
    /// Directional/categorical claim: compared exactly, but a mismatch
    /// is reported as an inverted claim, not a numeric drift.
    Ordinal,
}

impl Class {
    fn tag(&self) -> &'static str {
        match self {
            Class::Exact => "exact",
            Class::Epsilon(_) => "epsilon",
            Class::Ordinal => "ordinal",
        }
    }
}

/// One typed column of an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (CSV header / JSON field).
    pub name: String,
    /// Comparison class.
    pub class: Class,
    /// Whether this column is part of the row identity.
    pub key: bool,
}

impl Column {
    /// A bit-exact column.
    pub fn exact(name: &str) -> Self {
        Column {
            name: name.to_string(),
            class: Class::Exact,
            key: false,
        }
    }

    /// A relative-epsilon column with tolerance `rel`.
    pub fn eps(name: &str, rel: f64) -> Self {
        Column {
            name: name.to_string(),
            class: Class::Epsilon(rel),
            key: false,
        }
    }

    /// An ordinal (directional claim) column.
    pub fn ordinal(name: &str) -> Self {
        Column {
            name: name.to_string(),
            class: Class::Ordinal,
            key: false,
        }
    }

    /// Mark the column as part of the row key.
    pub fn key(mut self) -> Self {
        self.key = true;
        self
    }
}

/// The default relative tolerance for simulated times/energy/EDP.
pub const DEFAULT_EPS: f64 = 1e-6;

/// A named, schema-versioned result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Artifact name (= file stem under `results/` and `results/golden/`).
    pub name: String,
    /// Free-form provenance (scales, repeat counts…), part of the
    /// golden contract: `check` compares it bit-exactly.
    pub meta: Vec<(String, Json)>,
    /// Column schema.
    pub columns: Vec<Column>,
    /// Rows; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Json>>,
}

impl Artifact {
    /// A new, empty artifact.
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        Artifact {
            name: name.to_string(),
            meta: Vec::new(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Attach a provenance entry (compared bit-exactly by `check`).
    pub fn with_meta(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.meta.push((key.to_string(), value.into()));
        self
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the column schema.
    pub fn push(&mut self, row: Vec<Json>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "artifact `{}`: row arity {} != {} columns",
            self.name,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// The identity of row `i`: key-column cells joined with ` / `, with
    /// a `#n` occurrence suffix when several rows share key cells (e.g.
    /// trace samples), so every row has a stable unique identity.
    pub fn row_key(&self, i: usize) -> String {
        let key_of = |row: &[Json]| -> String {
            let parts: Vec<String> = self
                .columns
                .iter()
                .zip(row)
                .filter(|(c, _)| c.key)
                .map(|(_, v)| v.render())
                .collect();
            if parts.is_empty() {
                String::new()
            } else {
                parts.join(" / ")
            }
        };
        let base = key_of(&self.rows[i]);
        let occurrence = self.rows[..i].iter().filter(|r| key_of(r) == base).count();
        match (base.is_empty(), occurrence) {
            (true, _) => format!("row {i}"),
            (false, 0) => base,
            (false, n) => format!("{base} #{n}"),
        }
    }

    /// CSV projection: headers and rendered cells, so the CSV next to the
    /// JSON is a view of the same canonical data.
    pub fn csv(&self) -> (Vec<&str>, Vec<Vec<String>>) {
        let headers = self.columns.iter().map(|c| c.name.as_str()).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| r.iter().map(Json::render).collect())
            .collect();
        (headers, rows)
    }

    /// Serialize to the canonical JSON document.
    pub fn to_json(&self) -> Json {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let mut pairs = vec![
                    ("name", Json::Str(c.name.clone())),
                    ("class", Json::Str(c.class.tag().to_string())),
                ];
                if let Class::Epsilon(rel) = c.class {
                    pairs.push(("rel_eps", Json::Float(rel)));
                }
                if c.key {
                    pairs.push(("key", Json::Bool(true)));
                }
                obj(pairs)
            })
            .collect();
        obj(vec![
            ("schema", SCHEMA.into()),
            ("artifact", Json::Str(self.name.clone())),
            (
                "meta",
                Json::Object(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
            ("columns", Json::Array(columns)),
            (
                "rows",
                Json::Array(self.rows.iter().map(|r| Json::Array(r.clone())).collect()),
            ),
        ])
    }

    /// Deserialize from a canonical JSON document.
    pub fn from_json(doc: &Json) -> Result<Artifact, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema`")?;
        if schema != SCHEMA {
            return Err(format!("schema `{schema}` != supported `{SCHEMA}`"));
        }
        let name = doc
            .get("artifact")
            .and_then(Json::as_str)
            .ok_or("missing `artifact`")?
            .to_string();
        let meta = match doc.get("meta") {
            Some(Json::Object(pairs)) => pairs.clone(),
            _ => return Err("missing `meta` object".to_string()),
        };
        let mut columns = Vec::new();
        for c in doc
            .get("columns")
            .and_then(Json::as_array)
            .ok_or("missing `columns`")?
        {
            let cname = c
                .get("name")
                .and_then(Json::as_str)
                .ok_or("column without `name`")?;
            let class = match c.get("class").and_then(Json::as_str) {
                Some("exact") => Class::Exact,
                Some("epsilon") => Class::Epsilon(
                    c.get("rel_eps")
                        .and_then(Json::as_f64)
                        .unwrap_or(DEFAULT_EPS),
                ),
                Some("ordinal") => Class::Ordinal,
                other => return Err(format!("column `{cname}`: unknown class {other:?}")),
            };
            columns.push(Column {
                name: cname.to_string(),
                class,
                key: c.get("key").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        let mut artifact = Artifact {
            name,
            meta,
            columns,
            rows: Vec::new(),
        };
        for row in doc
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("missing `rows`")?
        {
            let cells = row.as_array().ok_or("row is not an array")?.to_vec();
            if cells.len() != artifact.columns.len() {
                return Err(format!(
                    "row arity {} != {} columns",
                    cells.len(),
                    artifact.columns.len()
                ));
            }
            artifact.rows.push(cells);
        }
        Ok(artifact)
    }

    /// Write the artifact as pretty canonical JSON to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty_string())
    }

    /// Read an artifact from a JSON file.
    pub fn read(path: impl AsRef<Path>) -> Result<Artifact, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Artifact::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut a = Artifact::new(
            "sample",
            vec![
                Column::exact("workload").key(),
                Column::exact("device").key(),
                Column::eps("time_s", 1e-6),
                Column::ordinal("winner"),
                Column::exact("count"),
            ],
        )
        .with_meta("sparse_scale", 64usize)
        .with_meta("graph_scale", 512usize);
        a.push(vec![
            "gemm".into(),
            "H200".into(),
            1.5e-3.into(),
            "tc".into(),
            42u64.into(),
        ]);
        a.push(vec![
            "scan".into(),
            "H200".into(),
            2.5e-6.into(),
            "tc".into(),
            7u64.into(),
        ]);
        a
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let a = sample();
        let text = a.to_json().to_pretty_string();
        let back = Artifact::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn file_round_trip() {
        let a = sample();
        let path = std::env::temp_dir().join("cubie_golden_artifact_test.json");
        a.write(&path).unwrap();
        let back = Artifact::read(&path).unwrap();
        assert_eq!(a, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn row_keys_use_key_columns_and_disambiguate_duplicates() {
        let mut a = sample();
        a.push(vec![
            "gemm".into(),
            "H200".into(),
            9.0.into(),
            "cc".into(),
            1u64.into(),
        ]);
        assert_eq!(a.row_key(0), "gemm / H200");
        assert_eq!(a.row_key(1), "scan / H200");
        assert_eq!(a.row_key(2), "gemm / H200 #1");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut doc = sample().to_json();
        if let Json::Object(pairs) = &mut doc {
            pairs[0].1 = Json::Str("cubie-golden/v0".to_string());
        }
        assert!(Artifact::from_json(&doc).unwrap_err().contains("schema"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut a = sample();
        a.push(vec!["x".into()]);
    }

    #[test]
    fn csv_projection_renders_cells() {
        let a = sample();
        let (headers, rows) = a.csv();
        assert_eq!(
            headers,
            vec!["workload", "device", "time_s", "winner", "count"]
        );
        assert_eq!(rows[0][2], "0.0015");
        assert_eq!(rows[0][4], "42");
    }
}
