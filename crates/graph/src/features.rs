//! Structural graph features for the Figure 10a PCA coverage study.

use serde::{Deserialize, Serialize};

use crate::bitmap::BitmapGraph;
use crate::csr_graph::CsrGraph;

/// Names of the feature dimensions, in [`GraphFeatures::to_vec`] order.
pub const GRAPH_FEATURE_NAMES: [&str; 8] = [
    "log_vertices",
    "log_edges",
    "avg_degree",
    "degree_cv",
    "max_degree_ratio",
    "isolated_fraction",
    "bfs_depth_ratio",
    "slice_fill",
];

/// Structural features of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphFeatures {
    /// `ln(n)`.
    pub log_vertices: f64,
    /// `ln(arcs)`.
    pub log_edges: f64,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Coefficient of variation of out-degrees.
    pub degree_cv: f64,
    /// Max degree over mean degree (hubbiness).
    pub max_degree_ratio: f64,
    /// Fraction of vertices with no out-arcs.
    pub isolated_fraction: f64,
    /// BFS eccentricity from the max-degree vertex over `log2(n)` — 1 for
    /// small-world graphs, large for grids/chains.
    pub bfs_depth_ratio: f64,
    /// Bitmap slice fill of the 8×128 block representation.
    pub slice_fill: f64,
}

impl GraphFeatures {
    /// Extract features from a graph.
    pub fn of(g: &CsrGraph) -> Self {
        assert!(
            g.n > 0 && g.num_arcs() > 0,
            "features need a nonempty graph"
        );
        let n = g.n as f64;
        let m = g.num_arcs() as f64;
        let mean = m / n;
        let mut sq = 0.0f64;
        let mut max_deg = 0usize;
        let mut isolated = 0usize;
        for v in 0..g.n {
            let d = g.degree(v);
            sq += (d * d) as f64;
            max_deg = max_deg.max(d);
            isolated += usize::from(d == 0);
        }
        let var = (sq / n - mean * mean).max(0.0);

        let levels = g.bfs_serial(g.max_degree_vertex());
        let depth = levels.iter().copied().max().unwrap_or(0).max(0) as f64;
        let bitmap = BitmapGraph::from_graph(g);

        Self {
            log_vertices: n.ln(),
            log_edges: m.ln(),
            avg_degree: mean,
            degree_cv: var.sqrt() / mean.max(1e-12),
            max_degree_ratio: max_deg as f64 / mean.max(1e-12),
            isolated_fraction: isolated as f64 / n,
            bfs_depth_ratio: depth / n.log2().max(1.0),
            slice_fill: bitmap.slice_fill(),
        }
    }

    /// Flatten into the PCA input ordering of [`GRAPH_FEATURE_NAMES`].
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.log_vertices,
            self.log_edges,
            self.avg_degree,
            self.degree_cv,
            self.max_degree_ratio,
            self.isolated_fraction,
            self.bfs_depth_ratio,
            self.slice_fill,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_graph, kron_g500, mycielskian};

    #[test]
    fn grid_is_deep_and_regular() {
        let f = GraphFeatures::of(&grid_graph(30, 30));
        assert!(f.degree_cv < 0.3, "grid degrees nearly uniform");
        assert!(f.bfs_depth_ratio > 3.0, "grids have long BFS depth");
    }

    #[test]
    fn kronecker_is_shallow_and_skewed() {
        let f = GraphFeatures::of(&kron_g500(11, 16, 3));
        assert!(f.degree_cv > 1.0, "kron graphs are skewed");
        assert!(f.bfs_depth_ratio < 1.5, "kron graphs are small-world");
    }

    #[test]
    fn mycielskian_has_no_isolated_vertices() {
        let f = GraphFeatures::of(&mycielskian(8));
        assert_eq!(f.isolated_fraction, 0.0);
    }

    #[test]
    fn feature_vector_matches_names() {
        let f = GraphFeatures::of(&grid_graph(5, 5));
        assert_eq!(f.to_vec().len(), GRAPH_FEATURE_NAMES.len());
    }
}
