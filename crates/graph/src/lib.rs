//! # cubie-graph
//!
//! Graph substrate for the BFS workload and the coverage analysis:
//!
//! * [`csr_graph`] — adjacency in CSR form with a serial reference BFS
//!   (the correctness oracle).
//! * [`bitmap`] — the BerryBees 8×128 bitmap block slice-set format that
//!   feeds the single-bit `mma.m8n8k128` tensor-core BFS.
//! * [`generators`] — synthetic stand-ins for the five SuiteSparse graphs
//!   of Table 3. `mycielskian17` is reconstructed **exactly** (the
//!   Mycielski construction is deterministic; our vertex and edge counts
//!   match the published 98 303 / 100 245 742). The web, social and
//!   Kronecker graphs are generated with RMAT/Kronecker samplers matched
//!   to the published vertex/edge counts and degree-skew class, with a
//!   `scale` divisor for affordable functional runs.
//! * [`features`] — structural graph features for the Figure 10a PCA.

#![warn(missing_docs)]

pub mod bitmap;
pub mod csr_graph;
pub mod features;
pub mod generators;

pub use bitmap::BitmapGraph;
pub use csr_graph::CsrGraph;
pub use features::GraphFeatures;
pub use generators::{table3_graphs, table3_specs, GraphInfo};
