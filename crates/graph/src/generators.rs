//! Synthetic stand-ins for the five SuiteSparse graphs of Table 3.
//!
//! | graph                | class reproduced                              |
//! |----------------------|-----------------------------------------------|
//! | `wikipedia-20070206` | directed power-law web/wiki link graph (RMAT) |
//! | `mycielskian17`      | **exact** Mycielski construction (deterministic; published counts matched exactly) |
//! | `wb-edu`             | host-clustered web crawl (RMAT, heavier skew) |
//! | `kron_g500-logn21`   | Graph500 Kronecker generator, standard params |
//! | `com-Orkut`          | undirected social network (RMAT, symmetric)   |
//!
//! Paper-scale graphs reach 234 M arcs; functional BFS runs use a `scale`
//! divisor (halving vertex counts `log2(scale)` times) that preserves the
//! degree distribution class, while the published full-size vertex/arc
//! counts remain available from [`table3_specs`] for reporting.

use cubie_core::SplitMix64;
use serde::{Deserialize, Serialize};

use crate::csr_graph::CsrGraph;

/// Published metadata of one Table 3 graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphInfo {
    /// SuiteSparse graph name.
    pub name: &'static str,
    /// SuiteSparse group.
    pub group: &'static str,
    /// Published vertex count.
    pub vertices: usize,
    /// Published edge (arc) count.
    pub edges: usize,
}

/// The five Table 3 entries, in the paper's order.
pub fn table3_specs() -> [GraphInfo; 5] {
    [
        GraphInfo {
            name: "wikipedia-20070206",
            group: "Gleich",
            vertices: 3_566_907,
            edges: 90_043_704,
        },
        GraphInfo {
            name: "mycielskian17",
            group: "Mycielski",
            vertices: 98_303,
            edges: 100_245_742,
        },
        GraphInfo {
            name: "wb-edu",
            group: "SNAP",
            vertices: 9_845_725,
            edges: 112_468_163,
        },
        GraphInfo {
            name: "kron_g500-logn21",
            group: "DIMACS10",
            vertices: 2_097_152,
            edges: 182_082_942,
        },
        GraphInfo {
            name: "com-Orkut",
            group: "SNAP",
            vertices: 3_072_441,
            edges: 234_370_166,
        },
    ]
}

/// RMAT recursive-matrix graph generator (Chakrabarti et al.): `n` must
/// be a power of two; emits `m` edges by recursive quadrant descent with
/// probabilities `(a, b, c, d)` plus smoothing noise, then builds CSR
/// (duplicates merge).
#[allow(clippy::too_many_arguments)]
pub fn rmat(
    n: usize,
    m: usize,
    a: f64,
    b: f64,
    c: f64,
    d: f64,
    seed: u64,
    symmetrize: bool,
) -> CsrGraph {
    assert!(
        n.is_power_of_two(),
        "RMAT needs a power-of-two vertex count"
    );
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "probabilities must sum to 1"
    );
    let levels = n.trailing_zeros();
    let mut g = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            u <<= 1;
            v <<= 1;
            // ±10 % noise per level keeps the degree sequence from
            // becoming too regular.
            let noise = 0.9 + 0.2 * g.next_unit();
            let (pa, pb, pc) = (a * noise, b, c);
            let total = pa + pb + pc + d;
            let r = g.next_unit() * total;
            if r < pa {
                // top-left
            } else if r < pa + pb {
                v |= 1;
            } else if r < pa + pb + pc {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u as u32, v as u32));
    }
    CsrGraph::from_edges(n, &edges, symmetrize)
}

/// Graph500 Kronecker generator: RMAT with the reference parameters
/// `a = 0.57, b = 0.19, c = 0.19, d = 0.05`, `edgefactor` edges per
/// vertex, symmetrized (as the DIMACS10 `kron_g500` graphs are).
pub fn kron_g500(log_n: u32, edgefactor: usize, seed: u64) -> CsrGraph {
    let n = 1usize << log_n;
    rmat(n, n * edgefactor, 0.57, 0.19, 0.19, 0.05, seed, true)
}

/// The exact Mycielski construction: `mycielskian(k)` for `k ≥ 2`, where
/// `mycielskian(2)` is a single edge (K₂). Each step maps
/// `(V, E) → (V ∪ V' ∪ {w},  E ∪ {u_i v' : uv ∈ E} ∪ {v' w})`,
/// tripling edges and (2n+1)-ing vertices — `mycielskian(17)` reproduces
/// the published 98 303 vertices and 100 245 742 arcs exactly.
pub fn mycielskian(k: u32) -> CsrGraph {
    assert!(k >= 2, "Mycielskian is defined for k >= 2");
    // Undirected edge list, grown iteratively.
    let mut n: usize = 2;
    let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
    for _ in 2..k {
        let mut next = Vec::with_capacity(edges.len() * 3 + n);
        // original edges
        next.extend_from_slice(&edges);
        // u_i ↔ copies of neighbours: for edge (u, v) add (u, v') and (v, u')
        for &(u, v) in &edges {
            next.push((u, v + n as u32));
            next.push((v, u + n as u32));
        }
        // w connects to every copy vertex
        let w = (2 * n) as u32;
        for i in 0..n as u32 {
            next.push((i + n as u32, w));
        }
        edges = next;
        n = 2 * n + 1;
    }
    CsrGraph::from_edges(n, &edges, true)
}

/// Generate the synthetic counterpart of a Table 3 graph by name at the
/// given scale divisor. `scale == 1` targets the published size
/// (memory permitting); each doubling of `scale` halves the vertex count
/// (Mycielskian: lowers the order by one step, dividing edges by ~3).
///
/// # Panics
/// Panics on an unknown name.
pub fn generate(name: &str, scale: usize) -> CsrGraph {
    let shift = scale.max(1).next_power_of_two().trailing_zeros();
    match name {
        // Web/wiki/social graphs: community-structured samplers. Real
        // SuiteSparse web graphs are URL-sorted (most links intra-host)
        // and social graphs community-clustered — the vertex locality
        // the bitmap slice-set format exploits. A pure RMAT sampler has
        // none, so these graphs use the community model.
        "wikipedia-20070206" => {
            let n = (1usize << 22) >> shift; // 4.19M ≈ 3.57M published
            let m = 90_043_704 >> shift;
            community_graph(n.max(1024), m.max(4096), 0.85, 96, 2.4, 0xA11CE, false)
        }
        "mycielskian17" => mycielskian(17u32.saturating_sub(shift).max(4)),
        "wb-edu" => {
            let n = (1usize << 23) >> shift; // 8.39M ≈ 9.85M published
            let m = 112_468_163 >> shift;
            community_graph(n.max(1024), m.max(4096), 0.88, 128, 2.6, 0xED0, false)
        }
        "kron_g500-logn21" => kron_g500(21u32.saturating_sub(shift).max(10), 87, 0x6500),
        "com-Orkut" => {
            let n = (1usize << 22) >> shift; // 4.19M ≈ 3.07M published
            let m = (234_370_166 / 2) >> shift; // undirected edges
            community_graph(n.max(1024), m.max(4096), 0.82, 96, 2.0, 0x0EC, true)
        }
        other => panic!("unknown Table 3 graph `{other}`"),
    }
}

/// Community-structured power-law graph sampler: endpoints are drawn from
/// a skewed distribution (`id = n·u^skew` — low ids become hubs), and a
/// `local_frac` fraction of edges stay within `window` of the source
/// (intra-community links). Models the URL/community vertex locality of
/// real web and social graphs.
pub fn community_graph(
    n: usize,
    m: usize,
    local_frac: f64,
    window: usize,
    skew: f64,
    seed: u64,
    symmetrize: bool,
) -> CsrGraph {
    let mut g = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m);
    let pick = |g: &mut SplitMix64| -> usize {
        ((n as f64 * g.next_unit().powf(skew)) as usize).min(n - 1)
    };
    for _ in 0..m {
        let u = pick(&mut g);
        let v = if g.bernoulli(local_frac) {
            let off = g.next_range(2 * window as u64 + 1) as i64 - window as i64;
            (u as i64 + off).rem_euclid(n as i64) as usize
        } else {
            pick(&mut g)
        };
        if u != v {
            edges.push((u as u32, v as u32));
        }
    }
    CsrGraph::from_edges(n, &edges, symmetrize)
}

/// All five Table 3 graphs with metadata at the given scale divisor.
///
/// Generation fans out across the worker pool, dispatched heaviest
/// first (LPT by the published arc count, which ranks the scaled costs
/// too). Each graph is built by its own deterministic generator, so
/// output order and every bit are identical to the previous serial loop.
pub fn table3_graphs(scale: usize) -> Vec<(GraphInfo, CsrGraph)> {
    let specs = table3_specs();
    let graphs = cubie_core::par::par_map_lpt(
        specs.len(),
        |i| specs[i].edges as f64,
        |i| generate(specs[i].name, scale),
    );
    specs.into_iter().zip(graphs).collect()
}

/// A small diverse corpus of graphs for the Figure 10a coverage study:
/// RMAT variants, Kronecker, Mycielskians, grids and random graphs.
pub fn diverse_graph_corpus(count: usize, seed: u64) -> Vec<(String, CsrGraph)> {
    let mut g = SplitMix64::new(seed);
    (0..count)
        .map(|i| {
            let s = g.next_u64();
            let graph = match i % 5 {
                0 => {
                    let logn = 9 + (s % 4) as u32;
                    kron_g500(logn, 8 + (s % 24) as usize, s)
                }
                1 => {
                    let n = 1usize << (9 + (s % 4));
                    rmat(
                        n,
                        n * (4 + (s % 16) as usize),
                        0.45,
                        0.25,
                        0.2,
                        0.1,
                        s,
                        false,
                    )
                }
                2 => mycielskian(6 + (s % 5) as u32),
                3 => grid_graph(12 + (s % 40) as usize, 12 + ((s >> 8) % 40) as usize),
                _ => {
                    let n = 1usize << (9 + (s % 4));
                    rmat(
                        n,
                        n * (2 + (s % 6) as usize),
                        0.25,
                        0.25,
                        0.25,
                        0.25,
                        s,
                        true,
                    )
                }
            };
            (format!("corpus-{i}"), graph)
        })
        .collect()
}

/// A 2-D grid graph (4-connected), the low-variance end of the corpus.
pub fn grid_graph(nx: usize, ny: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(2 * nx * ny);
    let id = |i: usize, j: usize| (i * ny + j) as u32;
    for i in 0..nx {
        for j in 0..ny {
            if i + 1 < nx {
                edges.push((id(i, j), id(i + 1, j)));
            }
            if j + 1 < ny {
                edges.push((id(i, j), id(i, j + 1)));
            }
        }
    }
    CsrGraph::from_edges(nx * ny, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mycielskian_counts_follow_recurrence() {
        // n_{k+1} = 2 n_k + 1, arcs_{k+1} = 3 arcs_k + 2 n_k.
        let mut n = 2usize;
        let mut arcs = 2usize;
        for k in 2..=10u32 {
            let g = mycielskian(k);
            assert_eq!(g.n, n, "k={k}");
            assert_eq!(g.num_arcs(), arcs, "k={k}");
            arcs = 3 * arcs + 2 * n;
            n = 2 * n + 1;
        }
    }

    #[test]
    fn mycielskian17_matches_table3_by_recurrence() {
        // Extrapolate the verified recurrence to k = 17 instead of
        // materializing 100M arcs in a unit test.
        let mut n = 2usize;
        let mut arcs = 2usize;
        for _ in 2..17 {
            arcs = 3 * arcs + 2 * n;
            n = 2 * n + 1;
        }
        let spec = table3_specs()[1];
        assert_eq!(n, spec.vertices);
        assert_eq!(arcs, spec.edges);
    }

    #[test]
    fn mycielskian_is_triangle_free_small() {
        // Mycielski graphs are triangle-free by construction.
        let g = mycielskian(5);
        for u in 0..g.n {
            for &v in g.neighbors(u) {
                for &w in g.neighbors(v as usize) {
                    if (w as usize) != u {
                        assert!(
                            !g.neighbors(w as usize).contains(&(u as u32)),
                            "triangle {u}-{v}-{w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(1 << 12, 16 << 12, 0.57, 0.19, 0.19, 0.05, 5, false);
        let max_deg = (0..g.n).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_arcs() as f64 / g.n as f64;
        assert!(
            max_deg as f64 > 10.0 * avg,
            "power-law graph should have hubs: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn uniform_rmat_is_not_skewed() {
        let g = rmat(1 << 12, 8 << 12, 0.25, 0.25, 0.25, 0.25, 5, false);
        let max_deg = (0..g.n).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_arcs() as f64 / g.n as f64;
        assert!((max_deg as f64) < 6.0 * avg, "max {max_deg}, avg {avg}");
    }

    #[test]
    fn generate_all_scaled() {
        for spec in table3_specs() {
            let g = generate(spec.name, 256);
            assert!(g.n > 0, "{} empty", spec.name);
            assert!(g.num_arcs() > 0, "{} no arcs", spec.name);
            assert!(g.n < spec.vertices, "{} did not scale down", spec.name);
        }
    }

    #[test]
    fn grid_graph_degrees() {
        let g = grid_graph(3, 3);
        assert_eq!(g.n, 9);
        assert_eq!(g.degree(4), 4); // centre
        assert_eq!(g.degree(0), 2); // corner
    }

    #[test]
    fn symmetric_generators_produce_symmetric_graphs() {
        let g = generate("com-Orkut", 512);
        for u in (0..g.n).step_by(97) {
            for &v in g.neighbors(u) {
                assert!(
                    g.neighbors(v as usize).contains(&(u as u32)),
                    "missing reverse arc {v}→{u}"
                );
            }
        }
    }
}
