//! The BerryBees bitmap block slice-set format.
//!
//! The adjacency matrix is tiled into 8-row × 128-column bit blocks — the
//! exact operand shape of the single-bit `mma.m8n8k128` instruction. Only
//! nonempty blocks ("slices") are stored, grouped per 8-row band
//! (a "slice set"). A BFS iteration ANDs each slice against the matching
//! 128-bit frontier segment via the bit MMA and ORs surviving rows into
//! the next frontier.

use cubie_core::workspace;
use serde::{Deserialize, Serialize};

use crate::csr_graph::CsrGraph;

/// Rows per block (MMA `m` dimension).
pub const BLOCK_ROWS: usize = 8;
/// Columns per block (MMA `k` dimension).
pub const BLOCK_COLS: usize = 128;

/// One 8×128 adjacency bit block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// Which 128-column band this block covers.
    pub col_block: u32,
    /// The eight 128-bit row bitmaps.
    pub rows: [u128; BLOCK_ROWS],
}

/// A graph stored as bitmap block slice sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitmapGraph {
    /// Number of vertices.
    pub n: usize,
    /// Number of 8-row bands.
    pub row_blocks: usize,
    /// Number of 128-column bands.
    pub col_blocks: usize,
    /// Slice-set offsets per row band, length `row_blocks + 1`.
    pub offsets: Vec<usize>,
    /// The nonempty slices, ordered by (row band, column band).
    pub slices: Vec<Slice>,
}

impl BitmapGraph {
    /// Build the slice-set representation from CSR adjacency. Row `r` of
    /// the adjacency matrix holds the *in*-neighbour relationship used by
    /// pull-style BFS: bit `c` of row `r` is set when arc `c → r` exists,
    /// i.e. the structure is the transpose of the out-adjacency.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let n = g.n;
        let row_blocks = n.div_ceil(BLOCK_ROWS);
        let col_blocks = n.div_ceil(BLOCK_COLS);

        // Collect (row_block, col_block, local_row, local_col) per arc of
        // the transpose, then bucket into slices.
        let mut keys = workspace::take_in::<(u32, u32, u8, u8)>(g.num_arcs());
        for u in 0..n {
            for &v in g.neighbors(u) {
                // arc u → v sets bit u in row v of the pull structure.
                let (r, c) = (v as usize, u);
                keys.push((
                    (r / BLOCK_ROWS) as u32,
                    (c / BLOCK_COLS) as u32,
                    (r % BLOCK_ROWS) as u8,
                    (c % BLOCK_COLS) as u8,
                ));
            }
        }
        keys.sort_unstable();

        let mut offsets = vec![0usize; row_blocks + 1];
        let mut slices: Vec<Slice> = Vec::new();
        let mut current: Option<(u32, u32)> = None;
        for &(rb, cb, lr, lc) in keys.iter() {
            if current != Some((rb, cb)) {
                slices.push(Slice {
                    col_block: cb,
                    rows: [0u128; BLOCK_ROWS],
                });
                current = Some((rb, cb));
            }
            slices.last_mut().unwrap().rows[lr as usize] |= 1u128 << lc;
            offsets[rb as usize + 1] = slices.len();
        }
        // Bands with no slices inherit the previous cumulative count.
        for i in 1..=row_blocks {
            offsets[i] = offsets[i].max(offsets[i - 1]);
        }
        Self {
            n,
            row_blocks,
            col_blocks,
            offsets,
            slices,
        }
    }

    /// Slices of one 8-row band.
    pub fn band(&self, rb: usize) -> &[Slice] {
        &self.slices[self.offsets[rb]..self.offsets[rb + 1]]
    }

    /// Number of stored slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Total set bits (must equal the number of arcs).
    pub fn num_bits(&self) -> usize {
        self.slices
            .iter()
            .map(|s| {
                s.rows
                    .iter()
                    .map(|r| r.count_ones() as usize)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Average fraction of set bits per stored slice — the bitmap
    /// density that determines BFS memory efficiency.
    pub fn slice_fill(&self) -> f64 {
        if self.slices.is_empty() {
            return 0.0;
        }
        self.num_bits() as f64 / (self.num_slices() * BLOCK_ROWS * BLOCK_COLS) as f64
    }

    /// Bytes occupied by the slice payloads (the low-memory-footprint
    /// property Section 6.1 credits for BFS speedups).
    pub fn payload_bytes(&self) -> usize {
        self.num_slices() * (BLOCK_ROWS * BLOCK_COLS / 8 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bits_equal_arcs() {
        let g = generators::rmat(1 << 10, 8 << 10, 0.45, 0.2, 0.2, 0.15, 42, true);
        let b = BitmapGraph::from_graph(&g);
        assert_eq!(b.num_bits(), g.num_arcs());
    }

    #[test]
    fn pull_structure_is_transposed() {
        let g = CsrGraph::from_edges(300, &[(5, 200)], false);
        let b = BitmapGraph::from_graph(&g);
        // arc 5 → 200 sets bit 5 of row 200: band 25, local row 0,
        // col block 0, local col 5.
        let band = b.band(200 / BLOCK_ROWS);
        assert_eq!(band.len(), 1);
        assert_eq!(band[0].col_block, 0);
        assert_eq!(band[0].rows[0], 1u128 << 5);
    }

    #[test]
    fn empty_bands_have_no_slices() {
        let g = CsrGraph::from_edges(1000, &[(0, 1)], false);
        let b = BitmapGraph::from_graph(&g);
        assert_eq!(b.num_slices(), 1);
        assert!(b.band(50).is_empty());
        assert_eq!(b.band(0).len(), 1);
    }

    #[test]
    fn dense_clique_fills_slices() {
        let n = 128;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(n, &edges, false);
        let b = BitmapGraph::from_graph(&g);
        assert_eq!(b.num_slices(), n / BLOCK_ROWS); // one col block
        assert!(b.slice_fill() > 0.99 - 1.0 / 128.0);
    }

    #[test]
    fn slices_sorted_within_band() {
        let g = generators::rmat(1 << 11, 16 << 11, 0.5, 0.2, 0.2, 0.1, 7, true);
        let b = BitmapGraph::from_graph(&g);
        for rb in 0..b.row_blocks {
            let band = b.band(rb);
            for w in band.windows(2) {
                assert!(w[0].col_block < w[1].col_block, "band {rb} unsorted");
            }
        }
    }
}
