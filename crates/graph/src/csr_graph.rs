//! Adjacency in CSR form plus the serial reference BFS.

use cubie_core::slab::Slab;
use serde::{Deserialize, Serialize};

/// An unweighted directed graph in CSR adjacency form. Undirected graphs
/// store both arc directions (as SuiteSparse edge counts do).
///
/// The offset and adjacency arrays live in [`Slab`]s: freshly generated
/// graphs own their storage, graphs loaded from the prepared-input
/// snapshot store borrow it zero-copy out of an mmap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// Number of vertices.
    pub n: usize,
    /// Offsets into `adj`, length `n + 1`.
    pub offsets: Slab<usize>,
    /// Concatenated neighbour lists.
    pub adj: Slab<u32>,
}

impl CsrGraph {
    /// Build from an edge list; `symmetrize` adds the reverse arc of every
    /// edge. Self-loops are kept; duplicate arcs are merged.
    pub fn from_edges(n: usize, edges: &[(u32, u32)], symmetrize: bool) -> Self {
        let mut deg = vec![0usize; n + 1];
        let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(if symmetrize {
            edges.len() * 2
        } else {
            edges.len()
        });
        for &(u, v) in edges {
            debug_assert!((u as usize) < n && (v as usize) < n);
            arcs.push((u, v));
            if symmetrize && u != v {
                arcs.push((v, u));
            }
        }
        arcs.sort_unstable();
        arcs.dedup();
        for &(u, _) in &arcs {
            deg[u as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let adj: Vec<u32> = arcs.into_iter().map(|(_, v)| v).collect();
        Self {
            n,
            offsets: deg.into(),
            adj: adj.into(),
        }
    }

    /// Assemble from already-built CSR adjacency arrays (the
    /// snapshot-store load path hands in mapped slabs).
    pub fn from_parts(n: usize, offsets: Slab<usize>, adj: Slab<u32>) -> Self {
        assert_eq!(offsets.len(), n + 1, "offsets length mismatch");
        Self { n, offsets, adj }
    }

    /// Whether the offset/adjacency arrays borrow from a file mapping.
    pub fn is_mapped(&self) -> bool {
        self.offsets.is_mapped() || self.adj.is_mapped()
    }

    /// Number of stored arcs (directed edges).
    pub fn num_arcs(&self) -> usize {
        self.adj.len()
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Serial reference BFS from `source`: returns per-vertex levels
    /// (`-1` for unreachable vertices).
    pub fn bfs_serial(&self, source: usize) -> Vec<i32> {
        assert!(source < self.n, "source out of range");
        let mut level = vec![-1i32; self.n];
        let mut frontier = vec![source as u32];
        level[source] = 0;
        let mut depth = 0i32;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u as usize) {
                    if level[v as usize] < 0 {
                        level[v as usize] = depth;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        level
    }

    /// Reverse graph (in-neighbours become out-neighbours).
    pub fn reverse(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.num_arcs());
        for u in 0..self.n {
            for &v in self.neighbors(u) {
                edges.push((v, u as u32));
            }
        }
        CsrGraph::from_edges(self.n, &edges, false)
    }

    /// The highest-degree vertex — the paper's BFS sources follow the
    /// common convention of starting from a well-connected vertex.
    pub fn max_degree_vertex(&self) -> usize {
        (0..self.n).max_by_key(|&v| self.degree(v)).unwrap_or(0)
    }

    /// Relabel vertices in BFS visitation order from the highest-degree
    /// vertex (unreached vertices appended in degree order) — a
    /// bandwidth-reducing reordering in the Cuthill–McKee family.
    ///
    /// Real-world SuiteSparse graphs carry strong vertex locality (web
    /// graphs are URL-sorted, social graphs community-clustered); the
    /// synthetic RMAT samplers do not. Bitmap-block formats like
    /// BerryBees' slice sets rely on that locality, so generated graphs
    /// are reordered before use.
    pub fn relabel_by_bfs_order(&self) -> CsrGraph {
        // Traverse the symmetrized structure so directed graphs reorder
        // coherently.
        let rev = self.reverse();
        let start = self.max_degree_vertex();
        let mut order: Vec<u32> = Vec::with_capacity(self.n);
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start as u32);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in self
                .neighbors(u as usize)
                .iter()
                .chain(rev.neighbors(u as usize))
            {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        // Unreached vertices, by descending degree.
        let mut rest: Vec<u32> = (0..self.n as u32).filter(|&v| !seen[v as usize]).collect();
        rest.sort_by_key(|&v| std::cmp::Reverse(self.degree(v as usize) + rev.degree(v as usize)));
        order.extend(rest);

        let mut new_id = vec![0u32; self.n];
        for (new, &old) in order.iter().enumerate() {
            new_id[old as usize] = new as u32;
        }
        let mut edges = Vec::with_capacity(self.num_arcs());
        for u in 0..self.n {
            for &v in self.neighbors(u) {
                edges.push((new_id[u], new_id[v as usize]));
            }
        }
        CsrGraph::from_edges(self.n, &edges, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges, true)
    }

    #[test]
    fn path_graph_levels() {
        let g = path(5);
        let l = g.bfs_serial(0);
        assert_eq!(l, vec![0, 1, 2, 3, 4]);
        let l2 = g.bfs_serial(2);
        assert_eq!(l2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let g = CsrGraph::from_edges(4, &[(0, 1)], true);
        let l = g.bfs_serial(0);
        assert_eq!(l, vec![0, 1, -1, -1]);
    }

    #[test]
    fn symmetrize_doubles_arcs() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)], true);
        assert_eq!(g.num_arcs(), 4);
        let d = CsrGraph::from_edges(3, &[(0, 1), (1, 2)], false);
        assert_eq!(d.num_arcs(), 2);
    }

    #[test]
    fn duplicate_arcs_merge() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)], false);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn reverse_of_directed_edge() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)], false);
        let r = g.reverse();
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[0]);
        assert!(r.neighbors(0).is_empty());
    }

    #[test]
    fn max_degree_vertex_found() {
        let g = CsrGraph::from_edges(4, &[(2, 0), (2, 1), (2, 3), (0, 1)], false);
        assert_eq!(g.max_degree_vertex(), 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (0, 1), (0, 3)], false);
        assert_eq!(g.neighbors(0), &[1, 3, 4]);
    }
}
