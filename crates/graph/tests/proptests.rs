//! Property-based tests of the graph substrate.

use cubie_graph::bitmap::BitmapGraph;
use cubie_graph::csr_graph::CsrGraph;
use proptest::prelude::*;

/// Arbitrary small graph as (n, edges, symmetrize).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, bool)> {
    (2usize..300, any::<bool>()).prop_flat_map(|(n, sym)| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..600);
        (Just(n), edges, Just(sym))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR adjacency is sorted, deduplicated and in bounds.
    #[test]
    fn csr_graph_well_formed((n, edges, sym) in arb_graph()) {
        let g = CsrGraph::from_edges(n, &edges, sym);
        prop_assert_eq!(g.offsets.len(), n + 1);
        for v in 0..n {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &u in nb {
                prop_assert!((u as usize) < n);
            }
        }
    }

    /// Symmetrized graphs contain every reverse arc.
    #[test]
    fn symmetrize_creates_reverse_arcs((n, edges, _) in arb_graph()) {
        let g = CsrGraph::from_edges(n, &edges, true);
        for u in 0..n {
            for &v in g.neighbors(u) {
                if v as usize != u {
                    prop_assert!(
                        g.neighbors(v as usize).contains(&(u as u32)),
                        "missing {}→{}",
                        v,
                        u
                    );
                }
            }
        }
    }

    /// BFS levels satisfy the defining property: level(v) = 1 + min
    /// level over in-neighbours, and every edge spans ≤ 1 level.
    #[test]
    fn bfs_levels_are_consistent((n, edges, sym) in arb_graph(), src_pick in any::<prop::sample::Index>()) {
        let g = CsrGraph::from_edges(n, &edges, sym);
        let src = src_pick.index(n);
        let level = g.bfs_serial(src);
        prop_assert_eq!(level[src], 0);
        for u in 0..n {
            if level[u] < 0 {
                continue;
            }
            for &v in g.neighbors(u) {
                let lv = level[v as usize];
                prop_assert!(lv >= 0, "reachable vertex unlabelled");
                prop_assert!(lv <= level[u] + 1, "edge {}→{} spans >1 level", u, v);
            }
        }
    }

    /// The bitmap slice-set holds exactly the arcs of the graph.
    #[test]
    fn bitmap_preserves_arcs((n, edges, sym) in arb_graph()) {
        let g = CsrGraph::from_edges(n, &edges, sym);
        let b = BitmapGraph::from_graph(&g);
        prop_assert_eq!(b.num_bits(), g.num_arcs());
        // Spot-check: every arc u→v sets bit u of row v.
        for u in 0..n {
            for &v in g.neighbors(u) {
                let band = b.band(v as usize / 8);
                let cb = (u / 128) as u32;
                let slice = band.iter().find(|s| s.col_block == cb);
                prop_assert!(slice.is_some(), "missing slice for arc {}→{}", u, v);
                let bit = slice.unwrap().rows[v as usize % 8] >> (u % 128) & 1;
                prop_assert_eq!(bit, 1, "bit unset for arc {}→{}", u, v);
            }
        }
    }

    /// BFS-order relabelling preserves the degree sequence and the arc
    /// count (it is a vertex permutation).
    #[test]
    fn relabel_preserves_structure((n, edges, _) in arb_graph()) {
        let g = CsrGraph::from_edges(n, &edges, true);
        let r = g.relabel_by_bfs_order();
        prop_assert_eq!(r.num_arcs(), g.num_arcs());
        let mut a: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        let mut b: Vec<usize> = (0..n).map(|v| r.degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
