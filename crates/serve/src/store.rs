//! The content-addressed result store under `results/store/`.
//!
//! Every completed `sweep` execution is persisted as one JSON document
//! whose file name is the FNV-1a 64-bit hash of its **canonical key** —
//! the store schema, the golden artifact schema version, the crate
//! version, and the request's [`SweepConfig::cache_key`] spelling, in
//! that order:
//!
//! ```text
//! results/store/<16-hex-of-fnv1a64(key)>.json
//! {
//!   "schema": "cubied-store/v1",
//!   "key": "cubied-store/v1;golden=cubie-golden/v1;crate=0.1.0;wl=…",
//!   "artifact": { …canonical golden artifact… }
//! }
//! ```
//!
//! Because the golden schema and crate version are folded into the
//! hashed key *and* spelled out in the stored document, version skew is
//! caught twice: a bumped version hashes to a fresh path (old entries
//! simply stop being addressable), and a doctored or hand-migrated
//! entry whose stored key disagrees with the current canonical spelling
//! is **invalidated on load** — deleted and recomputed, never served.
//!
//! Writes are crash-safe: the document is written to a `.tmp` sibling,
//! fsynced, then renamed over the final path, and the directory itself
//! is fsynced — a kill between requests leaves either the old bytes,
//! the new bytes, or a `.tmp` leftover that [`Store::open`] sweeps out
//! on the next startup. The artifact inside a hit is parsed back
//! through the same strict [`Artifact::from_json`] path the golden
//! gates use, so a truncated or bit-rotted entry degrades to a miss
//! (plus deletion), never to serving garbage.
//!
//! [`SweepConfig::cache_key`]: cubie_bench::SweepConfig::cache_key

use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};

use cubie_golden::{obj, Artifact, Json};

/// Store document schema version. Bump when the envelope shape changes.
pub const STORE_SCHEMA: &str = "cubied-store/v1";

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms
/// and processes (unlike `DefaultHasher`, whose seeds are randomized),
/// which is what a content-*addressed* store needs from its address.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full canonical key of a request: versions plus request identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreKey {
    canonical: String,
    hash: u64,
}

impl StoreKey {
    /// Build the key for a request identity (a
    /// `SweepConfig::cache_key()` string), folding in the store schema,
    /// the golden artifact schema, and the crate version.
    pub fn for_request(request_key: &str) -> StoreKey {
        let canonical = format!(
            "{STORE_SCHEMA};golden={};crate={};{request_key}",
            cubie_golden::SCHEMA,
            env!("CARGO_PKG_VERSION"),
        );
        let hash = fnv1a64(&canonical);
        StoreKey { canonical, hash }
    }

    /// The canonical key string (stored verbatim in the entry).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 16-hex-digit address (file stem under the store directory).
    pub fn address(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// The versioned prefix every currently-valid canonical key starts
/// with; entries whose stored key has any other prefix are stale.
fn current_prefix() -> String {
    format!(
        "{STORE_SCHEMA};golden={};crate={};",
        cubie_golden::SCHEMA,
        env!("CARGO_PKG_VERSION"),
    )
}

/// What [`Store::load`] found.
#[derive(Debug)]
pub enum Lookup {
    /// Valid entry: the stored canonical artifact.
    Hit(Artifact),
    /// No entry at this address.
    Miss,
    /// An entry existed but failed validation (corrupt JSON, schema or
    /// version skew, key mismatch); it has been deleted and the reason
    /// is carried for counters/logs. Treated as a miss by callers.
    Invalidated(String),
}

/// What [`Store::open`] did while revalidating the directory.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Entries that passed validation and were kept.
    pub kept: usize,
    /// `.tmp` leftovers of interrupted writes, swept out.
    pub removed_tmp: usize,
    /// Entries deleted for corruption or version skew.
    pub removed_invalid: usize,
}

/// The on-disk store handle.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
}

/// Validate one stored document against the strict envelope contract.
/// `expect_key` additionally pins the stored canonical key (load path);
/// open-time revalidation only pins the version prefix and address.
fn validate_doc(text: &str, file_stem: &str, expect_key: Option<&str>) -> Result<Artifact, String> {
    let doc = Json::parse(text).map_err(|e| format!("unparseable entry: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("entry has no `schema`")?;
    if schema != STORE_SCHEMA {
        return Err(format!(
            "store schema skew: entry is `{schema}`, current is `{STORE_SCHEMA}`"
        ));
    }
    let key = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or("entry has no `key`")?;
    if !key.starts_with(&current_prefix()) {
        return Err(format!(
            "version skew: entry key `{key}` does not match `{}…`",
            current_prefix()
        ));
    }
    if let Some(expect) = expect_key {
        if key != expect {
            return Err(format!(
                "key mismatch at this address: stored `{key}`, requested `{expect}`"
            ));
        }
    }
    if format!("{:016x}", fnv1a64(key)) != file_stem {
        return Err(format!("entry key `{key}` does not hash to its address"));
    }
    let artifact = doc.get("artifact").ok_or("entry has no `artifact`")?;
    Artifact::from_json(artifact).map_err(|e| format!("stored artifact invalid: {e}"))
}

impl Store {
    /// Open (creating if needed) the store directory and revalidate its
    /// contents: sweep out `.tmp` leftovers from interrupted writes and
    /// delete entries that are corrupt or recorded under a different
    /// schema/crate version — the restart-revalidation half of the
    /// crash-safety contract.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(Store, OpenReport)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut report = OpenReport::default();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if name.ends_with(".tmp") {
                fs::remove_file(&path)?;
                report.removed_tmp += 1;
                continue;
            }
            let Some(stem) = name.strip_suffix(".json") else {
                continue; // not ours; leave it alone
            };
            let verdict = fs::read_to_string(&path)
                .map_err(|e| format!("unreadable entry: {e}"))
                .and_then(|text| validate_doc(&text, stem, None).map(|_| ()));
            match verdict {
                Ok(()) => report.kept += 1,
                Err(reason) => {
                    fs::remove_file(&path)?;
                    report.removed_invalid += 1;
                    cubie_obs::log(format!("cubied: store dropped {name}: {reason}"));
                }
            }
        }
        Ok((Store { dir }, report))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The final on-disk path of a key.
    pub fn path_for(&self, key: &StoreKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.address()))
    }

    /// Look up a key. Corrupt, skewed, or mismatched entries are
    /// deleted and reported as [`Lookup::Invalidated`].
    pub fn load(&self, key: &StoreKey) -> Lookup {
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            Err(e) => return Lookup::Invalidated(format!("unreadable entry: {e}")),
        };
        match validate_doc(&text, &key.address(), Some(key.canonical())) {
            Ok(artifact) => Lookup::Hit(artifact),
            Err(reason) => {
                let _ = fs::remove_file(&path);
                Lookup::Invalidated(reason)
            }
        }
    }

    /// Persist an artifact under a key, atomically: `.tmp` write →
    /// fsync → rename → directory fsync. Returns the final path.
    pub fn save(&self, key: &StoreKey, artifact: &Artifact) -> io::Result<PathBuf> {
        let doc = obj(vec![
            ("schema", STORE_SCHEMA.into()),
            ("key", key.canonical().into()),
            ("artifact", artifact.to_json()),
        ]);
        let path = self.path_for(key);
        let tmp = self.dir.join(format!("{}.json.tmp", key.address()));
        {
            let mut f = File::create(&tmp)?;
            io::Write::write_all(&mut f, doc.to_pretty_string().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // Persist the rename itself: fsync the directory so a crash
        // immediately after `save` cannot resurrect the old state.
        File::open(&self.dir)?.sync_all()?;
        Ok(path)
    }

    /// Number of committed entries currently in the store.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().map(|x| x == "json").unwrap_or(false))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no committed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_golden::Column;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cubied_store_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn artifact() -> Artifact {
        let mut a = Artifact::new(
            "sweep",
            vec![Column::exact("who").key(), Column::exact("t")],
        );
        a.push(vec!["scan".into(), 1.25e-3.into()]);
        a
    }

    #[test]
    fn fnv1a64_matches_published_vectors() {
        // Reference values of the FNV-1a 64-bit test suite.
        assert_eq!(fnv1a64(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64("a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_then_load_round_trips_bit_identically() {
        let dir = tmp_dir("roundtrip");
        let (store, report) = Store::open(&dir).unwrap();
        assert_eq!(report, OpenReport::default());
        let key = StoreKey::for_request("wl=Scan;sparse=64");
        assert!(matches!(store.load(&key), Lookup::Miss));
        let a = artifact();
        let path = store.save(&key, &a).unwrap();
        assert!(path.ends_with(format!("{}.json", key.address())));
        match store.load(&key) {
            Lookup::Hit(back) => {
                cubie_golden::verify_bit_identical(&a, &back).unwrap();
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skewed_entry_is_invalidated_on_load() {
        let dir = tmp_dir("skew");
        let (store, _) = Store::open(&dir).unwrap();
        let key = StoreKey::for_request("wl=Scan;sparse=64");
        store.save(&key, &artifact()).unwrap();
        // Doctor the entry to claim an older golden schema, as a store
        // written by a previous release would.
        let path = store.path_for(&key);
        let doctored = fs::read_to_string(&path)
            .unwrap()
            .replace("golden=cubie-golden/v1", "golden=cubie-golden/v0");
        fs::write(&path, doctored).unwrap();
        match store.load(&key) {
            Lookup::Invalidated(reason) => assert!(reason.contains("version skew"), "{reason}"),
            other => panic!("expected invalidation, got {other:?}"),
        }
        assert!(!path.exists(), "invalidated entry must be deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_tmp_leftovers_and_corrupt_entries() {
        let dir = tmp_dir("sweep");
        let (store, _) = Store::open(&dir).unwrap();
        let key = StoreKey::for_request("wl=Scan;sparse=64");
        store.save(&key, &artifact()).unwrap();
        fs::write(dir.join("0123456789abcdef.json.tmp"), "partial").unwrap();
        fs::write(dir.join("00000000deadbeef.json"), "{ not json").unwrap();
        let (_, report) = Store::open(&dir).unwrap();
        assert_eq!(
            report,
            OpenReport {
                kept: 1,
                removed_tmp: 1,
                removed_invalid: 1,
            }
        );
        assert!(store.path_for(&key).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_degrades_to_invalidation_not_garbage() {
        let dir = tmp_dir("truncate");
        let (store, _) = Store::open(&dir).unwrap();
        let key = StoreKey::for_request("wl=Scan;sparse=64");
        store.save(&key, &artifact()).unwrap();
        let path = store.path_for(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(store.load(&key), Lookup::Invalidated(_)));
        assert!(matches!(store.load(&key), Lookup::Miss), "then a miss");
        let _ = fs::remove_dir_all(&dir);
    }
}
