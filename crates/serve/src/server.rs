//! The `cubied` daemon: a threaded async request layer over the
//! persistent worker pool.
//!
//! One accept loop + one thread per connection; the expensive work
//! (sweep execution) is **batched and deduplicated** behind an in-flight
//! table keyed by the canonical request key — N clients asking for the
//! same cell trigger exactly one sweep execution, the other N−1 block on
//! the flight's condvar and receive the same payload (`"store":
//! "dedup"`, dedup counter == N−1). Completed executions persist to the
//! content-addressed [`Store`], so the next identical request — even
//! after a restart — is a pure store hit, bit-identical to the fresh
//! run by construction of the canonical golden writer.
//!
//! **Admission control** keeps one heavy spgemm sweep from starving
//! interactive traffic: at most [`ServeConfig::heavy_slots`] sweep or
//! profile executions run concurrently, at most
//! [`ServeConfig::queue_limit`] more may wait (beyond that the request
//! is rejected with a `server busy` backpressure error, never queued
//! unboundedly), per-request `jobs` are clamped to
//! [`ServeConfig::max_jobs`], and `advise`/`ping`/`stats` bypass the
//! heavy gate entirely. Every outcome increments a named
//! [`cubie_obs`] counter (`serve.hit`, `serve.miss`, `serve.dedup`,
//! `serve.queued`, `serve.rejected`, …) and the daemon keeps its own
//! atomic mirror for the `stats` response.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cubie_analysis::advisor::{advise, reference_mapping};
use cubie_bench::{SweepCache, SweepRunner};
use cubie_golden::{obj, Json};
use cubie_kernels::{Variant, Workload};

use crate::proto::{
    error_response, ok_response, parse_request, AdviseSpec, Request, SweepSpec, PROTO_VERSION,
};
use crate::store::{Lookup, Store, StoreKey};

/// Daemon configuration: socket/store locations plus the admission
/// knobs (see README, "Running cubied").
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path. A stale socket file is replaced on startup.
    pub socket: PathBuf,
    /// Content-addressed store directory.
    pub store_dir: PathBuf,
    /// Per-request worker cap: client `jobs` values are clamped to this
    /// (0 = no cap, trust the client).
    pub max_jobs: usize,
    /// Concurrent heavy executions (sweep/profile). 1 serializes the
    /// pool, which also keeps `profile` span attribution clean.
    pub heavy_slots: usize,
    /// Heavy requests allowed to wait beyond the running ones; the next
    /// one is rejected with a backpressure error.
    pub queue_limit: usize,
    /// Test hook: artificial delay inside each execution, widening the
    /// dedup window deterministically. 0 in production.
    pub exec_delay_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: PathBuf::from("results/cubied.sock"),
            store_dir: PathBuf::from("results/store"),
            max_jobs: cubie_core::pool::host_parallelism(),
            heavy_slots: 1,
            queue_limit: 16,
            exec_delay_ms: 0,
        }
    }
}

/// Atomic mirror of the obs counters, for lock-free `stats` responses.
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    dedups: AtomicU64,
    executions: AtomicU64,
    invalidated: AtomicU64,
    rejected: AtomicU64,
    advises: AtomicU64,
    profiles: AtomicU64,
    errors: AtomicU64,
}

impl Stats {
    fn bump(&self, field: &AtomicU64, counter: &str) {
        field.fetch_add(1, Ordering::Relaxed);
        cubie_obs::counter_add(counter, 1);
    }
}

/// The payload one execution publishes to its dedup waiters.
#[derive(Clone)]
struct FlightOut {
    address: String,
    cells: u64,
    artifact: Arc<Json>,
}

/// One in-flight execution: waiters block on the condvar until the
/// executor publishes a result (or an error).
struct Flight {
    slot: Mutex<Option<Result<FlightOut, String>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn publish(&self, result: Result<FlightOut, String>) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<FlightOut, String> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[derive(Default)]
struct Gate {
    running: usize,
    queued: usize,
}

/// The daemon state shared by the accept loop and every connection
/// handler.
pub struct Daemon {
    cfg: ServeConfig,
    store: Store,
    stats: Stats,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    gate: Mutex<Gate>,
    gate_cv: Condvar,
    stop: AtomicBool,
    active: AtomicUsize,
    started: Instant,
}

/// A running daemon: join/shutdown handle returned by [`Daemon::start`].
pub struct Handle {
    daemon: Arc<Daemon>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Handle {
    /// The daemon's socket path.
    pub fn socket(&self) -> &std::path::Path {
        &self.daemon.cfg.socket
    }

    /// Ask the accept loop to stop and wait for every in-flight
    /// connection to drain. Idempotent.
    pub fn shutdown(&mut self) {
        self.daemon.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the daemon exits (a client `shutdown` request, or
    /// [`Handle::shutdown`] from another thread).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Daemon {
    /// Open the store, bind the socket, log the startup banner, and
    /// spawn the accept loop. The returned [`Handle`] owns the daemon:
    /// dropping it shuts the daemon down.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Handle> {
        let (store, report) = Store::open(&cfg.store_dir)?;
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        if let Some(parent) = cfg.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;

        // Per-startup banner: protocol, SIMD dispatch, pool sizing,
        // store revalidation verdict, admission knobs — routed through
        // `cubie_obs::log`, so a long-running daemon re-states them on
        // every startup instead of once per process, and `stats`
        // clients can replay them.
        cubie_obs::log(format!(
            "cubied: {PROTO_VERSION} listening on {}",
            cfg.socket.display()
        ));
        cubie_obs::log(cubie_core::simd::dispatch_line().to_string());
        cubie_obs::log(cubie_core::pool::announce_line());
        cubie_obs::log(format!(
            "cubied: store {} — {} entries kept, {} tmp swept, {} invalidated",
            cfg.store_dir.display(),
            report.kept,
            report.removed_tmp,
            report.removed_invalid
        ));
        cubie_obs::log(format!(
            "cubied: admission max_jobs={} heavy_slots={} queue_limit={}",
            cfg.max_jobs, cfg.heavy_slots, cfg.queue_limit
        ));
        cubie_obs::counter_add("serve.store_swept_tmp", report.removed_tmp as u64);
        cubie_obs::counter_add("serve.store_invalidated", report.removed_invalid as u64);

        // Prewarm the prepared-input store: revalidate every snapshot
        // (checksumming reads each byte, populating the page cache) and
        // sweep stale `.tmp` / invalid entries, so the first sweep a
        // client submits mmaps its inputs instead of regenerating them.
        let prep_cfg = cubie_prep::PrepConfig::from_env();
        if prep_cfg.enabled {
            let prep = cubie_prep::prewarm(&prep_cfg);
            cubie_obs::log(format!(
                "cubied: prep store {} — {} snapshots ({} bytes) prewarmed, {} tmp swept, {} invalidated",
                prep_cfg.dir.display(),
                prep.kept,
                prep.kept_bytes,
                prep.removed_tmp,
                prep.removed_invalid
            ));
        } else {
            cubie_obs::log("cubied: prep store disabled (CUBIE_PREP_CACHE=off)".to_string());
        }

        let daemon = Arc::new(Daemon {
            cfg,
            store,
            stats: Stats::default(),
            inflight: Mutex::new(HashMap::new()),
            gate: Mutex::new(Gate::default()),
            gate_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            started: Instant::now(),
        });

        let accept_daemon = Arc::clone(&daemon);
        let accept_thread = std::thread::Builder::new()
            .name("cubied-accept".into())
            .spawn(move || accept_loop(accept_daemon, listener))?;

        Ok(Handle {
            daemon,
            accept_thread: Some(accept_thread),
        })
    }

    /// Clamp a client's requested worker cap to the admission cap.
    fn clamp_jobs(&self, requested: Option<usize>) -> Option<usize> {
        match (requested, self.cfg.max_jobs) {
            (None, 0) => None,
            (None, cap) => Some(cap),
            (Some(r), 0) => Some(r.max(1)),
            (Some(r), cap) => Some(r.clamp(1, cap)),
        }
    }

    /// Take a heavy-execution slot, waiting in the bounded queue.
    /// Errors (instead of queueing) once the queue is full — the
    /// backpressure half of admission control.
    fn acquire_heavy(&self) -> Result<(), String> {
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        if gate.running < self.cfg.heavy_slots {
            gate.running += 1;
            return Ok(());
        }
        if gate.queued >= self.cfg.queue_limit {
            self.stats.bump(&self.stats.rejected, "serve.rejected");
            return Err(format!(
                "server busy: {} executing, {} queued (queue_limit {})",
                gate.running, gate.queued, self.cfg.queue_limit
            ));
        }
        gate.queued += 1;
        cubie_obs::counter_add("serve.queued", 1);
        while gate.running >= self.cfg.heavy_slots {
            gate = self.gate_cv.wait(gate).unwrap_or_else(|e| e.into_inner());
        }
        gate.queued -= 1;
        gate.running += 1;
        Ok(())
    }

    fn release_heavy(&self) {
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.running = gate.running.saturating_sub(1);
        drop(gate);
        self.gate_cv.notify_all();
    }

    /// Execute a sweep (the only code path that touches the worker
    /// pool) under the heavy gate, with panics contained so one bad
    /// request cannot take the daemon down.
    fn execute_sweep(&self, spec: &SweepSpec) -> Result<(cubie_golden::Artifact, u64), String> {
        let mut cfg = spec.to_config()?;
        cfg.jobs = self.clamp_jobs(spec.jobs);
        self.acquire_heavy()?;
        if self.cfg.exec_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.cfg.exec_delay_ms));
        }
        self.stats.bump(&self.stats.executions, "serve.exec");
        let result = catch_unwind(AssertUnwindSafe(|| {
            let sweep = SweepRunner::new(cfg).run();
            let cells = sweep.cells.len() as u64;
            (sweep.to_artifact(), cells)
        }));
        self.release_heavy();
        result.map_err(|panic| {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("sweep execution panicked");
            format!("sweep execution failed: {msg}")
        })
    }

    /// The full store-backed sweep path: store lookup → in-flight dedup
    /// → execute → persist → publish.
    fn handle_sweep(&self, spec: &SweepSpec) -> Json {
        let cfg = match spec.to_config() {
            Ok(c) => c,
            Err(e) => {
                self.stats.bump(&self.stats.errors, "serve.error");
                return error_response(&e);
            }
        };
        let key = StoreKey::for_request(&cfg.cache_key());

        match self.store.load(&key) {
            Lookup::Hit(stored) => {
                if spec.verify {
                    return self.handle_verified_hit(spec, &key, stored);
                }
                self.stats.bump(&self.stats.hits, "serve.hit");
                let cells = stored.rows.len() as u64;
                return sweep_response("hit", &key.address(), cells, Arc::new(stored.to_json()));
            }
            Lookup::Invalidated(reason) => {
                self.stats
                    .bump(&self.stats.invalidated, "serve.invalidated");
                cubie_obs::log(format!(
                    "cubied: store invalidated {}: {reason}",
                    key.address()
                ));
                // fall through to the miss path: recompute and re-store
            }
            Lookup::Miss => {}
        }

        // Dedup: exactly one request per canonical key executes; the
        // rest wait on the flight and serve its published payload.
        let (flight, is_executor) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(key.canonical()) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Flight::new();
                    inflight.insert(key.canonical().to_string(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !is_executor {
            self.stats.bump(&self.stats.dedups, "serve.dedup");
            return match flight.wait() {
                Ok(out) => sweep_response("dedup", &out.address, out.cells, out.artifact),
                Err(e) => {
                    self.stats.bump(&self.stats.errors, "serve.error");
                    error_response(&e)
                }
            };
        }

        let result = self.execute_sweep(spec).map(|(artifact, cells)| {
            if let Err(e) = self.store.save(&key, &artifact) {
                // Serving beats persisting: log, count, and move on.
                cubie_obs::log(format!(
                    "cubied: store write failed for {}: {e}",
                    key.address()
                ));
                cubie_obs::counter_add("serve.store_write_failed", 1);
            }
            FlightOut {
                address: key.address(),
                cells,
                artifact: Arc::new(artifact.to_json()),
            }
        });
        flight.publish(result.clone());
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key.canonical());
        match result {
            Ok(out) => {
                self.stats.bump(&self.stats.misses, "serve.miss");
                sweep_response("miss", &out.address, out.cells, out.artifact)
            }
            Err(e) => {
                self.stats.bump(&self.stats.errors, "serve.error");
                error_response(&e)
            }
        }
    }

    /// `"verify": true` on a store hit: re-execute and require
    /// bit-identity via the golden differ — the cache-validation oracle
    /// on demand. A clean verify serves the stored entry; a failed one
    /// deletes it, stores the fresh result, and says so.
    fn handle_verified_hit(
        &self,
        spec: &SweepSpec,
        key: &StoreKey,
        stored: cubie_golden::Artifact,
    ) -> Json {
        let (fresh, cells) = match self.execute_sweep(spec) {
            Ok(r) => r,
            Err(e) => {
                self.stats.bump(&self.stats.errors, "serve.error");
                return error_response(&e);
            }
        };
        match cubie_golden::verify_bit_identical(&stored, &fresh) {
            Ok(()) => {
                self.stats.bump(&self.stats.hits, "serve.hit");
                cubie_obs::counter_add("serve.verify_ok", 1);
                let mut resp =
                    sweep_response("hit", &key.address(), cells, Arc::new(stored.to_json()));
                push_field(&mut resp, "verified", true.into());
                resp
            }
            Err(report) => {
                cubie_obs::counter_add("serve.verify_failed", 1);
                cubie_obs::log(format!(
                    "cubied: verify FAILED for {} — store entry replaced:\n{report}",
                    key.address()
                ));
                let _ = std::fs::remove_file(self.store.path_for(key));
                if let Err(e) = self.store.save(key, &fresh) {
                    cubie_obs::log(format!("cubied: store rewrite failed: {e}"));
                }
                self.stats.bump(&self.stats.misses, "serve.miss");
                let mut resp =
                    sweep_response("miss", &key.address(), cells, Arc::new(fresh.to_json()));
                push_field(&mut resp, "verified", false.into());
                resp
            }
        }
    }

    /// `profile`: one sweep under the span recorder, hotspot rows back.
    /// Heavy-gated (it drives the pool) but never stored — wall-clock
    /// measurements are not deterministic content.
    fn handle_profile(&self, spec: &SweepSpec) -> Json {
        let mut cfg = match spec.to_config() {
            Ok(c) => c,
            Err(e) => {
                self.stats.bump(&self.stats.errors, "serve.error");
                return error_response(&e);
            }
        };
        cfg.jobs = self.clamp_jobs(spec.jobs);
        if let Err(e) = self.acquire_heavy() {
            return error_response(&e);
        }
        self.stats.bump(&self.stats.profiles, "serve.profile");
        cubie_obs::enable();
        let result = catch_unwind(AssertUnwindSafe(|| SweepRunner::new(cfg).run()));
        cubie_obs::disable();
        let spans = cubie_obs::drain();
        self.release_heavy();
        let sweep = match result {
            Ok(s) => s,
            Err(_) => {
                self.stats.bump(&self.stats.errors, "serve.error");
                return error_response("profile execution panicked");
            }
        };
        let rows: Vec<Json> = cubie_obs::aggregate(&spans)
            .into_iter()
            .map(|g| {
                obj(vec![
                    ("phase", g.phase.into()),
                    ("label", g.label.as_str().into()),
                    ("calls", g.calls.into()),
                    ("busy_ms", (g.busy_s * 1e3).into()),
                    ("wall_ms", (g.wall_s * 1e3).into()),
                    ("bytes", g.bytes.into()),
                    ("items", g.items.into()),
                ])
            })
            .collect();
        ok_response(
            "profile",
            vec![
                ("cells", (sweep.cells.len() as u64).into()),
                ("spans", (spans.len() as u64).into()),
                ("hotspots", Json::Array(rows)),
            ],
        )
    }

    /// `advise`: interactive lane — bypasses the heavy gate, leans on
    /// the process-wide sweep cache (O(lookup) after first touch).
    fn handle_advise(&self, spec: &AdviseSpec) -> Json {
        let Some(w) = Workload::parse(&spec.workload) else {
            self.stats.bump(&self.stats.errors, "serve.error");
            return error_response(&format!("unknown workload `{}`", spec.workload));
        };
        let mut devices = Vec::new();
        match &spec.devices {
            None => devices = cubie_device::all_devices(),
            Some(names) => {
                let all = cubie_device::all_devices();
                for name in names {
                    let lower = name.to_ascii_lowercase();
                    match all
                        .iter()
                        .find(|d| d.name.to_ascii_lowercase().contains(&lower))
                    {
                        Some(d) => devices.push(d.clone()),
                        None => {
                            self.stats.bump(&self.stats.errors, "serve.error");
                            return error_response(&format!(
                                "unknown device `{name}` (a100|h200|b200)"
                            ));
                        }
                    }
                }
            }
        }
        let defaults = cubie_bench::SweepConfig::default();
        let ss = spec.sparse_scale.unwrap_or(defaults.sparse_scale);
        let gs = spec.graph_scale.unwrap_or(defaults.graph_scale);

        let cache = SweepCache::global();
        let advice = catch_unwind(AssertUnwindSafe(|| {
            let meta = cache.ensure(w, ss, gs);
            let cc_variant = if w.spec().distinct_cce {
                Variant::CcE
            } else {
                Variant::Cc
            };
            let cc_trace = cache.trace(w, 2, cc_variant, ss, gs)?;
            let mapping = reference_mapping(w);
            let rows: Vec<Json> = devices
                .iter()
                .map(|dev| {
                    let a = advise(dev, &cc_trace, &mapping);
                    obj(vec![
                        ("device", dev.name.as_str().into()),
                        ("predicted_speedup", a.predicted_speedup.into()),
                        ("cc_limiter", format!("{:?}", a.cc_limiter).into()),
                        ("tc_limiter", format!("{:?}", a.tc_limiter).into()),
                        ("quadrant", format!("Q{}", a.quadrant).into()),
                        ("recommendation", format!("{:?}", a.recommendation).into()),
                    ])
                })
                .collect();
            Some((meta.labels[2].clone(), cc_variant, rows))
        }));
        match advice {
            Ok(Some((case_label, cc_variant, rows))) => {
                self.stats.bump(&self.stats.advises, "serve.advise");
                ok_response(
                    "advise",
                    vec![
                        ("workload", w.spec().name.into()),
                        ("case", case_label.as_str().into()),
                        ("from_variant", cc_variant.label().into()),
                        ("advice", Json::Array(rows)),
                    ],
                )
            }
            Ok(None) => {
                self.stats.bump(&self.stats.errors, "serve.error");
                error_response(&format!("no CUDA-core trace for `{}`", spec.workload))
            }
            Err(_) => {
                self.stats.bump(&self.stats.errors, "serve.error");
                error_response("advise execution panicked")
            }
        }
    }

    fn handle_stats(&self) -> Json {
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        let (queued, running) = (gate.queued, gate.running);
        drop(gate);
        let s = &self.stats;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ok_response(
            "stats",
            vec![
                ("proto", PROTO_VERSION.into()),
                (
                    "counters",
                    obj(vec![
                        ("requests", get(&s.requests).into()),
                        ("hit", get(&s.hits).into()),
                        ("miss", get(&s.misses).into()),
                        ("dedup", get(&s.dedups).into()),
                        ("exec", get(&s.executions).into()),
                        ("invalidated", get(&s.invalidated).into()),
                        ("rejected", get(&s.rejected).into()),
                        ("advise", get(&s.advises).into()),
                        ("profile", get(&s.profiles).into()),
                        ("error", get(&s.errors).into()),
                    ]),
                ),
                ("queue_depth", (queued as u64).into()),
                ("running", (running as u64).into()),
                ("store_entries", (self.store.len() as u64).into()),
                ("workers", (cubie_core::pool::worker_count() as u64).into()),
                (
                    "uptime_ms",
                    (self.started.elapsed().as_millis() as u64).into(),
                ),
            ],
        )
    }

    /// Dispatch one parsed request to its handler.
    fn handle(&self, req: &Request) -> Json {
        self.stats.bump(&self.stats.requests, "serve.request");
        match req {
            Request::Ping => ok_response("ping", vec![("proto", PROTO_VERSION.into())]),
            Request::Stats => self.handle_stats(),
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                ok_response("shutdown", vec![])
            }
            Request::Sweep(spec) => self.handle_sweep(spec),
            Request::Profile(spec) => self.handle_profile(spec),
            Request::Advise(spec) => self.handle_advise(spec),
        }
    }
}

fn push_field(resp: &mut Json, key: &str, value: Json) {
    if let Json::Object(pairs) = resp {
        pairs.push((key.to_string(), value));
    }
}

fn sweep_response(store: &str, address: &str, cells: u64, artifact: Arc<Json>) -> Json {
    ok_response(
        "sweep",
        vec![
            ("store", store.into()),
            ("key", address.into()),
            ("cells", cells.into()),
            ("artifact", (*artifact).clone()),
        ],
    )
}

fn accept_loop(daemon: Arc<Daemon>, listener: UnixListener) {
    while !daemon.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_daemon = Arc::clone(&daemon);
                conn_daemon.active.fetch_add(1, Ordering::SeqCst);
                let spawned = std::thread::Builder::new()
                    .name("cubied-conn".into())
                    .spawn(move || {
                        handle_connection(&conn_daemon, stream);
                        conn_daemon.active.fetch_sub(1, Ordering::SeqCst);
                    });
                if let Err(e) = spawned {
                    daemon.active.fetch_sub(1, Ordering::SeqCst);
                    cubie_obs::log(format!("cubied: failed to spawn handler: {e}"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                cubie_obs::log(format!("cubied: accept failed: {e}"));
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    // Drain: wait for in-flight connections, then release the socket.
    while daemon.active.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = std::fs::remove_file(&daemon.cfg.socket);
    cubie_obs::log("cubied: shut down cleanly".to_string());
}

/// One connection: line-delimited request/response until EOF. All
/// diagnostics in the request path go through `cubie_obs::log` (echoed
/// to the daemon's stderr, never the client stream), so responses stay
/// clean JSON — the only bytes written to the socket are response
/// lines.
fn handle_connection(daemon: &Daemon, stream: UnixStream) {
    // A bounded read timeout keeps idle clients from pinning the drain
    // phase of shutdown: on each timeout the handler re-checks the stop
    // flag. A partially read line survives timeouts (read_line appends),
    // so slow writers are never corrupted, only re-polled.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            cubie_obs::log(format!("cubied: connection clone failed: {e}"));
            return;
        }
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if daemon.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) => {
                cubie_obs::log(format!("cubied: read failed: {e}"));
                return;
            }
        }
        if !line.trim().is_empty() {
            let response = match parse_request(line.trim()) {
                Ok(req) => daemon.handle(&req),
                Err(e) => {
                    daemon.stats.bump(&daemon.stats.errors, "serve.error");
                    error_response(&e)
                }
            };
            let mut payload = response.to_canonical_string();
            payload.push('\n');
            if writer.write_all(payload.as_bytes()).is_err() {
                return; // client went away mid-response
            }
            let _ = writer.flush();
        }
        line.clear();
    }
}

/// Client side: connect, send one request line, read one response line.
/// The building block of `cubie client` and the daemon tests.
pub fn client_request(socket: &std::path::Path, request: &Json) -> Result<Json, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("connection clone failed: {e}"))?;
    let mut payload = request.to_canonical_string();
    payload.push('\n');
    writer
        .write_all(payload.as_bytes())
        .map_err(|e| format!("send failed: {e}"))?;
    writer.flush().map_err(|e| format!("send failed: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("no response: {e}"))?;
    if line.trim().is_empty() {
        return Err("connection closed without a response".into());
    }
    Json::parse(line.trim()).map_err(|e| format!("malformed response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(tag: &str) -> ServeConfig {
        let base = std::env::temp_dir().join(format!("cubied_srv_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        ServeConfig {
            socket: base.join("sock"),
            store_dir: base.join("store"),
            max_jobs: 2,
            heavy_slots: 1,
            queue_limit: 0,
            exec_delay_ms: 0,
        }
    }

    #[test]
    fn ping_stats_shutdown_over_the_socket() {
        let mut handle = Daemon::start(test_cfg("ping")).unwrap();
        let pong = client_request(handle.socket(), &crate::proto::simple_request("ping")).unwrap();
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            pong.get("proto").and_then(Json::as_str),
            Some(PROTO_VERSION)
        );
        let stats =
            client_request(handle.socket(), &crate::proto::simple_request("stats")).unwrap();
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert!(stats.get("counters").is_some());
        let bye =
            client_request(handle.socket(), &crate::proto::simple_request("shutdown")).unwrap();
        assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
        handle.wait();
        assert!(!handle.socket().exists(), "socket removed on clean exit");
    }

    #[test]
    fn malformed_requests_get_error_responses_not_disconnects() {
        let mut handle = Daemon::start(test_cfg("malformed")).unwrap();
        let socket = handle.socket().to_path_buf();
        // Two bad requests then a good one, all on one connection.
        let stream = UnixStream::connect(&socket).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        for (req, expect_ok) in [
            ("this is not json", false),
            (r#"{"cmd":"warp"}"#, false),
            (r#"{"cmd":"ping"}"#, true),
        ] {
            writer.write_all(req.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let resp = Json::parse(line.trim()).unwrap();
            assert_eq!(resp.get("ok"), Some(&Json::Bool(expect_ok)), "{req}");
            if !expect_ok {
                assert!(resp.get("error").is_some());
            }
        }
        drop(writer);
        drop(reader);
        handle.shutdown();
    }

    #[test]
    fn backpressure_rejects_when_the_queue_is_full() {
        // heavy_slots=1, queue_limit=0: a second concurrent heavy
        // request must be rejected, not queued.
        let cfg = ServeConfig {
            exec_delay_ms: 600,
            ..test_cfg("busy")
        };
        let mut handle = Daemon::start(cfg).unwrap();
        let socket = handle.socket().to_path_buf();
        let slow = SweepSpec {
            filters: vec![
                "workload=scan".into(),
                "case=2".into(),
                "device=h200".into(),
                "variant=tc".into(),
            ],
            sparse_scale: Some(64),
            graph_scale: Some(512),
            ..SweepSpec::default()
        };
        let fast = SweepSpec {
            filters: vec![
                "workload=reduction".into(),
                "case=2".into(),
                "device=h200".into(),
                "variant=tc".into(),
            ],
            ..slow.clone()
        };
        let slow_socket = socket.clone();
        let slow_req = slow.to_json("sweep");
        let t = std::thread::spawn(move || client_request(&slow_socket, &slow_req).unwrap());
        // Give the slow request time to take the only slot.
        std::thread::sleep(Duration::from_millis(200));
        let resp = client_request(&socket, &fast.to_json("sweep")).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("busy"));
        let slow_resp = t.join().unwrap();
        assert_eq!(slow_resp.get("ok"), Some(&Json::Bool(true)));
        // The rejection is visible in stats.
        let stats = client_request(&socket, &crate::proto::simple_request("stats")).unwrap();
        let rejected = stats
            .get("counters")
            .and_then(|c| c.get("rejected"))
            .and_then(Json::as_int)
            .unwrap();
        assert!(rejected >= 1);
        handle.shutdown();
    }
}
