//! The `cubied` wire protocol: line-delimited canonical JSON over a
//! unix socket.
//!
//! Every request is one JSON object on one line, every response one JSON
//! object on one line (compact [`Json::to_canonical_string`] spelling —
//! the canonical writer guarantees a store hit serializes to the same
//! bytes as the fresh run it caches). A connection may issue any number
//! of requests sequentially; the daemon answers in order.
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! {"cmd":"sweep","filters":["workload=scan","device=h200"],"jobs":2,
//!  "sparse_scale":64,"graph_scale":512,"verify":false}
//! {"cmd":"profile","filters":["workload=spmv"],"sparse_scale":64,"graph_scale":512}
//! {"cmd":"advise","workload":"spmv","devices":["h200"],"sparse_scale":64,"graph_scale":512}
//! ```
//!
//! Responses always carry `"ok"`; failures carry `"error"` and nothing
//! else, so a client can branch on one field. Successful `sweep`
//! responses carry `"store"` — `"miss"` (this request executed the
//! sweep), `"hit"` (served from the content-addressed store), or
//! `"dedup"` (this request piggybacked on a concurrent identical
//! execution) — plus the store `"key"` and the canonical `"artifact"`.

use cubie_bench::SweepConfig;
use cubie_golden::{obj, Json};

/// Protocol identifier, included in `ping`/`stats` responses.
pub const PROTO_VERSION: &str = "cubied/v1";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter/queue/store snapshot.
    Stats,
    /// Graceful daemon shutdown (responds, then stops accepting).
    Shutdown,
    /// A sweep over the filtered cross-product (store-backed).
    Sweep(SweepSpec),
    /// A sweep under the span recorder; returns hotspot rows, never
    /// stored (wall-clock measurements are not deterministic content).
    Profile(SweepSpec),
    /// Advisor verdict for one workload (interactive lane — bypasses
    /// the heavy-request admission queue).
    Advise(AdviseSpec),
}

/// The sweep-shaped request body (`sweep` and `profile`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepSpec {
    /// `key=value[,value…]` filter terms, the CLI `--filter` spelling.
    pub filters: Vec<String>,
    /// Requested worker cap; the daemon clamps it to its admission cap.
    pub jobs: Option<usize>,
    /// Sparse-matrix scale divisor (`None`: daemon default).
    pub sparse_scale: Option<usize>,
    /// Graph scale divisor (`None`: daemon default).
    pub graph_scale: Option<usize>,
    /// On a store hit, re-execute anyway and require bit-identity via
    /// [`cubie_golden::verify_bit_identical`] — the cache-validation
    /// oracle as an on-demand request flag.
    pub verify: bool,
}

/// The `advise` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviseSpec {
    /// Workload name ([`cubie_kernels::Workload::parse`] spelling).
    pub workload: String,
    /// Device names to advise on (`None`: all Table 5 devices).
    pub devices: Option<Vec<String>>,
    /// Sparse-matrix scale divisor (`None`: daemon default).
    pub sparse_scale: Option<usize>,
    /// Graph scale divisor (`None`: daemon default).
    pub graph_scale: Option<usize>,
}

fn get_usize(doc: &Json, key: &str) -> Result<Option<usize>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_int() {
            Some(i) if i >= 0 && i <= usize::MAX as i128 => Ok(Some(i as usize)),
            _ => Err(format!("`{key}` must be a non-negative integer")),
        },
    }
}

fn get_strings(doc: &Json, key: &str) -> Result<Option<Vec<String>>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let arr = v
                .as_array()
                .ok_or_else(|| format!("`{key}` must be an array of strings"))?;
            let mut out = Vec::with_capacity(arr.len());
            for item in arr {
                out.push(
                    item.as_str()
                        .ok_or_else(|| format!("`{key}` must be an array of strings"))?
                        .to_string(),
                );
            }
            Ok(Some(out))
        }
    }
}

fn sweep_spec(doc: &Json) -> Result<SweepSpec, String> {
    Ok(SweepSpec {
        filters: get_strings(doc, "filters")?.unwrap_or_default(),
        jobs: get_usize(doc, "jobs")?,
        sparse_scale: get_usize(doc, "sparse_scale")?,
        graph_scale: get_usize(doc, "graph_scale")?,
        verify: match doc.get("verify") {
            None | Some(Json::Null) => false,
            Some(v) => v.as_bool().ok_or("`verify` must be a boolean")?,
        },
    })
}

/// Parse one request line. Errors are client-facing strings — the
/// daemon wraps them in an `"ok": false` response rather than dropping
/// the connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("request is not valid JSON: {e}"))?;
    if !matches!(doc, Json::Object(_)) {
        return Err("request must be a JSON object".into());
    }
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("request needs a string `cmd` field")?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "sweep" => Ok(Request::Sweep(sweep_spec(&doc)?)),
        "profile" => Ok(Request::Profile(sweep_spec(&doc)?)),
        "advise" => Ok(Request::Advise(AdviseSpec {
            workload: doc
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("`advise` needs a string `workload` field")?
                .to_string(),
            devices: get_strings(&doc, "devices")?,
            sparse_scale: get_usize(&doc, "sparse_scale")?,
            graph_scale: get_usize(&doc, "graph_scale")?,
        })),
        other => Err(format!(
            "unknown cmd `{other}` (ping|stats|shutdown|sweep|profile|advise)"
        )),
    }
}

impl SweepSpec {
    /// Resolve into a [`SweepConfig`]: daemon defaults (environment and
    /// built-in scales), overridden by the request's scales, narrowed by
    /// its filters. `jobs` is applied by the server *after* admission
    /// clamping, never here.
    pub fn to_config(&self) -> Result<SweepConfig, String> {
        let mut cfg = SweepConfig {
            jobs: None,
            ..SweepConfig::default()
        };
        if let Some(ss) = self.sparse_scale {
            if ss == 0 {
                return Err("`sparse_scale` must be at least 1".into());
            }
            cfg.sparse_scale = ss;
        }
        if let Some(gs) = self.graph_scale {
            if gs == 0 {
                return Err("`graph_scale` must be at least 1".into());
            }
            cfg.graph_scale = gs;
        }
        for term in &self.filters {
            cfg.apply_filter(term)?;
        }
        Ok(cfg)
    }

    /// The request as a wire [`Json`] object (client side; `cmd` names
    /// `sweep` or `profile`).
    pub fn to_json(&self, cmd: &str) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("cmd", cmd.into())];
        if !self.filters.is_empty() {
            pairs.push((
                "filters",
                Json::Array(self.filters.iter().map(|f| f.as_str().into()).collect()),
            ));
        }
        if let Some(j) = self.jobs {
            pairs.push(("jobs", (j as u64).into()));
        }
        if let Some(ss) = self.sparse_scale {
            pairs.push(("sparse_scale", (ss as u64).into()));
        }
        if let Some(gs) = self.graph_scale {
            pairs.push(("graph_scale", (gs as u64).into()));
        }
        if self.verify {
            pairs.push(("verify", true.into()));
        }
        obj(pairs)
    }
}

impl AdviseSpec {
    /// The request as a wire [`Json`] object (client side).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("cmd", "advise".into()),
            ("workload", self.workload.as_str().into()),
        ];
        if let Some(devs) = &self.devices {
            pairs.push((
                "devices",
                Json::Array(devs.iter().map(|d| d.as_str().into()).collect()),
            ));
        }
        if let Some(ss) = self.sparse_scale {
            pairs.push(("sparse_scale", (ss as u64).into()));
        }
        if let Some(gs) = self.graph_scale {
            pairs.push(("graph_scale", (gs as u64).into()));
        }
        obj(pairs)
    }
}

/// A bare `{"cmd": …}` request (`ping`/`stats`/`shutdown`).
pub fn simple_request(cmd: &str) -> Json {
    obj(vec![("cmd", cmd.into())])
}

/// A failure response: `{"ok": false, "error": …}`.
pub fn error_response(msg: &str) -> Json {
    obj(vec![("ok", false.into()), ("error", msg.into())])
}

/// A success response: `{"ok": true, "cmd": …, …fields}`.
pub fn ok_response(cmd: &str, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![("ok", true.into()), ("cmd", cmd.into())];
    pairs.extend(fields);
    obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_commands() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#), Ok(Request::Stats));
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
    }

    #[test]
    fn parse_errors_name_the_problem() {
        assert!(parse_request("not json").unwrap_err().contains("not valid"));
        assert!(parse_request("[1,2]").unwrap_err().contains("JSON object"));
        assert!(parse_request("{}").unwrap_err().contains("`cmd`"));
        assert!(parse_request(r#"{"cmd":"fly"}"#)
            .unwrap_err()
            .contains("unknown cmd `fly`"));
        assert!(parse_request(r#"{"cmd":"sweep","jobs":-1}"#)
            .unwrap_err()
            .contains("`jobs`"));
        assert!(parse_request(r#"{"cmd":"sweep","filters":[1]}"#)
            .unwrap_err()
            .contains("`filters`"));
        assert!(parse_request(r#"{"cmd":"advise"}"#)
            .unwrap_err()
            .contains("`workload`"));
    }

    #[test]
    fn sweep_spec_round_trips_through_the_wire_shape() {
        let spec = SweepSpec {
            filters: vec!["workload=scan".into(), "device=h200".into()],
            jobs: Some(2),
            sparse_scale: Some(64),
            graph_scale: Some(512),
            verify: true,
        };
        let line = spec.to_json("sweep").to_canonical_string();
        match parse_request(&line) {
            Ok(Request::Sweep(back)) => assert_eq!(back, spec),
            other => panic!("expected sweep, got {other:?}"),
        }
        let advise = AdviseSpec {
            workload: "spmv".into(),
            devices: Some(vec!["h200".into()]),
            sparse_scale: None,
            graph_scale: None,
        };
        let line = advise.to_json().to_canonical_string();
        match parse_request(&line) {
            Ok(Request::Advise(back)) => assert_eq!(back, advise),
            other => panic!("expected advise, got {other:?}"),
        }
    }

    #[test]
    fn sweep_spec_resolves_to_a_filtered_config() {
        let spec = SweepSpec {
            filters: vec!["workload=scan".into(), "case=2".into()],
            sparse_scale: Some(64),
            graph_scale: Some(512),
            ..SweepSpec::default()
        };
        let cfg = spec.to_config().unwrap();
        assert_eq!(cfg.workloads, vec![cubie_kernels::Workload::Scan]);
        assert_eq!(cfg.cases, Some(vec![2]));
        assert_eq!((cfg.sparse_scale, cfg.graph_scale), (64, 512));
        assert_eq!(cfg.jobs, None, "jobs is the server's call, post-clamp");
        // Bad inputs surface as client errors, not panics.
        let bad = SweepSpec {
            filters: vec!["workload=warp9".into()],
            ..SweepSpec::default()
        };
        assert!(bad.to_config().unwrap_err().contains("warp9"));
        let zero = SweepSpec {
            sparse_scale: Some(0),
            ..SweepSpec::default()
        };
        assert!(zero.to_config().unwrap_err().contains("sparse_scale"));
    }
}
