//! # cubie-serve
//!
//! `cubied`: the sweep-as-a-service daemon. Lifts the sweep engine's
//! process-wide memoization into a long-running server so repeated
//! characterization queries — the million-user traffic pattern — become
//! O(lookup):
//!
//! * [`proto`] — the line-delimited JSON wire protocol over a unix
//!   socket (`sweep`/`advise`/`profile`/`ping`/`stats`/`shutdown`).
//! * [`store`] — the content-addressed result store under
//!   `results/store/`, keyed by `hash(request identity, golden schema
//!   version, crate version)`, written atomically through the canonical
//!   golden JSON writer so cache hits are bit-identical to fresh runs,
//!   and revalidated on startup (the golden differ is the validation
//!   oracle, reachable on demand via the `verify` request flag).
//! * [`server`] — the daemon itself: request batching/dedup (N
//!   concurrent identical requests → one execution), admission control
//!   (per-request job clamps, bounded pending queue with backpressure),
//!   per-request `cubie_obs` counters (`serve.hit` / `serve.miss` /
//!   `serve.dedup` / `serve.queued` / …).
//!
//! Start it with `cubie serve`, talk to it with `cubie client` (see
//! README, "Running cubied").

#![warn(missing_docs)]

pub mod proto;
#[cfg(unix)]
pub mod server;
pub mod store;

pub use proto::{AdviseSpec, Request, SweepSpec, PROTO_VERSION};
#[cfg(unix)]
pub use server::{client_request, Daemon, Handle, ServeConfig};
pub use store::{fnv1a64, Lookup, Store, StoreKey, STORE_SCHEMA};
