//! Property-based tests of the workload implementations: every variant
//! must agree with its serial reference on arbitrary inputs, and TC must
//! be bit-identical to CC everywhere.

use cubie_core::{ErrorStats, C64};
use cubie_kernels::{bfs, fft, gemv, reduction, scan, spmv, Variant};
use cubie_sparse::{Coo, Csr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scan: all variants agree with the running sum for arbitrary
    /// lengths and values.
    #[test]
    fn scan_all_variants(xs in proptest::collection::vec(-100.0..100.0f64, 1..1500)) {
        let gold = scan::reference(&xs);
        let scale = xs.iter().fold(1.0f64, |a, v| a.max(v.abs())) * xs.len() as f64;
        for v in Variant::ALL {
            let (y, _) = scan::run(&xs, v);
            let e = ErrorStats::compare(&y, &gold);
            prop_assert!(e.max <= 1e-12 * scale, "{v}: {}", e.max);
        }
        let (tc, _) = scan::run(&xs, Variant::Tc);
        let (cc, _) = scan::run(&xs, Variant::Cc);
        prop_assert_eq!(tc, cc);
    }

    /// Reduction: all variants agree with the serial sum.
    #[test]
    fn reduction_all_variants(xs in proptest::collection::vec(-100.0..100.0f64, 1..1500)) {
        let gold = reduction::reference(&xs);
        let scale = xs.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        for v in Variant::ALL {
            let (s, _) = reduction::run(&xs, v);
            prop_assert!((s - gold).abs() <= 1e-12 * scale, "{v}: {s} vs {gold}");
        }
    }

    /// GEMV: all variants agree with the dense mat-vec for arbitrary
    /// tall-skinny shapes.
    #[test]
    fn gemv_all_variants(m in 1usize..200, n in 1usize..40, seed in 0u64..500) {
        let a = cubie_core::DenseMatrix::random(m, n, seed + 1);
        let x = cubie_core::LcgF64::new(seed + 7).vec(n);
        let gold = gemv::reference(&a, &x);
        for v in Variant::ALL {
            let (y, _) = gemv::run(&a, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            prop_assert!(e.max < 1e-11 * n as f64, "{v}: {}", e.max);
        }
    }

    /// SpMV: all variants agree with serial CSR on random sparse
    /// matrices, and the trace op counts match the built format.
    #[test]
    fn spmv_all_variants(
        rows in 1usize..120,
        cols in 1usize..120,
        entries in proptest::collection::vec((0usize..120, 0usize..120, -5.0..5.0f64), 0..400),
    ) {
        let mut coo = Coo::new(rows, cols);
        for (r, c, v) in entries {
            if r < rows && c < cols {
                coo.push(r, c, v);
            }
        }
        let m = Csr::from_coo(coo);
        let x = spmv::input_vector(&m);
        let gold = spmv::reference(&m, &x);
        for v in Variant::ALL {
            let (y, _) = spmv::run(&m, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            prop_assert!(e.max < 1e-10, "{v}: {}", e.max);
        }
        let fmt = spmv::DaspFormat::from_csr(&m);
        let t = spmv::trace(&m, Variant::Tc);
        prop_assert_eq!(t.total_ops().mma_f64, fmt.total_steps());
    }

    /// FFT: the batched tensor-core transform matches the naive DFT for
    /// any power-of-two length and batch size.
    #[test]
    fn fft_matches_dft(log_n in 1u32..8, batch in 1usize..10, seed in 0u64..500) {
        let n = 1usize << log_n;
        let mut g = cubie_core::LcgF64::new(seed + 3);
        let xs: Vec<Vec<C64>> = (0..batch)
            .map(|_| (0..n).map(|_| C64::new(g.next_f64(), g.next_f64())).collect())
            .collect();
        for v in [Variant::Baseline, Variant::Tc] {
            let mut got = xs.clone();
            fft::fft1d_batch(&mut got, v);
            for (x, orig) in got.iter().zip(&xs) {
                let gold = fft::dft_naive(orig);
                let e = ErrorStats::compare_c64(x, &gold);
                prop_assert!(e.max < 1e-9 * n as f64, "{v} n={n}: {}", e.max);
            }
        }
    }

    /// BFS: every variant reproduces serial levels exactly on random
    /// graphs, and the trace issues one launch per level (+1 final).
    #[test]
    fn bfs_all_variants(
        n in 2usize..256,
        edges in proptest::collection::vec((0u32..256, 0u32..256), 0..800),
        sym in any::<bool>(),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|(u, v)| (*u as usize) < n && (*v as usize) < n)
            .collect();
        let g = cubie_graph::CsrGraph::from_edges(n, &edges, sym);
        let src = g.max_degree_vertex();
        let gold = bfs::reference(&g, src);
        let depth = *gold.iter().max().unwrap();
        for v in Variant::ALL {
            let (levels, trace) = bfs::run(&g, src, v);
            prop_assert_eq!(&levels, &gold, "{}", v);
            prop_assert_eq!(trace.launches(), depth.max(0) as usize + 1, "{}", v);
        }
    }
}
