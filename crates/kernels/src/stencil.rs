//! **Stencil** — structured-grid neighbour updates (Quadrant I).
//!
//! * **TC** follows LoRAStencil (SC '24) in FP64: the star stencil's
//!   weight matrix separates into per-axis banded factors, so each 8×8
//!   output tile is computed as `Out = V·X_v + X_h·H` — a vertical-pass
//!   matmul with the tridiagonal factor `V` (rows i−1…i+8 of the input)
//!   plus a horizontal-pass matmul with `H` (columns j−1…j+8). The factor
//!   matrices are constants kept in constant memory ("Stencil loads
//!   matrix B only once from constant memory", Section 4), and the second
//!   pass accumulates into the first pass's MMA `C` — full input and
//!   output utilization. 3-D star stencils add a depth contribution from
//!   the z±1 slabs via element-wise FMAs on slab-resident data.
//! * **CC** issues identical chains on CUDA cores (bit-identical);
//!   CC-E ≡ CC (Quadrant I).
//! * **Baseline** models DRStencil: a register/shared-memory tiled vector
//!   stencil whose halo exchange breaks perfect coalescing.
//!
//! Boundary convention: out-of-grid neighbours read as zero, and all
//! points (including borders) are produced.

use cubie_core::counters::{MemTraffic, MMA_F64_FMAS};
use cubie_core::mma::mma_f64_m8n8k4;
use cubie_core::simd::{self, StarTap};
use cubie_core::{par, workspace, OpCounters};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};

use crate::common::Variant;

/// Stencil shapes evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StencilKind {
    /// 5-point star, radius 1, 2-D.
    Star2D1R,
    /// 9-point star, radius 2, 2-D (a LoRAStencil extension case: the
    /// wider band still fits the 8×12 factor exactly — 8 outputs need
    /// 12 input rows).
    Star2D2R,
    /// 7-point star, radius 1, 3-D.
    Star3D1R,
}

/// Stencil coefficients: centre plus one weight per axis direction (and
/// a distance-2 weight for radius-2 stars).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coefficients {
    /// Centre weight.
    pub center: f64,
    /// North/south (y-axis) weight.
    pub axis_y: f64,
    /// East/west (x-axis) weight.
    pub axis_x: f64,
    /// Front/back (z-axis) weight (3-D only).
    pub axis_z: f64,
    /// Distance-2 weight along both in-plane axes (radius-2 stars).
    pub axis_2: f64,
}

impl Coefficients {
    /// The classic diffusion star weights.
    pub fn diffusion(kind: StencilKind) -> Self {
        match kind {
            StencilKind::Star2D1R => Self {
                center: -4.0,
                axis_y: 1.0,
                axis_x: 1.0,
                axis_z: 0.0,
                axis_2: 0.0,
            },
            StencilKind::Star2D2R => Self {
                center: -6.0,
                axis_y: 1.25,
                axis_x: 1.25,
                axis_z: 0.0,
                axis_2: 0.25,
            },
            StencilKind::Star3D1R => Self {
                center: -6.0,
                axis_y: 1.0,
                axis_x: 1.0,
                axis_z: 1.0,
                axis_2: 0.0,
            },
        }
    }
}

/// One stencil test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StencilCase {
    /// Stencil shape.
    pub kind: StencilKind,
    /// Grid extent in y (and z for 3-D: `dims = (z, y, x)`).
    pub dims: (usize, usize, usize),
}

impl StencilCase {
    /// A 2-D case (`z = 1`).
    pub fn star2d(ny: usize, nx: usize) -> Self {
        Self {
            kind: StencilKind::Star2D1R,
            dims: (1, ny, nx),
        }
    }

    /// A radius-2 2-D case.
    pub fn star2d2r(ny: usize, nx: usize) -> Self {
        Self {
            kind: StencilKind::Star2D2R,
            dims: (1, ny, nx),
        }
    }

    /// A 3-D case.
    pub fn star3d(nz: usize, ny: usize, nx: usize) -> Self {
        Self {
            kind: StencilKind::Star3D1R,
            dims: (nz, ny, nx),
        }
    }

    /// The five Table 2 test cases: star2d1r at 1K², 5K², 10K² and
    /// star3d1r at 512³ and 1K³.
    pub fn cases() -> Vec<StencilCase> {
        vec![
            StencilCase::star2d(1024, 1024),
            StencilCase::star2d(5120, 5120),
            StencilCase::star2d(10_240, 10_240),
            StencilCase::star3d(512, 512, 512),
            StencilCase::star3d(1024, 1024, 1024),
        ]
    }

    /// Total grid points.
    pub fn points(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Useful floating-point work: the essential star FLOPs per point
    /// (5-point: 5 FMA·2; 7-point: 7 FMA·2).
    pub fn useful_flops(&self) -> f64 {
        let taps = match self.kind {
            StencilKind::Star2D1R => 5.0,
            StencilKind::Star2D2R => 9.0,
            StencilKind::Star3D1R => 7.0,
        };
        2.0 * taps * self.points() as f64
    }

    /// Case label for reports.
    pub fn label(&self) -> String {
        match self.kind {
            StencilKind::Star2D1R => format!("star2d1r-{}x{}", self.dims.1, self.dims.2),
            StencilKind::Star2D2R => format!("star2d2r-{}x{}", self.dims.1, self.dims.2),
            StencilKind::Star3D1R => {
                format!("star3d1r-{}x{}x{}", self.dims.0, self.dims.1, self.dims.2)
            }
        }
    }
}

/// Deterministic grid input for a case.
pub fn input(case: &StencilCase) -> Vec<f64> {
    cubie_core::LcgF64::new(0x57 + case.points() as u64).vec(case.points())
}

/// Serial CPU ground truth: naive per-point star with unfused arithmetic
/// (zero boundary).
pub fn reference(case: &StencilCase, x: &[f64]) -> Vec<f64> {
    let (nz, ny, nx) = case.dims;
    let co = Coefficients::diffusion(case.kind);
    let at = |z: i64, y: i64, xx: i64| -> f64 {
        if z < 0 || y < 0 || xx < 0 || z >= nz as i64 || y >= ny as i64 || xx >= nx as i64 {
            0.0
        } else {
            x[(z as usize * ny + y as usize) * nx + xx as usize]
        }
    };
    let mut out = vec![0.0f64; x.len()];
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for xx in 0..nx as i64 {
                let mut v = co.center * at(z, y, xx);
                v += co.axis_y * (at(z, y - 1, xx) + at(z, y + 1, xx));
                v += co.axis_x * (at(z, y, xx - 1) + at(z, y, xx + 1));
                if case.kind == StencilKind::Star2D2R {
                    v += co.axis_2 * (at(z, y - 2, xx) + at(z, y + 2, xx));
                    v += co.axis_2 * (at(z, y, xx - 2) + at(z, y, xx + 2));
                }
                if case.kind == StencilKind::Star3D1R {
                    v += co.axis_z * (at(z - 1, y, xx) + at(z + 1, y, xx));
                }
                out[(z as usize * ny + y as usize) * nx + xx as usize] = v;
            }
        }
    }
    out
}

/// Functional execution of one variant.
pub fn run(case: &StencilCase, x: &[f64], variant: Variant) -> (Vec<f64>, WorkloadTrace) {
    assert_eq!(x.len(), case.points(), "grid size mismatch");
    let out = match variant {
        Variant::Tc | Variant::Cc | Variant::CcE => run_mma(case, x),
        Variant::Baseline => run_baseline(case, x),
    };
    (out, trace(case, variant))
}

/// Band radius of a stencil kind.
fn radius(kind: StencilKind) -> usize {
    match kind {
        StencilKind::Star2D1R | StencilKind::Star3D1R => 1,
        StencilKind::Star2D2R => 2,
    }
}

/// Build the 8×12 vertical band factor (row-major): out row `r` draws on
/// padded input rows `r + radius ± d` (the input slab starts `radius`
/// rows above the tile; 8 outputs + 2·radius halo ≤ 12 for radius ≤ 2).
/// The centre weight is split between the passes.
fn v_factor(kind: StencilKind, co: &Coefficients, center_share: f64) -> [f64; 96] {
    let rad = radius(kind);
    let mut v = [0.0f64; 96];
    for r in 0..8 {
        if rad == 2 {
            v[r * 12 + r] = co.axis_2;
            v[r * 12 + r + 4] = co.axis_2;
        }
        v[r * 12 + r + rad - 1] = co.axis_y;
        v[r * 12 + r + rad] = center_share;
        v[r * 12 + r + rad + 1] = co.axis_y;
    }
    v
}

/// The 12×8 horizontal band factor: transpose structure of `v_factor`
/// with the x-axis weights.
fn h_factor(kind: StencilKind, co: &Coefficients, center_share: f64) -> [f64; 96] {
    let rad = radius(kind);
    let mut h = [0.0f64; 96];
    for c in 0..8 {
        if rad == 2 {
            h[c * 8 + c] = co.axis_2;
            h[(c + 4) * 8 + c] = co.axis_2;
        }
        h[(c + rad - 1) * 8 + c] = co.axis_x;
        h[(c + rad) * 8 + c] = center_share;
        h[(c + rad + 1) * 8 + c] = co.axis_x;
    }
    h
}

/// TC/CC/CC-E functional path (identical numerics): per 8×8 tile, the
/// vertical-factor MMA chain followed by the horizontal-factor chain
/// accumulating into the same `C`, plus the z-axis FMA contribution in
/// 3-D.
fn run_mma(case: &StencilCase, x: &[f64]) -> Vec<f64> {
    let (nz, ny, nx) = case.dims;
    let co = Coefficients::diffusion(case.kind);
    let (vshare, hshare) = center_split(case.kind, &co);
    let v = v_factor(case.kind, &co, vshare);
    let h = h_factor(case.kind, &co, hshare);
    let rad = radius(case.kind) as i64;
    let tiles_y = ny.div_ceil(8);
    let tiles_x = nx.div_ceil(8);
    let mut out = vec![0.0f64; x.len()];

    let plane = ny * nx;
    par::par_chunks_mut(&mut out, plane, |z, out_plane| {
        let at = |y: i64, xx: i64| -> f64 {
            if y < 0 || xx < 0 || y >= ny as i64 || xx >= nx as i64 {
                0.0
            } else {
                x[z * plane + y as usize * nx + xx as usize]
            }
        };
        let mut scratch = OpCounters::new();
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let (y0, x0) = (ty as i64 * 8, tx as i64 * 8);
                let mut ct = [0.0f64; 64];
                // Vertical pass: A = V (8×12), B = input slab (12×8).
                let mut slab = [0.0f64; 96];
                for k in 0..12 {
                    for c in 0..8 {
                        slab[k * 8 + c] = at(y0 + k as i64 - rad, x0 + c as i64);
                    }
                }
                mma_chain_8xk(&v, &slab, &mut ct, &mut scratch);
                // Horizontal pass: A = input slab (8×12), B = H (12×8),
                // accumulated into the same C.
                let mut slab_h = [0.0f64; 96];
                for r in 0..8 {
                    for k in 0..12 {
                        slab_h[r * 12 + k] = at(y0 + r as i64, x0 + k as i64 - rad);
                    }
                }
                mma_chain_kx8(&slab_h, &h, &mut ct, &mut scratch);
                // Depth pass (3-D): z±1 contributions as element-wise
                // fused multiply-adds on slab-resident data.
                if case.kind == StencilKind::Star3D1R {
                    for r in 0..8usize {
                        for c in 0..8usize {
                            let (gy, gx) = (y0 as usize + r, x0 as usize + c);
                            if gy < ny && gx < nx {
                                let below = if z > 0 {
                                    x[(z - 1) * plane + gy * nx + gx]
                                } else {
                                    0.0
                                };
                                let above = if z + 1 < nz {
                                    x[(z + 1) * plane + gy * nx + gx]
                                } else {
                                    0.0
                                };
                                let i = r * 8 + c;
                                ct[i] = co.axis_z.mul_add(below, ct[i]);
                                ct[i] = co.axis_z.mul_add(above, ct[i]);
                            }
                        }
                    }
                }
                for r in 0..8usize {
                    for c in 0..8usize {
                        let (gy, gx) = (y0 as usize + r, x0 as usize + c);
                        if gy < ny && gx < nx {
                            out_plane[gy * nx + gx] = ct[r * 8 + c];
                        }
                    }
                }
            }
        }
    });
    out
}

/// How the centre weight splits between the vertical and horizontal
/// passes (the z contribution carries no centre share).
fn center_split(kind: StencilKind, co: &Coefficients) -> (f64, f64) {
    match kind {
        StencilKind::Star2D1R | StencilKind::Star2D2R | StencilKind::Star3D1R => {
            (co.center / 2.0, co.center / 2.0)
        }
    }
}

/// `C (8×8) += A (8×12) · B (12×8)` as three chained `m8n8k4` MMAs.
fn mma_chain_8xk(a: &[f64; 96], b: &[f64; 96], c: &mut [f64; 64], ctr: &mut OpCounters) {
    let mut at = [0.0f64; 32];
    let mut bt = [0.0f64; 32];
    for step in 0..3 {
        let k0 = step * 4;
        for i in 0..8 {
            at[i * 4..i * 4 + 4].copy_from_slice(&a[i * 12 + k0..i * 12 + k0 + 4]);
        }
        for k in 0..4 {
            bt[k * 8..k * 8 + 8].copy_from_slice(&b[(k0 + k) * 8..(k0 + k) * 8 + 8]);
        }
        mma_f64_m8n8k4(&at, &bt, c, ctr);
    }
}

/// Same chain with the band factor on the `B` side (`A` is the 8×12 data
/// slab).
fn mma_chain_kx8(a: &[f64; 96], b: &[f64; 96], c: &mut [f64; 64], ctr: &mut OpCounters) {
    let mut at = [0.0f64; 32];
    let mut bt = [0.0f64; 32];
    for step in 0..3 {
        let k0 = step * 4;
        for i in 0..8 {
            at[i * 4..i * 4 + 4].copy_from_slice(&a[i * 12 + k0..i * 12 + k0 + 4]);
        }
        for k in 0..4 {
            bt[k * 8..k * 8 + 8].copy_from_slice(&b[(k0 + k) * 8..(k0 + k) * 8 + 8]);
        }
        mma_f64_m8n8k4(&at, &bt, c, ctr);
    }
}

/// One grid row as a slice — or a shared all-zeros row for out-of-grid
/// neighbour coordinates, so every output row of the baseline stencil
/// vectorizes with the same tap structure (the zero row reproduces the
/// zero-padding boundary convention bit-exactly: `w·(0+0)` contributes
/// the same `+0.0` the scalar `at()` closure folds in).
#[allow(clippy::too_many_arguments)] // internal row-view helper on the hot path
fn grid_row<'a>(
    x: &'a [f64],
    zeros: &'a [f64],
    plane: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    z: i64,
    y: i64,
) -> &'a [f64] {
    if z < 0 || y < 0 || z >= nz as i64 || y >= ny as i64 {
        zeros
    } else {
        &x[z as usize * plane + y as usize * nx..][..nx]
    }
}

/// Baseline functional path: per-point fused star (DRStencil's data-reuse
/// tiling changes traffic, not numerics). Interior columns of each row
/// run on the active `cubie_core::simd` path as one [`simd::star_row`]
/// per output row (independent output points in lanes, per-point op
/// order preserved → bit-identical to scalar); the `radius` border
/// columns keep the scalar per-point loop.
fn run_baseline(case: &StencilCase, x: &[f64]) -> Vec<f64> {
    let (nz, ny, nx) = case.dims;
    let co = Coefficients::diffusion(case.kind);
    let rad = match case.kind {
        StencilKind::Star2D2R => 2usize,
        StencilKind::Star2D1R | StencilKind::Star3D1R => 1,
    };
    let plane = ny * nx;
    let zeros = workspace::take(nx, 0.0f64);
    // Degenerate-width grids (nx ≤ 2·rad) have no interior: lo == hi
    // makes the border loop cover every column.
    let (lo, hi) = if nx > 2 * rad {
        (rad, nx - rad)
    } else {
        (0, 0)
    };
    let mut out = vec![0.0f64; x.len()];
    par::par_chunks_mut(&mut out, plane, |z, out_plane| {
        let row = |zz: i64, y: i64| grid_row(x, &zeros, plane, nx, ny, nz, zz, y);
        let at = |y: i64, xx: i64| -> f64 {
            if y < 0 || xx < 0 || y >= ny as i64 || xx >= nx as i64 {
                0.0
            } else {
                x[z * plane + y as usize * nx + xx as usize]
            }
        };
        let zi = z as i64;
        // One tap list per plane, cleared per row (the taps borrow rows
        // of `x`/`zeros`, which outlive the loop).
        let mut taps: Vec<StarTap> = Vec::with_capacity(5);
        for y in 0..ny {
            let yi = y as i64;
            if lo < hi {
                // Tap order = the scalar per-point op order below.
                let cr = row(zi, yi);
                taps.clear();
                taps.push(StarTap {
                    weight: co.axis_y,
                    a: &row(zi, yi - 1)[lo..hi],
                    b: &row(zi, yi + 1)[lo..hi],
                });
                taps.push(StarTap {
                    weight: co.axis_x,
                    a: &cr[lo - 1..hi - 1],
                    b: &cr[lo + 1..hi + 1],
                });
                if case.kind == StencilKind::Star2D2R {
                    taps.push(StarTap {
                        weight: co.axis_2,
                        a: &row(zi, yi - 2)[lo..hi],
                        b: &row(zi, yi + 2)[lo..hi],
                    });
                    taps.push(StarTap {
                        weight: co.axis_2,
                        a: &cr[lo - 2..hi - 2],
                        b: &cr[lo + 2..hi + 2],
                    });
                }
                if case.kind == StencilKind::Star3D1R {
                    taps.push(StarTap {
                        weight: co.axis_z,
                        a: &row(zi - 1, yi)[lo..hi],
                        b: &row(zi + 1, yi)[lo..hi],
                    });
                }
                simd::star_row(
                    co.center,
                    &cr[lo..hi],
                    &taps,
                    &mut out_plane[y * nx + lo..y * nx + hi],
                );
            }
            for xx in (0..lo).chain(hi..nx) {
                let xx = xx as i64;
                let mut v = co.center * at(yi, xx);
                v = co.axis_y.mul_add(at(yi - 1, xx) + at(yi + 1, xx), v);
                v = co.axis_x.mul_add(at(yi, xx - 1) + at(yi, xx + 1), v);
                if case.kind == StencilKind::Star2D2R {
                    v = co.axis_2.mul_add(at(yi - 2, xx) + at(yi + 2, xx), v);
                    v = co.axis_2.mul_add(at(yi, xx - 2) + at(yi, xx + 2), v);
                }
                if case.kind == StencilKind::Star3D1R {
                    let below = row(zi - 1, yi)[xx as usize];
                    let above = row(zi + 1, yi)[xx as usize];
                    v = co.axis_z.mul_add(below + above, v);
                }
                out_plane[y * nx + xx as usize] = v;
            }
        }
    });
    out
}

/// Analytic trace of one variant.
pub fn trace(case: &StencilCase, variant: Variant) -> WorkloadTrace {
    let (nz, ny, nx) = case.dims;
    let tiles = (nz * ny.div_ceil(8) * nx.div_ceil(8)) as u64;
    let points = case.points() as u64;
    let is_3d = case.kind == StencilKind::Star3D1R;
    let label = format!("stencil-{}-{}", variant.label(), case.label());
    let mut ops = OpCounters::default();
    let critical;
    match variant {
        Variant::Tc | Variant::Cc | Variant::CcE => {
            let mma = tiles * 6;
            match variant {
                Variant::Tc => ops.mma_f64 = mma,
                _ => {
                    ops.fma_f64 = mma * MMA_F64_FMAS;
                    ops.int_ops = mma * MMA_F64_FMAS; // operand shuffles
                }
            }
            if is_3d {
                ops.fma_f64 += 2 * points;
            }
            // The compulsory grid read streams coalesced from DRAM
            // (LoRAStencil's memory-efficient gathering); the 10×10-per-
            // tile halo overlap re-reads are served by L2, and in 3-D the
            // z±1 neighbours come from slabs kept resident in shared
            // memory; factors come from constant memory.
            ops.gmem_load = MemTraffic::coalesced(points * 8);
            ops.l2_bytes = (tiles * 100 * 8).saturating_sub(points * 8);
            if is_3d {
                ops.smem_bytes += 2 * points * 8;
            }
            ops.gmem_store = MemTraffic::coalesced(points * 8);
            ops.smem_bytes = tiles * (2 * 96 * 8 * 2);
            ops.cmem_bytes = tiles * 2 * 96 * 8 / 96; // broadcast factors
            ops.syncs = tiles;
            critical = latency::GMEM_RT
                + 6.0
                    * match variant {
                        Variant::Tc => latency::MMA_F64,
                        _ => 4.0 * latency::FMA_F64,
                    };
        }
        Variant::Baseline => {
            let taps = match case.kind {
                StencilKind::Star3D1R => 7,
                StencilKind::Star2D2R => 9,
                StencilKind::Star2D1R => 5,
            };
            ops.fma_f64 = points * taps;
            // DRStencil loads tile + halo with unaligned row segments:
            // the access stream is partially coalesced, and each point is
            // re-read from shared memory by its neighbours.
            ops.gmem_load = MemTraffic {
                coalesced: 0,
                strided: points * 8,
                random: 0,
            };
            ops.l2_bytes = points * 8 / 4;
            ops.gmem_store = MemTraffic::coalesced(points * 8);
            ops.smem_bytes = points * 8 * taps;
            ops.syncs = points / (32 * 8);
            critical = latency::GMEM_RT + taps as f64 * latency::FMA_F64;
        }
    }
    let blocks = tiles.div_ceil(8).max(1);
    WorkloadTrace::single(KernelTrace::new(
        label,
        blocks,
        256,
        2 * 96 * 8,
        ops,
        critical,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::ErrorStats;

    #[test]
    fn table2_cases() {
        let c = StencilCase::cases();
        assert_eq!(c.len(), 5);
        assert_eq!(c[2].dims.1, 10_240);
        assert_eq!(c[3].kind, StencilKind::Star3D1R);
    }

    #[test]
    fn variants_match_reference_2d() {
        let case = StencilCase::star2d(40, 56);
        let x = input(&case);
        let gold = reference(&case, &x);
        for v in Variant::ALL {
            let (y, _) = run(&case, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-12, "{v}: max err {}", e.max);
        }
    }

    #[test]
    fn variants_match_reference_3d() {
        let case = StencilCase::star3d(6, 24, 16);
        let x = input(&case);
        let gold = reference(&case, &x);
        for v in Variant::ALL {
            let (y, _) = run(&case, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-12, "{v}: max err {}", e.max);
        }
    }

    #[test]
    fn tc_equals_cc_bitwise() {
        let case = StencilCase::star2d(32, 32);
        let x = input(&case);
        assert_eq!(run(&case, &x, Variant::Tc).0, run(&case, &x, Variant::Cc).0);
    }

    #[test]
    fn ragged_grid_handled() {
        let case = StencilCase::star2d(19, 23);
        let x = input(&case);
        let gold = reference(&case, &x);
        let (y, _) = run(&case, &x, Variant::Tc);
        let e = ErrorStats::compare(&y, &gold);
        assert!(e.max < 1e-12, "max err {}", e.max);
    }

    #[test]
    fn laplacian_of_constant_grid_is_zero_inside() {
        let case = StencilCase::star2d(16, 16);
        let x = vec![1.0; case.points()];
        let (y, _) = run(&case, &x, Variant::Tc);
        // Interior points: -4 + 4 = 0.
        assert_eq!(y[5 * 16 + 5], 0.0);
        // Corner: -4 + 2 = -2.
        assert_eq!(y[0], -2.0);
    }

    #[test]
    fn tc_trace_counts() {
        let case = StencilCase::star2d(1024, 1024);
        let t = trace(&case, Variant::Tc).total_ops();
        assert_eq!(t.mma_f64, (1024 / 8) * (1024 / 8) * 6);
        assert!(t.cmem_bytes > 0, "factors live in constant memory");
    }

    #[test]
    fn baseline_has_strided_halo_traffic() {
        let case = StencilCase::star2d(1024, 1024);
        let b = trace(&case, Variant::Baseline).total_ops();
        let t = trace(&case, Variant::Tc).total_ops();
        assert!(b.gmem_load.strided > 0);
        assert_eq!(t.gmem_load.strided, 0);
    }
}

#[cfg(test)]
mod radius2_tests {
    use super::*;
    use crate::common::Variant;
    use cubie_core::ErrorStats;

    #[test]
    fn star2d2r_variants_match_reference() {
        let case = StencilCase::star2d2r(40, 56);
        let x = input(&case);
        let gold = reference(&case, &x);
        for v in [Variant::Baseline, Variant::Tc, Variant::Cc] {
            let (y, _) = run(&case, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-12, "{v}: max err {}", e.max);
        }
    }

    #[test]
    fn star2d2r_tc_equals_cc_bitwise() {
        let case = StencilCase::star2d2r(24, 32);
        let x = input(&case);
        assert_eq!(run(&case, &x, Variant::Tc).0, run(&case, &x, Variant::Cc).0);
    }

    #[test]
    fn radius2_constant_grid_interior_is_zero() {
        // Weights sum to zero: -6 + 2·1.25 + 2·1.25 + 4·0.25 = 0.
        let case = StencilCase::star2d2r(16, 16);
        let x = vec![1.0; case.points()];
        let (y, _) = run(&case, &x, Variant::Tc);
        assert_eq!(y[8 * 16 + 8], 0.0);
    }

    #[test]
    fn radius2_uses_the_same_mma_budget() {
        // 8 outputs + 4 halo rows = 12 = the same k extent: radius 2
        // costs no extra MMAs — the LoRAStencil selling point.
        let r1 = trace(&StencilCase::star2d(1024, 1024), Variant::Tc).total_ops();
        let r2 = trace(&StencilCase::star2d2r(1024, 1024), Variant::Tc).total_ops();
        assert_eq!(r1.mma_f64, r2.mma_f64);
    }

    #[test]
    fn radius2_baseline_pays_more_taps() {
        let r1 = trace(&StencilCase::star2d(1024, 1024), Variant::Baseline).total_ops();
        let r2 = trace(&StencilCase::star2d2r(1024, 1024), Variant::Baseline).total_ops();
        assert!(r2.fma_f64 > r1.fma_f64);
    }
}
