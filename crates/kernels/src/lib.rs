//! # cubie-kernels
//!
//! The ten Cubie workloads (Table 2), each in up to four algorithmic
//! variants (Section 5.2):
//!
//! * **Baseline** — the vendor-library-style vector-unit algorithm
//!   (cuBLAS / cuSPARSE / cuFFT / CUB / Gunrock / DRStencil analogue).
//! * **TC** — the tensor-core (MMU) algorithm: data reorganized into MMA
//!   operand shapes, arithmetic issued as `m8n8k4` / `m8n8k128` MMAs.
//! * **CC** — the same data structures and algorithm with every MMA
//!   replaced by the equivalent CUDA-core instruction sequence
//!   (bit-identical numerics to TC by construction).
//! * **CC-E** — only the mathematically essential CUDA-core operations,
//!   dropping the redundancy the MMA shape introduces (distinct from CC
//!   only outside Quadrant I).
//!
//! Every variant offers **functional execution** (`run*` — computes the
//! actual values the GPU algorithm would produce, on CPU threads, while
//! counting operations) and an **analytic trace** (`trace*` — the same
//! launch geometry and operation counts without touching data, so
//! paper-scale problems can be timed by `cubie-sim` without being
//! executed). Tests assert the two agree operation-for-operation, and
//! that every variant matches its serial CPU ground truth.
//!
//! [`suite`] exposes the uniform registry (workloads × quadrants ×
//! variants × Table 2 cases) the figure/table harnesses consume.

#![warn(missing_docs)]

pub mod bfs;
pub mod common;
pub mod fft;
pub mod gemm;
pub mod gemv;
pub mod pic;
pub mod reduction;
pub mod scan;
pub mod segmented;
pub mod spgemm;
pub mod spmv;
pub mod stencil;
pub mod suite;

pub use common::{Quadrant, Variant};
pub use cubie_core::scalar::{MmaGen, Precision};
pub use suite::{all_workloads, prepare_cases, PreparedCase, Workload, WorkloadSpec};
