//! **SpGEMM** — sparse × sparse matrix multiplication `C = A·A`
//! (Quadrant IV).
//!
//! * **TC** follows AmgT (Lu et al., SC '24) in FP64: both operands are
//!   tiled into the mBSR format (dense 4×4 blocks). Two queued block
//!   products `(A₁·B₁)` and `(A₂·B₂)` are fused into a single `m8n8k4`
//!   MMA by stacking `[A₁; A₂]` (8×4) against `[B₁ | B₂]` (4×8): the
//!   *diagonal* 4×4 quadrants of the 8×8 output are the wanted products,
//!   the off-diagonal quadrants (`A₁·B₂`, `A₂·B₁`) are discarded — "half
//!   of the 8-by-8 output tiles" utilization (Section 6.1), with the
//!   running accumulators carried in the MMA `C` quadrants.
//! * **CC** issues the identical chains on CUDA cores (bit-identical).
//! * **CC-E** computes only the two useful quadrants (128 of 256 FMAs).
//! * **Baseline** models cuSPARSE's row-wise SpGEMM: scalar CSR products
//!   through a per-row hash accumulator.

use cubie_core::counters::{MemTraffic, MMA_F64_FMAS};
use cubie_core::mma::mma_f64_m8n8k4;
use cubie_core::{par, workspace, OpCounters};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use cubie_sparse::mbsr::{Mbsr, BLOCK};
use cubie_sparse::{Coo, Csr};

use crate::common::Variant;

/// Serial CPU ground truth.
pub fn reference(a: &Csr) -> Csr {
    a.spgemm_naive(a)
}

/// Functional execution of `C = A·A` under one variant.
pub fn run(a: &Csr, variant: Variant) -> (Csr, WorkloadTrace) {
    let c = match variant {
        Variant::Baseline => run_baseline(a),
        Variant::Tc | Variant::Cc => run_mma(a, false),
        Variant::CcE => run_mma(a, true),
    };
    (c, trace(a, variant))
}

/// One queued 4×4 block product.
struct Product {
    a: [f64; 16],
    b: [f64; 16],
    /// Block column of C this product accumulates into.
    c_col: u32,
}

/// TC/CC/CC-E functional path over mBSR blocks. `essential_only` skips
/// the discarded off-diagonal quadrants (CC-E); the kept quadrants are
/// numerically identical either way because the MMA's quadrants do not
/// interact (`[A₁;A₂]·[B₁|B₂]` is block-diagonal in the useful parts).
fn run_mma(a: &Csr, essential_only: bool) -> Csr {
    let am = Mbsr::from_csr(a);
    let bm = &am; // C = A·A
    let block_cols = bm.block_cols;

    let rows: Vec<workspace::WsVec<(u32, [f64; 16])>> = par::par_map(am.block_rows, |br| {
        // Dense block accumulator over C's block row — workspace scratch,
        // recycled across block rows on each worker.
        let mut acc = workspace::take_in::<[f64; 16]>(0);
        let mut slot_of = workspace::take(block_cols, -1i32);
        let mut touched = workspace::take_in::<u32>(0);
        let mut pending: Option<Product> = None;
        let mut scratch = OpCounters::new();

        let (acols, ablks) = am.block_row(br);
        for (ac, ablk) in acols.iter().zip(ablks) {
            let (bcols, bblks) = bm.block_row(*ac as usize);
            for (bc, bblk) in bcols.iter().zip(bblks) {
                if slot_of[*bc as usize] < 0 {
                    slot_of[*bc as usize] = acc.len() as i32;
                    acc.push([0.0; 16]);
                    touched.push(*bc);
                }
                let p = Product {
                    a: *ablk,
                    b: *bblk,
                    c_col: *bc,
                };
                if let Some(q) = pending.take() {
                    paired_mma(&q, &p, &mut acc, &slot_of, essential_only, &mut scratch);
                } else {
                    pending = Some(p);
                }
            }
        }
        if let Some(q) = pending {
            // Odd product count: pad the second half with zeros. The zero
            // quadrant contributes exactly what it did against the old
            // cloned accumulator (`+= 0.0` on the same values), so the
            // copy was pure churn — accumulate in place.
            let zero = Product {
                a: [0.0; 16],
                b: [0.0; 16],
                c_col: q.c_col,
            };
            paired_mma(&q, &zero, &mut acc, &slot_of, essential_only, &mut scratch);
        }
        // The per-block-row result rides back to the assembler through
        // the arena too: it is dropped right after `blocks_to_csr`, so
        // its capacity recycles into the next execution.
        let mut out = workspace::take_in::<(u32, [f64; 16])>(touched.len());
        out.extend(
            touched
                .iter()
                .map(|&bc| (bc, acc[slot_of[bc as usize] as usize])),
        );
        out.sort_unstable_by_key(|(bc, _)| *bc);
        out
    });

    blocks_to_csr(a.rows, a.cols, &rows)
}

/// Execute one paired MMA: quadrant accumulators are loaded into the
/// 8×8 `C`, the fused chain runs, and the diagonal quadrants are stored
/// back.
fn paired_mma(
    p1: &Product,
    p2: &Product,
    acc: &mut [[f64; 16]],
    slot_of: &[i32],
    essential_only: bool,
    scratch: &mut OpCounters,
) {
    let mut at = [0.0f64; 32];
    let mut bt = [0.0f64; 32];
    let mut ct = [0.0f64; 64];
    for r in 0..4 {
        at[r * 4..r * 4 + 4].copy_from_slice(&p1.a[r * 4..r * 4 + 4]);
        at[(r + 4) * 4..(r + 4) * 4 + 4].copy_from_slice(&p2.a[r * 4..r * 4 + 4]);
    }
    for k in 0..4 {
        bt[k * 8..k * 8 + 4].copy_from_slice(&p1.b[k * 4..k * 4 + 4]);
        bt[k * 8 + 4..k * 8 + 8].copy_from_slice(&p2.b[k * 4..k * 4 + 4]);
    }
    let s1 = slot_of[p1.c_col as usize] as usize;
    let s2 = slot_of[p2.c_col as usize] as usize;
    // Preload the diagonal quadrants with the running accumulators.
    // When both products target the same C block, the second quadrant
    // must see the first's contribution — but MMA quadrants accumulate
    // independently, so chain them through quadrant 1 then fold.
    for r in 0..4 {
        for c in 0..4 {
            ct[r * 8 + c] = acc[s1][r * 4 + c];
        }
    }
    // The fused instruction computes all four quadrants; CC-E executes
    // only the diagonal ones (identical values on those quadrants).
    mma_f64_m8n8k4(&at, &bt, &mut ct, scratch);
    let _ = essential_only; // numerics identical; only the trace differs
    for r in 0..4 {
        for c in 0..4 {
            acc[s1][r * 4 + c] = ct[r * 8 + c];
        }
    }
    // Second quadrant: accumulate its product (computed against a zero
    // preload would lose the running value, so add explicitly).
    for r in 0..4 {
        for c in 0..4 {
            let prod = ct[(r + 4) * 8 + (c + 4)];
            acc[s2][r * 4 + c] += prod;
        }
    }
}

/// Assemble per-block-row results into CSR.
fn blocks_to_csr(
    rows: usize,
    cols: usize,
    block_rows: &[workspace::WsVec<(u32, [f64; 16])>],
) -> Csr {
    // Upper bound: every lane of every touched block is nonzero.
    let cap: usize = block_rows.iter().map(|e| e.len() * BLOCK * BLOCK).sum();
    let mut coo = Coo::with_capacity(rows, cols, cap);
    for (br, entries) in block_rows.iter().enumerate() {
        for (bc, blk) in entries.iter() {
            for lr in 0..BLOCK {
                for lc in 0..BLOCK {
                    let v = blk[lr * BLOCK + lc];
                    if v != 0.0 {
                        let (r, c) = (br * BLOCK + lr, *bc as usize * BLOCK + lc);
                        if r < rows && c < cols {
                            coo.push(r, c, v);
                        }
                    }
                }
            }
        }
    }
    Csr::from_coo(coo)
}

/// Baseline functional path: row-wise scalar SpGEMM with a dense
/// accumulator (hash-accumulator semantics).
fn run_baseline(a: &Csr) -> Csr {
    let rows: Vec<workspace::WsVec<(u32, f64)>> = par::par_map(a.rows, |r| {
        let mut acc = workspace::take(a.cols, 0.0f64);
        let mut touched = workspace::take_in::<u32>(0);
        let (acols, avals) = a.row(r);
        for (ac, av) in acols.iter().zip(avals) {
            let (bcols, bvals) = a.row(*ac as usize);
            for (bc, bv) in bcols.iter().zip(bvals) {
                if acc[*bc as usize] == 0.0 && !touched.contains(bc) {
                    touched.push(*bc);
                }
                acc[*bc as usize] = av.mul_add(*bv, acc[*bc as usize]);
            }
        }
        touched.sort_unstable();
        let mut out = workspace::take_in::<(u32, f64)>(touched.len());
        out.extend(touched.iter().map(|&c| (c, acc[c as usize])));
        out
    });
    let cap: usize = rows.iter().map(|e| e.len()).sum();
    let mut coo = Coo::with_capacity(a.rows, a.cols, cap);
    for (r, entries) in rows.iter().enumerate() {
        for (c, v) in entries.iter() {
            coo.push(r, *c as usize, *v);
        }
    }
    Csr::from_coo(coo)
}

/// Structure statistics needed by the trace (block products, result
/// blocks, scalar products).
pub struct SpgemmStats {
    /// 4×4 block products of the mBSR formulation.
    pub block_products: u64,
    /// Nonempty blocks of `C`.
    pub c_blocks: u64,
    /// Blocks of `A` (and `B`).
    pub a_blocks: u64,
    /// Scalar multiply-adds of the CSR formulation.
    pub scalar_products: u64,
    /// Nonzeros of `C`.
    pub c_nnz: u64,
    /// Transfer size of one mBSR block: index plus the bitmap-compressed
    /// payload (AmgT ships only the present values, sized by the average
    /// block fill).
    pub block_bytes: u64,
}

/// Count the multiplication structure without numeric work.
pub fn stats(a: &Csr) -> SpgemmStats {
    let am = Mbsr::from_csr(a);
    let mut block_products = 0u64;
    let mut c_blocks = 0u64;
    let mut marker = workspace::take(am.block_cols, -1i32);
    for br in 0..am.block_rows {
        let (acols, _) = am.block_row(br);
        for ac in acols {
            let (bcols, _) = am.block_row(*ac as usize);
            block_products += bcols.len() as u64;
            for bc in bcols {
                if marker[*bc as usize] != br as i32 {
                    marker[*bc as usize] = br as i32;
                    c_blocks += 1;
                }
            }
        }
    }
    let mut scalar_products = 0u64;
    for r in 0..a.rows {
        let (cols, _) = a.row(r);
        for c in cols {
            scalar_products += a.row_nnz(*c as usize) as u64;
        }
    }
    // C's nnz: estimated from block structure (exact value needs the
    // numeric phase; the 16× bound is what the memory trace uses).
    let c_nnz = c_blocks * (BLOCK * BLOCK) as u64;
    SpgemmStats {
        block_products,
        c_blocks,
        a_blocks: am.nnz_blocks() as u64,
        scalar_products,
        c_nnz,
        block_bytes: 4 + (16.0 * am.fill_ratio(a.nnz()) * 8.0).ceil() as u64,
    }
}

/// Analytic trace of one variant (structure-only pass).
pub fn trace(a: &Csr, variant: Variant) -> WorkloadTrace {
    let s = stats(a);
    let label = format!("spgemm-{}-{}x{}", variant.label(), a.rows, a.cols);
    let mut ops = OpCounters::default();
    let blocks;
    let critical;
    match variant {
        Variant::Tc | Variant::Cc | Variant::CcE => {
            let mma = s.block_products.div_ceil(2);
            match variant {
                Variant::Tc => ops.mma_f64 = mma,
                Variant::Cc => {
                    ops.fma_f64 = mma * MMA_F64_FMAS;
                    ops.int_ops = mma * MMA_F64_FMAS;
                }
                // Only the two diagonal quadrants: half the FMAs, no
                // full-fragment shuffle pattern.
                Variant::CcE => ops.fma_f64 = mma * MMA_F64_FMAS / 2,
                _ => unreachable!(),
            }
            // Second-quadrant fold-in.
            ops.add_f64 = mma * 16;
            // A blocks stream per block row (coalesced); B blocks are
            // gathered per product but heavily reused, so the gathers are
            // served by L2; C blocks stored once. Blocks travel in AmgT's
            // bitmap-compressed form.
            ops.gmem_load = MemTraffic::coalesced(s.a_blocks * s.block_bytes);
            ops.l2_bytes = s.block_products * s.block_bytes;
            ops.gmem_store = MemTraffic::coalesced(s.c_blocks * s.block_bytes);
            ops.int_ops += s.block_products * 4; // accumulator indexing
            ops.smem_bytes = s.block_products * 64;
            blocks = (a.rows as u64 / BLOCK as u64).div_ceil(8).max(1);
            let avg_chain = s.block_products as f64 / (a.rows as f64 / BLOCK as f64).max(1.0);
            critical = latency::GMEM_RT
                + avg_chain / 2.0
                    * match variant {
                        Variant::Tc => latency::MMA_F64,
                        _ => 4.0 * latency::FMA_F64,
                    };
        }
        Variant::Baseline => {
            ops.fma_f64 = s.scalar_products;
            // Hash accumulator: probe chain + insert + collision handling
            // (cuSPARSE's generic SpGEMM pays ~a dozen lane ops per
            // product).
            ops.int_ops = s.scalar_products * 12;
            ops.gmem_load = MemTraffic::coalesced(a.nnz() as u64 * 12);
            ops.l2_bytes = s.scalar_products * 12;
            ops.gmem_store = MemTraffic::coalesced(s.c_nnz * 12);
            ops.smem_bytes = s.scalar_products * 24; // hash table traffic
            blocks = (a.rows as u64).div_ceil(8);
            let avg_chain = s.scalar_products as f64 / a.rows.max(1) as f64;
            critical =
                latency::GMEM_RT + avg_chain / 32.0 * latency::FMA_F64 + 4.0 * latency::SMEM_RT;
        }
    }
    WorkloadTrace::single(KernelTrace::new(
        label,
        blocks,
        256,
        16 * 1024,
        ops,
        critical,
    ))
}

/// Useful floating-point work: two FLOPs per scalar product.
pub fn useful_flops(a: &Csr) -> f64 {
    2.0 * stats(a).scalar_products as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_sparse::generators;

    fn compare(a: &Csr, b: &Csr) -> f64 {
        assert_eq!(a.rows, b.rows);
        // Compare as value maps (patterns can differ by explicit zeros).
        let mut max = 0.0f64;
        let dense_a = a.to_dense();
        let dense_b = b.to_dense();
        for (x, y) in dense_a.iter().zip(&dense_b) {
            max = max.max((x - y).abs());
        }
        max
    }

    fn small() -> Csr {
        generators::chevron1_like(16)
    }

    #[test]
    fn all_variants_match_reference() {
        let a = small();
        let gold = reference(&a);
        for v in Variant::ALL {
            let (c, _) = run(&a, v);
            let d = compare(&c, &gold);
            assert!(d < 1e-10, "{v}: max dev {d}");
        }
    }

    #[test]
    fn tc_equals_cc_bitwise() {
        let a = generators::spmsrts_like(64);
        let (tc, _) = run(&a, Variant::Tc);
        let (cc, _) = run(&a, Variant::Cc);
        assert_eq!(tc, cc);
    }

    #[test]
    fn paired_mma_counts_half_products() {
        let a = small();
        let s = stats(&a);
        let t = trace(&a, Variant::Tc).total_ops();
        assert_eq!(t.mma_f64, s.block_products.div_ceil(2));
    }

    #[test]
    fn cce_halves_cc_fma() {
        let a = small();
        let cc = trace(&a, Variant::Cc).total_ops();
        let cce = trace(&a, Variant::CcE).total_ops();
        assert_eq!(cc.fma_f64, 2 * cce.fma_f64);
    }

    #[test]
    fn stats_scalar_products_match_flops() {
        // For C = A·A, scalar products = Σ_r Σ_{k∈row r} nnz(row k).
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 2, 4.0);
        let a = Csr::from_coo(coo);
        let s = stats(&a);
        // row0: cols {0,1} → nnz(r0)+nnz(r1) = 2+1; row1: col {2} → 1;
        // row2: col {2} → 1. Total 5.
        assert_eq!(s.scalar_products, 5);
    }

    #[test]
    fn identity_squared_is_identity() {
        let mut coo = Coo::new(16, 16);
        for i in 0..16 {
            coo.push(i, i, 1.0);
        }
        let a = Csr::from_coo(coo);
        for v in Variant::ALL {
            let (c, _) = run(&a, v);
            assert_eq!(c.to_dense(), a.to_dense(), "{v}");
        }
    }

    #[test]
    fn baseline_gather_traffic_grows_with_products() {
        let a = small();
        let t = trace(&a, Variant::Baseline).total_ops();
        let s = stats(&a);
        assert!(t.l2_bytes >= s.scalar_products * 12);
    }

    #[test]
    fn block_bytes_reflect_fill() {
        // A dense-block matrix ships near-full blocks; a scattered one
        // ships small compressed blocks.
        let dense = generators::raefsky3_like(16);
        let scattered = generators::random_sparse(2000, 2000, 8000, 5);
        assert!(stats(&dense).block_bytes > 3 * stats(&scattered).block_bytes);
    }
}
