//! Shared vocabulary of the workload implementations.

use serde::{Deserialize, Serialize};

/// The algorithmic variants of Section 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Vendor-library-style vector-unit algorithm.
    Baseline,
    /// Tensor-core (MMU) algorithm.
    Tc,
    /// CUDA-core MMA replacement: same algorithm, MMAs swapped for
    /// equivalent CUDA-core instruction sequences.
    Cc,
    /// CUDA-core essential replacement: only the mathematically necessary
    /// operations.
    CcE,
}

impl Variant {
    /// All four variants in the paper's order.
    pub const ALL: [Variant; 4] = [Variant::Baseline, Variant::Tc, Variant::Cc, Variant::CcE];

    /// Display label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "Baseline",
            Variant::Tc => "TC",
            Variant::Cc => "CC",
            Variant::CcE => "CC-E",
        }
    }

    /// Parse a variant from its CLI/filter spelling (case-insensitive;
    /// `cce` and `cc-e` both name [`Variant::CcE`]).
    pub fn parse(s: &str) -> Option<Variant> {
        match s.to_ascii_lowercase().as_str() {
            "baseline" | "base" => Some(Variant::Baseline),
            "tc" => Some(Variant::Tc),
            "cc" => Some(Variant::Cc),
            "cce" | "cc-e" | "cc_e" => Some(Variant::CcE),
            _ => None,
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The four MMU utilization quadrants of Figure 2, classified by input
/// and output matrix utilization (full ● / partial ○).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quadrant {
    /// Full input, full output (GEMM, PiC, FFT, Stencil).
    I,
    /// Partial input (constant matrices), full output (Scan).
    II,
    /// Partial input, partial output (Reduction).
    III,
    /// Full input, partial output — diagonals/bit flags (BFS, GEMV, SpMV,
    /// SpGEMM).
    IV,
}

impl Quadrant {
    /// Whether the MMA *input* matrices are fully utilized.
    pub fn full_input(&self) -> bool {
        matches!(self, Quadrant::I | Quadrant::IV)
    }

    /// Whether the MMA *output* matrix is fully utilized.
    pub fn full_output(&self) -> bool {
        matches!(self, Quadrant::I | Quadrant::II)
    }

    /// Roman-numeral label.
    pub fn label(&self) -> &'static str {
        match self {
            Quadrant::I => "I",
            Quadrant::II => "II",
            Quadrant::III => "III",
            Quadrant::IV => "IV",
        }
    }
}

impl std::fmt::Display for Quadrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Bytes of `n` FP64 values.
#[inline]
pub const fn bytes_f64(n: usize) -> u64 {
    (n * 8) as u64
}

/// Bytes of `n` 32-bit indices.
#[inline]
pub const fn bytes_u32(n: usize) -> u64 {
    (n * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::Tc.label(), "TC");
        assert_eq!(Variant::CcE.to_string(), "CC-E");
        assert_eq!(Variant::ALL.len(), 4);
    }

    #[test]
    fn quadrant_utilization_matrix() {
        assert!(Quadrant::I.full_input() && Quadrant::I.full_output());
        assert!(!Quadrant::II.full_input() && Quadrant::II.full_output());
        assert!(!Quadrant::III.full_input() && !Quadrant::III.full_output());
        assert!(Quadrant::IV.full_input() && !Quadrant::IV.full_output());
    }

    #[test]
    fn byte_helpers() {
        assert_eq!(bytes_f64(4), 32);
        assert_eq!(bytes_u32(4), 16);
    }
}
