//! **SpMV** — sparse matrix–vector multiplication (Quadrant IV).
//!
//! * **TC** follows DASP (Lu & Liu, SC '23) in FP64: rows are sorted by
//!   length and grouped into bundles of 8 (DASP's long/medium/short row
//!   categorization); each bundle's nonzeros are packed into 8×4 value
//!   blocks with the matching gathered-`x` entries forming the 4×8 `B`
//!   operand so that the useful dot products land on the **diagonal** of
//!   the 8×8 MMA output. The packed layout streams values and column
//!   indices fully coalesced — the memory regularization of
//!   Observation 8.
//! * **CC** keeps the DASP layout, issuing the full redundant 8×8
//!   products as CUDA-core FMA chains (bit-identical to TC).
//! * **CC-E** keeps the layout but computes only the 32 essential FMAs
//!   per block — the one workload where the paper finds removing MMA
//!   redundancy profitable (Observation 5).
//! * **Baseline** models cuSPARSE's CSR-vector kernel: warp-per-row dot
//!   products straight off CSR, whose short rows leave transactions
//!   partially filled (strided traffic) and whose `x` gathers are random.

use cubie_core::counters::{MemTraffic, MMA_F64_FMAS};
use cubie_core::mma::mma_f64_m8n8k4;
use cubie_core::{par, workspace, OpCounters};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use cubie_sparse::Csr;
use serde::{Deserialize, Serialize};

use crate::common::Variant;

/// Rows per DASP bundle (the MMA `m` dimension).
pub const BUNDLE_ROWS: usize = 8;
/// Nonzero slots per row per MMA step (the MMA `k` dimension).
pub const SLOTS: usize = 4;
/// Rows longer than this split into [`LONG_CHUNK`]-nonzero segments that
/// behave as independent virtual rows (DASP's long-row category), so one
/// hub row cannot serialize a whole bundle.
pub const LONG_THRESHOLD: usize = 128;
/// Segment length of a split long row.
pub const LONG_CHUNK: usize = 128;

/// DASP row-length categories (reported by the format statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowCategory {
    /// ≤ 4 nonzeros: one MMA step covers the row.
    Short,
    /// 5–128 nonzeros.
    Medium,
    /// > 128 nonzeros.
    Long,
}

/// One bundle: 8 length-sorted (virtual) rows packed into `steps` 8×4
/// blocks. Split long rows appear as several entries with the same
/// original row index; their partial sums accumulate at scatter time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bundle {
    /// Original row indices (`u32::MAX` marks padding rows).
    pub rows: [u32; BUNDLE_ROWS],
    /// Number of 8×4 MMA steps (`ceil(max row length / 4)`).
    pub steps: usize,
    /// Packed values, layout `[step][row][slot]`, zero padded.
    pub vals: Vec<f64>,
    /// Packed column indices, same layout (padding points at column 0
    /// with a zero value).
    pub cols: Vec<u32>,
}

/// Packing statistics (see [`DaspFormat::packing_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackingStats {
    /// Total MMA steps across all bundles.
    pub total_steps: u64,
    /// Number of 8-row bundles.
    pub bundle_count: usize,
    /// Steps of the longest bundle (1 when the matrix is empty) — the
    /// critical-path depth.
    pub max_steps: usize,
}

/// Virtual-row expansion shared by [`DaspFormat::from_csr`] and
/// [`DaspFormat::packing_stats`]: `(original row, slot offset, length)`
/// triples, longest first, plus per-category row counts. The triple
/// buffer is workspace scratch — recycled across calls.
fn virtual_rows(m: &Csr) -> (workspace::WsVec<(u32, u32, u32)>, [usize; 3]) {
    let mut virt = workspace::take_in::<(u32, u32, u32)>(m.rows);
    let mut category_counts = [0usize; 3];
    for r in 0..m.rows {
        let n = m.row_nnz(r);
        let c = if n <= SLOTS {
            0
        } else if n <= LONG_THRESHOLD {
            1
        } else {
            2
        };
        category_counts[c] += 1;
        if n > LONG_THRESHOLD {
            let mut off = 0usize;
            while off < n {
                let len = LONG_CHUNK.min(n - off);
                virt.push((r as u32, off as u32, len as u32));
                off += len;
            }
        } else {
            virt.push((r as u32, 0, n as u32));
        }
    }
    // Stable sort, like the original packer: equal-length virtual rows
    // keep row order, which fixes bundle membership and therefore the
    // partial-sum accumulation order of split long rows.
    virt.sort_by_key(|&(_, _, len)| std::cmp::Reverse(len));
    (virt, category_counts)
}

/// The DASP-style packed format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaspFormat {
    /// Source matrix shape.
    pub rows: usize,
    /// Source matrix columns.
    pub cols: usize,
    /// Row bundles, longest rows first.
    pub bundles: Vec<Bundle>,
    /// Count of rows per category (Short, Medium, Long).
    pub category_counts: [usize; 3],
}

impl DaspFormat {
    /// Pack a CSR matrix: rows longer than [`LONG_THRESHOLD`] split into
    /// [`LONG_CHUNK`]-nonzero virtual rows (DASP's long category), all
    /// virtual rows sort by length, and bundles of 8 pack into 8×4 step
    /// blocks.
    pub fn from_csr(m: &Csr) -> Self {
        let (virt, category_counts) = virtual_rows(m);
        let bundles = virt
            .chunks(BUNDLE_ROWS)
            .map(|chunk| {
                let mut rows = [u32::MAX; BUNDLE_ROWS];
                for (ri, &(r, _, _)) in chunk.iter().enumerate() {
                    rows[ri] = r;
                }
                let max_nnz = chunk.iter().map(|&(_, _, l)| l as usize).max().unwrap_or(0);
                let steps = max_nnz.div_ceil(SLOTS).max(1);
                let mut vals = vec![0.0f64; steps * BUNDLE_ROWS * SLOTS];
                let mut cols = vec![0u32; steps * BUNDLE_ROWS * SLOTS];
                for (ri, &(r, off, len)) in chunk.iter().enumerate() {
                    let (rc, rv) = m.row(r as usize);
                    let seg = off as usize..(off + len) as usize;
                    for (slot, (&c, &v)) in rc[seg.clone()].iter().zip(&rv[seg]).enumerate() {
                        let step = slot / SLOTS;
                        let k = slot % SLOTS;
                        let idx = step * BUNDLE_ROWS * SLOTS + ri * SLOTS + k;
                        vals[idx] = v;
                        cols[idx] = c;
                    }
                }
                Bundle {
                    rows,
                    steps,
                    vals,
                    cols,
                }
            })
            .collect();
        Self {
            rows: m.rows,
            cols: m.cols,
            bundles,
            category_counts,
        }
    }

    /// Total MMA steps across all bundles.
    pub fn total_steps(&self) -> u64 {
        self.bundles.iter().map(|b| b.steps as u64).sum()
    }

    /// Statistics of the packing [`from_csr`](Self::from_csr) would
    /// produce, without materializing any bundle — everything the
    /// analytic trace needs, from the virtual-row expansion alone (the
    /// numbers are identical to building the format and reading them
    /// back).
    pub fn packing_stats(m: &Csr) -> PackingStats {
        let (virt, _) = virtual_rows(m);
        let mut total_steps = 0u64;
        let mut bundle_count = 0usize;
        let mut max_steps = 0usize;
        for chunk in virt.chunks(BUNDLE_ROWS) {
            let max_nnz = chunk.iter().map(|&(_, _, l)| l as usize).max().unwrap_or(0);
            let steps = max_nnz.div_ceil(SLOTS).max(1);
            total_steps += steps as u64;
            bundle_count += 1;
            // Longest-first sort: the first bundle carries the maximum.
            if bundle_count == 1 {
                max_steps = steps;
            }
        }
        PackingStats {
            total_steps,
            bundle_count,
            max_steps: if bundle_count == 0 { 1 } else { max_steps },
        }
    }

    /// Padding overhead: packed slots over actual nonzeros.
    pub fn padding_ratio(&self, nnz: usize) -> f64 {
        (self.total_steps() * (BUNDLE_ROWS * SLOTS) as u64) as f64 / nnz.max(1) as f64
    }
}

/// Deterministic dense vector input for a matrix.
pub fn input_vector(m: &Csr) -> Vec<f64> {
    cubie_core::LcgF64::new(0x51 + m.cols as u64).vec(m.cols)
}

/// Serial CPU ground truth: naive CSR SpMV (Section 8's reference).
pub fn reference(m: &Csr, x: &[f64]) -> Vec<f64> {
    m.spmv_naive(x)
}

/// Functional execution of one variant.
pub fn run(m: &Csr, x: &[f64], variant: Variant) -> (Vec<f64>, WorkloadTrace) {
    assert_eq!(m.cols, x.len(), "dimension mismatch");
    match variant {
        Variant::Baseline => (run_baseline(m, x), trace(m, variant)),
        Variant::Tc | Variant::Cc => {
            let fmt = DaspFormat::from_csr(m);
            (run_mma(&fmt, x), trace(m, variant))
        }
        Variant::CcE => {
            let fmt = DaspFormat::from_csr(m);
            (run_essential(&fmt, x), trace(m, variant))
        }
    }
}

/// TC/CC functional path: per bundle, chain the 8×4 value blocks against
/// gathered-`x` operands, accumulating in the MMA `C` across steps, then
/// extract the diagonal.
fn run_mma(fmt: &DaspFormat, x: &[f64]) -> Vec<f64> {
    let results: Vec<([u32; 8], [f64; 8])> = par::par_map(fmt.bundles.len(), |bi| {
        let b = &fmt.bundles[bi];
        let mut at = [0.0f64; 32];
        let mut bt = [0.0f64; 32];
        let mut ct = [0.0f64; 64];
        let mut scratch = OpCounters::new();
        for step in 0..b.steps {
            let base = step * BUNDLE_ROWS * SLOTS;
            for r in 0..BUNDLE_ROWS {
                for k in 0..SLOTS {
                    let v = b.vals[base + r * SLOTS + k];
                    at[r * SLOTS + k] = v;
                    // B[k][r] = x[col(r, k)] — the gathered operand that
                    // places the dot product on the diagonal.
                    bt[k * BUNDLE_ROWS + r] = x[b.cols[base + r * SLOTS + k] as usize];
                }
            }
            mma_f64_m8n8k4(&at, &bt, &mut ct, &mut scratch);
        }
        let mut diag = [0.0f64; 8];
        for (r, d) in diag.iter_mut().enumerate() {
            *d = ct[r * 8 + r];
        }
        (b.rows, diag)
    });
    let mut y = vec![0.0f64; fmt.rows];
    for (rows, diag) in results {
        for (r, v) in rows.iter().zip(diag) {
            if *r != u32::MAX {
                // Accumulate: split long rows contribute several partials.
                y[*r as usize] += v;
            }
        }
    }
    y
}

/// CC-E functional path: same packed layout, only the essential fused
/// dot products (identical accumulation order along each row's slots).
fn run_essential(fmt: &DaspFormat, x: &[f64]) -> Vec<f64> {
    let results: Vec<([u32; 8], [f64; 8])> = par::par_map(fmt.bundles.len(), |bi| {
        let b = &fmt.bundles[bi];
        let mut acc = [0.0f64; 8];
        for step in 0..b.steps {
            let base = step * BUNDLE_ROWS * SLOTS;
            for r in 0..BUNDLE_ROWS {
                for k in 0..SLOTS {
                    let v = b.vals[base + r * SLOTS + k];
                    let xv = x[b.cols[base + r * SLOTS + k] as usize];
                    acc[r] = v.mul_add(xv, acc[r]);
                }
            }
        }
        (b.rows, acc)
    });
    let mut y = vec![0.0f64; fmt.rows];
    for (rows, acc) in results {
        for (r, v) in rows.iter().zip(acc) {
            if *r != u32::MAX {
                y[*r as usize] += v;
            }
        }
    }
    y
}

/// Baseline functional path: CSR-vector — 32 lanes stride a row, fused
/// partials, shuffle-tree combine (cuSPARSE-style). The per-row dot
/// product runs on the active `cubie_core::simd` path (bit-identical to
/// scalar on every path).
fn run_baseline(m: &Csr, x: &[f64]) -> Vec<f64> {
    par::par_map(m.rows, |r| {
        let (cols, vals) = m.row(r);
        cubie_core::simd::spmv_csr_row(vals, cols, x)
    })
}

/// Analytic trace of one variant (structure-only pass over the matrix).
pub fn trace(m: &Csr, variant: Variant) -> WorkloadTrace {
    let label = format!("spmv-{}-{}x{}", variant.label(), m.rows, m.cols);
    let mut ops = OpCounters::default();
    let (blocks, threads, critical);
    match variant {
        Variant::Tc | Variant::Cc | Variant::CcE => {
            // Structure-only: the step counts, not the packed buffers.
            let fmt = DaspFormat::packing_stats(m);
            let steps = fmt.total_steps;
            let slots = steps * (BUNDLE_ROWS * SLOTS) as u64;
            match variant {
                Variant::Tc => ops.mma_f64 = steps,
                Variant::Cc => {
                    ops.fma_f64 = steps * MMA_F64_FMAS;
                    ops.int_ops = steps * MMA_F64_FMAS; // operand shuffles
                }
                Variant::CcE => ops.fma_f64 = slots,
                _ => unreachable!(),
            }
            // Packed values + columns stream coalesced; the x gathers
            // hit L2 (the vector fits the last-level cache).
            ops.gmem_load = MemTraffic::coalesced(slots * 8 + slots * 4);
            ops.l2_bytes = slots * 8;
            ops.gmem_store =
                MemTraffic::coalesced(m.rows as u64 * 8 + fmt.bundle_count as u64 * 32);
            ops.int_ops = slots; // gather address arithmetic
            blocks = (fmt.bundle_count as u64).div_ceil(8);
            threads = 256;
            let max_steps = fmt.max_steps as f64;
            critical = latency::GMEM_RT
                + max_steps
                    * match variant {
                        Variant::Tc => latency::MMA_F64,
                        _ => SLOTS as f64 * latency::FMA_F64,
                    };
        }
        Variant::Baseline => {
            ops.fma_f64 = m.nnz() as u64;
            ops.add_f64 = m.rows as u64 * 5;
            ops.int_ops = m.nnz() as u64 + m.rows as u64 * 5;
            // CSR value/index streams: rows shorter than two warp widths
            // leave transactions partially filled (CSR-vector's classic
            // inefficiency); x gathers hit L2.
            let mut co = 0u64;
            let mut st = 0u64;
            for r in 0..m.rows {
                let n = m.row_nnz(r) as u64;
                if n >= 64 {
                    co += n * 12;
                } else {
                    st += n * 12;
                }
            }
            ops.gmem_load = MemTraffic {
                coalesced: co + m.rows as u64 * 8, // row pointers
                strided: st,
                random: 0,
            };
            ops.l2_bytes = m.nnz() as u64 * 8; // x gathers
            ops.gmem_store = MemTraffic::coalesced(m.rows as u64 * 8);
            blocks = (m.rows as u64).div_ceil(8);
            threads = 256;
            let max_nnz = (0..m.rows).map(|r| m.row_nnz(r)).max().unwrap_or(1) as f64;
            critical = latency::GMEM_RT
                + (max_nnz / 32.0).ceil() * latency::FMA_F64
                + 5.0 * (latency::SHFL + latency::FMA_F64);
        }
    }
    WorkloadTrace::single(KernelTrace::new(label, blocks, threads, 0, ops, critical))
}

/// Useful floating-point work of an SpMV on `m`: `2·nnz`.
pub fn useful_flops(m: &Csr) -> f64 {
    2.0 * m.nnz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::ErrorStats;
    use cubie_sparse::generators;

    fn test_matrix() -> Csr {
        generators::spmsrts_like(16)
    }

    #[test]
    fn all_variants_match_reference() {
        let m = test_matrix();
        let x = input_vector(&m);
        let gold = reference(&m, &x);
        for v in Variant::ALL {
            let (y, _) = run(&m, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-10, "{v}: max err {}", e.max);
        }
    }

    #[test]
    fn tc_equals_cc_bitwise() {
        let m = generators::conf5_like(8);
        let x = input_vector(&m);
        assert_eq!(run(&m, &x, Variant::Tc).0, run(&m, &x, Variant::Cc).0);
    }

    #[test]
    fn dasp_format_covers_all_nonzeros() {
        let m = test_matrix();
        let fmt = DaspFormat::from_csr(&m);
        let packed: usize = fmt
            .bundles
            .iter()
            .map(|b| b.vals.iter().filter(|&&v| v != 0.0).count())
            .sum();
        assert_eq!(packed, m.vals.iter().filter(|&&v| v != 0.0).count());
        let total_rows: usize = fmt
            .bundles
            .iter()
            .flat_map(|b| b.rows.iter())
            .filter(|&&r| r != u32::MAX)
            .count();
        assert_eq!(total_rows, m.rows);
    }

    #[test]
    fn sorting_reduces_padding() {
        // The QCD matrix has perfectly uniform rows: padding ratio should
        // be essentially the slot rounding only (39 → 40 slots).
        let m = generators::conf5_like(8);
        let fmt = DaspFormat::from_csr(&m);
        let ratio = fmt.padding_ratio(m.nnz());
        assert!(ratio < 1.05, "QCD padding ratio {ratio}");
    }

    #[test]
    fn category_counts_sum_to_rows() {
        let m = test_matrix();
        let fmt = DaspFormat::from_csr(&m);
        assert_eq!(fmt.category_counts.iter().sum::<usize>(), m.rows);
    }

    #[test]
    fn tc_trace_mma_matches_steps() {
        let m = test_matrix();
        let fmt = DaspFormat::from_csr(&m);
        let t = trace(&m, Variant::Tc).total_ops();
        assert_eq!(t.mma_f64, fmt.total_steps());
    }

    #[test]
    fn cce_does_eighth_of_cc_flops() {
        let m = test_matrix();
        let cc = trace(&m, Variant::Cc).total_ops();
        let cce = trace(&m, Variant::CcE).total_ops();
        assert_eq!(cc.fma_f64, 8 * cce.fma_f64);
    }

    #[test]
    fn baseline_has_more_irregular_traffic_than_tc() {
        let m = test_matrix();
        let b = trace(&m, Variant::Baseline).total_ops();
        let t = trace(&m, Variant::Tc).total_ops();
        assert!(b.gmem_load.strided > 0, "short CSR rows are strided");
        assert_eq!(t.gmem_load.strided, 0, "DASP layout streams coalesced");
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = cubie_sparse::Coo::new(20, 20);
        coo.push(0, 0, 1.0);
        coo.push(19, 19, 2.0);
        let m = Csr::from_coo(coo);
        let x = vec![1.0; 20];
        for v in Variant::ALL {
            let (y, _) = run(&m, &x, v);
            assert_eq!(y[0], 1.0, "{v}");
            assert_eq!(y[19], 2.0, "{v}");
            assert_eq!(y[10], 0.0, "{v}");
        }
    }
}

#[cfg(test)]
mod long_row_tests {
    use super::*;
    use crate::common::Variant;
    use cubie_core::ErrorStats;
    use cubie_sparse::Coo;

    /// A matrix with one hub row of 1000 nonzeros among short rows.
    fn skewed() -> Csr {
        let mut coo = Coo::new(64, 1200);
        let mut vg = cubie_core::LcgF64::new(99);
        for c in 0..1000usize {
            coo.push(5, c, vg.next_f64());
        }
        for r in 0..64usize {
            coo.push(r, (r * 7) % 1200, vg.next_f64());
        }
        Csr::from_coo(coo)
    }

    #[test]
    fn long_rows_are_categorized_and_split() {
        let m = skewed();
        let fmt = DaspFormat::from_csr(&m);
        assert_eq!(fmt.category_counts[2], 1, "one long row");
        // The hub row appears as ceil(1001/128) = 8 virtual rows.
        let virt_count: usize = fmt
            .bundles
            .iter()
            .flat_map(|b| b.rows.iter())
            .filter(|&&r| r == 5)
            .count();
        assert_eq!(virt_count, 1001usize.div_ceil(LONG_CHUNK));
        // No bundle needs more steps than a chunk's worth.
        let max_steps = fmt.bundles.iter().map(|b| b.steps).max().unwrap();
        assert!(max_steps <= LONG_CHUNK.div_ceil(SLOTS));
    }

    #[test]
    fn split_rows_still_compute_the_right_values() {
        let m = skewed();
        let x = input_vector(&m);
        let gold = reference(&m, &x);
        for v in Variant::ALL {
            let (y, _) = run(&m, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-10, "{v}: {}", e.max);
        }
    }

    #[test]
    fn splitting_improves_padding_on_skewed_matrices() {
        let m = skewed();
        let fmt = DaspFormat::from_csr(&m);
        // Without splitting, the hub row's bundle would pad 7 empty rows
        // to 1001 nonzeros: > 8× overhead. With splitting the overhead
        // stays moderate.
        assert!(
            fmt.padding_ratio(m.nnz()) < 3.0,
            "padding {:.2}",
            fmt.padding_ratio(m.nnz())
        );
    }
}
