//! **GEMV** — dense matrix–vector multiplication `y = A·x` (Quadrant IV).
//!
//! * **TC** partitions `A` into 8×4 blocks, broadcasts `x` into a 4×8
//!   operand whose columns all replicate the same `x` segment, issues the
//!   FP64 `m8n8k4` MMA, and extracts the diagonal of the 8×8 output —
//!   only 8 of the 64 output elements carry meaning (Section 3).
//! * **CC** keeps the replicated-operand layout, computing the full
//!   redundant 8×8 product on CUDA cores.
//! * **CC-E** computes only the essential dot products `y = A·x` on
//!   CUDA cores with the same blocked data layout.
//! * **Baseline** is the cuBLAS-style warp-per-row kernel: each warp
//!   covers one short row (N = 16/32 for the paper's tall-skinny cases)
//!   and reduces via shuffles; the short rows leave transactions half
//!   empty, which the trace records as strided traffic.

use cubie_core::counters::{MemTraffic, MMA_F64_FMAS};
use cubie_core::mma::mma_f64_m8n8k4;
use cubie_core::{par, DenseMatrix, OpCounters};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};

use crate::common::Variant;

/// Rows covered by one TC thread block: two 8-row bands, each worked on
/// by up to four warps that split the k dimension (DASP-style column
/// splitting) — the tall-skinny cases otherwise expose 8× less memory
/// parallelism than the baseline's warp-per-row kernel.
const ROWS_PER_BLOCK: usize = 16;

/// Warps cooperating on one 8-row band (k-split factor).
const K_SPLIT: usize = 4;

/// One GEMV test case: `y (M) = A (M×N) · x (N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemvCase {
    /// Rows of `A`.
    pub m: usize,
    /// Columns of `A` (the paper's cases are tall-skinny: N = 16/32).
    pub n: usize,
}

impl GemvCase {
    /// The five Table 2 test cases.
    pub fn cases() -> Vec<GemvCase> {
        vec![
            GemvCase { m: 4096, n: 16 },
            GemvCase { m: 4096, n: 32 },
            GemvCase { m: 11_008, n: 16 },
            GemvCase { m: 32_768, n: 16 },
            GemvCase { m: 40_960, n: 16 },
        ]
    }

    /// Useful floating-point work: `2·M·N`.
    pub fn useful_flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64
    }

    /// Case label for reports.
    pub fn label(&self) -> String {
        format!("{}x{}", self.m, self.n)
    }
}

/// Deterministic inputs for a case.
pub fn inputs(case: &GemvCase) -> (DenseMatrix, Vec<f64>) {
    let a = DenseMatrix::random(case.m, case.n, 0xC0 + case.m as u64);
    let x = cubie_core::LcgF64::new(0xD0 + case.n as u64).vec(case.n);
    (a, x)
}

/// Serial CPU ground truth.
pub fn reference(a: &DenseMatrix, x: &[f64]) -> Vec<f64> {
    a.matvec_naive(x)
}

/// Functional execution of one variant.
pub fn run(a: &DenseMatrix, x: &[f64], variant: Variant) -> (Vec<f64>, WorkloadTrace) {
    let case = GemvCase {
        m: a.rows(),
        n: a.cols(),
    };
    assert_eq!(a.cols(), x.len(), "dimension mismatch");
    let y = match variant {
        Variant::Tc | Variant::Cc => run_mma(a, x),
        Variant::CcE => run_essential(a, x),
        Variant::Baseline => run_baseline(a, x),
    };
    (y, trace(&case, variant))
}

/// Analytic trace of one variant.
pub fn trace(case: &GemvCase, variant: Variant) -> WorkloadTrace {
    let (m, n) = (case.m as u64, case.n as u64);
    let blocks = (case.m.div_ceil(ROWS_PER_BLOCK)) as u64;
    let mut ops = OpCounters::default();
    let mma_total = m.div_ceil(8) * n.div_ceil(4);
    let label = format!("gemv-{}-{}", variant.label(), case.label());
    // 2 bands × K_SPLIT warps per block.
    let threads_tc = (2 * K_SPLIT * 32) as u32;
    // Partial combine across the k-split warps (8 diagonal values per
    // extra warp per band).
    let ksplit_adds = m * (K_SPLIT as u64 - 1);
    let (threads, lat) = match variant {
        Variant::Tc => {
            ops.mma_f64 = mma_total;
            // A streams coalesced from DRAM; the small x vector is
            // re-broadcast to every block out of L2.
            ops.gmem_load = MemTraffic::coalesced(m * n * 8 + n * 8);
            ops.l2_bytes = blocks * n * 8;
            ops.gmem_store = MemTraffic::coalesced(m * 8);
            ops.add_f64 = ksplit_adds;
            ops.smem_bytes = blocks * n * 8 * 2 + m * (K_SPLIT as u64) * 8;
            (threads_tc, latency::MMA_F64 + latency::SMEM_RT)
        }
        Variant::Cc => {
            ops.fma_f64 = mma_total * MMA_F64_FMAS;
            ops.int_ops = mma_total * MMA_F64_FMAS; // operand shuffles
            ops.gmem_load = MemTraffic::coalesced(m * n * 8 + n * 8);
            ops.l2_bytes = blocks * n * 8;
            ops.gmem_store = MemTraffic::coalesced(m * 8);
            ops.add_f64 = ksplit_adds;
            ops.smem_bytes = blocks * n * 8 * 2 + m * (K_SPLIT as u64) * 8;
            (threads_tc, 4.0 * latency::FMA_F64 + latency::SMEM_RT)
        }
        Variant::CcE => {
            ops.fma_f64 = m * n;
            ops.gmem_load = MemTraffic::coalesced(m * n * 8 + n * 8);
            ops.l2_bytes = blocks * n * 8;
            ops.gmem_store = MemTraffic::coalesced(m * 8);
            ops.smem_bytes = blocks * n * 8 * 2;
            (threads_tc, n as f64 * latency::FMA_F64)
        }
        Variant::Baseline => {
            ops.fma_f64 = m * n;
            // Warp-per-row: each 32-lane transaction carries only N=16/32
            // useful elements → strided efficiency; x re-reads hit L2.
            ops.gmem_load = MemTraffic::strided(m * n * 8);
            ops.l2_bytes = m / 8 * n * 8;
            ops.gmem_store = MemTraffic::coalesced(m * 8);
            // Shuffle reduction per row.
            ops.add_f64 = m * 5;
            ops.int_ops = m * 5;
            return WorkloadTrace::single(KernelTrace::new(
                label,
                m.div_ceil(8), // 8 warps per 256-thread block, one row each
                256,
                0,
                ops,
                (n as f64 / 32.0).ceil() * latency::FMA_F64 + 5.0 * latency::SHFL,
            ));
        }
    };
    WorkloadTrace::single(KernelTrace::new(
        label,
        blocks,
        threads,
        n as u32 * 8,
        ops,
        lat,
    ))
}

/// TC/CC functional path: 8×4 blocks of `A` against the replicated-`x`
/// operand, diagonal extraction. TC and CC are numerically identical.
fn run_mma(a: &DenseMatrix, x: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    let a_s = a.as_slice();
    // Each band writes its 8 diagonals straight into its slice of `y` —
    // no intermediate per-band collection.
    let mut y = vec![0.0f64; m];
    par::par_chunks_mut(&mut y, 8, |band, y_band| {
        let i0 = band * 8;
        let rows_here = 8.min(m - i0);
        let mut at = [0.0f64; 32];
        let mut bt = [0.0f64; 32];
        let mut scratch = OpCounters::new();
        // K_SPLIT warps each own every K_SPLIT-th 4-column chunk; their
        // diagonal partials combine in warp order through shared memory.
        let mut out = [0.0f64; 8];
        for w in 0..K_SPLIT {
            let mut ct = [0.0f64; 64];
            let mut chunk = w * 4;
            while chunk < n {
                at.fill(0.0);
                bt.fill(0.0);
                let kk_max = 4.min(n - chunk);
                for ii in 0..rows_here {
                    for kk in 0..kk_max {
                        at[ii * 4 + kk] = a_s[(i0 + ii) * n + (chunk + kk)];
                    }
                }
                // Broadcast: every column of B replicates the x segment.
                for kk in 0..kk_max {
                    for jj in 0..8 {
                        bt[kk * 8 + jj] = x[chunk + kk];
                    }
                }
                mma_f64_m8n8k4(&at, &bt, &mut ct, &mut scratch);
                chunk += K_SPLIT * 4;
            }
            // Diagonal extraction and partial combine.
            for (r, o) in out.iter_mut().enumerate() {
                *o += ct[r * 8 + r];
            }
        }
        y_band.copy_from_slice(&out[..rows_here]);
    });
    y
}

/// CC-E functional path: plain fused dot products per row.
fn run_essential(a: &DenseMatrix, x: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    let a_s = a.as_slice();
    par::par_map(m, |i| {
        let mut acc = 0.0f64;
        for k in 0..n {
            acc = a_s[i * n + k].mul_add(x[k], acc);
        }
        acc
    })
}

/// Baseline functional path: warp-per-row — lanes accumulate strided
/// partials, then a shuffle tree combines them (lane `l` holds columns
/// `l, l+32, …`; tree order reproduced exactly).
fn run_baseline(a: &DenseMatrix, x: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    let a_s = a.as_slice();
    par::par_map(m, |i| {
        let mut lanes = [0.0f64; 32];
        for k in 0..n {
            let l = k % 32;
            lanes[l] = a_s[i * n + k].mul_add(x[k], lanes[l]);
        }
        // Shuffle-down tree reduction.
        let mut width = 16;
        while width >= 1 {
            for l in 0..width {
                lanes[l] += lanes[l + width];
            }
            width /= 2;
        }
        lanes[0]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::ErrorStats;

    fn small_case() -> GemvCase {
        GemvCase { m: 1000, n: 16 }
    }

    #[test]
    fn table2_cases() {
        let cases = GemvCase::cases();
        assert_eq!(cases.len(), 5);
        assert_eq!(cases[1].n, 32);
        assert_eq!(cases[4].m, 40_960);
    }

    #[test]
    fn all_variants_match_reference() {
        let case = small_case();
        let (a, x) = inputs(&case);
        let gold = reference(&a, &x);
        for v in Variant::ALL {
            let (y, _) = run(&a, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-12, "{v}: max err {}", e.max);
        }
    }

    #[test]
    fn tc_equals_cc_bitwise() {
        let case = small_case();
        let (a, x) = inputs(&case);
        let (tc, _) = run(&a, &x, Variant::Tc);
        let (cc, _) = run(&a, &x, Variant::Cc);
        assert_eq!(tc, cc);
    }

    #[test]
    fn tc_exactly_matches_reference_for_exact_inputs() {
        // Integer inputs: fused vs unfused both exact.
        let a = DenseMatrix::from_fn(16, 8, |i, j| ((i + j) % 3) as f64);
        let x: Vec<f64> = (0..8).map(|i| (i % 4) as f64).collect();
        let (y, _) = run(&a, &x, Variant::Tc);
        assert_eq!(y, reference(&a, &x));
    }

    #[test]
    fn trace_mma_count() {
        let case = GemvCase { m: 4096, n: 16 };
        let t = trace(&case, Variant::Tc);
        assert_eq!(t.total_ops().mma_f64, (4096 / 8) * (16 / 4));
    }

    #[test]
    fn cc_trace_has_redundant_flops() {
        let case = GemvCase { m: 4096, n: 16 };
        let cc = trace(&case, Variant::Cc).total_ops();
        let cce = trace(&case, Variant::CcE).total_ops();
        // The MMA shape computes 8 replicated columns: 8× the essential
        // work.
        assert_eq!(cc.fma_f64, 8 * cce.fma_f64);
    }

    #[test]
    fn baseline_traffic_is_strided() {
        let case = small_case();
        let t = trace(&case, Variant::Baseline).total_ops();
        assert!(t.gmem_load.strided > 0);
        let tc = trace(&case, Variant::Tc).total_ops();
        assert_eq!(tc.gmem_load.strided, 0);
    }

    #[test]
    fn ragged_m_handled() {
        let a = DenseMatrix::random(37, 16, 3);
        let x = cubie_core::LcgF64::new(9).vec(16);
        let (y, _) = run(&a, &x, Variant::Tc);
        let e = ErrorStats::compare(&y, &reference(&a, &x));
        assert!(e.max < 1e-13);
    }
}
