//! **Scan** — inclusive prefix sum (Quadrant II).
//!
//! * **TC** follows Dakkak et al.'s tensor-core scan, lifted from FP16 to
//!   FP64: the input is viewed as row-major 8×8 tiles; three MMAs with
//!   *constant* operands compute each tile's scan:
//!   `T = X·O` (all-ones: row sums broadcast), `Z = L·T` (strictly lower
//!   triangular ones: exclusive row offsets), `S = X·U + Z` (upper
//!   triangular ones accumulated onto `Z`). Tiles are scanned in parallel
//!   by different warps; tile totals go through one more tile pass and a
//!   uniform add. The constant matrices never leave constant memory —
//!   the partial-input utilization of Quadrant II.
//! * **CC** issues identical FMA chains on CUDA cores (bit-identical).
//! * **CC-E** performs only the essential additions on the blocked
//!   layout: per-tile Kogge–Stone passes with shared-memory phase
//!   exchanges — the "partial and irregular" computation Section 6.3
//!   finds slower than the MMU's regular pattern.
//! * **Baseline** models CUB `BlockScan`: per-thread serial scan, raking
//!   warp scan over partials, uniform add.
//!
//! The paper's test cases are 64–1024 elements — single-thread-block
//! kernels whose cost is dominated by dependent-instruction latency, not
//! throughput; the traces therefore carry careful `critical_cycles`.

use cubie_core::mma::mma_f64_8x8x8;
use cubie_core::{par, workspace, OpCounters};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};

use crate::common::{bytes_f64, Variant};

/// Elements per 8×8 tile.
pub const TILE: usize = 64;

/// Inner-loop repetitions of the benchmarked kernel. Block-primitive
/// microbenchmarks (CUB's own harness, and the paper's 6M-execution power
/// runs) iterate inside the kernel so launch overhead does not mask the
/// primitive; traces model the same structure for every variant.
pub const KERNEL_REPEATS: u64 = 100;

/// One Scan test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanCase {
    /// Number of elements (the paper's cases: 64–1024).
    pub n: usize,
}

impl ScanCase {
    /// The five Table 2 test cases.
    pub fn cases() -> Vec<ScanCase> {
        [64, 128, 256, 512, 1024]
            .into_iter()
            .map(|n| ScanCase { n })
            .collect()
    }

    /// Useful work: one addition per element per benchmarked repetition
    /// (see [`KERNEL_REPEATS`]).
    pub fn useful_flops(&self) -> f64 {
        self.n as f64 * KERNEL_REPEATS as f64
    }

    /// Case label for reports.
    pub fn label(&self) -> String {
        format!("{}", self.n)
    }
}

/// Deterministic input for a case.
pub fn input(case: &ScanCase) -> Vec<f64> {
    cubie_core::LcgF64::new(0xE0 + case.n as u64).vec(case.n)
}

/// Serial CPU ground truth: naive running sum.
pub fn reference(x: &[f64]) -> Vec<f64> {
    let mut acc = 0.0f64;
    x.iter()
        .map(|v| {
            acc += v;
            acc
        })
        .collect()
}

/// The three constant operand matrices (Figure 2, Quadrant II).
pub mod constants {
    /// Upper-triangular ones (including the diagonal).
    pub fn upper() -> [f64; 64] {
        let mut u = [0.0; 64];
        for i in 0..8 {
            for j in i..8 {
                u[i * 8 + j] = 1.0;
            }
        }
        u
    }

    /// Strictly lower-triangular ones.
    pub fn lower_strict() -> [f64; 64] {
        let mut l = [0.0; 64];
        for i in 0..8 {
            for j in 0..i {
                l[i * 8 + j] = 1.0;
            }
        }
        l
    }

    /// All ones.
    pub fn ones() -> [f64; 64] {
        [1.0; 64]
    }
}

/// Functional execution of one variant.
pub fn run(x: &[f64], variant: Variant) -> (Vec<f64>, WorkloadTrace) {
    let case = ScanCase { n: x.len() };
    let y = match variant {
        Variant::Tc | Variant::Cc => run_mma(x),
        Variant::CcE => run_essential(x),
        Variant::Baseline => run_baseline(x),
    };
    (y, trace(&case, variant))
}

/// Scan one zero-padded 8×8 tile with the three constant-operand MMAs;
/// returns (scanned tile, tile total).
fn scan_tile(x: &[f64], counters: &mut OpCounters) -> ([f64; 64], f64) {
    let mut xt = [0.0f64; 64];
    xt[..x.len()].copy_from_slice(x);
    let (u, l, o) = (
        constants::upper(),
        constants::lower_strict(),
        constants::ones(),
    );
    let mut t = [0.0f64; 64];
    mma_f64_8x8x8(&xt, &o, &mut t, counters); // T = X·O
    let mut z = [0.0f64; 64];
    mma_f64_8x8x8(&l, &t, &mut z, counters); // Z = L·T
    mma_f64_8x8x8(&xt, &u, &mut z, counters); // S = X·U + Z
    let total = z[63];
    (z, total)
}

/// TC/CC functional path (identical numerics; the issuing pipe differs
/// only in the trace).
fn run_mma(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let tiles = n.div_ceil(TILE);
    let mut scratch = OpCounters::new();
    let mut scanned = workspace::take_in::<[f64; 64]>(tiles);
    let mut sums = workspace::take_in::<f64>(tiles);
    for t in 0..tiles {
        let lo = t * TILE;
        let hi = (lo + TILE).min(n);
        let (tile, total) = scan_tile(&x[lo..hi], &mut scratch);
        scanned.push(tile);
        sums.push(total);
    }
    // Tile offsets: exclusive scan of tile sums, itself done by one more
    // constant-operand tile pass when more than one tile exists.
    let offsets = if tiles > 1 {
        let (sum_scan, _) = scan_tile(&sums, &mut scratch);
        let mut off = workspace::take(tiles, 0.0f64);
        off[1..tiles].copy_from_slice(&sum_scan[..tiles - 1]);
        off
    } else {
        workspace::take(1, 0.0f64)
    };
    let mut y = vec![0.0f64; n];
    for t in 0..tiles {
        let lo = t * TILE;
        let hi = (lo + TILE).min(n);
        for (i, out) in y[lo..hi].iter_mut().enumerate() {
            *out = if t == 0 {
                scanned[t][i]
            } else {
                scanned[t][i] + offsets[t]
            };
        }
    }
    y
}

/// CC-E functional path: essential additions on the blocked layout —
/// per-tile row scans, row-offset scan, broadcast add; then the tile
/// hierarchy as in TC.
fn run_essential(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let tiles = n.div_ceil(TILE);
    let mut scanned = workspace::take_in::<[f64; 64]>(tiles);
    let mut sums = workspace::take_in::<f64>(tiles);
    for t in 0..tiles {
        let lo = t * TILE;
        let hi = (lo + TILE).min(n);
        let mut tile = [0.0f64; 64];
        tile[..hi - lo].copy_from_slice(&x[lo..hi]);
        // Row-wise serial prefix.
        for r in 0..8 {
            for c in 1..8 {
                tile[r * 8 + c] += tile[r * 8 + c - 1];
            }
        }
        // Exclusive scan of row totals, broadcast onto later rows.
        let mut row_off = 0.0f64;
        for r in 1..8 {
            row_off += tile[(r - 1) * 8 + 7] - if r >= 2 { tile[(r - 2) * 8 + 7] } else { 0.0 };
            // row_off now holds the previous row's total sum; accumulate.
            for c in 0..8 {
                tile[r * 8 + c] += row_off;
            }
        }
        sums.push(tile[63]);
        scanned.push(tile);
    }
    let mut y = vec![0.0f64; n];
    let mut carry = 0.0f64;
    for t in 0..tiles {
        let lo = t * TILE;
        let hi = (lo + TILE).min(n);
        for (i, out) in y[lo..hi].iter_mut().enumerate() {
            *out = if t == 0 {
                scanned[t][i]
            } else {
                scanned[t][i] + carry
            };
        }
        carry += sums[t];
    }
    y
}

/// Baseline functional path: CUB-style hierarchical scan — per-thread
/// serial chunks, Kogge–Stone over thread partials, uniform add.
fn run_baseline(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let threads = 128.min(n.max(1));
    let per = n.div_ceil(threads);
    // Thread-local inclusive scans, written straight into the (escaping)
    // result — the per-thread chunks are contiguous ranges of it.
    let mut y = vec![0.0f64; n];
    let mut totals = workspace::take_in::<f64>(threads);
    for t in 0..threads {
        let lo = (t * per).min(n);
        let hi = ((t + 1) * per).min(n);
        let mut acc = 0.0f64;
        for (out, v) in y[lo..hi].iter_mut().zip(&x[lo..hi]) {
            acc += v;
            *out = acc;
        }
        totals.push(if hi > lo { y[hi - 1] } else { 0.0 });
    }
    // Kogge–Stone over thread totals.
    let mut stride = 1;
    while stride < threads {
        let prev = workspace::take_copy(&totals);
        for (i, t) in totals.iter_mut().enumerate() {
            if i >= stride {
                *t += prev[i - stride];
            }
        }
        stride *= 2;
    }
    // Uniform add of the exclusive offsets.
    for t in 1..threads {
        let off = totals[t - 1];
        let lo = (t * per).min(n);
        let hi = ((t + 1) * per).min(n);
        for v in y[lo..hi].iter_mut() {
            *v += off;
        }
    }
    y
}

/// Analytic trace of one variant.
pub fn trace(case: &ScanCase, variant: Variant) -> WorkloadTrace {
    let n = case.n;
    let tiles = n.div_ceil(TILE) as u64;
    let hierarchical = tiles > 1;
    let label = format!("scan-{}-{}", variant.label(), case.label());
    // Small single-block kernels run from cache after warm-up (the paper
    // reports 100 warm-up rounds): the compulsory in/out transfer hits
    // DRAM once (added after repeat scaling), while the repeated working
    // set stays in L1.
    let mut ops = OpCounters {
        smem_bytes: 2 * bytes_f64(n),
        syncs: if hierarchical { 2 } else { 1 },
        ..Default::default()
    };
    let critical = match variant {
        Variant::Tc => {
            ops.mma_f64 = 6 * tiles + if hierarchical { 6 } else { 0 };
            ops.cmem_bytes = 3 * bytes_f64(TILE);
            ops.add_f64 = (n as u64).saturating_sub(TILE as u64);
            // `X·U` is independent of the `T → Z` chain, so the critical
            // path per level is two dependent logical MMAs plus the final
            // combine add.
            let level = 2.0 * (2.0 * latency::MMA_F64) + latency::FMA_F64;
            latency::SMEM_RT
                + level
                + if hierarchical {
                    latency::SMEM_RT + level + latency::FMA_F64
                } else {
                    0.0
                }
        }
        Variant::Cc => {
            ops.fma_f64 = (6 * tiles + if hierarchical { 6 } else { 0 }) * 256;
            ops.int_ops = ops.fma_f64; // operand shuffles
            ops.cmem_bytes = 3 * bytes_f64(TILE);
            ops.add_f64 = (n as u64).saturating_sub(TILE as u64);
            // Without the MMU's parallel accumulator tree each lane walks
            // its two output elements' k-chains serially: 2 × 8 FMAs per
            // logical MMA, three dependent logical MMAs per level.
            let level = 3.0 * (2.0 * 8.0 * latency::FMA_F64);
            latency::SMEM_RT
                + level
                + if hierarchical {
                    latency::SMEM_RT + level + latency::FMA_F64
                } else {
                    0.0
                }
        }
        Variant::CcE => {
            // Essential adds only: ~2 adds per element plus hierarchy.
            ops.add_f64 = 2 * n as u64;
            // Kogge–Stone within the tile (6 shuffle rounds over 64
            // elements) with phase exchanges through shared memory.
            let level = 6.0 * (latency::SHFL + latency::FMA_F64) + 2.0 * latency::SMEM_RT;
            latency::SMEM_RT
                + level
                + if hierarchical {
                    latency::SMEM_RT + level + latency::FMA_F64
                } else {
                    0.0
                }
        }
        Variant::Baseline => {
            ops.add_f64 = 2 * n as u64 + 128 * 7;
            ops.int_ops = 128;
            let threads = 128.min(n.max(1)) as f64;
            let per = (n as f64 / threads).ceil();
            // serial thread scan + raking warp scan + offsets + add.
            latency::SMEM_RT
                + per * latency::FMA_F64
                + latency::SMEM_RT
                + 4.0 * latency::FMA_F64
                + 5.0 * (latency::SHFL + latency::FMA_F64)
                + latency::SMEM_RT
                + latency::FMA_F64
        }
    };
    let mut total = ops.scaled(KERNEL_REPEATS);
    total.gmem_load = cubie_core::counters::MemTraffic::coalesced(bytes_f64(n));
    total.gmem_store = cubie_core::counters::MemTraffic::coalesced(bytes_f64(n));
    WorkloadTrace::single(KernelTrace::new(
        label,
        1,
        (32 * tiles.min(8)).max(64) as u32,
        (2 * n * 8) as u32,
        total,
        critical * KERNEL_REPEATS as f64,
    ))
}

/// Exclusive prefix sum under one variant: `y[i] = Σ_{j<i} x[j]`,
/// derived from the inclusive tensor-core scan by a shifted extraction
/// (the standard CUB `ExclusiveSum` relationship).
pub fn run_exclusive(x: &[f64], variant: Variant) -> (Vec<f64>, WorkloadTrace) {
    let (inc, trace) = run(x, variant);
    let mut y = Vec::with_capacity(x.len());
    y.push(0.0);
    y.extend_from_slice(&inc[..inc.len().saturating_sub(1)]);
    (y, trace)
}

/// Scan many independent segments (used by the power/EDP experiments,
/// where the paper executes the workload millions of times): functional
/// batch helper.
pub fn run_batch(xs: &[Vec<f64>], variant: Variant) -> Vec<Vec<f64>> {
    par::par_map(xs.len(), |i| run(&xs[i], variant).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::ErrorStats;

    #[test]
    fn table2_cases() {
        let c = ScanCase::cases();
        assert_eq!(c.len(), 5);
        assert_eq!(c[0].n, 64);
        assert_eq!(c[4].n, 1024);
    }

    #[test]
    fn all_variants_match_reference() {
        for n in [64usize, 128, 640, 1024, 100, 1] {
            let x = input(&ScanCase { n });
            let gold = reference(&x);
            for v in Variant::ALL {
                let (y, _) = run(&x, v);
                let e = ErrorStats::compare(&y, &gold);
                assert!(e.max < 1e-11, "{v} n={n}: max err {}", e.max);
            }
        }
    }

    #[test]
    fn tc_equals_cc_bitwise() {
        let x = input(&ScanCase { n: 512 });
        assert_eq!(run(&x, Variant::Tc).0, run(&x, Variant::Cc).0);
    }

    #[test]
    fn constant_matrices_shape() {
        let u = constants::upper();
        let l = constants::lower_strict();
        assert_eq!(u.iter().filter(|&&v| v == 1.0).count(), 36);
        assert_eq!(l.iter().filter(|&&v| v == 1.0).count(), 28);
        for i in 0..8 {
            assert_eq!(u[i * 8 + i], 1.0);
            assert_eq!(l[i * 8 + i], 0.0);
        }
    }

    #[test]
    fn exact_on_integer_input() {
        let x: Vec<f64> = (0..256).map(|i| (i % 7) as f64).collect();
        let gold = reference(&x);
        for v in Variant::ALL {
            assert_eq!(run(&x, v).0, gold, "{v}");
        }
    }

    #[test]
    fn tc_trace_mma_count() {
        let t = trace(&ScanCase { n: 1024 }, Variant::Tc);
        // 16 tiles × 6 + hierarchy 6.
        assert_eq!(t.total_ops().mma_f64, (16 * 6 + 6) * KERNEL_REPEATS);
        let t64 = trace(&ScanCase { n: 64 }, Variant::Tc);
        assert_eq!(t64.total_ops().mma_f64, 6 * KERNEL_REPEATS);
    }

    #[test]
    fn constants_never_loaded_from_gmem() {
        // Quadrant II: global traffic is exactly the compulsory data
        // in/out — the constant operand matrices add nothing on top.
        let tc = trace(&ScanCase { n: 1024 }, Variant::Tc).total_ops();
        let cce = trace(&ScanCase { n: 1024 }, Variant::CcE).total_ops();
        assert_eq!(tc.gmem_bytes(), cce.gmem_bytes());
        assert_eq!(tc.gmem_bytes(), 2 * 1024 * 8, "compulsory in/out only");
        assert!(tc.cmem_bytes > 0);
    }

    #[test]
    fn exclusive_scan_shifts_the_inclusive_result() {
        let x = input(&ScanCase { n: 300 });
        for v in Variant::ALL {
            let (exc, _) = run_exclusive(&x, v);
            assert_eq!(exc[0], 0.0, "{v}");
            let (inc, _) = run(&x, v);
            for i in 1..x.len() {
                assert_eq!(exc[i], inc[i - 1], "{v} at {i}");
            }
        }
    }

    #[test]
    fn critical_path_ordering_tc_fastest() {
        for n in [64usize, 256, 1024] {
            let case = ScanCase { n };
            let tc = trace(&case, Variant::Tc).kernels[0].critical_cycles;
            let cc = trace(&case, Variant::Cc).kernels[0].critical_cycles;
            let cce = trace(&case, Variant::CcE).kernels[0].critical_cycles;
            let base = trace(&case, Variant::Baseline).kernels[0].critical_cycles;
            assert!(tc < cc, "n={n}");
            assert!(tc < cce, "n={n}");
            assert!(tc < base, "n={n}");
        }
    }
}
