//! **Reduction** — sum of an array (Quadrant III).
//!
//! * **TC** follows Dakkak et al.'s tensor-core reduction in FP64: per
//!   8×8 tile `X`, two constant-operand MMAs — `P = R·X` with `R` having
//!   a single row of ones (column sums land in row 0), then `Q = P·C`
//!   with `C` having a single column of ones (the tile total lands in
//!   `Q[0][0]`). Both the constant inputs and the useful output are
//!   *partial* — the defining property of Quadrant III.
//! * **CC** issues identical FMA chains on CUDA cores (bit-identical).
//! * **CC-E** performs only the essential tree additions on the blocked
//!   layout.
//! * **Baseline** models CUB `BlockReduce`: per-thread partials, warp
//!   shuffle trees, cross-warp combine.

use cubie_core::mma::mma_f64_8x8x8;
use cubie_core::{workspace, OpCounters};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};

use crate::common::{bytes_f64, Variant};

/// Elements per 8×8 tile.
pub const TILE: usize = 64;

/// Inner-loop repetitions of the benchmarked kernel (see the Scan
/// workload's documentation; block-primitive microbenchmarks iterate
/// inside the kernel to amortize launch overhead).
pub const KERNEL_REPEATS: u64 = crate::scan::KERNEL_REPEATS;

/// One Reduction test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionCase {
    /// Number of elements (the paper's cases: 64–1024).
    pub n: usize,
}

impl ReductionCase {
    /// The five Table 2 test cases.
    pub fn cases() -> Vec<ReductionCase> {
        [64, 128, 256, 512, 1024]
            .into_iter()
            .map(|n| ReductionCase { n })
            .collect()
    }

    /// Useful work: one addition per element per benchmarked repetition.
    pub fn useful_flops(&self) -> f64 {
        self.n as f64 * KERNEL_REPEATS as f64
    }

    /// Case label for reports.
    pub fn label(&self) -> String {
        format!("{}", self.n)
    }
}

/// Deterministic input for a case.
pub fn input(case: &ReductionCase) -> Vec<f64> {
    cubie_core::LcgF64::new(0xF0 + case.n as u64).vec(case.n)
}

/// Serial CPU ground truth: naive left-to-right sum.
pub fn reference(x: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for v in x {
        acc += v;
    }
    acc
}

/// The constant operands of Figure 2, Quadrant III.
pub mod constants {
    /// Single row of ones (row 0), zeros elsewhere.
    pub fn row_ones() -> [f64; 64] {
        let mut r = [0.0; 64];
        r[..8].fill(1.0);
        r
    }

    /// Single column of ones (column 0), zeros elsewhere.
    pub fn col_ones() -> [f64; 64] {
        let mut c = [0.0; 64];
        for i in 0..8 {
            c[i * 8] = 1.0;
        }
        c
    }
}

/// Reduce one zero-padded tile through the two constant-operand MMAs.
fn reduce_tile(x: &[f64], counters: &mut OpCounters) -> f64 {
    let mut xt = [0.0f64; 64];
    xt[..x.len()].copy_from_slice(x);
    let r = constants::row_ones();
    let c = constants::col_ones();
    let mut p = [0.0f64; 64];
    mma_f64_8x8x8(&r, &xt, &mut p, counters); // P = R·X → column sums in row 0
    let mut q = [0.0f64; 64];
    mma_f64_8x8x8(&p, &c, &mut q, counters); // Q = P·C → total in (0,0)
    q[0]
}

/// Functional execution of one variant. Returns (sum, trace).
pub fn run(x: &[f64], variant: Variant) -> (f64, WorkloadTrace) {
    let case = ReductionCase { n: x.len() };
    let s = match variant {
        Variant::Tc | Variant::Cc => run_mma(x),
        Variant::CcE => run_essential(x),
        Variant::Baseline => run_baseline(x),
    };
    (s, trace(&case, variant))
}

/// TC/CC functional path: parallel tile reductions, partials combined by
/// one more tile pass.
fn run_mma(x: &[f64]) -> f64 {
    let n = x.len();
    let tiles = n.div_ceil(TILE).max(1);
    let mut scratch = OpCounters::new();
    let mut partials = workspace::take_in::<f64>(tiles);
    for t in 0..tiles {
        let lo = t * TILE;
        let hi = (lo + TILE).min(n);
        partials.push(reduce_tile(&x[lo..hi.max(lo)], &mut scratch));
    }
    if tiles == 1 {
        partials[0]
    } else {
        reduce_tile(&partials, &mut scratch)
    }
}

/// CC-E functional path: pairwise tree addition within tiles, then
/// across tiles — the minimal additions the reduction needs.
fn run_essential(x: &[f64]) -> f64 {
    let n = x.len();
    let tiles = n.div_ceil(TILE).max(1);
    let mut partials = workspace::take_in::<f64>(tiles);
    for t in 0..tiles {
        let lo = t * TILE;
        let hi = (lo + TILE).min(n);
        partials.push(tree_sum(&x[lo..hi]));
    }
    tree_sum(&partials)
}

fn tree_sum(x: &[f64]) -> f64 {
    let mut buf = workspace::take_copy(x);
    while buf.len() > 1 {
        let half = buf.len().div_ceil(2);
        for i in 0..buf.len() / 2 {
            buf[i] = buf[2 * i] + buf[2 * i + 1];
        }
        if buf.len() % 2 == 1 {
            buf[half - 1] = buf[buf.len() - 1];
        }
        buf.truncate(half);
    }
    buf.first().copied().unwrap_or(0.0)
}

/// Baseline functional path: CUB-style — per-thread serial partials then
/// a shuffle tree across 128 threads.
fn run_baseline(x: &[f64]) -> f64 {
    let n = x.len();
    let threads = 128.min(n.max(1));
    let per = n.div_ceil(threads);
    let mut partials = workspace::take_in::<f64>(threads);
    for t in 0..threads {
        let lo = (t * per).min(n);
        let hi = ((t + 1) * per).min(n);
        let mut acc = 0.0f64;
        for v in &x[lo..hi] {
            acc += v;
        }
        partials.push(acc);
    }
    let mut width = partials.len();
    while width > 1 {
        let half = width.div_ceil(2);
        for i in 0..width / 2 {
            partials[i] += partials[i + half];
        }
        width = half;
    }
    partials[0]
}

/// Analytic trace of one variant.
pub fn trace(case: &ReductionCase, variant: Variant) -> WorkloadTrace {
    let n = case.n;
    let tiles = n.div_ceil(TILE).max(1) as u64;
    let hierarchical = tiles > 1;
    let label = format!("reduction-{}-{}", variant.label(), case.label());
    let mut ops = OpCounters {
        smem_bytes: bytes_f64(n) + 8,
        syncs: if hierarchical { 2 } else { 1 },
        ..Default::default()
    };
    let critical = match variant {
        Variant::Tc => {
            ops.mma_f64 = 4 * tiles + if hierarchical { 4 } else { 0 };
            ops.cmem_bytes = 2 * bytes_f64(TILE);
            let level = 4.0 * latency::MMA_F64;
            latency::SMEM_RT
                + level
                + if hierarchical {
                    latency::SMEM_RT + level
                } else {
                    0.0
                }
        }
        Variant::Cc => {
            ops.fma_f64 = (4 * tiles + if hierarchical { 4 } else { 0 }) * 256;
            ops.int_ops = ops.fma_f64; // operand shuffles
            ops.cmem_bytes = 2 * bytes_f64(TILE);
            let level = 2.0 * (2.0 * 8.0 * latency::FMA_F64);
            latency::SMEM_RT
                + level
                + if hierarchical {
                    latency::SMEM_RT + level
                } else {
                    0.0
                }
        }
        Variant::CcE => {
            ops.add_f64 = n as u64;
            // 6-round shuffle tree per tile + phase exchange.
            let level = 6.0 * (latency::SHFL + latency::FMA_F64) + latency::SMEM_RT;
            latency::SMEM_RT
                + level
                + if hierarchical {
                    latency::SMEM_RT + level
                } else {
                    0.0
                }
        }
        Variant::Baseline => {
            ops.add_f64 = n as u64 + 128;
            ops.int_ops = 64;
            let threads = 128.min(n.max(1)) as f64;
            let per = (n as f64 / threads).ceil();
            latency::SMEM_RT
                + per * latency::FMA_F64
                + 5.0 * (latency::SHFL + latency::FMA_F64)
                + latency::SMEM_RT
                + 2.0 * (latency::SHFL + latency::FMA_F64)
                + latency::SMEM_RT
        }
    };
    let mut total = ops.scaled(KERNEL_REPEATS);
    total.gmem_load = cubie_core::counters::MemTraffic::coalesced(bytes_f64(n));
    total.gmem_store = cubie_core::counters::MemTraffic::coalesced(8);
    WorkloadTrace::single(KernelTrace::new(
        label,
        1,
        (32 * tiles.min(8)).max(64) as u32,
        (n * 8 + 64) as u32,
        total,
        critical * KERNEL_REPEATS as f64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_cases() {
        let c = ReductionCase::cases();
        assert_eq!(c.len(), 5);
        assert_eq!(c[2].n, 256);
    }

    #[test]
    fn all_variants_match_reference() {
        for n in [64usize, 100, 512, 1024, 1] {
            let x = input(&ReductionCase { n });
            let gold = reference(&x);
            for v in Variant::ALL {
                let (s, _) = run(&x, v);
                assert!((s - gold).abs() < 1e-10, "{v} n={n}: {s} vs {gold}");
            }
        }
    }

    #[test]
    fn tc_equals_cc_bitwise() {
        let x = input(&ReductionCase { n: 1024 });
        assert_eq!(run(&x, Variant::Tc).0, run(&x, Variant::Cc).0);
    }

    #[test]
    fn exact_on_integer_input() {
        let x: Vec<f64> = (0..512).map(|i| (i % 9) as f64).collect();
        let gold: f64 = x.iter().sum();
        for v in Variant::ALL {
            assert_eq!(run(&x, v).0, gold, "{v}");
        }
    }

    #[test]
    fn constant_matrices_are_partial() {
        let r = constants::row_ones();
        let c = constants::col_ones();
        assert_eq!(r.iter().filter(|&&v| v != 0.0).count(), 8);
        assert_eq!(c.iter().filter(|&&v| v != 0.0).count(), 8);
    }

    #[test]
    fn tc_trace_mma_count() {
        let t = trace(&ReductionCase { n: 1024 }, Variant::Tc);
        assert_eq!(t.total_ops().mma_f64, (16 * 4 + 4) * KERNEL_REPEATS);
    }

    #[test]
    fn critical_path_ordering() {
        for n in [64usize, 256, 1024] {
            let case = ReductionCase { n };
            let tc = trace(&case, Variant::Tc).kernels[0].critical_cycles;
            let cc = trace(&case, Variant::Cc).kernels[0].critical_cycles;
            let cce = trace(&case, Variant::CcE).kernels[0].critical_cycles;
            let base = trace(&case, Variant::Baseline).kernels[0].critical_cycles;
            assert!(tc < base, "n={n}: TC {tc} vs baseline {base}");
            assert!(tc < cc, "n={n}");
            assert!(tc < cce, "n={n}");
        }
    }

    #[test]
    fn reduction_uses_fewer_mmas_than_scan() {
        let n = 512;
        let r = trace(&ReductionCase { n }, Variant::Tc).total_ops().mma_f64;
        let s = crate::scan::trace(&crate::scan::ScanCase { n }, Variant::Tc)
            .total_ops()
            .mma_f64;
        assert!(r < s);
    }
}
