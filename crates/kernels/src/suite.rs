//! The Cubie suite registry: one uniform handle over the ten workloads,
//! their Table 2 test cases, quadrants (Figure 2), baselines and Berkeley
//! dwarfs (Table 7) — the entry point the figure/table harnesses use.

use cubie_graph::csr_graph::CsrGraph;
use cubie_graph::generators as graph_gen;
use cubie_sim::WorkloadTrace;
use cubie_sparse::generators as sparse_gen;
use cubie_sparse::Csr;
use serde::{Deserialize, Serialize};

use crate::common::{Quadrant, Variant};
use crate::{bfs, fft, gemm, gemv, pic, reduction, scan, spgemm, spmv, stencil};

/// The ten Cubie workloads, in the paper's Table 2 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Dense matrix–matrix multiplication.
    Gemm,
    /// Particle in cell.
    Pic,
    /// Fast Fourier transform.
    Fft,
    /// Structured-grid stencil.
    Stencil,
    /// Prefix sum.
    Scan,
    /// Array reduction.
    Reduction,
    /// Breadth-first search.
    Bfs,
    /// Dense matrix–vector multiplication.
    Gemv,
    /// Sparse matrix–vector multiplication.
    Spmv,
    /// Sparse matrix–matrix multiplication.
    Spgemm,
}

/// Static description of a workload (Table 2 + Figure 2 + Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The workload.
    pub workload: Workload,
    /// Display name.
    pub name: &'static str,
    /// MMU utilization quadrant (Figure 2).
    pub quadrant: Quadrant,
    /// The comparison baseline of Table 2 (`None` for PiC).
    pub baseline: Option<&'static str>,
    /// Whether CC-E is a distinct variant (Quadrants II–IV) or equals CC
    /// (Quadrant I, Section 5.2).
    pub distinct_cce: bool,
    /// Berkeley dwarf (Table 7).
    pub dwarf: &'static str,
    /// Unit of the reported throughput.
    pub perf_unit: &'static str,
}

impl Workload {
    /// All ten workloads in Table 2 order.
    pub const ALL: [Workload; 10] = [
        Workload::Gemm,
        Workload::Pic,
        Workload::Fft,
        Workload::Stencil,
        Workload::Scan,
        Workload::Reduction,
        Workload::Bfs,
        Workload::Gemv,
        Workload::Spmv,
        Workload::Spgemm,
    ];

    /// Static spec of this workload.
    pub fn spec(&self) -> WorkloadSpec {
        match self {
            Workload::Gemm => WorkloadSpec {
                workload: *self,
                name: "GEMM",
                quadrant: Quadrant::I,
                baseline: Some("cudaSample matrixMul"),
                distinct_cce: false,
                dwarf: "Dense linear algebra",
                perf_unit: "GFLOP/s",
            },
            Workload::Pic => WorkloadSpec {
                workload: *self,
                name: "PiC",
                quadrant: Quadrant::I,
                baseline: None,
                distinct_cce: false,
                dwarf: "N-Body",
                perf_unit: "Mpush/s",
            },
            Workload::Fft => WorkloadSpec {
                workload: *self,
                name: "FFT",
                quadrant: Quadrant::I,
                baseline: Some("cuFFT"),
                distinct_cce: false,
                dwarf: "Spectral methods",
                perf_unit: "GFLOP/s",
            },
            Workload::Stencil => WorkloadSpec {
                workload: *self,
                name: "Stencil",
                quadrant: Quadrant::I,
                baseline: Some("DRStencil"),
                distinct_cce: false,
                dwarf: "Structured grids",
                perf_unit: "Gpoint/s",
            },
            Workload::Scan => WorkloadSpec {
                workload: *self,
                name: "Scan",
                quadrant: Quadrant::II,
                baseline: Some("CUB BlockScan"),
                distinct_cce: true,
                dwarf: "MapReduce",
                perf_unit: "Gelem/s",
            },
            Workload::Reduction => WorkloadSpec {
                workload: *self,
                name: "Reduction",
                quadrant: Quadrant::III,
                baseline: Some("CUB BlockReduce"),
                distinct_cce: true,
                dwarf: "MapReduce",
                perf_unit: "Gelem/s",
            },
            Workload::Bfs => WorkloadSpec {
                workload: *self,
                name: "BFS",
                quadrant: Quadrant::IV,
                baseline: Some("Gunrock"),
                distinct_cce: true,
                dwarf: "Graph traversal",
                perf_unit: "GTEPS",
            },
            Workload::Gemv => WorkloadSpec {
                workload: *self,
                name: "GEMV",
                quadrant: Quadrant::IV,
                baseline: Some("cuBLAS GEMV"),
                distinct_cce: true,
                dwarf: "Dense linear algebra",
                perf_unit: "GFLOP/s",
            },
            Workload::Spmv => WorkloadSpec {
                workload: *self,
                name: "SpMV",
                quadrant: Quadrant::IV,
                baseline: Some("cuSPARSE SpMV"),
                distinct_cce: true,
                dwarf: "Sparse linear algebra",
                perf_unit: "GFLOP/s",
            },
            Workload::Spgemm => WorkloadSpec {
                workload: *self,
                name: "SpGEMM",
                quadrant: Quadrant::IV,
                baseline: Some("cuSPARSE SpGEMM"),
                distinct_cce: true,
                dwarf: "Sparse linear algebra",
                perf_unit: "GFLOP/s",
            },
        }
    }

    /// Position of this workload in Table 2 order (the canonical sort key
    /// of sweep results).
    pub fn index(&self) -> usize {
        Workload::ALL
            .iter()
            .position(|w| w == self)
            .expect("ALL is total")
    }

    /// Lower-case key used by CLI filters and CSV columns.
    pub fn key(&self) -> &'static str {
        match self {
            Workload::Gemm => "gemm",
            Workload::Pic => "pic",
            Workload::Fft => "fft",
            Workload::Stencil => "stencil",
            Workload::Scan => "scan",
            Workload::Reduction => "reduction",
            Workload::Bfs => "bfs",
            Workload::Gemv => "gemv",
            Workload::Spmv => "spmv",
            Workload::Spgemm => "spgemm",
        }
    }

    /// Parse a workload from its CLI/filter spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Workload> {
        let lower = s.to_ascii_lowercase();
        Workload::ALL.into_iter().find(|w| w.key() == lower)
    }

    /// The variants the paper evaluates for this workload: PiC has no
    /// baseline; Quadrant I folds CC-E into CC.
    pub fn variants(&self) -> Vec<Variant> {
        let spec = self.spec();
        let mut v = Vec::new();
        if spec.baseline.is_some() {
            v.push(Variant::Baseline);
        }
        v.push(Variant::Tc);
        v.push(Variant::Cc);
        if spec.distinct_cce {
            v.push(Variant::CcE);
        }
        v
    }
}

/// All workload specs in Table 2 order.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    Workload::ALL.iter().map(|w| w.spec()).collect()
}

/// A prepared test case: parameters plus any generated inputs, ready to
/// trace (and, at affordable sizes, to execute functionally).
pub enum PreparedCase {
    /// GEMM case.
    Gemm(gemm::GemmCase),
    /// GEMV case.
    Gemv(gemv::GemvCase),
    /// FFT case.
    Fft(fft::FftCase),
    /// Stencil case.
    Stencil(stencil::StencilCase),
    /// Scan case.
    Scan(scan::ScanCase),
    /// Reduction case.
    Reduction(reduction::ReductionCase),
    /// PiC case.
    Pic(pic::PicCase),
    /// SpMV case with its generated matrix.
    Spmv {
        /// Table 4 metadata.
        info: sparse_gen::MatrixInfo,
        /// The generated matrix.
        matrix: Box<Csr>,
    },
    /// SpGEMM case with its generated matrix.
    Spgemm {
        /// Table 4 metadata.
        info: sparse_gen::MatrixInfo,
        /// The generated matrix.
        matrix: Box<Csr>,
    },
    /// BFS case with its generated graph.
    Bfs {
        /// Table 3 metadata.
        info: graph_gen::GraphInfo,
        /// The generated graph.
        graph: Box<CsrGraph>,
        /// BFS source vertex.
        source: usize,
    },
}

impl PreparedCase {
    /// The workload this case belongs to.
    pub fn workload(&self) -> Workload {
        match self {
            PreparedCase::Gemm(_) => Workload::Gemm,
            PreparedCase::Gemv(_) => Workload::Gemv,
            PreparedCase::Fft(_) => Workload::Fft,
            PreparedCase::Stencil(_) => Workload::Stencil,
            PreparedCase::Scan(_) => Workload::Scan,
            PreparedCase::Reduction(_) => Workload::Reduction,
            PreparedCase::Pic(_) => Workload::Pic,
            PreparedCase::Spmv { .. } => Workload::Spmv,
            PreparedCase::Spgemm { .. } => Workload::Spgemm,
            PreparedCase::Bfs { .. } => Workload::Bfs,
        }
    }

    /// Approximate bytes of generated input state for this case — the
    /// `bytes` counter of the `prepare` profiling phase. Sparse/graph
    /// cases count the structure generated up front; dense cases are
    /// parameter-only but still account for the input state one
    /// functional execution generates from the case parameters, so the
    /// phase counter reflects the data volume the case stands for.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            // Dense inputs: operands of one functional execution.
            PreparedCase::Gemm(c) => ((c.m * c.k + c.k * c.n) * 8) as u64,
            PreparedCase::Gemv(c) => ((c.m * c.n + c.n) * 8) as u64,
            // C64 = 16 bytes per point, all batched transforms.
            PreparedCase::Fft(c) => (c.batch * c.points() * 16) as u64,
            PreparedCase::Stencil(c) => (c.points() * 8) as u64,
            PreparedCase::Scan(c) => (c.n * 8) as u64,
            PreparedCase::Reduction(c) => (c.n * 8) as u64,
            // Particles (pos + vel, 3 f64 each) + E/B field grid.
            PreparedCase::Pic(c) => (c.n * 48 + pic::GRID * pic::GRID * pic::GRID * 48) as u64,
            PreparedCase::Spmv { matrix, .. } | PreparedCase::Spgemm { matrix, .. } => {
                // vals (f64) + col_idx (u32) + row_ptr (usize).
                (matrix.nnz() * (8 + 4) + (matrix.rows + 1) * 8) as u64
            }
            PreparedCase::Bfs { graph, .. } => {
                // adj (u32) + offsets (usize).
                (graph.num_arcs() * 4 + (graph.n + 1) * 8) as u64
            }
        }
    }

    /// Case label (x-axis of Figure 3).
    pub fn label(&self) -> String {
        match self {
            PreparedCase::Gemm(c) => c.label(),
            PreparedCase::Gemv(c) => c.label(),
            PreparedCase::Fft(c) => c.label(),
            PreparedCase::Stencil(c) => c.label(),
            PreparedCase::Scan(c) => c.label(),
            PreparedCase::Reduction(c) => c.label(),
            PreparedCase::Pic(c) => c.label(),
            PreparedCase::Spmv { info, .. } | PreparedCase::Spgemm { info, .. } => {
                info.name.to_string()
            }
            PreparedCase::Bfs { info, .. } => info.name.to_string(),
        }
    }

    /// Useful work of one execution, in the workload's unit basis
    /// (FLOPs, points, elements, edges, pushes).
    pub fn useful_work(&self) -> f64 {
        match self {
            PreparedCase::Gemm(c) => c.useful_flops(),
            PreparedCase::Gemv(c) => c.useful_flops(),
            PreparedCase::Fft(c) => c.useful_flops(),
            PreparedCase::Stencil(c) => c.points() as f64,
            PreparedCase::Scan(c) => c.useful_flops(),
            PreparedCase::Reduction(c) => c.useful_flops(),
            PreparedCase::Pic(c) => (c.n * pic::SUBSTEPS) as f64,
            PreparedCase::Spmv { matrix, .. } => spmv::useful_flops(matrix),
            PreparedCase::Spgemm { matrix, .. } => spgemm::useful_flops(matrix),
            PreparedCase::Bfs { graph, .. } => bfs::useful_edges(graph),
        }
    }

    /// The analytic trace of one variant, or `None` when the paper does
    /// not evaluate that variant (PiC baseline). The functional execution
    /// behind the trace is profiled as the `trace` phase, labelled
    /// `workload/variant`.
    pub fn trace(&self, variant: Variant) -> Option<WorkloadTrace> {
        match self {
            PreparedCase::Pic(_) if variant == Variant::Baseline => return None,
            _ => {}
        }
        let mut span = cubie_obs::span_with("trace", || {
            format!("{}/{}", self.workload().key(), variant.label())
        });
        span.add_items(1);
        Some(match self {
            PreparedCase::Gemm(c) => gemm::trace(c, variant),
            PreparedCase::Gemv(c) => gemv::trace(c, variant),
            PreparedCase::Fft(c) => fft::trace(c, variant),
            PreparedCase::Stencil(c) => stencil::trace(c, variant),
            PreparedCase::Scan(c) => scan::trace(c, variant),
            PreparedCase::Reduction(c) => reduction::trace(c, variant),
            PreparedCase::Pic(c) => pic::trace(c, variant),
            PreparedCase::Spmv { matrix, .. } => spmv::trace(matrix, variant),
            PreparedCase::Spgemm { matrix, .. } => spgemm::trace(matrix, variant),
            PreparedCase::Bfs { graph, source, .. } => bfs::trace(graph, *source, variant),
        })
    }
}

/// Prepare the five Table 2 test cases of a workload.
///
/// `sparse_scale` / `graph_scale` divide the sparse-matrix and graph
/// sizes (1 = full published sizes; graphs at scale 1 need several GB).
/// Generation is profiled as the `prepare` phase, labelled with the
/// workload key and counting the bytes of generated input state.
pub fn prepare_cases(w: Workload, sparse_scale: usize, graph_scale: usize) -> Vec<PreparedCase> {
    let mut span = cubie_obs::span("prepare", w.key());
    let cases = prepare_cases_inner(w, sparse_scale, graph_scale);
    span.add_items(cases.len() as u64);
    span.add_bytes(cases.iter().map(PreparedCase::approx_bytes).sum());
    cases
}

fn prepare_cases_inner(w: Workload, sparse_scale: usize, graph_scale: usize) -> Vec<PreparedCase> {
    match w {
        Workload::Gemm => gemm::GemmCase::cases()
            .into_iter()
            .map(PreparedCase::Gemm)
            .collect(),
        Workload::Gemv => gemv::GemvCase::cases()
            .into_iter()
            .map(PreparedCase::Gemv)
            .collect(),
        Workload::Fft => fft::FftCase::cases()
            .into_iter()
            .map(PreparedCase::Fft)
            .collect(),
        Workload::Stencil => stencil::StencilCase::cases()
            .into_iter()
            .map(PreparedCase::Stencil)
            .collect(),
        Workload::Scan => scan::ScanCase::cases()
            .into_iter()
            .map(PreparedCase::Scan)
            .collect(),
        Workload::Reduction => reduction::ReductionCase::cases()
            .into_iter()
            .map(PreparedCase::Reduction)
            .collect(),
        Workload::Pic => pic::PicCase::cases()
            .into_iter()
            .map(PreparedCase::Pic)
            .collect(),
        // Sparse and graph inputs go through the prepared-input store:
        // warm starts mmap the snapshot under `results/prep` (zero-copy,
        // honoring CUBIE_PREP_CACHE / CUBIE_PREP_DIR), cold starts
        // generate in parallel and record it.
        Workload::Spmv => cubie_prep::table4_matrices(sparse_scale)
            .into_iter()
            .map(|(info, m)| PreparedCase::Spmv {
                info,
                matrix: Box::new(m),
            })
            .collect(),
        Workload::Spgemm => cubie_prep::table4_matrices(sparse_scale)
            .into_iter()
            .map(|(info, m)| PreparedCase::Spgemm {
                info,
                matrix: Box::new(m),
            })
            .collect(),
        Workload::Bfs => cubie_prep::table3_graphs(graph_scale)
            .into_iter()
            .map(|(info, g)| {
                let source = g.max_degree_vertex();
                PreparedCase::Bfs {
                    info,
                    graph: Box::new(g),
                    source,
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_workloads() {
        assert_eq!(Workload::ALL.len(), 10);
        assert_eq!(all_workloads().len(), 10);
    }

    #[test]
    fn quadrant_membership_matches_figure2() {
        use Quadrant::*;
        let expect = [
            (Workload::Gemm, I),
            (Workload::Pic, I),
            (Workload::Fft, I),
            (Workload::Stencil, I),
            (Workload::Scan, II),
            (Workload::Reduction, III),
            (Workload::Bfs, IV),
            (Workload::Gemv, IV),
            (Workload::Spmv, IV),
            (Workload::Spgemm, IV),
        ];
        for (w, q) in expect {
            assert_eq!(w.spec().quadrant, q, "{:?}", w);
        }
    }

    #[test]
    fn pic_has_no_baseline() {
        assert!(Workload::Pic.spec().baseline.is_none());
        assert!(!Workload::Pic.variants().contains(&Variant::Baseline));
        for w in Workload::ALL {
            if w != Workload::Pic {
                assert!(w.variants().contains(&Variant::Baseline), "{w:?}");
            }
        }
    }

    #[test]
    fn quadrant_one_has_no_distinct_cce() {
        for w in Workload::ALL {
            let s = w.spec();
            assert_eq!(
                s.distinct_cce,
                s.quadrant != Quadrant::I,
                "{w:?}: CC-E is distinct exactly outside Quadrant I"
            );
        }
    }

    #[test]
    fn dwarf_coverage_matches_table7() {
        // Cubie covers 7 dwarfs: dense LA (2 workloads), sparse LA (2),
        // spectral (1), N-Body (1), structured grids (1), MapReduce (2),
        // graph traversal (1).
        let mut by_dwarf = std::collections::HashMap::new();
        for w in Workload::ALL {
            *by_dwarf.entry(w.spec().dwarf).or_insert(0) += 1;
        }
        assert_eq!(by_dwarf.len(), 7);
        assert_eq!(by_dwarf["Dense linear algebra"], 2);
        assert_eq!(by_dwarf["Sparse linear algebra"], 2);
        assert_eq!(by_dwarf["MapReduce"], 2);
    }

    #[test]
    fn every_workload_prepares_five_cases() {
        for w in Workload::ALL {
            let cases = prepare_cases(w, 64, 512);
            assert_eq!(cases.len(), 5, "{w:?}");
            for c in &cases {
                assert!(c.useful_work() > 0.0, "{w:?} {}", c.label());
            }
        }
    }

    #[test]
    fn traces_exist_for_every_evaluated_variant() {
        for w in [Workload::Gemm, Workload::Scan, Workload::Spmv] {
            let cases = prepare_cases(w, 64, 512);
            for v in w.variants() {
                assert!(cases[0].trace(v).is_some(), "{w:?} {v}");
            }
        }
        // PiC baseline is explicitly absent.
        let pic_case = &prepare_cases(Workload::Pic, 1, 1)[0];
        assert!(pic_case.trace(Variant::Baseline).is_none());
        assert!(pic_case.trace(Variant::Tc).is_some());
    }
}
