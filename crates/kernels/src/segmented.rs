//! **Segmented scan and reduction** — the throughput-regime form of the
//! Quadrant II/III kernels.
//!
//! Dakkak et al.'s TCU primitives are *segmented*: a large array is
//! divided into equal segments (their evaluation sweeps segment sizes),
//! each scanned/reduced independently — thousands of blocks in flight
//! rather than the paper's single-block 64–1024-element cases. This
//! module provides that form: one block per group of segments, the same
//! constant-operand MMA tile kernels inside, and throughput-oriented
//! traces (no latency floor — the device is saturated).

use cubie_core::counters::MemTraffic;
use cubie_core::{par, OpCounters};
use cubie_sim::{KernelTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};

use crate::common::{bytes_f64, Variant};
use crate::scan;

/// One segmented case: `segments` independent segments of `seg_len`
/// elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentedCase {
    /// Elements per segment.
    pub seg_len: usize,
    /// Number of segments.
    pub segments: usize,
}

impl SegmentedCase {
    /// Total elements.
    pub fn total(&self) -> usize {
        self.seg_len * self.segments
    }

    /// A Dakkak-style sweep: segment sizes 64–1024 over a fixed ~16M
    /// element array.
    pub fn sweep() -> Vec<SegmentedCase> {
        [64usize, 128, 256, 512, 1024]
            .map(|seg_len| SegmentedCase {
                seg_len,
                segments: (1 << 24) / seg_len,
            })
            .to_vec()
    }

    /// Case label.
    pub fn label(&self) -> String {
        format!("seg{}x{}", self.seg_len, self.segments)
    }
}

/// Deterministic input.
pub fn input(case: &SegmentedCase) -> Vec<f64> {
    cubie_core::LcgF64::new(0x5E6 + case.seg_len as u64).vec(case.total())
}

/// Serial reference: independent running sums per segment.
pub fn reference_scan(case: &SegmentedCase, x: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len());
    for seg in x.chunks(case.seg_len) {
        let mut acc = 0.0f64;
        out.extend(seg.iter().map(|v| {
            acc += v;
            acc
        }));
    }
    out
}

/// Serial reference: per-segment sums.
pub fn reference_reduce(case: &SegmentedCase, x: &[f64]) -> Vec<f64> {
    x.chunks(case.seg_len)
        .map(|seg| seg.iter().sum::<f64>())
        .collect()
}

/// Functional segmented scan (every segment through the chosen
/// variant's in-segment kernel, in parallel).
pub fn run_scan(case: &SegmentedCase, x: &[f64], variant: Variant) -> (Vec<f64>, WorkloadTrace) {
    assert_eq!(x.len(), case.total());
    let per_seg: Vec<Vec<f64>> = par::par_map(case.segments, |s| {
        let lo = s * case.seg_len;
        scan::run(&x[lo..lo + case.seg_len], variant).0
    });
    (per_seg.concat(), trace_scan(case, variant))
}

/// Functional segmented reduction.
pub fn run_reduce(case: &SegmentedCase, x: &[f64], variant: Variant) -> (Vec<f64>, WorkloadTrace) {
    assert_eq!(x.len(), case.total());
    let sums: Vec<f64> = par::par_map(case.segments, |s| {
        let lo = s * case.seg_len;
        crate::reduction::run(&x[lo..lo + case.seg_len], variant).0
    });
    (sums, trace_reduce(case, variant))
}

/// Throughput trace of the segmented scan: one block per 8 segments, all
/// data streamed from DRAM, no inner benchmark loop.
pub fn trace_scan(case: &SegmentedCase, variant: Variant) -> WorkloadTrace {
    let n = case.total() as u64;
    let tiles_per_seg = case.seg_len.div_ceil(scan::TILE) as u64;
    let tiles = tiles_per_seg * case.segments as u64;
    let mut ops = OpCounters {
        gmem_load: MemTraffic::coalesced(bytes_f64(case.total())),
        gmem_store: MemTraffic::coalesced(bytes_f64(case.total())),
        smem_bytes: 2 * bytes_f64(case.total()),
        ..Default::default()
    };
    match variant {
        Variant::Tc => {
            ops.mma_f64 = 6 * tiles
                + if tiles_per_seg > 1 {
                    6 * case.segments as u64
                } else {
                    0
                };
            ops.cmem_bytes = 3 * bytes_f64(scan::TILE);
            ops.add_f64 = n.saturating_sub(scan::TILE as u64 * case.segments as u64);
        }
        Variant::Cc => {
            ops.fma_f64 = (6 * tiles
                + if tiles_per_seg > 1 {
                    6 * case.segments as u64
                } else {
                    0
                })
                * 256;
            ops.int_ops = ops.fma_f64;
            ops.add_f64 = n.saturating_sub(scan::TILE as u64 * case.segments as u64);
        }
        Variant::CcE => {
            ops.add_f64 = 2 * n;
            ops.int_ops = n; // lane shuffles
        }
        Variant::Baseline => {
            ops.add_f64 = 2 * n + case.segments as u64 * 16;
            ops.int_ops = 2 * n;
            ops.smem_bytes += bytes_f64(case.total());
        }
    }
    WorkloadTrace::single(KernelTrace::new(
        format!("segscan-{}-{}", variant.label(), case.label()),
        (case.segments as u64).div_ceil(8),
        256,
        (8 * case.seg_len * 8).min(96 * 1024) as u32,
        ops,
        0.0,
    ))
}

/// Throughput trace of the segmented reduction.
pub fn trace_reduce(case: &SegmentedCase, variant: Variant) -> WorkloadTrace {
    let n = case.total() as u64;
    let tiles = (case.seg_len.div_ceil(64) * case.segments) as u64;
    let mut ops = OpCounters {
        gmem_load: MemTraffic::coalesced(bytes_f64(case.total())),
        gmem_store: MemTraffic::coalesced(bytes_f64(case.segments)),
        smem_bytes: bytes_f64(case.total()),
        ..Default::default()
    };
    match variant {
        Variant::Tc => {
            ops.mma_f64 = 4 * tiles;
            ops.cmem_bytes = 2 * bytes_f64(64);
        }
        Variant::Cc => {
            ops.fma_f64 = 4 * tiles * 256;
            ops.int_ops = ops.fma_f64;
        }
        Variant::CcE => {
            ops.add_f64 = n;
            ops.int_ops = n / 2;
        }
        Variant::Baseline => {
            ops.add_f64 = n + case.segments as u64 * 8;
            ops.int_ops = n;
        }
    }
    WorkloadTrace::single(KernelTrace::new(
        format!("segreduce-{}-{}", variant.label(), case.label()),
        (case.segments as u64).div_ceil(8),
        256,
        (8 * case.seg_len * 8).min(96 * 1024) as u32,
        ops,
        0.0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::ErrorStats;
    use cubie_device::h200;
    use cubie_sim::time_workload;

    fn small() -> SegmentedCase {
        SegmentedCase {
            seg_len: 128,
            segments: 40,
        }
    }

    #[test]
    fn segmented_scan_matches_reference() {
        let case = small();
        let x = input(&case);
        let gold = reference_scan(&case, &x);
        for v in Variant::ALL {
            let (y, _) = run_scan(&case, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-11, "{v}: {}", e.max);
        }
    }

    #[test]
    fn segmented_reduce_matches_reference() {
        let case = small();
        let x = input(&case);
        let gold = reference_reduce(&case, &x);
        for v in Variant::ALL {
            let (y, _) = run_reduce(&case, &x, v);
            let e = ErrorStats::compare(&y, &gold);
            assert!(e.max < 1e-10, "{v}: {}", e.max);
        }
    }

    #[test]
    fn segments_are_independent() {
        let case = small();
        let mut x = input(&case);
        let (a, _) = run_scan(&case, &x, Variant::Tc);
        // Perturbing segment 3 must not affect segment 7.
        x[3 * 128 + 5] += 1.0;
        let (b, _) = run_scan(&case, &x, Variant::Tc);
        assert_eq!(
            &a[7 * 128..8 * 128],
            &b[7 * 128..8 * 128],
            "cross-segment contamination"
        );
        assert_ne!(&a[3 * 128..4 * 128], &b[3 * 128..4 * 128]);
    }

    #[test]
    fn throughput_regime_is_memory_bound() {
        // With millions of elements in flight the segmented kernels are
        // DRAM-bound and every variant converges toward the bandwidth
        // limit — the reason the paper evaluates the *latency* regime to
        // differentiate the compute units.
        let d = h200();
        let case = SegmentedCase {
            seg_len: 256,
            segments: 1 << 16,
        };
        let tc = time_workload(&d, &trace_scan(&case, Variant::Tc));
        let base = time_workload(&d, &trace_scan(&case, Variant::Baseline));
        let ratio = base.total_s / tc.total_s;
        assert!(
            (0.8..1.6).contains(&ratio),
            "segmented scan TC/baseline ratio {ratio:.2} should be near 1"
        );
        assert!(tc.mem_util() > 0.5, "DRAM should be the limiter");
    }

    #[test]
    fn sweep_covers_paper_segment_sizes() {
        let sweep = SegmentedCase::sweep();
        assert_eq!(sweep.len(), 5);
        assert!(sweep.iter().all(|c| c.total() == 1 << 24));
    }
}
