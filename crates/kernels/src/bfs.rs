//! **BFS** — breadth-first search (Quadrant IV).
//!
//! * **TC** follows BerryBees (Niu & Casas, PPoPP '25): the transposed
//!   adjacency lives in the 8×128 bitmap block slice-set format
//!   (`cubie-graph::bitmap`); a pull iteration ANDs every active slice
//!   against the matching 128-bit frontier segment through the
//!   single-bit `mma.m8n8k128` instruction and reads the popcount
//!   **diagonal** (Quadrant IV's partial output). The compact bitmap is
//!   the "efficient data structure with low memory footprint" Section
//!   6.1 credits for the BFS speedups.
//! * **CC** executes the same slice loop as 32-bit AND/POPC integer
//!   sequences (identical frontier evolution).
//! * **CC-E** additionally skips slices whose rows are all settled —
//!   only the essential bit tests (same memory traffic, fewer lane ops).
//! * **Baseline** models Gunrock: direction-optimizing push/pull BFS
//!   over CSR with frontier queues.
//!
//! BFS performs no floating-point arithmetic; correctness is exact
//! level-by-level agreement with the serial reference.

use cubie_core::counters::MemTraffic;
use cubie_core::mma::mma_b1_m8n8k128_and_popc;
use cubie_core::{workspace, OpCounters};
use cubie_graph::bitmap::{BitmapGraph, BLOCK_COLS, BLOCK_ROWS};
use cubie_graph::csr_graph::CsrGraph;
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};

use crate::common::Variant;

/// Serial CPU ground truth.
pub fn reference(g: &CsrGraph, source: usize) -> Vec<i32> {
    g.bfs_serial(source)
}

/// Functional execution of one variant; returns per-vertex levels and the
/// per-iteration workload trace (one kernel launch per BFS level, as the
/// real implementations issue).
pub fn run(g: &CsrGraph, source: usize, variant: Variant) -> (Vec<i32>, WorkloadTrace) {
    match variant {
        Variant::Baseline => run_push_pull(g, source),
        Variant::Tc | Variant::Cc | Variant::CcE => run_bitmap(g, source, variant),
    }
}

/// Trace-only entry point (BFS traces are data-dependent, so this simply
/// runs the traversal structure).
pub fn trace(g: &CsrGraph, source: usize, variant: Variant) -> WorkloadTrace {
    run(g, source, variant).1
}

/// Useful traversal work: arcs in the graph (for GTEPS reporting).
pub fn useful_edges(g: &CsrGraph) -> f64 {
    g.num_arcs() as f64
}

/// Bitmap pull BFS (TC / CC / CC-E — identical traversal, different
/// issuing pipes and slice filtering in the trace).
fn run_bitmap(g: &CsrGraph, source: usize, variant: Variant) -> (Vec<i32>, WorkloadTrace) {
    let bm = BitmapGraph::from_graph(g);
    let n = g.n;
    let col_blocks = bm.col_blocks;
    let mut level = vec![-1i32; n];
    level[source] = 0;
    let mut frontier = workspace::take(col_blocks, 0u128);
    frontier[source / BLOCK_COLS] |= 1u128 << (source % BLOCK_COLS);
    // Bands that still contain unsettled rows.
    let mut band_unsettled = workspace::take(bm.row_blocks, BLOCK_ROWS as u32);
    if !n.is_multiple_of(BLOCK_ROWS) {
        band_unsettled[bm.row_blocks - 1] = (n % BLOCK_ROWS) as u32;
    }
    band_unsettled[source / BLOCK_ROWS] -= 1;

    let mut workload = WorkloadTrace::default();
    let mut depth = 0i32;
    let mut frontier_count = 1u64;
    while frontier_count > 0 {
        depth += 1;
        // Ping-pong through the arena: the retired frontier is the
        // buffer the next level's checkout gets back.
        let mut next = workspace::take(col_blocks, 0u128);
        let mut ops = OpCounters::default();
        let mut scratch = OpCounters::default();
        let mut processed = 0u64;
        let mut skipped_settled = 0u64;
        let mut next_count = 0u64;
        // `band_unsettled[rb]` is also decremented inside the inner loop,
        // so an iterator over it would alias the mutation.
        #[allow(clippy::needless_range_loop)]
        for rb in 0..bm.row_blocks {
            if band_unsettled[rb] == 0 {
                skipped_settled += bm.band(rb).len() as u64;
                continue;
            }
            for slice in bm.band(rb) {
                let seg = frontier[slice.col_block as usize];
                if seg == 0 {
                    continue;
                }
                processed += 1;
                // B operand: the frontier segment replicated across the
                // eight columns; the diagonal carries the row hit counts.
                let b_cols = [seg; 8];
                let mut c = [0u32; 64];
                mma_b1_m8n8k128_and_popc(&slice.rows, &b_cols, &mut c, &mut scratch);
                for r in 0..BLOCK_ROWS {
                    let v = rb * BLOCK_ROWS + r;
                    if v < n && level[v] < 0 && c[r * 8 + r] > 0 {
                        level[v] = depth;
                        next[v / BLOCK_COLS] |= 1u128 << (v % BLOCK_COLS);
                        band_unsettled[rb] -= 1;
                        next_count += 1;
                    }
                }
            }
        }
        // Account the level's launch.
        match variant {
            Variant::Tc => ops.mma_b1 = processed,
            Variant::Cc => ops.int_ops = processed * 768 + processed * 8,
            Variant::CcE => {
                // Essential: only unsettled rows' segments are tested
                // (~4 u128 ops per live row on average).
                ops.int_ops = processed * 12 * 8 / 2 + processed * 8;
            }
            Variant::Baseline => unreachable!(),
        }
        if variant == Variant::Tc {
            ops.int_ops = processed * 8; // diagonal extraction
        }
        ops.gmem_load = MemTraffic::coalesced(processed * 132) + MemTraffic::random(processed * 16);
        ops.gmem_store = MemTraffic::coalesced(next_count * 4 + col_blocks as u64 * 16);
        ops.smem_bytes = processed * 16;
        let _ = skipped_settled;
        workload.push(KernelTrace::new(
            format!("bfs-{}-level{}", variant.label(), depth),
            processed.div_ceil(8).max(1),
            256,
            4096,
            ops,
            latency::GMEM_RT + latency::MMA_B1 + latency::SMEM_RT,
        ));
        frontier = next;
        frontier_count = next_count;
    }
    (level, workload)
}

/// Direction-optimizing push/pull BFS (Gunrock-style baseline).
fn run_push_pull(g: &CsrGraph, source: usize) -> (Vec<i32>, WorkloadTrace) {
    let rev = g.reverse();
    let n = g.n;
    let mut level = vec![-1i32; n];
    level[source] = 0;
    let mut frontier = workspace::take_in::<u32>(1);
    frontier.push(source as u32);
    let mut unvisited = n as u64 - 1;
    let mut workload = WorkloadTrace::default();
    let mut depth = 0i32;
    while !frontier.is_empty() {
        depth += 1;
        let frontier_edges: u64 = frontier.iter().map(|&u| g.degree(u as usize) as u64).sum();
        let unvisited_edges = unvisited * (g.num_arcs() as u64 / n.max(1) as u64).max(1);
        let mut ops = OpCounters::default();
        let mut next = workspace::take_in::<u32>(0);
        if frontier_edges > unvisited_edges / 14 && unvisited > 0 {
            // Pull: every unvisited vertex scans its in-neighbours until
            // it finds a frontier parent.
            let mut inspections = 0u64;
            for v in 0..n {
                if level[v] >= 0 {
                    continue;
                }
                for &u in rev.neighbors(v) {
                    inspections += 1;
                    if level[u as usize] == depth - 1 {
                        level[v] = depth;
                        next.push(v as u32);
                        break;
                    }
                }
            }
            ops.int_ops = inspections * 4;
            ops.gmem_load = MemTraffic::strided(inspections * 4)
                + MemTraffic::random(inspections * 4)
                + MemTraffic::coalesced((n as u64) * 8);
            ops.gmem_store = MemTraffic::coalesced(next.len() as u64 * 4);
        } else {
            // Push: expand the frontier queue.
            let mut inspections = 0u64;
            for &u in frontier.iter() {
                for &v in g.neighbors(u as usize) {
                    inspections += 1;
                    if level[v as usize] < 0 {
                        level[v as usize] = depth;
                        next.push(v);
                    }
                }
            }
            ops.int_ops = inspections * 4 + next.len() as u64 * 2;
            ops.gmem_load = MemTraffic::strided(inspections * 4)
                + MemTraffic::random(inspections * 4)
                + MemTraffic::coalesced(frontier.len() as u64 * 12);
            ops.gmem_store = MemTraffic::random(next.len() as u64 * 8);
        }
        unvisited -= next.len() as u64;
        workload.push(KernelTrace::new(
            format!("bfs-Baseline-level{depth}"),
            (frontier.len() as u64).div_ceil(256).max(1),
            256,
            0,
            ops,
            latency::GMEM_RT * 2.0,
        ));
        frontier = next;
    }
    (level, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_graph::generators;

    fn graphs() -> Vec<CsrGraph> {
        vec![
            generators::mycielskian(8),
            generators::grid_graph(20, 30),
            generators::kron_g500(10, 12, 3),
            generators::rmat(1 << 10, 6 << 10, 0.5, 0.2, 0.2, 0.1, 9, false),
        ]
    }

    #[test]
    fn all_variants_match_serial_levels() {
        for (gi, g) in graphs().iter().enumerate() {
            let src = g.max_degree_vertex();
            let gold = reference(g, src);
            for v in Variant::ALL {
                let (levels, _) = run(g, src, v);
                assert_eq!(levels, gold, "graph {gi}, variant {v}");
            }
        }
    }

    #[test]
    fn trace_has_one_launch_per_level() {
        let g = generators::grid_graph(12, 12);
        let src = 0;
        let gold = reference(&g, src);
        let max_depth = *gold.iter().max().unwrap();
        // One launch per discovered level plus the final empty-frontier
        // check (which real implementations also pay).
        let t = trace(&g, src, Variant::Tc);
        assert_eq!(t.launches(), max_depth as usize + 1);
    }

    #[test]
    fn tc_counts_bit_mmas() {
        let g = generators::kron_g500(10, 16, 5);
        let t = trace(&g, g.max_degree_vertex(), Variant::Tc).total_ops();
        assert!(t.mma_b1 > 0);
        assert_eq!(t.fma_f64, 0, "BFS performs no floating point");
        assert_eq!(t.mma_f64, 0);
    }

    #[test]
    fn cc_replaces_bit_mma_with_int_ops() {
        let g = generators::grid_graph(16, 16);
        let src = 0;
        let tc = trace(&g, src, Variant::Tc).total_ops();
        let cc = trace(&g, src, Variant::Cc).total_ops();
        assert_eq!(cc.mma_b1, 0);
        assert!(cc.int_ops > tc.int_ops);
        // Bit work is conserved: 768 int ops stand in for each 8192-bitop
        // MMA.
        assert!(cc.int_ops as f64 > tc.mma_b1 as f64 * 700.0);
    }

    #[test]
    fn cce_does_less_lane_work_than_cc() {
        let g = generators::kron_g500(9, 10, 7);
        let src = g.max_degree_vertex();
        let cc = trace(&g, src, Variant::Cc).total_ops();
        let cce = trace(&g, src, Variant::CcE).total_ops();
        assert!(cce.int_ops < cc.int_ops);
        assert_eq!(cce.gmem_bytes(), cc.gmem_bytes(), "same traffic");
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let g = CsrGraph::from_edges(64, &[(0, 1), (1, 2), (10, 11)], true);
        for v in Variant::ALL {
            let (levels, _) = run(&g, 0, v);
            assert_eq!(levels[2], 2, "{v}");
            assert_eq!(levels[10], -1, "{v}");
            assert_eq!(levels[63], -1, "{v}");
        }
    }

    #[test]
    fn baseline_switches_to_pull_on_dense_frontier() {
        // A star graph: after one hop the frontier covers everything —
        // the heuristic must take the pull branch at least once on a
        // dense expansion.
        let n = 1 << 12;
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        edges.extend((1..200u32).map(|v| (v, v + 200)));
        let g = CsrGraph::from_edges(n, &edges, true);
        let (levels, t) = run(&g, 0, Variant::Baseline);
        assert_eq!(levels[1], 1);
        assert!(t.launches() >= 2);
    }

    #[test]
    fn singleton_source_terminates() {
        let g = CsrGraph::from_edges(4, &[(1, 2)], true);
        for v in Variant::ALL {
            let (levels, _) = run(&g, 3, v);
            assert_eq!(levels, vec![-1, -1, -1, 0], "{v}");
        }
    }
}
