//! **PiC** — particle-in-cell plasma push (Quadrant I).
//!
//! Follows PiCTC (Mehta) lifted to FP64 with the Boris push (Boris 1970):
//! the velocity rotation in the magnetic field plus the electric kick is
//! an *affine* map `v ← M·(v + ε) + ε`, where `M = I + C_s + C_s·C_t` is
//! built per cell from the rotation vectors `t = (q·dt/2m)·B` and
//! `s = 2t/(1+|t|²)`, and `ε = (q·dt/2m)·E`.
//!
//! * **TC** maps batches of 8 particles into the 8×4 `A` operand as
//!   homogeneous velocity rows `(vx, vy, vz, 1)`; the per-cell 4×8 `B`
//!   operand packs the affine velocity update (columns 0–2), the position
//!   increments `dt·v_new` (columns 3–5), a current-deposit diagnostic
//!   (column 6) and the homogeneous passthrough (column 7) — all eight
//!   output columns carry meaning (full input *and* output: Quadrant I).
//!   Particles stay in registers across `SUBSTEPS` sub-cycles per launch.
//! * **CC** issues the identical chains on CUDA cores (bit-identical);
//!   CC-E ≡ CC (Quadrant I).
//! * The paper evaluates no vendor baseline for PiC (Table 2: "-").

use cubie_core::counters::{MemTraffic, MMA_F64_FMAS};
use cubie_core::mma::mma_f64_m8n8k4;
use cubie_core::{par, LcgF64, OpCounters};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};

use crate::common::Variant;

/// Sub-cycling steps per kernel launch (particles stay in registers).
pub const SUBSTEPS: usize = 32;
/// Field grid edge (cells per axis).
pub const GRID: usize = 16;
/// Domain edge length.
pub const DOMAIN: f64 = 1.0;
/// Time step per substep.
pub const DT: f64 = 1e-3;
/// Charge-to-mass ratio.
pub const QM: f64 = 1.0;

/// One PiC test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PicCase {
    /// Number of particles.
    pub n: usize,
}

impl PicCase {
    /// The five Table 2 test cases: 64K … 1M particles.
    pub fn cases() -> Vec<PicCase> {
        [64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20]
            .into_iter()
            .map(|n| PicCase { n })
            .collect()
    }

    /// Useful work: particle pushes (particles × substeps), ~23 essential
    /// FLOPs each (Boris push).
    pub fn useful_flops(&self) -> f64 {
        23.0 * (self.n * SUBSTEPS) as f64
    }

    /// Case label for reports.
    pub fn label(&self) -> String {
        format!("{}K", self.n >> 10)
    }
}

/// Electric and magnetic field grids (uniform per cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldGrid {
    /// Per-cell electric field.
    pub e: Vec<[f64; 3]>,
    /// Per-cell magnetic field.
    pub b: Vec<[f64; 3]>,
}

impl FieldGrid {
    /// Deterministic synthetic fields.
    pub fn synthetic(seed: u64) -> Self {
        let mut g = LcgF64::new(seed);
        let cells = GRID * GRID * GRID;
        let e = (0..cells)
            .map(|_| [0.1 * g.next_f64(), 0.1 * g.next_f64(), 0.1 * g.next_f64()])
            .collect();
        let b = (0..cells)
            .map(|_| [g.next_f64(), g.next_f64(), g.next_f64()])
            .collect();
        Self { e, b }
    }

    /// Cell index of a position (periodic domain).
    pub fn cell_of(pos: &[f64; 3]) -> usize {
        let idx = |x: f64| {
            let f = (x.rem_euclid(DOMAIN)) / DOMAIN * GRID as f64;
            (f as usize).min(GRID - 1)
        };
        (idx(pos[0]) * GRID + idx(pos[1])) * GRID + idx(pos[2])
    }
}

/// Particle phase-space state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Particles {
    /// Positions.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
}

/// Deterministic particle initialization, sorted by cell (PiCTC sorts
/// particles so each 8-particle batch shares its cell's push matrix).
pub fn input(case: &PicCase) -> (Particles, FieldGrid) {
    let mut g = LcgF64::new(0x91C + case.n as u64);
    let mut parts: Vec<([f64; 3], [f64; 3])> = (0..case.n)
        .map(|_| {
            let pos = [
                (g.next_f64() + 2.0) / 4.0,
                (g.next_f64() + 2.0) / 4.0,
                (g.next_f64() + 2.0) / 4.0,
            ];
            let vel = [0.1 * g.next_f64(), 0.1 * g.next_f64(), 0.1 * g.next_f64()];
            (pos, vel)
        })
        .collect();
    parts.sort_by_key(|(p, _)| FieldGrid::cell_of(p));
    let (pos, vel) = parts.into_iter().unzip();
    (Particles { pos, vel }, FieldGrid::synthetic(0xF1E1D))
}

/// The per-cell affine push operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushMatrix {
    /// The 3×3 rotation+kick matrix `M`.
    pub m: [[f64; 3]; 3],
    /// The affine offset `M·ε + ε`.
    pub c: [f64; 3],
}

/// Build the Boris push operator for a cell's fields.
pub fn push_matrix(e: &[f64; 3], b: &[f64; 3]) -> PushMatrix {
    let h = QM * DT / 2.0;
    let t = [h * b[0], h * b[1], h * b[2]];
    let t2 = t[0] * t[0] + t[1] * t[1] + t[2] * t[2];
    let f = 2.0 / (1.0 + t2);
    let s = [f * t[0], f * t[1], f * t[2]];
    // Cross-product matrices: (C_t · v) = v × t.
    let ct = cross_matrix(&t);
    let cs = cross_matrix(&s);
    // M = I + C_s + C_s·C_t.
    let mut m = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut cc = 0.0;
            for k in 0..3 {
                cc += cs[i][k] * ct[k][j];
            }
            m[i][j] = if i == j { 1.0 } else { 0.0 } + cs[i][j] + cc;
        }
    }
    let eps = [h * e[0], h * e[1], h * e[2]];
    let mut c = [0.0f64; 3];
    for i in 0..3 {
        c[i] = eps[i];
        for k in 0..3 {
            c[i] += m[i][k] * eps[k];
        }
    }
    PushMatrix { m, c }
}

fn cross_matrix(t: &[f64; 3]) -> [[f64; 3]; 3] {
    // (C·v) = v × t.
    [[0.0, t[2], -t[1]], [-t[2], 0.0, t[0]], [t[1], -t[0], 0.0]]
}

/// Pack the push operator into the 4×8 MMA `B` operand (row-major 32):
/// columns 0–2 velocity update, 3–5 position increments, 6 diagnostic,
/// 7 homogeneous passthrough.
fn pack_b(p: &PushMatrix) -> [f64; 32] {
    let mut b = [0.0f64; 32];
    for k in 0..3 {
        for j in 0..3 {
            b[k * 8 + j] = p.m[j][k]; // Mᵀ for velocity columns
            b[k * 8 + 3 + j] = DT * p.m[j][k]; // dt·Mᵀ for position columns
        }
        // Diagnostic column: total velocity-component deposit.
        b[k * 8 + 6] = p.m[0][k] + p.m[1][k] + p.m[2][k];
    }
    for j in 0..3 {
        b[3 * 8 + j] = p.c[j];
        b[3 * 8 + 3 + j] = DT * p.c[j];
    }
    b[3 * 8 + 6] = p.c[0] + p.c[1] + p.c[2];
    b[3 * 8 + 7] = 1.0;
    b
}

/// Functional execution: push all particles for [`SUBSTEPS`] sub-cycles.
/// Returns the final state and the trace of one launch.
pub fn run(
    case: &PicCase,
    parts: &Particles,
    grid: &FieldGrid,
    variant: Variant,
) -> (Particles, WorkloadTrace) {
    assert_eq!(parts.pos.len(), case.n);
    let out = match variant {
        Variant::Tc | Variant::Cc | Variant::CcE => run_mma(parts, grid),
        Variant::Baseline => run_serial_style(parts, grid),
    };
    (out, trace(case, variant))
}

/// Positions and velocities of one 8-particle batch — fixed-size stack
/// state (a batch is at most 8 particles), so the per-batch hot loop
/// allocates nothing.
type PosVelBatch = ([[f64; 3]; 8], [[f64; 3]; 8]);

/// TC/CC functional path: 8-particle batches through the MMA.
fn run_mma(parts: &Particles, grid: &FieldGrid) -> Particles {
    let n = parts.pos.len();
    let batches = n.div_ceil(8);
    let results: Vec<PosVelBatch> = par::par_map(batches, |bi| {
        let lo = bi * 8;
        let hi = (lo + 8).min(n);
        let g = hi - lo;
        let mut pos = [[0.0f64; 3]; 8];
        let mut vel = [[0.0f64; 3]; 8];
        pos[..g].copy_from_slice(&parts.pos[lo..hi]);
        vel[..g].copy_from_slice(&parts.vel[lo..hi]);
        // Batch cell: the cell of the batch's first (cell-sorted)
        // particle.
        let cell = FieldGrid::cell_of(&pos[0]);
        let pm = push_matrix(&grid.e[cell], &grid.b[cell]);
        let b = pack_b(&pm);
        let mut scratch = OpCounters::new();
        for _ in 0..SUBSTEPS {
            let mut a = [0.0f64; 32];
            for (p, v) in vel[..g].iter().enumerate() {
                a[p * 4] = v[0];
                a[p * 4 + 1] = v[1];
                a[p * 4 + 2] = v[2];
                a[p * 4 + 3] = 1.0;
            }
            let mut c = [0.0f64; 64];
            mma_f64_m8n8k4(&a, &b, &mut c, &mut scratch);
            for p in 0..g {
                vel[p] = [c[p * 8], c[p * 8 + 1], c[p * 8 + 2]];
                for d in 0..3 {
                    pos[p][d] += c[p * 8 + 3 + d];
                }
            }
        }
        (pos, vel)
    });
    let mut pos = Vec::with_capacity(n);
    let mut vel = Vec::with_capacity(n);
    for (bi, (p, v)) in results.iter().enumerate() {
        let g = 8.min(n - bi * 8);
        pos.extend_from_slice(&p[..g]);
        vel.extend_from_slice(&v[..g]);
    }
    Particles { pos, vel }
}

/// Serial-style CPU reference push: same batch-cell semantics and
/// operator, naive unfused arithmetic — the accuracy ground truth.
pub fn run_serial_style(parts: &Particles, grid: &FieldGrid) -> Particles {
    let n = parts.pos.len();
    let mut pos = parts.pos.clone();
    let mut vel = parts.vel.clone();
    for bi in 0..n.div_ceil(8) {
        let lo = bi * 8;
        let hi = (lo + 8).min(n);
        let cell = FieldGrid::cell_of(&parts.pos[lo]);
        let pm = push_matrix(&grid.e[cell], &grid.b[cell]);
        for p in lo..hi {
            for _ in 0..SUBSTEPS {
                let v = vel[p];
                let mut vn = [0.0f64; 3];
                for (i, vni) in vn.iter_mut().enumerate() {
                    *vni = pm.m[i][0] * v[0] + pm.m[i][1] * v[1] + pm.m[i][2] * v[2] + pm.c[i];
                }
                vel[p] = vn;
                for d in 0..3 {
                    pos[p][d] += DT * vn[d];
                }
            }
        }
    }
    Particles { pos, vel }
}

/// Analytic trace of one launch (one [`SUBSTEPS`] sub-cycle pass).
pub fn trace(case: &PicCase, variant: Variant) -> WorkloadTrace {
    let n = case.n as u64;
    let batches = n.div_ceil(8);
    let label = format!("pic-{}-{}", variant.label(), case.label());
    let mut ops = OpCounters::default();
    match variant {
        Variant::Tc => ops.mma_f64 = batches * SUBSTEPS as u64,
        Variant::Cc | Variant::CcE => {
            ops.fma_f64 = batches * SUBSTEPS as u64 * MMA_F64_FMAS;
            ops.int_ops = batches * SUBSTEPS as u64 * MMA_F64_FMAS;
        }
        Variant::Baseline => {
            // The paper evaluates no baseline for PiC; the serial-style
            // reference is exposed for accuracy only. Its trace models
            // the same push as plain vector FMAs.
            ops.fma_f64 = n * SUBSTEPS as u64 * 12;
        }
    }
    // Position updates stay on CUDA cores in every variant.
    ops.add_f64 += 3 * n * SUBSTEPS as u64;
    // Push-matrix construction per batch.
    ops.mul_f64 += batches * 40;
    ops.add_f64 += batches * 30;
    ops.special_f64 += batches;
    // Particle state in/out; field gather per batch.
    ops.gmem_load = MemTraffic::coalesced(n * 48) + MemTraffic::random(batches * 48);
    ops.gmem_store = MemTraffic::coalesced(n * 48);
    let critical = latency::GMEM_RT
        + SUBSTEPS as f64
            * match variant {
                Variant::Tc => latency::MMA_F64 + latency::FMA_F64,
                _ => 4.0 * latency::FMA_F64 + latency::FMA_F64,
            };
    WorkloadTrace::single(KernelTrace::new(
        label,
        batches.div_ceil(8),
        256,
        0,
        ops,
        critical,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::ErrorStats;

    fn flat(p: &Particles) -> Vec<f64> {
        p.pos
            .iter()
            .chain(p.vel.iter())
            .flat_map(|v| v.iter().copied())
            .collect()
    }

    #[test]
    fn table2_cases() {
        let c = PicCase::cases();
        assert_eq!(c.len(), 5);
        assert_eq!(c[0].n, 65_536);
        assert_eq!(c[4].n, 1_048_576);
    }

    #[test]
    fn tc_matches_serial_reference() {
        let case = PicCase { n: 500 };
        let (parts, grid) = input(&case);
        let gold = run_serial_style(&parts, &grid);
        let (tc, _) = run(&case, &parts, &grid, Variant::Tc);
        let e = ErrorStats::compare(&flat(&tc), &flat(&gold));
        assert!(e.max < 1e-10, "max err {}", e.max);
    }

    #[test]
    fn tc_equals_cc_bitwise() {
        let case = PicCase { n: 256 };
        let (parts, grid) = input(&case);
        let (tc, _) = run(&case, &parts, &grid, Variant::Tc);
        let (cc, _) = run(&case, &parts, &grid, Variant::Cc);
        assert_eq!(flat(&tc), flat(&cc));
    }

    #[test]
    fn boris_rotation_preserves_speed_without_e_field() {
        // With E = 0 the Boris rotation is norm-preserving.
        let b = [0.3, -0.8, 0.5];
        let pm = push_matrix(&[0.0; 3], &b);
        let v = [0.4, 0.2, -0.1];
        let mut vn = [0.0f64; 3];
        for (i, vni) in vn.iter_mut().enumerate() {
            *vni = pm.m[i][0] * v[0] + pm.m[i][1] * v[1] + pm.m[i][2] * v[2] + pm.c[i];
        }
        let n0 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let n1 = vn.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((n0 - n1).abs() < 1e-12, "|v| {n0} → {n1}");
    }

    #[test]
    fn particles_drift_under_e_field_only() {
        let pm = push_matrix(&[1.0, 0.0, 0.0], &[0.0; 3]);
        let v = [0.0; 3];
        let mut vn = [0.0f64; 3];
        for (i, vni) in vn.iter_mut().enumerate() {
            *vni = pm.m[i][0] * v[0] + pm.m[i][1] * v[1] + pm.m[i][2] * v[2] + pm.c[i];
        }
        assert!((vn[0] - QM * DT).abs() < 1e-15, "full kick per step");
        assert_eq!(vn[1], 0.0);
    }

    #[test]
    fn particles_are_cell_sorted() {
        let case = PicCase { n: 1000 };
        let (parts, _) = input(&case);
        let cells: Vec<usize> = parts.pos.iter().map(FieldGrid::cell_of).collect();
        assert!(cells.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn trace_counts() {
        let case = PicCase { n: 64 << 10 };
        let t = trace(&case, Variant::Tc).total_ops();
        assert_eq!(t.mma_f64, (65_536 / 8) * SUBSTEPS as u64);
        let cc = trace(&case, Variant::Cc).total_ops();
        assert_eq!(cc.fma_f64, t.mma_f64 * 256);
    }

    #[test]
    fn ragged_batch_handled() {
        let case = PicCase { n: 13 };
        let (parts, grid) = input(&case);
        let (tc, _) = run(&case, &parts, &grid, Variant::Tc);
        assert_eq!(tc.pos.len(), 13);
        let gold = run_serial_style(&parts, &grid);
        let e = ErrorStats::compare(&flat(&tc), &flat(&gold));
        assert!(e.max < 1e-10);
    }
}
