//! **GEMM** — dense matrix–matrix multiplication (Quadrant I).
//!
//! * **TC** follows the CUDA Samples `dmmaTensorCoreGemm` routine: each
//!   256-thread block computes a 64×64 tile of `C` through shared-memory
//!   staged 64×16 slabs of `A` and `B`, issuing FP64 `m8n8k4` MMAs.
//! * **CC** is the identical tiling with every MMA replaced by 256
//!   CUDA-core FMAs in the same accumulation order (bit-identical).
//! * **Baseline** is the CUDA Samples `matrixMul` vector kernel: 32×32
//!   block tiles, one output element per thread, shared-memory staging.
//!
//! CC-E is equivalent to CC for Quadrant I workloads (no redundant
//! computation is introduced by the MMA mapping), as Section 5.2 notes.

use cubie_core::counters::{MemTraffic, MMA_F16_FMAS, MMA_F64_FMAS, MMA_TF32_FMAS};
use cubie_core::mma::{mma_f64_m8n8k4, mma_f64_m8n8k4_strided, mma_tiled_mixed};
use cubie_core::scalar::{MmaGen, Precision};
use cubie_core::{par, workspace, DenseMatrix, OpCounters};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};

use crate::common::Variant;

/// TC block tile edge (the `dmmaTensorCoreGemm` tile).
const TC_TILE: usize = 64;
/// TC shared-memory k-slab depth.
const TC_BK: usize = 16;
/// Baseline block tile edge (the `matrixMul` tile).
const BASE_TILE: usize = 32;

/// One GEMM test case: `C (M×N) = A (M×K) · B (K×N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmCase {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmCase {
    /// A square `n × n × n` case.
    pub fn square(n: usize) -> Self {
        Self { m: n, n, k: n }
    }

    /// The five Table 2 test cases: 256³ … 4K³.
    pub fn cases() -> Vec<GemmCase> {
        [256, 512, 1024, 2048, 4096]
            .into_iter()
            .map(GemmCase::square)
            .collect()
    }

    /// Useful floating-point work: `2·M·N·K`.
    pub fn useful_flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Case label for reports.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.m, self.n, self.k)
    }
}

/// Deterministic LINPACK-style random inputs for a case.
pub fn inputs(case: &GemmCase) -> (DenseMatrix, DenseMatrix) {
    (
        DenseMatrix::random(case.m, case.k, 0xA0 + case.m as u64),
        DenseMatrix::random(case.k, case.n, 0xB0 + case.n as u64),
    )
}

/// Serial CPU ground truth (naive unfused accumulation), per Section 8.
pub fn reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    a.matmul_naive(b)
}

/// Functional execution of one variant. Returns the product and the
/// workload trace the execution recorded.
///
/// # Panics
/// Panics if dimensions are not multiples of the variant's tile size
/// (the paper's cases are powers of two ≥ 256; tests use multiples of 64).
pub fn run(a: &DenseMatrix, b: &DenseMatrix, variant: Variant) -> (DenseMatrix, WorkloadTrace) {
    let case = GemmCase {
        m: a.rows(),
        n: b.cols(),
        k: a.cols(),
    };
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    match variant {
        Variant::Baseline => run_baseline(&case, a, b),
        Variant::Tc | Variant::Cc | Variant::CcE => run_tiled_mma(&case, a, b, variant),
    }
}

/// Analytic trace of one variant for a case (no data touched).
pub fn trace(case: &GemmCase, variant: Variant) -> WorkloadTrace {
    match variant {
        Variant::Baseline => WorkloadTrace::single(baseline_kernel_trace(case)),
        Variant::Tc | Variant::Cc | Variant::CcE => tc_kernel_trace(case, variant),
    }
}

/// Analytic trace of one mixed-precision variant for a case (no data
/// touched). [`Precision::F64`] delegates to [`trace`]; the reduced
/// precisions model the `mma.sync` warp-tile kernels (`m16n8k16` for
/// FP16/BF16, `m16n8k8` for TF32) with `f32` accumulation and no
/// split-K (the shapes' larger k-depth keeps the grid occupied).
///
/// # Panics
/// Panics on [`Variant::Baseline`]: the mixed-precision axis compares the
/// tensor-core kernel against its CUDA-core replacement only.
pub fn trace_precision(case: &GemmCase, variant: Variant, precision: Precision) -> WorkloadTrace {
    if precision == Precision::F64 {
        return trace(case, variant);
    }
    assert!(
        variant != Variant::Baseline,
        "mixed-precision GEMM has TC and CC variants only"
    );
    let kt = match precision {
        Precision::Tf32 => 8u64,
        _ => 16,
    };
    let (m, n, k) = (case.m as u64, case.n as u64, case.k as u64);
    let mma_total = m.div_ceil(16) * n.div_ceil(8) * k.div_ceil(kt);
    let mut ops = OpCounters::default();
    match (variant, precision) {
        (Variant::Tc, Precision::F16) => ops.mma_f16 = mma_total,
        (Variant::Tc, Precision::Bf16) => ops.mma_bf16 = mma_total,
        (Variant::Tc, Precision::Tf32) => ops.mma_tf32 = mma_total,
        (_, Precision::Tf32) => {
            ops.fma_f32 = mma_total * MMA_TF32_FMAS;
            ops.int_ops = mma_total * MMA_TF32_FMAS;
        }
        _ => {
            ops.fma_f32 = mma_total * MMA_F16_FMAS;
            ops.int_ops = mma_total * MMA_F16_FMAS;
        }
    }
    // Same 64×64 block tiling and streaming structure as the FP64 kernel,
    // with operand bytes scaled by the element size and `f32` output.
    let tiles = (case.m.div_ceil(TC_TILE) * case.n.div_ceil(TC_TILE)) as u64;
    let tile = TC_TILE as u64;
    let eb = precision.elem_bytes();
    let restream = tiles * 2 * tile * k * eb;
    let compulsory = (m * k + k * n) * eb;
    ops.gmem_load = MemTraffic::coalesced(compulsory);
    ops.l2_bytes = restream.saturating_sub(compulsory);
    ops.gmem_store = MemTraffic::coalesced(m * n * 4);
    ops.smem_bytes = restream * (1 + 8);
    ops.syncs = tiles * k.div_ceil(TC_BK as u64) * 2;
    // Each warp owns several independent accumulators; the dependent
    // chain is one output tile's k loop (MMA latency is format-agnostic
    // on current hardware; CC chains step per dot-4 slice).
    let lat = match variant {
        Variant::Tc => k.div_ceil(kt) as f64 * latency::MMA_F64 / 8.0,
        _ => k.div_ceil(4) as f64 * 4.0 * latency::FMA_F64 / 8.0,
    };
    WorkloadTrace::single(KernelTrace::new(
        format!(
            "gemm-{}-{}-{}",
            variant.label(),
            precision.label(),
            case.label()
        ),
        tiles,
        256,
        (2 * TC_TILE * TC_BK) as u32 * eb as u32,
        ops,
        lat,
    ))
}

/// Functional execution of one mixed-precision variant: quantizes the
/// FP64 inputs to `precision` (round-to-nearest-even), multiplies through
/// [`mma_tiled_mixed`] with the accumulation semantics of `gen`, and
/// returns the `f32` product (row-major `M×N`) plus the workload trace.
/// TC and CC produce bit-identical values; only the recorded pipe
/// differs (Observation 7 along the new axis).
///
/// # Panics
/// Panics on [`Precision::F64`] (use [`run`]) and on
/// [`Variant::Baseline`].
pub fn run_precision(
    a: &DenseMatrix,
    b: &DenseMatrix,
    variant: Variant,
    precision: Precision,
    gen: MmaGen,
) -> (Vec<f32>, WorkloadTrace) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(
        precision != Precision::F64,
        "run_precision models reduced precisions; use run"
    );
    let case = GemmCase {
        m: a.rows(),
        n: b.cols(),
        k: a.cols(),
    };
    let mut aq = workspace::take_in::<f64>(a.as_slice().len());
    aq.extend(a.as_slice().iter().map(|&v| precision.quantize(v)));
    let mut bq = workspace::take_in::<f64>(b.as_slice().len());
    bq.extend(b.as_slice().iter().map(|&v| precision.quantize(v)));
    let mut c = vec![0.0f32; case.m * case.n];
    let mut executed = OpCounters::new();
    let cc = variant != Variant::Tc;
    mma_tiled_mixed(
        precision,
        gen,
        &aq,
        &bq,
        &mut c,
        case.m,
        case.n,
        case.k,
        cc,
        &mut executed,
    );
    let trace = trace_precision(&case, variant, precision);
    // Anchor the analytic trace to what was actually executed.
    let ops = trace.kernels[0].ops;
    let analytic = if cc {
        executed.fma_f32 == ops.fma_f32
    } else {
        (executed.mma_f16, executed.mma_bf16, executed.mma_tf32)
            == (ops.mma_f16, ops.mma_bf16, ops.mma_tf32)
    };
    assert!(
        analytic,
        "functional mixed MMA count must match the analytic trace"
    );
    (c, trace)
}

/// Split-K schedule: grids too small to fill a device split the k loop
/// across extra blocks (standard split-K GEMM; partials are combined by
/// a short reduction launch). Returns `(split, chunk_len)` with
/// `chunk_len` a multiple of the MMA depth. Device-independent target of
/// ~256 blocks.
pub fn split_k_for(case: &GemmCase) -> (u64, usize) {
    let tiles = (case.m.div_ceil(TC_TILE) * case.n.div_ceil(TC_TILE)) as u64;
    let want = 256u64.div_ceil(tiles.max(1)).max(1);
    let chunk = ((case.k as u64 / want).max(4) / 4 * 4).max(4) as usize;
    let split = (case.k as u64).div_ceil(chunk as u64).max(1);
    (split, chunk)
}

/// Launch counters of the TC/CC tiled kernel: the main (possibly
/// split-K) launch plus, when split, the partial-reduction launch.
fn tc_kernel_trace(case: &GemmCase, variant: Variant) -> WorkloadTrace {
    let tiles = (case.m.div_ceil(TC_TILE) * case.n.div_ceil(TC_TILE)) as u64;
    let (split_k, chunk) = split_k_for(case);
    let blocks = tiles * split_k;
    let (m, n, k) = (case.m as u64, case.n as u64, case.k as u64);
    let mma_total = m.div_ceil(8) * n.div_ceil(8) * k.div_ceil(4);
    let mut ops = OpCounters::default();
    match variant {
        Variant::Tc => ops.mma_f64 = mma_total,
        // CC and CC-E issue the same FMAs on CUDA cores (Quadrant I:
        // CC-E ≡ CC), plus the operand shuffles the MMU performs
        // internally.
        Variant::Cc | Variant::CcE => {
            ops.fma_f64 = mma_total * MMA_F64_FMAS;
            ops.int_ops = mma_total * MMA_F64_FMAS;
        }
        Variant::Baseline => unreachable!(),
    }
    // Each block streams its 64-row slab of A and 64-column slab of B;
    // the compulsory first read comes from DRAM, the re-streamed slabs
    // are served by L2 (the operand working set is tiled to fit it).
    let tile = TC_TILE as u64;
    let restream = tiles * 2 * tile * k * 8;
    let compulsory = (m * k + k * n) * 8;
    ops.gmem_load = MemTraffic::coalesced(compulsory);
    ops.l2_bytes = restream.saturating_sub(compulsory);
    // Staged through shared memory: one write plus eight tile-reads per
    // element (each A element feeds the 8 warp tiles along its row).
    ops.smem_bytes = tiles * 2 * tile * k * 8 * (1 + 8);
    ops.syncs = blocks * (chunk as u64).div_ceil(TC_BK as u64) * 2;
    if split_k > 1 {
        // Partials stay resident in L2 for the reduction launch.
        ops.l2_bytes += split_k * m * n * 8;
    } else {
        ops.gmem_store = MemTraffic::coalesced(m * n * 8);
    }
    // Each warp owns 8 independent 8×8 accumulators; the dependent chain
    // is the k-loop of one accumulator.
    let chain = (chunk as u64).div_ceil(4) as f64;
    let lat = match variant {
        Variant::Tc => chain * latency::MMA_F64 / 8.0,
        _ => chain * 4.0 * latency::FMA_F64 / 8.0,
    };
    let main = KernelTrace::new(
        format!("gemm-{}-{}", variant.label(), case.label()),
        blocks,
        256,
        (2 * TC_TILE * TC_BK * 8) as u32,
        ops,
        lat,
    );
    if split_k == 1 {
        return WorkloadTrace::single(main);
    }
    let red = OpCounters {
        add_f64: (split_k - 1) * m * n,
        l2_bytes: split_k * m * n * 8,
        gmem_store: MemTraffic::coalesced(m * n * 8),
        ..Default::default()
    };
    let reduce = KernelTrace::new(
        format!("gemm-{}-{}-reduce", variant.label(), case.label()),
        (m * n).div_ceil(256),
        256,
        0,
        red,
        split_k as f64 * latency::FMA_F64,
    );
    let mut w = WorkloadTrace::single(main);
    w.push(reduce);
    w
}

/// Per-launch counters of the baseline vector kernel.
fn baseline_kernel_trace(case: &GemmCase) -> KernelTrace {
    let blocks = (case.m.div_ceil(BASE_TILE) * case.n.div_ceil(BASE_TILE)) as u64;
    let (m, n, k) = (case.m as u64, case.n as u64, case.k as u64);
    let tile = BASE_TILE as u64;
    let mut ops = OpCounters {
        fma_f64: m * n * k,
        ..Default::default()
    };
    let restream = blocks * 2 * tile * k * 8;
    let compulsory = (m * k + k * n) * 8;
    ops.gmem_load = MemTraffic::coalesced(compulsory);
    ops.l2_bytes = restream.saturating_sub(compulsory);
    ops.gmem_store = MemTraffic::coalesced(m * n * 8);
    // One write plus 32 reads per staged element (each element feeds a
    // full tile row/column of threads).
    ops.smem_bytes = blocks * 2 * tile * k * 8 * (1 + 32);
    ops.syncs = blocks * k.div_ceil(tile) * 2;
    KernelTrace::new(
        format!("gemm-Baseline-{}", case.label()),
        blocks,
        (BASE_TILE * BASE_TILE) as u32,
        (2 * BASE_TILE * BASE_TILE * 8) as u32,
        ops,
        k as f64 * latency::FMA_F64 / 8.0,
    )
}

/// TC/CC functional execution: per block-tile tiled MMA with the exact
/// fused accumulation order of the hardware instruction.
fn run_tiled_mma(
    case: &GemmCase,
    a: &DenseMatrix,
    b: &DenseMatrix,
    variant: Variant,
) -> (DenseMatrix, WorkloadTrace) {
    let (m, n, k) = (case.m, case.n, case.k);
    let tiles_m = m.div_ceil(TC_TILE);
    let tiles_n = n.div_ceil(TC_TILE);
    let a_s = a.as_slice();
    let b_s = b.as_slice();

    // Each block produces its 64×64 tile independently, in workspace
    // scratch that returns to the arena once scattered into `C`.
    let tiles: Vec<(workspace::WsVec<f64>, OpCounters)> = par::par_map(tiles_m * tiles_n, |t| {
        let (ti, tj) = (t / tiles_n, t % tiles_n);
        let (i0, j0) = (ti * TC_TILE, tj * TC_TILE);
        let bm = TC_TILE.min(m - i0);
        let bn = TC_TILE.min(n - j0);
        let mut c_tile = workspace::take(bm * bn, 0.0f64);
        let mut at = [0.0f64; 32];
        let mut bt = [0.0f64; 32];
        let mut ct = [0.0f64; 64];
        let mut scratch = OpCounters::new();
        let (_, chunk) = split_k_for(case);
        for wi in (0..bm).step_by(8) {
            for wj in (0..bn).step_by(8) {
                let mut acc = [0.0f64; 64];
                // Split-K: each chunk accumulates its own fused-chain
                // partial; partials combine in ascending chunk order —
                // the semantics of the reduction launch.
                let full_tile = bm - wi >= 8 && bn - wj >= 8;
                for c0 in (0..k).step_by(chunk) {
                    ct.fill(0.0);
                    for k0 in (c0..(c0 + chunk).min(k)).step_by(4) {
                        let kk_max = 4.min(k - k0);
                        if full_tile && kk_max == 4 {
                            // Interior warp tile at full MMA depth: read
                            // A/B in place — bit-identical to packing
                            // (same fused chain), minus the scratch fills.
                            mma_f64_m8n8k4_strided(
                                a_s,
                                (i0 + wi) * k + k0,
                                k,
                                b_s,
                                k0 * n + (j0 + wj),
                                n,
                                &mut ct,
                                0,
                                8,
                                &mut scratch,
                            );
                            continue;
                        }
                        at.fill(0.0);
                        bt.fill(0.0);
                        for ii in 0..8.min(bm - wi) {
                            for kk in 0..kk_max {
                                at[ii * 4 + kk] = a_s[(i0 + wi + ii) * k + (k0 + kk)];
                            }
                        }
                        for kk in 0..kk_max {
                            for jj in 0..8.min(bn - wj) {
                                bt[kk * 8 + jj] = b_s[(k0 + kk) * n + (j0 + wj + jj)];
                            }
                        }
                        // TC and CC execute the identical fused chain;
                        // only the issuing pipe differs, which the trace
                        // captures.
                        mma_f64_m8n8k4(&at, &bt, &mut ct, &mut scratch);
                    }
                    for (a, c) in acc.iter_mut().zip(&ct) {
                        *a += c;
                    }
                }
                for ii in 0..8.min(bm - wi) {
                    for jj in 0..8.min(bn - wj) {
                        c_tile[(wi + ii) * bn + (wj + jj)] = acc[ii * 8 + jj];
                    }
                }
            }
        }
        (c_tile, scratch)
    });

    let mut c = DenseMatrix::zeros(m, n);
    let out = c.as_mut_slice();
    let mut executed = OpCounters::new();
    for (t, (tile, counters)) in tiles.iter().enumerate() {
        executed += *counters;
        let (ti, tj) = (t / tiles_n, t % tiles_n);
        let (i0, j0) = (ti * TC_TILE, tj * TC_TILE);
        let bn = TC_TILE.min(n - j0);
        for (r, row) in tile.chunks(bn).enumerate() {
            out[(i0 + r) * n + j0..(i0 + r) * n + j0 + bn].copy_from_slice(row);
        }
    }
    let trace = tc_kernel_trace(case, variant);
    // Anchor the analytic trace to what was actually executed.
    let analytic_mma = match variant {
        Variant::Tc => trace.kernels[0].ops.mma_f64,
        _ => trace.kernels[0].ops.fma_f64 / MMA_F64_FMAS,
    };
    assert_eq!(
        executed.mma_f64, analytic_mma,
        "functional MMA count must match the analytic trace"
    );
    (c, trace)
}

/// Baseline functional execution: 32×32 block tiles, per-thread fused
/// dot products in ascending-k order (what `nvcc` emits for the CUDA
/// Samples `matrixMul` inner loop).
fn run_baseline(case: &GemmCase, a: &DenseMatrix, b: &DenseMatrix) -> (DenseMatrix, WorkloadTrace) {
    let (m, n, k) = (case.m, case.n, case.k);
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let mut c = DenseMatrix::zeros(m, n);
    par::par_chunks_mut(c.as_mut_slice(), n, |i, row| {
        for (j, out) in row.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc = a_s[i * k + kk].mul_add(b_s[kk * n + j], acc);
            }
            *out = acc;
        }
    });
    (c, WorkloadTrace::single(baseline_kernel_trace(case)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::ErrorStats;

    fn small_case() -> GemmCase {
        GemmCase::square(128)
    }

    #[test]
    fn table2_cases() {
        let cases = GemmCase::cases();
        assert_eq!(cases.len(), 5);
        assert_eq!(cases[0].m, 256);
        assert_eq!(cases[4].k, 4096);
    }

    #[test]
    fn tc_matches_reference_closely() {
        let case = small_case();
        let (a, b) = inputs(&case);
        let gold = reference(&a, &b);
        let (c, _) = run(&a, &b, Variant::Tc);
        let e = ErrorStats::compare(c.as_slice(), gold.as_slice());
        assert!(e.max < 1e-11, "max err {}", e.max);
    }

    #[test]
    fn cc_is_bit_identical_to_tc() {
        let case = small_case();
        let (a, b) = inputs(&case);
        let (tc, _) = run(&a, &b, Variant::Tc);
        let (cc, _) = run(&a, &b, Variant::Cc);
        assert_eq!(tc.as_slice(), cc.as_slice());
    }

    #[test]
    fn baseline_matches_reference_closely() {
        let case = small_case();
        let (a, b) = inputs(&case);
        let gold = reference(&a, &b);
        let (c, _) = run(&a, &b, Variant::Baseline);
        let e = ErrorStats::compare(c.as_slice(), gold.as_slice());
        assert!(e.max < 1e-11, "max err {}", e.max);
    }

    #[test]
    fn run_trace_equals_analytic_trace() {
        let case = small_case();
        let (a, b) = inputs(&case);
        for v in [Variant::Baseline, Variant::Tc, Variant::Cc] {
            let (_, rt) = run(&a, &b, v);
            let at = trace(&case, v);
            assert_eq!(rt, at, "variant {v}");
        }
    }

    #[test]
    fn tc_trace_mma_count_is_exact() {
        let case = GemmCase::square(256);
        let t = trace(&case, Variant::Tc);
        let mma = t.total_ops().mma_f64;
        assert_eq!(mma, (256 / 8) * (256 / 8) * (256 / 4));
        assert_eq!(t.total_ops().tc_flops(), 2 * 256 * 256 * 256);
    }

    #[test]
    fn cc_trace_flops_equal_tc_flops() {
        let case = GemmCase::square(512);
        let tc = trace(&case, Variant::Tc).total_ops();
        let cc = trace(&case, Variant::Cc).total_ops();
        // The MMA FLOPs map one-to-one onto CUDA-core FMAs; split-K
        // reduction adds are identical on both sides.
        assert_eq!(tc.tc_flops(), cc.fma_f64 * 2);
        assert_eq!(tc.add_f64, cc.add_f64);
        assert_eq!(cc.mma_f64, 0);
    }

    #[test]
    fn baseline_and_tc_do_same_useful_flops() {
        let case = GemmCase::square(256);
        let b = trace(&case, Variant::Baseline).total_ops();
        assert_eq!(b.cc_flops() as f64, case.useful_flops());
    }

    #[test]
    fn precision_tc_and_cc_are_bit_identical() {
        let case = GemmCase::square(64);
        let (a, b) = inputs(&case);
        for p in [Precision::F16, Precision::Bf16, Precision::Tf32] {
            for gen in [MmaGen::Ampere, MmaGen::Volta] {
                let (tc, tt) = run_precision(&a, &b, Variant::Tc, p, gen);
                let (cc, ct) = run_precision(&a, &b, Variant::Cc, p, gen);
                let tc_bits: Vec<u32> = tc.iter().map(|v| v.to_bits()).collect();
                let cc_bits: Vec<u32> = cc.iter().map(|v| v.to_bits()).collect();
                assert_eq!(tc_bits, cc_bits, "{p}/{gen:?}");
                // Same work, different pipes.
                let (to, co) = (tt.total_ops(), ct.total_ops());
                assert_eq!(to.tc_mixed_flops(), co.cc_f32_flops(), "{p}");
                assert_eq!(co.mma_f16 + co.mma_bf16 + co.mma_tf32, 0);
            }
        }
    }

    #[test]
    fn precision_run_approximates_reference_within_format_error() {
        let case = GemmCase::square(64);
        let (a, b) = inputs(&case);
        let gold = reference(&a, &b);
        // DenseMatrix::random draws from [-0.5, 0.5); a 64-deep dot stays
        // O(1), so the relative format error bounds the absolute error.
        for (p, tol) in [
            (Precision::F16, 2e-2),
            (Precision::Bf16, 1e-1),
            (Precision::Tf32, 2e-2),
        ] {
            let (c, _) = run_precision(&a, &b, Variant::Tc, p, MmaGen::Ampere);
            let max = c
                .iter()
                .zip(gold.as_slice())
                .map(|(&got, &want)| (got as f64 - want).abs())
                .fold(0.0f64, f64::max);
            assert!(max < tol, "{p}: max err {max}");
        }
    }

    #[test]
    fn precision_trace_counts_are_exact() {
        let case = GemmCase::square(256);
        let t = trace_precision(&case, Variant::Tc, Precision::F16).total_ops();
        assert_eq!(t.mma_f16, (256 / 16) * (256 / 8) * (256 / 16));
        assert_eq!(t.tc_f16_flops(), 2 * 256 * 256 * 256);
        let t32 = trace_precision(&case, Variant::Tc, Precision::Tf32).total_ops();
        assert_eq!(t32.mma_tf32, (256 / 16) * (256 / 8) * (256 / 8));
        assert_eq!(t32.tc_tf32_flops(), 2 * 256 * 256 * 256);
        // CC replacement issues exactly the same FLOPs as f32 FMAs.
        let cc = trace_precision(&case, Variant::Cc, Precision::F16).total_ops();
        assert_eq!(cc.cc_f32_flops(), t.tc_f16_flops());
        // Operand bytes track the element size: f16 loads half of tf32's.
        let l16 = trace_precision(&case, Variant::Tc, Precision::F16).total_ops();
        assert_eq!(
            l16.gmem_load.coalesced * 2,
            t32.gmem_load.coalesced,
            "2-byte vs 4-byte operands"
        );
    }

    #[test]
    fn precision_f64_delegates_to_fp64_trace() {
        let case = GemmCase::square(256);
        assert_eq!(
            trace_precision(&case, Variant::Tc, Precision::F64),
            trace(&case, Variant::Tc)
        );
    }

    #[test]
    fn precision_ragged_shape_works() {
        let a = DenseMatrix::random(33, 21, 7);
        let b = DenseMatrix::random(21, 17, 8);
        let (c, t) = run_precision(&a, &b, Variant::Tc, Precision::Bf16, MmaGen::Ampere);
        assert_eq!(c.len(), 33 * 17);
        let tiles = 33usize.div_ceil(16) * 17usize.div_ceil(8) * 21usize.div_ceil(16);
        assert_eq!(t.total_ops().mma_bf16, tiles as u64);
    }

    #[test]
    fn volta_and_ampere_gens_differ_functionally() {
        // The generation axis must be live end to end: on random inputs a
        // 64-deep f16 accumulation almost surely rounds differently under
        // serial RZ than under fused RN.
        let case = GemmCase::square(64);
        let (a, b) = inputs(&case);
        let (amp, _) = run_precision(&a, &b, Variant::Tc, Precision::F16, MmaGen::Ampere);
        let (vol, _) = run_precision(&a, &b, Variant::Tc, Precision::F16, MmaGen::Volta);
        assert_ne!(amp, vol, "generation semantics must be observable");
    }

    #[test]
    fn non_square_case_works() {
        let a = DenseMatrix::random(64, 128, 1);
        let b = DenseMatrix::random(128, 192, 2);
        let (c, _) = run(&a, &b, Variant::Tc);
        let gold = reference(&a, &b);
        let e = ErrorStats::compare(c.as_slice(), gold.as_slice());
        assert!(e.max < 1e-11);
    }
}
