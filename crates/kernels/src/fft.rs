//! **FFT** — batched 2-D fast Fourier transform (Quadrant I).
//!
//! * **TC** follows tcFFT (Li et al., CLUSTER '21) lifted to FP64: the
//!   radix-4 decimation-in-time combine step applies, for each output
//!   index `k`, the *twiddled DFT matrix* `M_k = F₄·diag(ω^{qk})` — a 4×4
//!   complex matrix. Stacking `[Re M_k; Im M_k]` forms exactly one 8×4
//!   `A` operand, multiplied against the 4×8 `B` operand holding the four
//!   sub-transform values of **eight batched transforms** — two MMAs per
//!   combine (one for the real parts of `B`, one for the imaginary
//!   parts), plus element-wise combines. Each `A` matrix is loaded once
//!   and reused across the whole batch ("FFT loads matrix A only once
//!   from global memory for multiple uses", Section 4).
//! * **CC** issues identical chains on CUDA cores (bit-identical);
//!   CC-E ≡ CC (Quadrant I, Section 5.2).
//! * **Baseline** models cuFFT: an iterative Stockham radix-2 pipeline on
//!   vector units with the classic `5·N·log₂N` operation count.
//!
//! 2-D transforms are computed as row FFTs, transpose, row FFTs,
//! transpose (the transposes contribute the strided traffic the trace
//! records).

use std::f64::consts::PI;

use cubie_core::counters::{MemTraffic, MMA_F64_FMAS};
use cubie_core::mma::mma_f64_m8n8k4;
use cubie_core::{workspace, OpCounters, C64};
use cubie_sim::trace::latency;
use cubie_sim::{KernelTrace, WorkloadTrace};
use serde::{Deserialize, Serialize};

use crate::common::Variant;

/// One FFT test case: `batch` independent `h × w` 2-D transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FftCase {
    /// Rows of each 2-D transform.
    pub h: usize,
    /// Columns of each 2-D transform.
    pub w: usize,
    /// Number of batched transforms.
    pub batch: usize,
}

impl FftCase {
    /// The five Table 2 test cases (batch 2K).
    pub fn cases() -> Vec<FftCase> {
        [(256, 256), (256, 512), (256, 1024), (512, 256), (512, 512)]
            .into_iter()
            .map(|(h, w)| FftCase { h, w, batch: 2048 })
            .collect()
    }

    /// Points per transform.
    pub fn points(&self) -> usize {
        self.h * self.w
    }

    /// Useful floating-point work: `5·N·log₂N` per transform.
    pub fn useful_flops(&self) -> f64 {
        let n = self.points() as f64;
        5.0 * n * n.log2() * self.batch as f64
    }

    /// Case label for reports.
    pub fn label(&self) -> String {
        format!("{}x{}b{}", self.h, self.w, self.batch)
    }
}

/// Deterministic complex input: one batch of `h×w` grids.
pub fn input(case: &FftCase) -> Vec<Vec<C64>> {
    let mut g = cubie_core::LcgF64::new(0xFF7 + case.points() as u64);
    (0..case.batch)
        .map(|_| {
            (0..case.points())
                .map(|_| C64::new(g.next_f64(), g.next_f64()))
                .collect()
        })
        .collect()
}

/// Naive serial 1-D DFT — the CPU ground truth (O(n²), small sizes only).
pub fn dft_naive(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = C64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let w = C64::cis(-2.0 * PI * (j * k % n) as f64 / n as f64);
                acc += v * w;
            }
            acc
        })
        .collect()
}

/// Naive serial 2-D DFT ground truth.
pub fn dft2_naive(h: usize, w: usize, x: &[C64]) -> Vec<C64> {
    // Rows then columns.
    let mut rows: Vec<C64> = Vec::with_capacity(h * w);
    for r in 0..h {
        rows.extend(dft_naive(&x[r * w..(r + 1) * w]));
    }
    let mut out = vec![C64::ZERO; h * w];
    for c in 0..w {
        let col: Vec<C64> = (0..h).map(|r| rows[r * w + c]).collect();
        for (r, v) in dft_naive(&col).into_iter().enumerate() {
            out[r * w + c] = v;
        }
    }
    out
}

/// Radix-4 recursion on a flat group of `g ≤ 8` equal-length transforms
/// stored contiguously (`xs[t*n..(t+1)*n]` is transform `t`), issuing the
/// tcFFT MMA tiles at every combine (TC/CC identical numerics).
///
/// `tmp` is an equally sized scratch region whose contents are garbage on
/// entry and on exit: the decimation gather writes every sub-transform
/// value before it is read, and the combine fully overwrites `xs` — so
/// recycled workspace capacity never leaks a value into a result and the
/// numerics are bit-identical to the old per-level `Vec<Vec<Vec<C64>>>`
/// allocation (same operations, same order).
fn fft_group_mma(xs: &mut [C64], tmp: &mut [C64], g: usize, n: usize, ctr: &mut OpCounters) {
    debug_assert!(g <= 8);
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(xs.len(), g * n);
    debug_assert_eq!(tmp.len(), g * n);
    if n == 1 {
        return;
    }
    if n == 2 {
        for t in 0..g {
            let (a, b) = (xs[t * 2], xs[t * 2 + 1]);
            xs[t * 2] = a + b;
            xs[t * 2 + 1] = a - b;
        }
        ctr.add_f64 += g as u64 * 4;
        return;
    }
    let q = n / 4;
    // Decimation in time: gather the four interleaved sub-transforms into
    // `tmp` (sub `p`, transform `t`, element `j` at `p·gq + t·q + j`),
    // then recurse with the now-consumed `xs` region as scratch.
    for p in 0..4 {
        for t in 0..g {
            for j in 0..q {
                tmp[p * (g * q) + t * q + j] = xs[t * n + 4 * j + p];
            }
        }
    }
    for p in 0..4 {
        let lo = p * (g * q);
        let hi = (p + 1) * (g * q);
        fft_group_mma(&mut tmp[lo..hi], &mut xs[lo..hi], g, q, ctr);
    }
    // Combine: for each k, the twiddled DFT matrix against the batch.
    for k in 0..q {
        // M[r][p] = ω₄^{rp} · ω_n^{pk}, ω = e^{-2πi/n}.
        let mut a = [0.0f64; 32]; // [Re M; Im M] packed 8×4
        for r in 0..4 {
            for p in 0..4 {
                let m = C64::cis(-2.0 * PI * ((r * p * q + p * k) % n) as f64 / n as f64);
                a[r * 4 + p] = m.re;
                a[(r + 4) * 4 + p] = m.im;
            }
        }
        let mut b_re = [0.0f64; 32];
        let mut b_im = [0.0f64; 32];
        for p in 0..4 {
            for bi in 0..g {
                let v = tmp[p * (g * q) + bi * q + k];
                b_re[p * 8 + bi] = v.re;
                b_im[p * 8 + bi] = v.im;
            }
        }
        let mut pr = [0.0f64; 64];
        let mut pi = [0.0f64; 64];
        mma_f64_m8n8k4(&a, &b_re, &mut pr, ctr);
        mma_f64_m8n8k4(&a, &b_im, &mut pi, ctr);
        for bi in 0..g {
            for r in 0..4 {
                let re = pr[r * 8 + bi] - pi[(r + 4) * 8 + bi];
                let im = pr[(r + 4) * 8 + bi] + pi[r * 8 + bi];
                xs[bi * n + k + r * q] = C64::new(re, im);
            }
        }
        ctr.add_f64 += 64;
    }
}

/// Run the MMA-path group recursion over a flat batch of `t` contiguous
/// length-`n` transforms, 8 per group, with one shared scratch region.
fn fft_groups_flat(xs: &mut [C64], tmp: &mut [C64], n: usize, ctr: &mut OpCounters) {
    for (group, scratch) in xs.chunks_mut(8 * n).zip(tmp.chunks_mut(8 * n)) {
        let g = group.len() / n;
        fft_group_mma(group, &mut scratch[..g * n], g, n, ctr);
    }
}

/// Iterative Stockham radix-2 FFT — the cuFFT-style vector baseline.
///
/// `tmp` is a same-length scratch slice (garbage in, garbage out): each
/// level fully overwrites its destination before the swap, exactly like
/// the old freshly allocated ping-pong pair, so results are bit-identical.
fn fft_stockham(x: &mut [C64], tmp: &mut [C64], ctr: &mut OpCounters) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(tmp.len(), n);
    let mut levels = 0u32;
    let mut l = n / 2;
    let mut m = 1usize;
    while l >= 1 {
        // Even level: x → tmp; odd level: tmp → x.
        let (src, dst): (&[C64], &mut [C64]) = if levels.is_multiple_of(2) {
            (x as &[C64], &mut *tmp)
        } else {
            (tmp as &[C64], &mut *x)
        };
        for j in 0..l {
            let w = C64::cis(-PI * j as f64 / l as f64);
            for k in 0..m {
                let a = src[k + j * m];
                let b = src[k + j * m + l * m];
                dst[k + 2 * j * m] = a + b;
                dst[k + (2 * j + 1) * m] = w * (a - b);
            }
        }
        ctr.mul_f64 += (l * m) as u64 * 4;
        ctr.add_f64 += (l * m) as u64 * 6;
        levels += 1;
        l /= 2;
        m *= 2;
    }
    if levels % 2 == 1 {
        x.copy_from_slice(tmp);
    }
}

/// Functional 1-D FFT of a batch under one variant (exposed for tests and
/// the examples; the paper's cases are 2-D). Scratch comes from the
/// thread-local workspace arena, so steady-state repeated batches run
/// allocation-free.
pub fn fft1d_batch(xs: &mut [Vec<C64>], variant: Variant) -> OpCounters {
    let mut ctr = OpCounters::new();
    match variant {
        Variant::Tc | Variant::Cc | Variant::CcE => {
            for group in xs.chunks_mut(8) {
                let g = group.len();
                let n = group[0].len();
                debug_assert!(group.iter().all(|x| x.len() == n));
                let mut flat = workspace::take_in::<C64>(g * n);
                for x in group.iter() {
                    flat.extend_from_slice(x);
                }
                let mut tmp = workspace::take(g * n, C64::ZERO);
                fft_group_mma(&mut flat, &mut tmp, g, n, &mut ctr);
                for (t, x) in group.iter_mut().enumerate() {
                    x.copy_from_slice(&flat[t * n..(t + 1) * n]);
                }
            }
        }
        Variant::Baseline => {
            for x in xs.iter_mut() {
                let mut tmp = workspace::take(x.len(), C64::ZERO);
                fft_stockham(x, &mut tmp, &mut ctr);
            }
        }
    }
    ctr
}

/// Functional execution of one variant on a batch of 2-D grids.
pub fn run(case: &FftCase, data: &[Vec<C64>], variant: Variant) -> (Vec<Vec<C64>>, WorkloadTrace) {
    let (h, w) = (case.h, case.w);
    let out: Vec<Vec<C64>> = cubie_core::par::par_map(data.len(), |b| {
        let grid = &data[b];
        assert_eq!(grid.len(), h * w);
        let mut ctr = OpCounters::new();
        // Row pass: the grid is row-major, so the h row transforms are
        // already contiguous in a flat working copy.
        let mut buf = workspace::take_copy(grid);
        let mut tmp = workspace::take(h * w, C64::ZERO);
        match variant {
            Variant::Baseline => {
                for (x, s) in buf.chunks_mut(w).zip(tmp.chunks_mut(w)) {
                    fft_stockham(x, s, &mut ctr);
                }
            }
            _ => fft_groups_flat(&mut buf, &mut tmp, w, &mut ctr),
        }
        // Column pass: transpose into `tmp` (columns contiguous), reusing
        // `buf` as the recursion scratch, then transpose out.
        for r in 0..h {
            for c in 0..w {
                tmp[c * h + r] = buf[r * w + c];
            }
        }
        match variant {
            Variant::Baseline => {
                for (x, s) in tmp.chunks_mut(h).zip(buf.chunks_mut(h)) {
                    fft_stockham(x, s, &mut ctr);
                }
            }
            _ => fft_groups_flat(&mut tmp, &mut buf, h, &mut ctr),
        }
        let mut out = vec![C64::ZERO; h * w];
        for c in 0..w {
            for r in 0..h {
                out[r * w + c] = tmp[c * h + r];
            }
        }
        out
    });
    (out, trace(case, variant))
}

/// MMA count for one group of ≤ 8 transforms of length `n` (radix-4
/// levels, two MMAs per combine index).
fn mma_per_group(n: u64) -> u64 {
    let l2 = n.trailing_zeros() as u64;
    let radix4_levels = l2 / 2;
    radix4_levels * (n / 4) * 2
}

/// Analytic trace of one variant.
pub fn trace(case: &FftCase, variant: Variant) -> WorkloadTrace {
    let (h, w, batch) = (case.h as u64, case.w as u64, case.batch as u64);
    let label = format!("fft-{}-{}", variant.label(), case.label());
    let n_pts = h * w * batch;
    let mut ops = OpCounters::default();

    // Transforms per pass: row pass = batch·h of length w; column pass =
    // batch·w of length h.
    let passes = [(batch * h, w), (batch * w, h)];
    let mut critical = latency::GMEM_RT;
    match variant {
        Variant::Tc | Variant::Cc | Variant::CcE => {
            let mut mma = 0u64;
            let mut adds = 0u64;
            for &(t, n) in &passes {
                let groups = t.div_ceil(8);
                mma += groups * mma_per_group(n);
                let l2 = n.trailing_zeros() as u64;
                adds += groups * (l2 / 2) * (n / 4) * 64;
                if l2 % 2 == 1 {
                    adds += t * (n / 2) * 4;
                }
                critical += (l2 / 2) as f64 * 2.0 * latency::MMA_F64;
            }
            match variant {
                Variant::Tc => ops.mma_f64 = mma,
                _ => {
                    ops.fma_f64 = mma * MMA_F64_FMAS;
                    ops.int_ops = mma * MMA_F64_FMAS;
                }
            }
            ops.add_f64 = adds;
            // Twiddled DFT matrices stream once per (level, k): 32
            // doubles each.
            let a_bytes: u64 = passes
                .iter()
                .map(|&(_, n)| (n.trailing_zeros() as u64 / 2) * (n / 4) * 256)
                .sum();
            ops.gmem_load =
                MemTraffic::coalesced(n_pts * 16 + a_bytes) + MemTraffic::strided(n_pts * 16); // transpose between passes
            ops.gmem_store = MemTraffic::coalesced(n_pts * 16) + MemTraffic::strided(n_pts * 16);
            // Stage exchange in shared memory per radix-4 level.
            let levels: u64 = passes
                .iter()
                .map(|&(_, n)| (n.trailing_zeros() as u64).div_ceil(2))
                .sum();
            ops.smem_bytes = n_pts * 16 * levels * 2;
        }
        Variant::Baseline => {
            let mut mul = 0u64;
            let mut add = 0u64;
            for &(t, n) in &passes {
                let l2 = n.trailing_zeros() as u64;
                mul += t * l2 * (n / 2) * 4;
                add += t * l2 * (n / 2) * 6;
                critical += l2 as f64 * latency::FMA_F64 * 2.0;
            }
            ops.mul_f64 = mul;
            ops.add_f64 = add;
            // cuFFT fuses the stages of these small transforms into
            // single kernels whose transposes happen in shared memory:
            // global traffic is the compulsory coalesced in/out per pass.
            ops.gmem_load = MemTraffic::coalesced(2 * n_pts * 16);
            ops.gmem_store = MemTraffic::coalesced(2 * n_pts * 16);
            let levels: u64 = passes.iter().map(|&(_, n)| n.trailing_zeros() as u64).sum();
            ops.smem_bytes = n_pts * 16 * levels * 2;
        }
    }
    ops.syncs = batch;
    let blocks = (batch * h).div_ceil(8);
    WorkloadTrace::single(KernelTrace::new(
        label,
        blocks,
        256,
        48 * 1024,
        ops,
        critical,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::ErrorStats;

    fn small_case(h: usize, w: usize, batch: usize) -> (FftCase, Vec<Vec<C64>>) {
        let case = FftCase { h, w, batch };
        let data = input(&case);
        (case, data)
    }

    #[test]
    fn table2_cases() {
        let c = FftCase::cases();
        assert_eq!(c.len(), 5);
        assert_eq!(c[0].batch, 2048);
        assert_eq!(c[2].w, 1024);
    }

    #[test]
    fn fft1d_tc_matches_naive_dft() {
        for n in [4usize, 16, 64, 256] {
            let mut g = cubie_core::LcgF64::new(n as u64);
            let x: Vec<C64> = (0..n)
                .map(|_| C64::new(g.next_f64(), g.next_f64()))
                .collect();
            let gold = dft_naive(&x);
            let mut batch = vec![x];
            fft1d_batch(&mut batch, Variant::Tc);
            let e = ErrorStats::compare_c64(&batch[0], &gold);
            assert!(e.max < 1e-9 * n as f64, "n={n}: max err {}", e.max);
        }
    }

    #[test]
    fn fft1d_handles_odd_log2_sizes() {
        for n in [2usize, 8, 32, 128, 512] {
            let mut g = cubie_core::LcgF64::new(n as u64 + 1);
            let x: Vec<C64> = (0..n)
                .map(|_| C64::new(g.next_f64(), g.next_f64()))
                .collect();
            let gold = dft_naive(&x);
            for v in [Variant::Tc, Variant::Baseline] {
                let mut batch = vec![x.clone()];
                fft1d_batch(&mut batch, v);
                let e = ErrorStats::compare_c64(&batch[0], &gold);
                assert!(e.max < 1e-9 * n as f64, "{v} n={n}: max err {}", e.max);
            }
        }
    }

    #[test]
    fn baseline_stockham_matches_naive() {
        for n in [4usize, 16, 64] {
            let mut g = cubie_core::LcgF64::new(n as u64 + 7);
            let x: Vec<C64> = (0..n)
                .map(|_| C64::new(g.next_f64(), g.next_f64()))
                .collect();
            let gold = dft_naive(&x);
            let mut batch = vec![x];
            fft1d_batch(&mut batch, Variant::Baseline);
            let e = ErrorStats::compare_c64(&batch[0], &gold);
            assert!(e.max < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn fft2d_variants_match_naive() {
        let (case, data) = small_case(16, 32, 3);
        let gold: Vec<Vec<C64>> = data.iter().map(|g| dft2_naive(16, 32, g)).collect();
        for v in [Variant::Baseline, Variant::Tc, Variant::Cc] {
            let (out, _) = run(&case, &data, v);
            for (o, g) in out.iter().zip(&gold) {
                let e = ErrorStats::compare_c64(o, g);
                assert!(e.max < 1e-9, "{v}: max err {}", e.max);
            }
        }
    }

    #[test]
    fn tc_equals_cc_bitwise() {
        let (case, data) = small_case(8, 16, 2);
        let (tc, _) = run(&case, &data, Variant::Tc);
        let (cc, _) = run(&case, &data, Variant::Cc);
        assert_eq!(tc, cc);
    }

    #[test]
    fn batched_transforms_are_independent() {
        let (case, data) = small_case(8, 8, 10);
        let (all, _) = run(&case, &data, Variant::Tc);
        let (single, _) = run(&case, &data[3..4], Variant::Tc);
        for (a, b) in all[3].iter().zip(&single[0]) {
            assert_eq!(a.re, b.re);
            assert_eq!(a.im, b.im);
        }
    }

    #[test]
    fn mma_count_formula() {
        // n = 256 = 4^4: 4 levels × 64 combines × 2 MMAs.
        assert_eq!(mma_per_group(256), 4 * 64 * 2);
        // n = 512 = 4^4·2: radix-4 levels = 4.
        assert_eq!(mma_per_group(512), 4 * 128 * 2);
    }

    #[test]
    fn tc_does_more_flops_than_baseline() {
        // The matmul formulation performs redundant work: the MMU makes
        // it fast, not lean — the paper's explanation for FFT's TC loss.
        let case = FftCase {
            h: 256,
            w: 256,
            batch: 16,
        };
        let tc = trace(&case, Variant::Tc).total_ops();
        let base = trace(&case, Variant::Baseline).total_ops();
        assert!(tc.flops_f64() > base.flops_f64());
    }
}
