//! Figure 9: the cache-aware roofline model on H200 — DRAM and L1
//! bandwidth ceilings, CUDA-core and tensor-core FP64 compute ceilings,
//! and the placement of every workload variant (BFS excluded: bitwise) —
//! a placement projection of the shared sweep pinned to (H200, case 2).

use cubie_analysis::report;
use cubie_bench::{artifacts, SweepConfig, SweepRunner};
use cubie_device::h200;
use cubie_kernels::Workload;
use cubie_sim::Roofline;

fn main() {
    let mut cfg = SweepConfig::from_env_or_exit();
    cfg.devices = vec![h200()]; // the paper draws the roofline for H200
    cfg.cases = Some(vec![2]); // representative case
    cfg.workloads.retain(|w| *w != Workload::Bfs); // bit ops: no FP64 placement
    let sweep = SweepRunner::new(cfg).run();
    let dev = &sweep.devices()[0];

    let roof = Roofline::of(dev);
    println!("# Figure 9 — cache-aware roofline, {}\n", dev.name);
    println!("- DRAM bandwidth ceiling: {:.0} GB/s", roof.dram_bw_gbs);
    println!("- L1 bandwidth ceiling:   {:.0} GB/s", roof.l1_bw_gbs);
    println!(
        "- CUDA-core FP64 peak:    {:.0} GFLOP/s",
        roof.cc_peak_gflops
    );
    println!(
        "- Tensor-core FP64 peak:  {:.0} GFLOP/s",
        roof.tc_peak_gflops
    );
    println!(
        "- Ridge point:            {:.2} FLOP/byte\n",
        roof.ridge_ai()
    );

    let mut rows = Vec::new();
    for &w in sweep.workloads() {
        let rep = 2usize;
        for v in sweep.config.variants_of(w) {
            let Some(cell) = sweep.cell(w, rep, v, &dev.name) else {
                continue;
            };
            let name = format!("{}-{}", w.spec().name, v.label());
            if let Some(p) = roof.place(&name, &cell.timing) {
                let bound = roof.dram_bound(p.ai);
                rows.push(vec![
                    name.clone(),
                    format!("{:.3}", p.ai),
                    format!("{:.1}", p.gflops),
                    format!("{:.1}", bound),
                    if p.gflops > bound {
                        "above DRAM roof (cache-resident)".to_string()
                    } else {
                        format!("{:.0}% of roof", 100.0 * p.gflops / bound)
                    },
                ]);
            }
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "kernel",
                "AI (FLOP/B)",
                "GFLOP/s",
                "DRAM-roof bound",
                "position"
            ],
            &rows
        )
    );
    artifacts::emit_and_announce(&artifacts::fig9(&sweep));
}
