//! Figure 9: the cache-aware roofline model on H200 — DRAM and L1
//! bandwidth ceilings, CUDA-core and tensor-core FP64 compute ceilings,
//! and the placement of every workload variant (BFS excluded: bitwise).

use cubie_analysis::report;
use cubie_bench::WorkloadSweep;
use cubie_device::h200;
use cubie_kernels::Workload;
use cubie_sim::{Roofline, time_workload};

fn main() {
    let dev = h200();
    let roof = Roofline::of(&dev);
    println!("# Figure 9 — cache-aware roofline, {}\n", dev.name);
    println!("- DRAM bandwidth ceiling: {:.0} GB/s", roof.dram_bw_gbs);
    println!("- L1 bandwidth ceiling:   {:.0} GB/s", roof.l1_bw_gbs);
    println!("- CUDA-core FP64 peak:    {:.0} GFLOP/s", roof.cc_peak_gflops);
    println!("- Tensor-core FP64 peak:  {:.0} GFLOP/s", roof.tc_peak_gflops);
    println!("- Ridge point:            {:.2} FLOP/byte\n", roof.ridge_ai());

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for w in Workload::ALL {
        if w == Workload::Bfs {
            continue; // bit operations: no FP64 placement (as the paper).
        }
        let sweep = WorkloadSweep::prepare(w);
        let rep = 2usize;
        for (vi, v) in w.variants().iter().enumerate() {
            let timing = time_workload(&dev, &sweep.traces[rep][vi]);
            let name = format!("{}-{}", w.spec().name, v.label());
            if let Some(p) = roof.place(&name, &timing) {
                let bound = roof.dram_bound(p.ai);
                rows.push(vec![
                    name.clone(),
                    format!("{:.3}", p.ai),
                    format!("{:.1}", p.gflops),
                    format!("{:.1}", bound),
                    if p.gflops > bound {
                        "above DRAM roof (cache-resident)".to_string()
                    } else {
                        format!("{:.0}% of roof", 100.0 * p.gflops / bound)
                    },
                ]);
                csv_rows.push(vec![
                    name,
                    format!("{:.5}", p.ai),
                    format!("{:.3}", p.gflops),
                ]);
            }
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &["kernel", "AI (FLOP/B)", "GFLOP/s", "DRAM-roof bound", "position"],
            &rows
        )
    );
    let path = report::results_dir().join("fig9_roofline.csv");
    report::write_csv(&path, &["kernel", "ai", "gflops"], &csv_rows).unwrap();
    println!("wrote {}", path.display());
}
