//! Figure 4: speedups of the TC implementations over their baselines on
//! the three GPUs, grouped by utilization quadrant — a geomean
//! projection of the shared sweep. Accepts `--filter`/`--jobs`.

use cubie_analysis::report;
use cubie_bench::{artifacts, SweepRunner};
use cubie_kernels::Variant;

fn main() {
    let sweep = SweepRunner::cli();
    let mut rows = Vec::new();
    for &w in sweep.workloads() {
        if w.spec().baseline.is_none() {
            continue; // PiC has no baseline.
        }
        let mut row = vec![format!("Q{}", w.spec().quadrant), w.spec().name.to_string()];
        for dev in sweep.devices() {
            match sweep.geomean_speedup(w, &dev.name, Variant::Tc, Variant::Baseline) {
                Some(s) => row.push(format!("{s:.2}x")),
                None => row.push("-".to_string()),
            }
        }
        rows.push(row);
    }
    println!("# Figure 4 — TC speedup over baseline (geomean of 5 cases)\n");
    let mut headers = vec!["quadrant".to_string(), "workload".to_string()];
    headers.extend(sweep.devices().iter().map(|d| d.name.clone()));
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", report::markdown_table(&headers, &rows));
    artifacts::emit_and_announce(&artifacts::fig4(&sweep));
}
