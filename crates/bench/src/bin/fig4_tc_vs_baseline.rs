//! Figure 4: speedups of the TC implementations over their baselines on
//! the three GPUs, grouped by utilization quadrant.

use cubie_analysis::report;
use cubie_bench::{WorkloadSweep, devices};
use cubie_kernels::{Variant, Workload};

fn main() {
    let devs = devices();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for w in Workload::ALL {
        if w.spec().baseline.is_none() {
            continue; // PiC has no baseline.
        }
        let sweep = WorkloadSweep::prepare(w);
        let mut row = vec![
            format!("Q{}", w.spec().quadrant),
            w.spec().name.to_string(),
        ];
        for dev in &devs {
            let s = sweep
                .geomean_speedup(dev, Variant::Tc, Variant::Baseline)
                .unwrap();
            row.push(format!("{s:.2}x"));
            csv_rows.push(vec![
                w.spec().name.to_string(),
                dev.name.clone(),
                format!("{s:.4}"),
            ]);
        }
        rows.push(row);
    }
    println!("# Figure 4 — TC speedup over baseline (geomean of 5 cases)\n");
    println!(
        "{}",
        report::markdown_table(&["quadrant", "workload", "A100", "H200", "B200"], &rows)
    );
    let path = report::results_dir().join("fig4_tc_vs_baseline.csv");
    report::write_csv(&path, &["workload", "device", "speedup"], &csv_rows).unwrap();
    println!("wrote {}", path.display());
}
