//! Table 6: FP64 numerical errors of every implementation against the
//! serial CPU ground truth. TC and CC are bit-identical (asserted during
//! the run) and reported as one column, as in the paper. BFS is excluded
//! (no floating point).
//!
//! `CUBIE_ERRORS_QUICK=1` switches to the small test cases.

use cubie_analysis::errors::{table6, ErrorScale};
use cubie_analysis::report;
use cubie_bench::artifacts;

fn main() {
    let scale = if std::env::var("CUBIE_ERRORS_QUICK").is_ok() {
        ErrorScale::Quick
    } else {
        ErrorScale::Full
    };
    let rows = table6(scale);
    println!("# Table 6 — FP64 numerical errors vs CPU serial ground truth\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let fmt = |e: Option<cubie_core::ErrorStats>| match e {
                Some(e) => format!("{} / {}", report::sci(e.avg), report::sci(e.max)),
                None => "-".to_string(),
            };
            vec![
                r.workload.spec().name.to_string(),
                r.case_label.clone(),
                fmt(r.baseline),
                format!(
                    "{} / {}",
                    report::sci(r.tc_cc.avg),
                    report::sci(r.tc_cc.max)
                ),
                fmt(r.cce),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "workload",
                "case",
                "Baseline avg/max",
                "TC=CC avg/max",
                "CC-E avg/max"
            ],
            &table
        )
    );
    println!("(TC and CC verified bit-identical for every workload — Observation 7.)");

    artifacts::emit_and_announce(&artifacts::table6_artifact(&rows, scale));
}
