//! Table 6: FP64 numerical errors of every implementation against the
//! serial CPU ground truth. TC and CC are bit-identical (asserted during
//! the run) and reported as one column, as in the paper. BFS is excluded
//! (no floating point).
//!
//! `CUBIE_ERRORS_QUICK=1` switches to the small test cases.

use cubie_analysis::errors::{ErrorScale, table6};
use cubie_analysis::report;

fn main() {
    let scale = if std::env::var("CUBIE_ERRORS_QUICK").is_ok() {
        ErrorScale::Quick
    } else {
        ErrorScale::Full
    };
    let rows = table6(scale);
    println!("# Table 6 — FP64 numerical errors vs CPU serial ground truth\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let fmt = |e: Option<cubie_core::ErrorStats>| match e {
                Some(e) => format!("{} / {}", report::sci(e.avg), report::sci(e.max)),
                None => "-".to_string(),
            };
            vec![
                r.workload.spec().name.to_string(),
                r.case_label.clone(),
                fmt(r.baseline),
                format!(
                    "{} / {}",
                    report::sci(r.tc_cc.avg),
                    report::sci(r.tc_cc.max)
                ),
                fmt(r.cce),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &["workload", "case", "Baseline avg/max", "TC=CC avg/max", "CC-E avg/max"],
            &table
        )
    );
    println!("(TC and CC verified bit-identical for every workload — Observation 7.)");

    let csv: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            let mut out = Vec::new();
            let w = r.workload.spec().name.to_string();
            if let Some(b) = r.baseline {
                out.push(vec![
                    w.clone(),
                    "Baseline".into(),
                    format!("{:e}", b.avg),
                    format!("{:e}", b.max),
                ]);
            }
            out.push(vec![
                w.clone(),
                "TC/CC".into(),
                format!("{:e}", r.tc_cc.avg),
                format!("{:e}", r.tc_cc.max),
            ]);
            if let Some(c) = r.cce {
                out.push(vec![
                    w,
                    "CC-E".into(),
                    format!("{:e}", c.avg),
                    format!("{:e}", c.max),
                ]);
            }
            out
        })
        .collect();
    let path = report::results_dir().join("table6_errors.csv");
    report::write_csv(&path, &["workload", "variant", "avg_error", "max_error"], &csv).unwrap();
    println!("wrote {}", path.display());
}
