//! Tables 2, 3 and 4: the workload inventory, the BFS graphs and the
//! SpMV/SpGEMM matrices — published metadata next to what the synthetic
//! generators actually produce at the current scale.

use cubie_analysis::report;
use cubie_bench::{artifacts, graph_scale, sparse_scale, sweep};
use cubie_graph::generators as graph_gen;
use cubie_kernels::Workload;
use cubie_sparse::generators as sparse_gen;

fn main() {
    // Table 2: workloads. Labels come from the sweep engine's cache
    // (tiny 1/64, 1/1024 scale: the labels are scale-independent), so a
    // process that also sweeps pays the preparation once.
    println!("# Table 2 — the Cubie workloads\n");
    let rows: Vec<Vec<String>> = Workload::ALL
        .iter()
        .map(|w| {
            let s = w.spec();
            let labels = sweep::case_labels(*w, 64, 1024);
            vec![
                s.name.to_string(),
                format!("Q{}", s.quadrant),
                s.dwarf.to_string(),
                s.baseline.unwrap_or("-").to_string(),
                labels.join(", "),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &["kernel", "quadrant", "dwarf", "baseline", "five test cases"],
            &rows
        )
    );

    // Table 3: graphs.
    let gs = graph_scale();
    println!("# Table 3 — BFS graphs (generated at scale 1/{gs})\n");
    let rows: Vec<Vec<String>> = graph_gen::table3_graphs(gs)
        .into_iter()
        .map(|(info, g)| {
            vec![
                info.name.to_string(),
                info.group.to_string(),
                format!("{}", info.vertices),
                format!("{}", info.edges),
                format!("{}", g.n),
                format!("{}", g.num_arcs()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "graph",
                "group",
                "#vertices (paper)",
                "#edges (paper)",
                "#vertices (gen)",
                "#arcs (gen)"
            ],
            &rows
        )
    );

    // Table 4: matrices.
    let ss = sparse_scale();
    println!("# Table 4 — SpMV/SpGEMM matrices (generated at scale 1/{ss})\n");
    let rows: Vec<Vec<String>> = sparse_gen::table4_matrices(ss)
        .into_iter()
        .map(|(info, m)| {
            vec![
                info.name.to_string(),
                info.group.to_string(),
                format!("{}", info.rows),
                format!("{}", info.nnz),
                format!("{}", m.rows),
                format!("{}", m.nnz()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "matrix",
                "group",
                "#rows (paper)",
                "#nnz (paper)",
                "#rows (gen)",
                "#nnz (gen)"
            ],
            &rows
        )
    );

    artifacts::emit_and_announce(&artifacts::table234(ss, gs));
}
