//! Figure 10: PCA coverage study of the sparse-matrix and graph inputs —
//! a synthetic corpus standing in for the SuiteSparse collection with the
//! five Table 3/4 representatives highlighted, plus the dispersion and
//! range-coverage statistics of Section 10.

use cubie_analysis::coverage::{CorpusStudy, graph_corpus_study, matrix_corpus_study};
use cubie_analysis::report;

fn summarize(name: &str, study: &CorpusStudy, csv: &mut Vec<Vec<String>>) {
    println!("## {name}\n");
    println!("- corpus points:                {}", study.corpus.len());
    println!(
        "- representative dispersion:    {:.3}",
        study.representative_dispersion
    );
    println!(
        "- corpus NN dispersion:         {:.3}",
        study.nearest_neighbour_dispersion
    );
    println!(
        "- PC range coverage:            {:.0}% / {:.0}%",
        100.0 * study.range_coverage[0],
        100.0 * study.range_coverage[1]
    );
    println!(
        "- corpus near a representative: {:.1}%",
        100.0 * study.near_representative_fraction
    );
    println!(
        "- variance explained (2 PCs):   {:.0}%\n",
        100.0 * study.explained_variance
    );
    let rows: Vec<Vec<String>> = study
        .representatives
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.3}", p.xy[0]),
                format!("{:.3}", p.xy[1]),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(&["representative", "PC1", "PC2"], &rows)
    );
    for p in study.corpus.iter().chain(&study.representatives) {
        csv.push(vec![
            name.to_string(),
            p.name.clone(),
            format!("{:.5}", p.xy[0]),
            format!("{:.5}", p.xy[1]),
        ]);
    }
}

fn main() {
    // Corpus sizes follow the spirit of the paper (499 graphs / 2893
    // matrices) scaled to generation cost; override via env.
    let m_corpus: usize = std::env::var("CUBIE_MATRIX_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let g_corpus: usize = std::env::var("CUBIE_GRAPH_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);

    println!("# Figure 10 — input coverage PCA\n");
    let mut csv = Vec::new();
    let graphs = graph_corpus_study(g_corpus, 64, 0xF16A);
    summarize("graphs (Fig. 10a)", &graphs, &mut csv);
    let matrices = matrix_corpus_study(m_corpus, 8, 0xF16B);
    summarize("matrices (Fig. 10b)", &matrices, &mut csv);

    let path = report::results_dir().join("fig10_corpus_pca.csv");
    report::write_csv(&path, &["study", "point", "pc1", "pc2"], &csv).unwrap();
    println!("wrote {}", path.display());
}
