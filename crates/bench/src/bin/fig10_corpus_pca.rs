//! Figure 10: PCA coverage study of the sparse-matrix and graph inputs —
//! a synthetic corpus standing in for the SuiteSparse collection with the
//! five Table 3/4 representatives highlighted, plus the dispersion and
//! range-coverage statistics of Section 10.

use cubie_analysis::coverage::{graph_corpus_study, matrix_corpus_study, CorpusStudy};
use cubie_analysis::report;
use cubie_bench::artifacts;

fn summarize(name: &str, study: &CorpusStudy) {
    println!("## {name}\n");
    println!("- corpus points:                {}", study.corpus.len());
    println!(
        "- representative dispersion:    {:.3}",
        study.representative_dispersion
    );
    println!(
        "- corpus NN dispersion:         {:.3}",
        study.nearest_neighbour_dispersion
    );
    println!(
        "- PC range coverage:            {:.0}% / {:.0}%",
        100.0 * study.range_coverage[0],
        100.0 * study.range_coverage[1]
    );
    println!(
        "- corpus near a representative: {:.1}%",
        100.0 * study.near_representative_fraction
    );
    println!(
        "- variance explained (2 PCs):   {:.0}%\n",
        100.0 * study.explained_variance
    );
    let rows: Vec<Vec<String>> = study
        .representatives
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.3}", p.xy[0]),
                format!("{:.3}", p.xy[1]),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(&["representative", "PC1", "PC2"], &rows)
    );
}

fn main() {
    // Corpus sizes follow the spirit of the paper (499 graphs / 2893
    // matrices) scaled to generation cost; override via env.
    let m_corpus: usize = std::env::var("CUBIE_MATRIX_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let g_corpus: usize = std::env::var("CUBIE_GRAPH_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);

    println!("# Figure 10 — input coverage PCA\n");
    let graphs = graph_corpus_study(g_corpus, 64, 0xF16A);
    summarize("graphs (Fig. 10a)", &graphs);
    let matrices = matrix_corpus_study(m_corpus, 8, 0xF16B);
    summarize("matrices (Fig. 10b)", &matrices);

    artifacts::emit_and_announce(&artifacts::fig10_from(
        &graphs, &matrices, m_corpus, g_corpus,
    ));
}
