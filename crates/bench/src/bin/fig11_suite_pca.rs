//! Figure 11: PCA of architectural metrics comparing the behavioural
//! diversity of Rodinia, SHOC and Cubie (Observation 9).

use cubie_analysis::coverage::suite_diversity_study;
use cubie_analysis::report;
use cubie_bench::{artifacts, graph_scale, sparse_scale};
use cubie_device::h200;

fn main() {
    let dev = h200();
    let (ss, gs) = (sparse_scale(), graph_scale());
    let study = suite_diversity_study(&dev, ss, gs);

    println!("# Figure 11 — suite diversity PCA on {}\n", dev.name);
    let rows: Vec<Vec<String>> = study
        .points
        .iter()
        .map(|(name, suite, xy)| {
            vec![
                suite.to_string(),
                name.clone(),
                format!("{:.3}", xy[0]),
                format!("{:.3}", xy[1]),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(&["suite", "workload", "PC1", "PC2"], &rows)
    );

    println!("## Per-suite spread (mean distance to suite centroid)\n");
    let spread_rows: Vec<Vec<String>> = study
        .spread
        .iter()
        .map(|(s, v)| vec![s.to_string(), format!("{v:.3}")])
        .collect();
    println!(
        "{}",
        report::markdown_table(&["suite", "spread"], &spread_rows)
    );

    artifacts::emit_and_announce(&artifacts::fig11_from(&study, ss, gs));
}
