//! Table 7: comparison of Cubie with Rodinia and SHOC — Berkeley dwarfs
//! covered and features evaluated.

use cubie_analysis::coverage::{TABLE7, TABLE7_FEATURES};
use cubie_analysis::report;
use cubie_bench::artifacts;

fn main() {
    println!("# Table 7 — dwarf and feature coverage\n");
    let mut rows: Vec<Vec<String>> = TABLE7
        .iter()
        .map(|r| {
            let n = |v: u32| {
                if v == 0 {
                    "-".to_string()
                } else {
                    v.to_string()
                }
            };
            vec![r.dwarf.to_string(), n(r.rodinia), n(r.shoc), n(r.cubie)]
        })
        .collect();
    for (feature, suites) in TABLE7_FEATURES {
        let mark = |b: bool| if b { "✓" } else { "" }.to_string();
        rows.push(vec![
            feature.to_string(),
            mark(suites[0]),
            mark(suites[1]),
            mark(suites[2]),
        ]);
    }
    println!(
        "{}",
        report::markdown_table(&["dwarf / feature", "Rodinia", "SHOC", "Cubie"], &rows)
    );
    println!(
        "Cubie covers {} dwarfs and evaluates {} features.",
        TABLE7.iter().filter(|r| r.cubie > 0).count(),
        TABLE7_FEATURES.iter().filter(|(_, s)| s[2]).count()
    );
    artifacts::emit_and_announce(&artifacts::table7());
}
