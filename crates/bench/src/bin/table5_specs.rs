//! Table 5: the specifications of the three GPUs evaluated.

use cubie_analysis::report;
use cubie_bench::{artifacts, devices};

fn main() {
    println!("# Table 5 — device specifications\n");
    let rows: Vec<Vec<String>> = devices()
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                format!("{:.1}", d.tc_fp64_tflops),
                format!("{:.1}", d.cc_fp64_tflops),
                format!("{:.0}", d.dram_bw_gbs),
                format!("{:.0}", d.dram_gb),
                format!("{}", d.sm_count),
                format!("{:.0}", d.power.tdp_w),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "device",
                "TC FP64 (TFLOP/s)",
                "CC FP64 (TFLOP/s)",
                "DRAM (GB/s)",
                "DRAM (GB)",
                "SMs",
                "TDP (W)"
            ],
            &rows
        )
    );
    artifacts::emit_and_announce(&artifacts::table5());
}
