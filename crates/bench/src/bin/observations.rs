//! The paper's nine key observations (O1–O9), each restated with the
//! evidence this reproduction measures for it.
//!
//! O3–O6 and O8 are projections of **one** shared sweep: the
//! cross-product is prepared, traced and timed exactly once (cached in
//! the engine), then each observation folds the same [`SweepCell`]s its
//! own way. O2, O7 and O9 use other subsystems (quadrant analysis, the
//! Table 6 error harness, the PCA coverage study) and are unchanged.
//!
//! [`SweepCell`]: cubie_bench::SweepCell

use cubie_analysis::coverage::suite_diversity_study;
use cubie_analysis::errors::{table6, ErrorScale};
use cubie_analysis::quadrants::utilizations;
use cubie_analysis::report;
use cubie_bench::{artifacts, fig7_repeats, graph_scale, sparse_scale, SweepRunner};
use cubie_kernels::{Quadrant, Variant, Workload};
use cubie_sim::power_report;

fn main() {
    let sweep = SweepRunner::cli();
    let devs = sweep.devices();
    let h200 = devs
        .iter()
        .find(|d| d.name.contains("H200"))
        .unwrap_or(&devs[0])
        .clone();

    println!("# The nine key observations, measured\n");

    // O1 — data-structure / algorithm transformation.
    println!("## O1 — non-GEMM kernels must reorganize data and algorithms for MMUs");
    println!(
        "Every Quadrant II–IV kernel in this suite ships a dedicated MMU format: \
         Scan/Reduction pack 8×8 tiles against constant operands, SpMV builds DASP \
         bundles, SpGEMM re-tiles into mBSR, BFS re-encodes adjacency as 8×128 bitmap \
         slices, GEMV broadcasts x into a replicated operand.\n"
    );

    // O2 — quadrants.
    println!("## O2 — four utilization quadrants");
    let rows: Vec<Vec<String>> = utilizations()
        .iter()
        .map(|u| {
            vec![
                u.workload.spec().name.to_string(),
                format!("Q{}", u.workload.spec().quadrant),
                format!("{:.0}%", 100.0 * u.input),
                format!("{:.1}%", 100.0 * u.output),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &["workload", "quadrant", "input util", "output util"],
            &rows
        )
    );

    // O3 — TC vs baseline, portable.
    println!("## O3 — TC beats baselines portably (except FFT)");
    let mut wins = 0;
    let mut total = 0;
    for &w in sweep.workloads() {
        if w.spec().baseline.is_none() {
            continue;
        }
        for dev in devs {
            let Some(s) = sweep.geomean_speedup(w, &dev.name, Variant::Tc, Variant::Baseline)
            else {
                continue;
            };
            total += 1;
            if s > 1.0 {
                wins += 1;
            }
            println!(
                "  {:9} on {:12}: {s:.2}x",
                w.spec().name,
                dev.arch.to_string()
            );
        }
    }
    println!("TC wins {wins}/{total} (workload, device) pairs.\n");

    // O4 — CC vs TC.
    println!("## O4 — isolating the unit: CC retains 10–90% of TC");
    for &w in sweep.workloads() {
        let s: Vec<String> = devs
            .iter()
            .map(|d| {
                sweep
                    .geomean_speedup(w, &d.name, Variant::Cc, Variant::Tc)
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        println!(
            "  {:9}: CC/TC = {} (A100/H200/B200)",
            w.spec().name,
            s.join(" / ")
        );
    }
    println!();

    // O5 — CC-E.
    println!("## O5 — MMU redundancy is worth keeping, except for SpMV");
    for &w in sweep.workloads().iter().filter(|w| w.spec().distinct_cce) {
        let Some(s) = sweep.geomean_speedup(w, &h200.name, Variant::CcE, Variant::Tc) else {
            continue;
        };
        println!("  {:9}: CC-E/TC on H200 = {s:.2}", w.spec().name);
    }
    println!();

    // O6 — EDP.
    println!("## O6 — MMUs cut EDP 30–80% per quadrant (H200)");
    for q in [Quadrant::I, Quadrant::II, Quadrant::III, Quadrant::IV] {
        let mut tc = Vec::new();
        let mut base = Vec::new();
        for &w in sweep.workloads().iter().filter(|w| w.spec().quadrant == q) {
            let repeats = fig7_repeats(w);
            if let Some(c) = sweep.cell(w, 2, Variant::Tc, &h200.name) {
                tc.push(power_report(&h200, &c.timing, repeats).edp);
            }
            if let Some(c) = sweep.cell(w, 2, Variant::Baseline, &h200.name) {
                base.push(power_report(&h200, &c.timing, repeats).edp);
            }
        }
        if !base.is_empty() && !tc.is_empty() {
            let cut = 1.0 - report::geomean(&tc) / report::geomean(&base);
            println!("  Q{q}: geomean EDP reduction {:.0}%", 100.0 * cut);
        }
    }
    println!();

    // O7 — numerics.
    println!("## O7 — TC == CC numerically; transformations move the error");
    let rows = table6(ErrorScale::Quick);
    for r in &rows {
        println!(
            "  {:9}: TC=CC avg {}, baseline {}",
            r.workload.spec().name,
            report::sci(r.tc_cc.avg),
            r.baseline
                .map(|b| report::sci(b.avg))
                .unwrap_or_else(|| "-".into())
        );
    }
    println!("  (bit-identity of TC and CC is asserted during the run.)\n");

    // O8 — memory regularization.
    println!("## O8 — MMU layouts regularize memory access");
    for w in [Workload::Spmv, Workload::Gemv, Workload::Stencil] {
        let (Some(tct), Some(bt)) = (
            sweep.trace(w, 2, Variant::Tc),
            sweep.trace(w, 2, Variant::Baseline),
        ) else {
            continue;
        };
        let tco = tct.total_ops();
        let bo = bt.total_ops();
        let frac = |l: cubie_core::MemTraffic, s: cubie_core::MemTraffic| {
            let t = l.total() + s.total();
            if t == 0 {
                1.0
            } else {
                (l.coalesced + s.coalesced) as f64 / t as f64
            }
        };
        println!(
            "  {:9}: coalesced fraction TC {:.0}% vs baseline {:.0}%",
            w.spec().name,
            100.0 * frac(tco.gmem_load, tco.gmem_store),
            100.0 * frac(bo.gmem_load, bo.gmem_store)
        );
    }
    println!();

    // O9 — diversity.
    println!("## O9 — Cubie spans wider behaviour than Rodinia/SHOC");
    let study = suite_diversity_study(&h200, sparse_scale().max(8), graph_scale().max(64));
    for (suite, spread) in &study.spread {
        println!("  {suite:8}: PCA spread {spread:.3}");
    }

    artifacts::emit_and_announce(&artifacts::observations(&sweep, &rows));
}
