//! Figure 12: peak FP16/FP64 throughput of CUDA cores and tensor cores
//! across Ampere, Hopper and Blackwell — the FP64 tensor-core regression
//! the paper's conclusion highlights.

use cubie_analysis::report;
use cubie_bench::artifacts;
use cubie_device::PEAK_EVOLUTION;

fn main() {
    println!("# Figure 12 — peak throughput evolution (TFLOP/s)\n");
    let rows: Vec<Vec<String>> = PEAK_EVOLUTION
        .iter()
        .map(|g| {
            vec![
                g.arch.to_string(),
                format!("{:.1}", g.fp16_tc),
                format!("{:.1}", g.fp16_cc),
                format!("{:.1}", g.fp64_tc),
                format!("{:.1}", g.fp64_cc),
            ]
        })
        .collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "arch",
                "FP16 tensor",
                "FP16 CUDA",
                "FP64 tensor",
                "FP64 CUDA"
            ],
            &rows
        )
    );
    let hopper = &PEAK_EVOLUTION[1];
    let blackwell = &PEAK_EVOLUTION[2];
    println!(
        "FP16 tensor-core peak scales {:.1}× from Ampere to Blackwell, while the FP64 \
         tensor-core peak FALLS from {:.0} to {:.0} TFLOP/s ({}% of Hopper) — the divergence \
         the paper calls \"a step backward for HPC capability\".",
        blackwell.fp16_tc / PEAK_EVOLUTION[0].fp16_tc,
        hopper.fp64_tc,
        blackwell.fp64_tc,
        (100.0 * blackwell.fp64_tc / hopper.fp64_tc) as i64
    );
    artifacts::emit_and_announce(&artifacts::fig12());
}
