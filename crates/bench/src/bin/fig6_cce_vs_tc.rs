//! Figure 6: speedups of the essential-only CUDA-core replacements
//! (CC-E) over TC for Quadrants II–IV (CC-E ≡ CC in Quadrant I) — a
//! geomean projection of the shared sweep. Accepts `--filter`/`--jobs`.

use cubie_analysis::report;
use cubie_bench::{artifacts, SweepRunner};
use cubie_kernels::Variant;

fn main() {
    let sweep = SweepRunner::cli();
    let mut rows = Vec::new();
    for &w in sweep.workloads() {
        if !w.spec().distinct_cce {
            continue;
        }
        let mut row = vec![format!("Q{}", w.spec().quadrant), w.spec().name.to_string()];
        for dev in sweep.devices() {
            match sweep.geomean_speedup(w, &dev.name, Variant::CcE, Variant::Tc) {
                Some(s) => row.push(format!("{s:.2}x")),
                None => row.push("-".to_string()),
            }
        }
        rows.push(row);
    }
    println!("# Figure 6 — CC-E speedup over TC, Quadrants II–IV (geomean of 5 cases)\n");
    let mut headers = vec!["quadrant".to_string(), "workload".to_string()];
    headers.extend(sweep.devices().iter().map(|d| d.name.clone()));
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", report::markdown_table(&headers, &rows));
    artifacts::emit_and_announce(&artifacts::fig6(&sweep));
}
