//! Figure 6: speedups of the essential-only CUDA-core replacements
//! (CC-E) over TC for Quadrants II–IV (CC-E ≡ CC in Quadrant I).

use cubie_analysis::report;
use cubie_bench::{WorkloadSweep, devices};
use cubie_kernels::{Variant, Workload};

fn main() {
    let devs = devices();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for w in Workload::ALL {
        if !w.spec().distinct_cce {
            continue;
        }
        let sweep = WorkloadSweep::prepare(w);
        let mut row = vec![
            format!("Q{}", w.spec().quadrant),
            w.spec().name.to_string(),
        ];
        for dev in &devs {
            let s = sweep.geomean_speedup(dev, Variant::CcE, Variant::Tc).unwrap();
            row.push(format!("{s:.2}x"));
            csv_rows.push(vec![
                w.spec().name.to_string(),
                dev.name.clone(),
                format!("{s:.4}"),
            ]);
        }
        rows.push(row);
    }
    println!("# Figure 6 — CC-E speedup over TC, Quadrants II–IV (geomean of 5 cases)\n");
    println!(
        "{}",
        report::markdown_table(&["quadrant", "workload", "A100", "H200", "B200"], &rows)
    );
    let path = report::results_dir().join("fig6_cce_vs_tc.csv");
    report::write_csv(&path, &["workload", "device", "speedup"], &csv_rows).unwrap();
    println!("wrote {}", path.display());
}
