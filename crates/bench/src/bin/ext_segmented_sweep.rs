//! Extension experiment: the Dakkak-style *segmented* scan/reduction
//! sweep — the throughput regime complementing the paper's single-block
//! Quadrant II/III cases. With ~16M elements in flight the kernels are
//! DRAM-bound and the variants converge, which is exactly why the paper
//! evaluates the latency regime to differentiate the compute units; this
//! binary makes that contrast measurable.
//!
//! Shares the sweep engine's CLI surface: `--filter device=…` restricts
//! the devices and `--jobs N` caps the worker threads of the parallel
//! (case × variant) fan-out.

use cubie_analysis::report;
use cubie_bench::{artifacts, SweepConfig};
use cubie_core::par::{par_map, set_max_workers};
use cubie_golden::{Artifact, Column};
use cubie_kernels::segmented::{trace_reduce, trace_scan, SegmentedCase};
use cubie_kernels::{Variant, Workload};
use cubie_sim::time_workload;

fn main() {
    let cfg = SweepConfig::from_env_or_exit();
    if let Some(jobs) = cfg.jobs {
        set_max_workers(jobs);
    }
    let mut artifact = Artifact::new(
        "ext_segmented_sweep",
        vec![
            Column::exact("workload").key(),
            Column::exact("device").key(),
            Column::exact("case").key(),
            Column::exact("variant").key(),
            Column::eps("gelems", artifacts::TIME_EPS),
        ],
    );
    for (name, which) in [
        ("segmented scan", Workload::Scan),
        ("segmented reduction", Workload::Reduction),
    ] {
        println!("# Extension — {name} throughput sweep (16M elements)\n");
        let cases = SegmentedCase::sweep();
        // Traces are variant × case independent: build the grid in
        // parallel, then project per-device tables from it.
        let n_variants = Variant::ALL.len();
        let traces = par_map(cases.len() * n_variants, |i| {
            let (ci, vi) = (i / n_variants, i % n_variants);
            match which {
                Workload::Scan => trace_scan(&cases[ci], Variant::ALL[vi]),
                _ => trace_reduce(&cases[ci], Variant::ALL[vi]),
            }
        });
        for dev in &cfg.devices {
            let rows: Vec<Vec<String>> = cases
                .iter()
                .enumerate()
                .map(|(ci, case)| {
                    let mut row = vec![case.label()];
                    for vi in 0..n_variants {
                        let timing = time_workload(dev, &traces[ci * n_variants + vi]);
                        let gelems = case.total() as f64 / timing.total_s / 1e9;
                        row.push(format!("{gelems:.1}"));
                        artifact.push(vec![
                            which.spec().name.into(),
                            dev.name.as_str().into(),
                            case.label().into(),
                            Variant::ALL[vi].label().into(),
                            gelems.into(),
                        ]);
                    }
                    row
                })
                .collect();
            println!("## {} (Gelem/s)\n", dev.name);
            println!(
                "{}",
                report::markdown_table(&["case", "Baseline", "TC", "CC", "CC-E"], &rows)
            );
        }
    }
    println!(
        "In the throughput regime every variant rides the DRAM roof — the paper's \
         single-block cases (Figures 3–6) are where the MMU's latency advantage shows."
    );

    artifacts::emit_and_announce(&artifact);
}
