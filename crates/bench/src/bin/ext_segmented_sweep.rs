//! Extension experiment: the Dakkak-style *segmented* scan/reduction
//! sweep — the throughput regime complementing the paper's single-block
//! Quadrant II/III cases. With ~16M elements in flight the kernels are
//! DRAM-bound and the variants converge, which is exactly why the paper
//! evaluates the latency regime to differentiate the compute units; this
//! binary makes that contrast measurable.

use cubie_analysis::report;
use cubie_bench::devices;
use cubie_kernels::segmented::{SegmentedCase, trace_reduce, trace_scan};
use cubie_kernels::{Variant, Workload};
use cubie_sim::time_workload;

fn main() {
    let devs = devices();
    for (name, which) in [("segmented scan", Workload::Scan), ("segmented reduction", Workload::Reduction)] {
        println!("# Extension — {name} throughput sweep (16M elements)\n");
        for dev in &devs {
            let mut rows = Vec::new();
            for case in SegmentedCase::sweep() {
                let mut row = vec![case.label()];
                for v in Variant::ALL {
                    let t = match which {
                        Workload::Scan => trace_scan(&case, v),
                        _ => trace_reduce(&case, v),
                    };
                    let timing = time_workload(dev, &t);
                    let gelems = case.total() as f64 / timing.total_s / 1e9;
                    row.push(format!("{gelems:.1}"));
                }
                rows.push(row);
            }
            println!("## {} (Gelem/s)\n", dev.name);
            println!(
                "{}",
                report::markdown_table(
                    &["case", "Baseline", "TC", "CC", "CC-E"],
                    &rows
                )
            );
        }
    }
    println!(
        "In the throughput regime every variant rides the DRAM roof — the paper's \
         single-block cases (Figures 3–6) are where the MMU's latency advantage shows."
    );
}
