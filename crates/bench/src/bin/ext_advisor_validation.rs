//! Extension experiment: validate the MMU-suitability advisor (the
//! paper's Section 4 future-work direction) against the measured
//! variants — for every workload, compare the speedup predicted from the
//! CUDA-core trace + mapping description with the actually simulated
//! TC-vs-CC-E (or CC) ratio. Traces and timings come from the shared
//! sweep pinned to (H200, case 2).

use cubie_analysis::advisor::{advise, reference_mapping};
use cubie_analysis::report;
use cubie_bench::{artifacts, SweepConfig, SweepRunner};
use cubie_device::h200;
use cubie_kernels::Variant;

fn main() {
    let mut cfg = SweepConfig::from_env_or_exit();
    cfg.devices = vec![h200()];
    cfg.cases = Some(vec![2]); // representative case
    let sweep = SweepRunner::new(cfg).run();
    let dev = &sweep.devices()[0];

    println!("# Extension — advisor validation on {}\n", dev.name);
    let mut rows = Vec::new();
    let mut within_2x = 0;
    let mut total = 0;
    for &w in sweep.workloads() {
        let cc_variant = if w.spec().distinct_cce {
            Variant::CcE
        } else {
            Variant::Cc
        };
        let Some(cc_trace) = sweep.trace(w, 2, cc_variant) else {
            continue;
        };
        let (Some(cc_cell), Some(tc_cell)) = (
            sweep.cell(w, 2, cc_variant, &dev.name),
            sweep.cell(w, 2, Variant::Tc, &dev.name),
        ) else {
            continue;
        };
        let a = advise(dev, cc_trace, &reference_mapping(w));
        let actual = cc_cell.time_s() / tc_cell.time_s();
        let ratio = a.predicted_speedup / actual;
        total += 1;
        if (0.5..2.0).contains(&ratio) {
            within_2x += 1;
        }
        rows.push(vec![
            w.spec().name.to_string(),
            cc_variant.label().to_string(),
            format!("{:.2}x", a.predicted_speedup),
            format!("{actual:.2}x"),
            format!("{ratio:.2}"),
            format!("{:?}", a.recommendation),
        ]);
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "workload",
                "from",
                "predicted",
                "actual",
                "pred/actual",
                "verdict"
            ],
            &rows
        )
    );
    println!("{within_2x}/{total} predictions within 2× of the measured ratio.");

    artifacts::emit_and_announce(&artifacts::ext_advisor(&sweep));
}
