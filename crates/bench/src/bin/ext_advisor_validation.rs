//! Extension experiment: validate the MMU-suitability advisor (the
//! paper's Section 4 future-work direction) against the measured
//! variants — for every workload, compare the speedup predicted from the
//! CUDA-core trace + mapping description with the actually simulated
//! TC-vs-CC-E (or CC) ratio.

use cubie_analysis::advisor::{advise, reference_mapping};
use cubie_analysis::report;
use cubie_bench::{graph_scale, sparse_scale};
use cubie_device::h200;
use cubie_kernels::{Variant, Workload, prepare_cases};
use cubie_sim::time_workload;

fn main() {
    let dev = h200();
    println!("# Extension — advisor validation on {}\n", dev.name);
    let mut rows = Vec::new();
    let mut within_2x = 0;
    let mut total = 0;
    for w in Workload::ALL {
        let cases = prepare_cases(w, sparse_scale(), graph_scale());
        let case = &cases[2];
        let cc_variant = if w.spec().distinct_cce {
            Variant::CcE
        } else {
            Variant::Cc
        };
        let Some(cc_trace) = case.trace(cc_variant) else {
            continue;
        };
        let Some(tc_trace) = case.trace(Variant::Tc) else {
            continue;
        };
        let a = advise(&dev, &cc_trace, &reference_mapping(w));
        let actual = time_workload(&dev, &cc_trace).total_s
            / time_workload(&dev, &tc_trace).total_s;
        let ratio = a.predicted_speedup / actual;
        total += 1;
        if (0.5..2.0).contains(&ratio) {
            within_2x += 1;
        }
        rows.push(vec![
            w.spec().name.to_string(),
            cc_variant.label().to_string(),
            format!("{:.2}x", a.predicted_speedup),
            format!("{actual:.2}x"),
            format!("{ratio:.2}"),
            format!("{:?}", a.recommendation),
        ]);
    }
    println!(
        "{}",
        report::markdown_table(
            &["workload", "from", "predicted", "actual", "pred/actual", "verdict"],
            &rows
        )
    );
    println!("{within_2x}/{total} predictions within 2× of the measured ratio.");
}
