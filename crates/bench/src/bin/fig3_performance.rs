//! Figure 3: absolute performance of all workloads and variants across
//! the five test cases on A100, H200 and B200.

use cubie_analysis::report;
use cubie_bench::{WorkloadSweep, devices};
use cubie_kernels::Workload;

fn main() {
    let devs = devices();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for w in Workload::ALL {
        let sweep = WorkloadSweep::prepare(w);
        let spec = w.spec();
        println!("\n## {} ({})\n", spec.name, spec.perf_unit);
        for dev in &devs {
            let cells = sweep.cells(dev);
            let mut rows = Vec::new();
            for label in &sweep.labels {
                let mut row = vec![label.clone()];
                for v in w.variants() {
                    let c = cells
                        .iter()
                        .find(|c| &c.case == label && c.variant == v)
                        .unwrap();
                    row.push(format!("{:.2}", c.gthroughput));
                    csv_rows.push(vec![
                        spec.name.to_string(),
                        dev.name.clone(),
                        label.clone(),
                        v.label().to_string(),
                        format!("{:.6e}", c.time_s),
                        format!("{:.4}", c.gthroughput),
                    ]);
                }
                rows.push(row);
            }
            let mut headers = vec!["case"];
            let labels: Vec<String> =
                w.variants().iter().map(|v| v.label().to_string()).collect();
            headers.extend(labels.iter().map(|s| s.as_str()));
            println!("### {}\n", dev.name);
            println!("{}", report::markdown_table(&headers, &rows));
        }
    }
    let path = report::results_dir().join("fig3_performance.csv");
    report::write_csv(
        &path,
        &["workload", "device", "case", "variant", "time_s", "gthroughput"],
        &csv_rows,
    )
    .expect("write csv");
    println!("\nwrote {}", path.display());
}
