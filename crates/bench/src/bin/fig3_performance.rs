//! Figure 3: absolute performance of all workloads and variants across
//! the five test cases on A100, H200 and B200 — a per-(workload, device)
//! table projection of the shared sweep. Accepts `--filter`/`--jobs`.

use cubie_analysis::report;
use cubie_bench::{artifacts, SweepRunner};

fn main() {
    let sweep = SweepRunner::cli();
    for &w in sweep.workloads() {
        let spec = w.spec();
        println!("\n## {} ({})\n", spec.name, spec.perf_unit);
        for dev in sweep.devices() {
            let mut rows = Vec::new();
            let variants = sweep.config.variants_of(w);
            for ci in sweep.config.case_indices(sweep.labels(w).len()) {
                let label = &sweep.labels(w)[ci];
                let mut row = vec![label.clone()];
                for &v in &variants {
                    let Some(c) = sweep.cell(w, ci, v, &dev.name) else {
                        row.push("-".to_string());
                        continue;
                    };
                    row.push(format!("{:.2}", c.gthroughput()));
                }
                rows.push(row);
            }
            let mut headers = vec!["case"];
            let labels: Vec<String> = variants.iter().map(|v| v.label().to_string()).collect();
            headers.extend(labels.iter().map(|s| s.as_str()));
            println!("### {}\n", dev.name);
            println!("{}", report::markdown_table(&headers, &rows));
        }
    }
    artifacts::emit_and_announce(&artifacts::fig3(&sweep));
}
