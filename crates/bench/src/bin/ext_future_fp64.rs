//! Extension experiment: the paper's conclusion argues that "future GPU
//! roadmaps should preserve and materially strengthen FP64 MMU
//! capability rather than treating it as a secondary feature". This
//! binary quantifies that argument inside the model: a hypothetical
//! Blackwell variant whose FP64 tensor-core peak continues Hopper's
//! trajectory (2× the CUDA-core peak, i.e. 80 TFLOP/s) is swept over the
//! whole suite against the real B200 (40 TFLOP/s, equal to CC).

use cubie_analysis::report;
use cubie_bench::WorkloadSweep;
use cubie_device::{DeviceSpec, b200};
use cubie_kernels::{Variant, Workload};
use cubie_sim::time_workload;

/// The hypothetical "Blackwell-HPC": FP64 TC peak restored to 2× CC,
/// everything else identical to B200.
fn b200_strengthened() -> DeviceSpec {
    let mut d = b200();
    d.name = "B200-HPC (hypothetical, FP64 TC ×2)".to_string();
    d.tc_fp64_tflops = 80.0;
    d
}

fn main() {
    let real = b200();
    let hyp = b200_strengthened();
    println!(
        "# Extension — what if Blackwell had kept scaling FP64 tensor cores?\n\n\
         Real B200: TC {} / CC {} TFLOP/s.  Hypothetical: TC {} / CC {}.\n",
        real.tc_fp64_tflops, real.cc_fp64_tflops, hyp.tc_fp64_tflops, hyp.cc_fp64_tflops
    );
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for w in Workload::ALL {
        let sweep = WorkloadSweep::prepare(w);
        // Representative case, TC variant on both devices.
        let variants = w.variants();
        let vi = variants.iter().position(|v| *v == Variant::Tc).unwrap();
        let t_real = time_workload(&real, &sweep.traces[2][vi]).total_s;
        let t_hyp = time_workload(&hyp, &sweep.traces[2][vi]).total_s;
        let gain = t_real / t_hyp;
        gains.push(gain);
        rows.push(vec![
            w.spec().name.to_string(),
            format!("Q{}", w.spec().quadrant),
            report::seconds(t_real),
            report::seconds(t_hyp),
            format!("{gain:.2}x"),
        ]);
    }
    println!(
        "{}",
        report::markdown_table(
            &["workload", "quadrant", "B200 TC time", "B200-HPC TC time", "gain"],
            &rows
        )
    );
    println!(
        "Geomean suite gain from doubling the FP64 MMU: {:.2}x — concentrated in the\n\
         compute-bound Quadrant I kernels, while the memory-bound Quadrant IV kernels\n\
         ride the unchanged 8 TB/s, exactly the trade the paper's conclusion describes.",
        report::geomean(&gains)
    );
}
