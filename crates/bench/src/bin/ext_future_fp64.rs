//! Extension experiment: the paper's conclusion argues that "future GPU
//! roadmaps should preserve and materially strengthen FP64 MMU
//! capability rather than treating it as a secondary feature". This
//! binary quantifies that argument inside the model: a hypothetical
//! Blackwell variant whose FP64 tensor-core peak continues Hopper's
//! trajectory (2× the CUDA-core peak, i.e. 80 TFLOP/s) is swept over the
//! whole suite against the real B200 (40 TFLOP/s, equal to CC). The real
//! timings come from the shared sweep pinned to (B200, case 2); the
//! hypothetical device reuses the cached traces via `Sweep::time_on`.

use cubie_analysis::report;
use cubie_bench::{artifacts, SweepConfig, SweepRunner};
use cubie_device::{b200, DeviceSpec};
use cubie_kernels::Variant;

/// The hypothetical "Blackwell-HPC": FP64 TC peak restored to 2× CC,
/// everything else identical to B200.
fn b200_strengthened() -> DeviceSpec {
    let mut d = b200();
    d.name = "B200-HPC (hypothetical, FP64 TC ×2)".to_string();
    d.tc_fp64_tflops = 80.0;
    d
}

fn main() {
    let mut cfg = SweepConfig::from_env_or_exit();
    cfg.devices = vec![b200()];
    cfg.cases = Some(vec![2]); // representative case
    cfg.variants = Some(vec![Variant::Tc]);
    let sweep = SweepRunner::new(cfg).run();
    let real = &sweep.devices()[0];
    let hyp = b200_strengthened();

    println!(
        "# Extension — what if Blackwell had kept scaling FP64 tensor cores?\n\n\
         Real B200: TC {} / CC {} TFLOP/s.  Hypothetical: TC {} / CC {}.\n",
        real.tc_fp64_tflops, real.cc_fp64_tflops, hyp.tc_fp64_tflops, hyp.cc_fp64_tflops
    );
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for &w in sweep.workloads() {
        let Some(cell) = sweep.cell(w, 2, Variant::Tc, &real.name) else {
            continue;
        };
        let t_real = cell.time_s();
        let Some(hyp_timing) = sweep.time_on(&hyp, w, 2, Variant::Tc) else {
            eprintln!(
                "cubie: error: no TC trace for {} case 2 to retime on the hypothetical device",
                w.spec().name
            );
            std::process::exit(1);
        };
        let t_hyp = hyp_timing.total_s;
        let gain = t_real / t_hyp;
        gains.push(gain);
        rows.push(vec![
            w.spec().name.to_string(),
            format!("Q{}", w.spec().quadrant),
            report::seconds(t_real),
            report::seconds(t_hyp),
            format!("{gain:.2}x"),
        ]);
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "workload",
                "quadrant",
                "B200 TC time",
                "B200-HPC TC time",
                "gain"
            ],
            &rows
        )
    );
    println!(
        "Geomean suite gain from doubling the FP64 MMU: {:.2}x — concentrated in the\n\
         compute-bound Quadrant I kernels, while the memory-bound Quadrant IV kernels\n\
         ride the unchanged 8 TB/s, exactly the trade the paper's conclusion describes.",
        report::geomean(&gains)
    );

    artifacts::emit_and_announce(&artifacts::ext_future(&sweep));
}
