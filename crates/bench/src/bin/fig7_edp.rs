//! Figure 7: energy-delay product of all workloads and variants on H200,
//! one representative test case per workload executed in a loop (the
//! paper's per-workload repeat counts), with per-quadrant geomeans — a
//! power projection of the shared sweep pinned to (H200, case 2).

use cubie_analysis::report;
use cubie_bench::{artifacts, fig7_repeats, SweepConfig, SweepRunner};
use cubie_device::h200;
use cubie_kernels::{Quadrant, Variant};
use cubie_sim::power_report;

fn main() {
    let mut cfg = SweepConfig::from_env_or_exit();
    cfg.devices = vec![h200()]; // the paper measures EDP on H200 only
    cfg.cases = Some(vec![2]); // middle case as the representative
    let sweep = SweepRunner::new(cfg).run();
    let dev = &sweep.devices()[0];

    let mut rows = Vec::new();
    // edp[(quadrant, variant)] values for geomeans.
    let mut per_quadrant: Vec<(Quadrant, Variant, f64)> = Vec::new();

    for &w in sweep.workloads() {
        let spec = w.spec();
        let rep = 2usize;
        let repeats = fig7_repeats(w);
        let mut row = vec![
            format!("Q{}", spec.quadrant),
            spec.name.to_string(),
            sweep.labels(w)[rep].clone(),
            format!("{repeats}"),
        ];
        for v in [Variant::Baseline, Variant::Tc, Variant::Cc, Variant::CcE] {
            let Some(cell) = sweep.cell(w, rep, v, &dev.name) else {
                row.push("-".to_string());
                continue;
            };
            let r = power_report(dev, &cell.timing, repeats);
            row.push(format!("{:.3e}", r.edp));
            per_quadrant.push((spec.quadrant, v, r.edp));
        }
        rows.push(row);
    }
    println!("# Figure 7 — EDP (J·s) on H200, representative case × paper repeat counts\n");
    println!(
        "{}",
        report::markdown_table(
            &["quadrant", "workload", "case", "repeats", "Baseline", "TC", "CC", "CC-E"],
            &rows
        )
    );

    // Per-quadrant geomeans (TC vs baseline reduction, Observation 6).
    println!("## Per-quadrant geomean EDP\n");
    let mut geo_rows = Vec::new();
    for q in [Quadrant::I, Quadrant::II, Quadrant::III, Quadrant::IV] {
        let collect = |v: Variant| -> Vec<f64> {
            per_quadrant
                .iter()
                .filter(|(qq, vv, _)| *qq == q && *vv == v)
                .map(|(_, _, e)| *e)
                .collect()
        };
        let tc = collect(Variant::Tc);
        let base = collect(Variant::Baseline);
        let gm_tc = report::geomean(&tc);
        let mut row = vec![format!("Q{q}"), format!("{gm_tc:.3e}")];
        if base.is_empty() {
            row.push("-".to_string());
            row.push("-".to_string());
        } else {
            let gm_b = report::geomean(&base);
            row.push(format!("{gm_b:.3e}"));
            row.push(format!("{:.0}%", (1.0 - gm_tc / gm_b) * 100.0));
        }
        geo_rows.push(row);
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "quadrant",
                "TC geomean",
                "baseline geomean",
                "TC EDP reduction"
            ],
            &geo_rows
        )
    );

    artifacts::emit_and_announce(&artifacts::fig7(&sweep));
}
