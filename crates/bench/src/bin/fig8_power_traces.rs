//! Figure 8: power consumption over time of all workloads and variants
//! on H200 (kernel loop, EMA-smoothed readings). Prints per-variant
//! plateau power and writes the full traces to CSV — a power projection
//! of the shared sweep pinned to (H200, case 2).

use cubie_analysis::report;
use cubie_bench::{artifacts, fig7_repeats, SweepConfig, SweepRunner};
use cubie_device::h200;
use cubie_sim::power_trace;

fn main() {
    let mut cfg = SweepConfig::from_env_or_exit();
    cfg.devices = vec![h200()]; // the paper traces power on H200 only
    cfg.cases = Some(vec![2]); // representative case
    let sweep = SweepRunner::new(cfg).run();
    let dev = &sweep.devices()[0];

    let mut rows = Vec::new();
    for &w in sweep.workloads() {
        let spec = w.spec();
        let rep = 2usize;
        let repeats = fig7_repeats(w);
        let mut row = vec![spec.name.to_string()];
        for v in sweep.config.variants_of(w) {
            let Some(cell) = sweep.cell(w, rep, v, &dev.name) else {
                continue;
            };
            // Sample so each trace has ~200 points.
            let total = cell.timing.total_s * repeats as f64 + 1.0;
            let dt = total / 200.0;
            let trace = power_trace(dev, &cell.timing, repeats, dt);
            let peak = trace.iter().map(|s| s.power_w).fold(0.0f64, f64::max);
            row.push(format!("{peak:.0} W"));
        }
        while row.len() < 5 {
            row.push("-".to_string());
        }
        rows.push(row);
    }
    println!(
        "# Figure 8 — plateau power on H200 (variant order per workload: Baseline?, TC, CC, CC-E?)\n"
    );
    println!(
        "{}",
        report::markdown_table(&["workload", "v1", "v2", "v3", "v4"], &rows)
    );
    artifacts::emit_and_announce(&artifacts::fig8(&sweep, 200));
}
