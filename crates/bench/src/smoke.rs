//! The perf smoke harness (`cubie bench-smoke`): a pinned, cheap subset
//! of the sweep is executed end-to-end (preparation **included** — each
//! repetition uses a private [`SweepCache`], so generator or trace-layer
//! slowdowns are visible), the best-of-N wall time and the deterministic
//! simulated totals are written to `results/BENCH_sweep.json`, and a
//! committed baseline under `results/golden/` gates regressions:
//!
//! * cell counts and the summed simulated time must match the baseline
//!   (epsilon `1e-9` — the simulation is deterministic, so this is a
//!   correctness tripwire, not a perf one);
//! * wall time may not exceed `factor ×` the baseline (default 4.0 —
//!   generous, because CI machines are noisy and heterogeneous; override
//!   with `CUBIE_SMOKE_FACTOR`).
//!
//! GEMM is deliberately excluded: its Table 2 cases are fixed-size (no
//! scale knob), so it would dominate the smoke run's wall clock.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use cubie_golden::{obj, Json};
use cubie_kernels::Workload;

use crate::sweep::{SweepCache, SweepConfig, SweepRunner};

/// Schema tag of `BENCH_sweep.json`.
pub const SMOKE_SCHEMA: &str = "cubie-bench-smoke/v1";

/// Default regression threshold: wall time may grow this much over the
/// committed baseline before the gate fails.
pub const DEFAULT_FACTOR: f64 = 4.0;

/// Workloads the smoke run sweeps — cheap representatives of the four
/// quadrants (and the three input families: dense, sparse, graph).
pub const SMOKE_WORKLOADS: [Workload; 4] = [
    Workload::Scan,
    Workload::Reduction,
    Workload::Spmv,
    Workload::Bfs,
];

/// Wall-time repetitions; the minimum is reported (standard practice for
/// noisy timers).
pub const SMOKE_REPS: usize = 3;

/// [`SMOKE_REPS`], overridable via `CUBIE_SMOKE_REPS` (integration tests
/// drop to 1 — a debug-profile sweep is seconds per rep).
pub fn smoke_reps() -> usize {
    std::env::var("CUBIE_SMOKE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(SMOKE_REPS)
}

/// The result of one smoke run.
#[derive(Debug, Clone)]
pub struct SmokeResult {
    /// Number of timed cells in the pinned sweep.
    pub cells: usize,
    /// Sum of simulated cell times, seconds (deterministic).
    pub sim_total_s: f64,
    /// Best end-to-end wall time over [`SMOKE_REPS`] runs, milliseconds.
    pub wall_ms: f64,
}

impl SmokeResult {
    /// Serialize as a `BENCH_sweep.json` document.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("schema", SMOKE_SCHEMA.into()),
            (
                "workloads",
                Json::Array(
                    SMOKE_WORKLOADS
                        .iter()
                        .map(|w| w.spec().name.into())
                        .collect(),
                ),
            ),
            ("reps", smoke_reps().into()),
            ("cells", self.cells.into()),
            ("sim_total_s", self.sim_total_s.into()),
            ("wall_ms", self.wall_ms.into()),
        ])
    }

    /// Parse a `BENCH_sweep.json` document.
    pub fn from_json(doc: &Json) -> Result<SmokeResult, String> {
        if doc.get("schema").and_then(Json::as_str) != Some(SMOKE_SCHEMA) {
            return Err(format!("not a {SMOKE_SCHEMA} document"));
        }
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field `{name}`"))
        };
        Ok(SmokeResult {
            cells: field("cells")? as usize,
            sim_total_s: field("sim_total_s")?,
            wall_ms: field("wall_ms")?,
        })
    }

    /// Read a baseline from disk.
    pub fn read(path: &Path) -> Result<SmokeResult, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        SmokeResult::from_json(&doc)
    }
}

/// The pinned smoke sweep configuration.
pub fn smoke_config() -> SweepConfig {
    SweepConfig {
        workloads: SMOKE_WORKLOADS.to_vec(),
        sparse_scale: crate::artifacts::GOLDEN_SPARSE_SCALE,
        graph_scale: crate::artifacts::GOLDEN_GRAPH_SCALE,
        ..SweepConfig::default()
    }
}

/// Run the smoke sweep [`smoke_reps`] times, each on a cold private
/// cache, and report cell count, simulated total and best wall time.
pub fn run_smoke() -> SmokeResult {
    let mut best_ms = f64::INFINITY;
    let mut cells = 0usize;
    let mut sim_total_s = 0.0f64;
    for _ in 0..smoke_reps() {
        let start = Instant::now();
        let sweep = SweepRunner::with_cache(smoke_config(), Arc::new(SweepCache::default())).run();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
        cells = sweep.cells.len();
        sim_total_s = sweep.cells.iter().map(|c| c.time_s()).sum();
    }
    SmokeResult {
        cells,
        sim_total_s,
        wall_ms: best_ms,
    }
}

/// The regression threshold factor (`CUBIE_SMOKE_FACTOR` override).
pub fn smoke_factor() -> f64 {
    std::env::var("CUBIE_SMOKE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_FACTOR)
}

/// Gate `current` against `baseline`: returns the list of failures
/// (empty = pass).
pub fn check_smoke(current: &SmokeResult, baseline: &SmokeResult, factor: f64) -> Vec<String> {
    let mut failures = Vec::new();
    if current.cells != baseline.cells {
        failures.push(format!(
            "cell count changed: baseline {} vs current {} — the pinned sweep shape moved; \
             re-record the baseline if intentional",
            baseline.cells, current.cells
        ));
    }
    let (a, b) = (current.sim_total_s, baseline.sim_total_s);
    if (a - b).abs() > 1e-9 * b.abs().max(a.abs()) {
        failures.push(format!(
            "simulated total drifted: baseline {b:?} s vs current {a:?} s — the model \
             changed; re-record the baseline (and the goldens) if intentional"
        ));
    }
    if current.wall_ms > factor * baseline.wall_ms {
        failures.push(format!(
            "wall time regressed: baseline {:.0} ms vs current {:.0} ms (limit {factor}×)",
            baseline.wall_ms, current.wall_ms
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SmokeResult {
        SmokeResult {
            cells: 55,
            sim_total_s: 1.25,
            wall_ms: 900.0,
        }
    }

    #[test]
    fn smoke_result_round_trips() {
        let r = sample();
        let text = r.to_json().to_pretty_string();
        let back = SmokeResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.cells, r.cells);
        assert_eq!(back.sim_total_s.to_bits(), r.sim_total_s.to_bits());
        assert_eq!(back.wall_ms.to_bits(), r.wall_ms.to_bits());
    }

    #[test]
    fn identical_results_pass() {
        assert!(check_smoke(&sample(), &sample(), DEFAULT_FACTOR).is_empty());
    }

    #[test]
    fn wall_regression_fails_only_beyond_factor() {
        let base = sample();
        let mut cur = sample();
        cur.wall_ms = base.wall_ms * 3.9;
        assert!(check_smoke(&cur, &base, DEFAULT_FACTOR).is_empty());
        cur.wall_ms = base.wall_ms * 4.1;
        let failures = check_smoke(&cur, &base, DEFAULT_FACTOR);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("wall time regressed"));
    }

    #[test]
    fn sim_drift_and_shape_change_fail() {
        let base = sample();
        let mut cur = sample();
        cur.sim_total_s += 1e-6;
        cur.cells += 1;
        let failures = check_smoke(&cur, &base, DEFAULT_FACTOR);
        assert_eq!(failures.len(), 2);
    }

    #[test]
    fn wall_speedup_passes() {
        let base = sample();
        let mut cur = sample();
        cur.wall_ms = 1.0;
        assert!(check_smoke(&cur, &base, DEFAULT_FACTOR).is_empty());
    }
}
