//! The perf smoke harness (`cubie bench-smoke`): a pinned, cheap subset
//! of the sweep is executed end-to-end (preparation **included** — each
//! repetition uses a private [`SweepCache`], so generator or trace-layer
//! slowdowns are visible), the best-of-N wall time, the deterministic
//! simulated totals, and the per-phase breakdown of the best repetition
//! are written to `results/BENCH_sweep.json`, and a committed baseline
//! under `results/golden/` gates regressions:
//!
//! * cell counts and the summed simulated time must match the baseline
//!   (epsilon `1e-9` — the simulation is deterministic, so this is a
//!   correctness tripwire, not a perf one);
//! * wall time may not exceed `factor ×` the baseline (default 3.0 —
//!   generous, because CI machines are noisy and heterogeneous; override
//!   with `CUBIE_SMOKE_FACTOR`). When the gate trips, the per-phase
//!   breakdown attributes the regression (generation vs trace vs timing)
//!   instead of reporting one opaque wall-clock number;
//! * hot-loop allocation counts may not exceed
//!   `CUBIE_SMOKE_ALLOC_FACTOR ×` the baseline (default
//!   [`DEFAULT_ALLOC_FACTOR`]) — allocations are deterministic per code
//!   version, so this catches a dropped workspace arena long before it
//!   shows up in noisy wall time. Baselines recorded before allocation
//!   telemetry parse as zero and skip the gate (no re-record).
//!
//! The sweep runs with a **pinned worker cap** ([`SMOKE_JOBS`], override
//! `CUBIE_SMOKE_JOBS`) so a baseline recorded on a many-core machine is
//! comparable on a small CI runner; the recording host's core count and
//! the effective cap ride along in the artifact to keep diffs
//! interpretable.
//!
//! GEMM is deliberately excluded: its Table 2 cases are fixed-size (no
//! scale knob), so it would dominate the smoke run's wall clock.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use cubie_golden::{obj, Json};
use cubie_kernels::Workload;

use crate::sweep::{SweepCache, SweepConfig, SweepRunner};

/// Schema tag of `BENCH_sweep.json`. Rev 2 added `jobs`, `host_cores`
/// and the per-phase `phases` breakdown.
pub const SMOKE_SCHEMA: &str = "cubie-bench-smoke/v2";

/// Default regression threshold: wall time may grow this much over the
/// committed baseline before the gate fails. Tightened from 4.0 once the
/// persistent worker pool removed per-call thread-spawn overhead from
/// the sweep's dispatch path.
pub const DEFAULT_FACTOR: f64 = 3.0;

/// Workloads the smoke run sweeps — cheap representatives of the four
/// quadrants (and the three input families: dense, sparse, graph).
pub const SMOKE_WORKLOADS: [Workload; 4] = [
    Workload::Scan,
    Workload::Reduction,
    Workload::Spmv,
    Workload::Bfs,
];

/// Wall-time repetitions; the minimum is reported (standard practice for
/// noisy timers).
pub const SMOKE_REPS: usize = 3;

/// Pinned worker-thread cap of the smoke sweep: decoupling the measured
/// wall time from the host's core count keeps one committed baseline
/// meaningful across heterogeneous machines (a 64-core recorder would
/// otherwise trip the gate on a 4-core runner).
pub const SMOKE_JOBS: usize = 4;

/// The phases of the smoke breakdown, in pipeline order: case generation,
/// functional trace execution, timing simulation, and parallel-worker
/// loop time (overlaps the other three under `par_map`).
pub const SMOKE_PHASES: [&str; 4] = ["prepare", "trace", "time", "par"];

/// [`SMOKE_REPS`], overridable via `CUBIE_SMOKE_REPS` (integration tests
/// drop to 1 — a debug-profile sweep is seconds per rep).
pub fn smoke_reps() -> usize {
    match crate::env_parse::<usize>("CUBIE_SMOKE_REPS") {
        Some(0) => {
            eprintln!("warning: ignoring CUBIE_SMOKE_REPS=0: must be at least 1");
            SMOKE_REPS
        }
        Some(n) => n,
        None => SMOKE_REPS,
    }
}

/// [`SMOKE_JOBS`], overridable via `CUBIE_SMOKE_JOBS` (0 is rejected —
/// the cap must be explicit for cross-machine comparability).
pub fn smoke_jobs() -> usize {
    match crate::env_parse::<usize>("CUBIE_SMOKE_JOBS") {
        Some(0) => {
            eprintln!("warning: ignoring CUBIE_SMOKE_JOBS=0: must be at least 1");
            SMOKE_JOBS
        }
        Some(n) => n,
        None => SMOKE_JOBS,
    }
}

/// The host's available core count (what the pinned cap protects the
/// baseline from).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Busy time of one instrumentation phase in the best smoke repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBreakdown {
    /// Phase name (one of [`SMOKE_PHASES`]).
    pub phase: String,
    /// Spans recorded under the phase.
    pub calls: u64,
    /// Summed span duration across workers, milliseconds.
    pub busy_ms: f64,
    /// Heap allocations performed inside the phase's spans (0 in
    /// baselines recorded before allocation telemetry, or when the
    /// counting allocator is not installed).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// The result of one smoke run.
#[derive(Debug, Clone)]
pub struct SmokeResult {
    /// Number of timed cells in the pinned sweep.
    pub cells: usize,
    /// Sum of simulated cell times, seconds (deterministic).
    pub sim_total_s: f64,
    /// Best end-to-end wall time over [`smoke_reps`] runs, milliseconds.
    pub wall_ms: f64,
    /// Worker-thread cap the sweep ran under.
    pub jobs: usize,
    /// Core count of the machine that produced this result.
    pub host_cores: usize,
    /// Per-phase busy times of the best repetition, [`SMOKE_PHASES`] order.
    pub phases: Vec<PhaseBreakdown>,
    /// Label of the SIMD path the run dispatched to
    /// (`cubie_core::simd::active_path`); `"unrecorded"` in pre-SIMD
    /// baselines.
    pub simd_path: String,
    /// Measured speedup of the active SIMD path over forced scalar on
    /// the strided MMA core ([`simd_ratio`]); `0.0` when unrecorded.
    /// Informational — never gated by [`check_smoke`] (the wall-time
    /// factor covers perf), but kept in the artifact so the perf
    /// trajectory is visible per-run.
    pub simd_ratio: f64,
}

impl SmokeResult {
    /// Serialize as a `BENCH_sweep.json` document.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("schema", SMOKE_SCHEMA.into()),
            (
                "workloads",
                Json::Array(
                    SMOKE_WORKLOADS
                        .iter()
                        .map(|w| w.spec().name.into())
                        .collect(),
                ),
            ),
            ("reps", smoke_reps().into()),
            ("jobs", self.jobs.into()),
            ("host_cores", self.host_cores.into()),
            ("cells", self.cells.into()),
            ("sim_total_s", self.sim_total_s.into()),
            ("wall_ms", self.wall_ms.into()),
            ("simd_path", self.simd_path.as_str().into()),
            ("simd_ratio", self.simd_ratio.into()),
            (
                "phases",
                Json::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("phase", p.phase.as_str().into()),
                                ("calls", p.calls.into()),
                                ("busy_ms", p.busy_ms.into()),
                                ("alloc_count", p.alloc_count.into()),
                                ("alloc_bytes", p.alloc_bytes.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a `BENCH_sweep.json` document.
    pub fn from_json(doc: &Json) -> Result<SmokeResult, String> {
        if doc.get("schema").and_then(Json::as_str) != Some(SMOKE_SCHEMA) {
            return Err(format!(
                "not a {SMOKE_SCHEMA} document — re-record with `cubie bench-smoke --record`"
            ));
        }
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field `{name}`"))
        };
        let mut phases = Vec::new();
        for p in doc
            .get("phases")
            .and_then(Json::as_array)
            .ok_or("missing `phases` array")?
        {
            phases.push(PhaseBreakdown {
                phase: p
                    .get("phase")
                    .and_then(Json::as_str)
                    .ok_or("phase entry missing `phase`")?
                    .to_string(),
                calls: p.get("calls").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                busy_ms: p
                    .get("busy_ms")
                    .and_then(Json::as_f64)
                    .ok_or("phase entry missing `busy_ms`")?,
                // Optional (added within schema v2): baselines recorded
                // before allocation telemetry parse as zero allocations,
                // which also disables the alloc gate — no re-record.
                alloc_count: p.get("alloc_count").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                alloc_bytes: p.get("alloc_bytes").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            });
        }
        Ok(SmokeResult {
            cells: field("cells")? as usize,
            sim_total_s: field("sim_total_s")?,
            wall_ms: field("wall_ms")?,
            jobs: field("jobs")? as usize,
            host_cores: field("host_cores")? as usize,
            phases,
            // Optional (added within schema v2): baselines recorded
            // before the SIMD kernels parse with the sentinel defaults.
            simd_path: doc
                .get("simd_path")
                .and_then(Json::as_str)
                .unwrap_or("unrecorded")
                .to_string(),
            simd_ratio: doc.get("simd_ratio").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }

    /// Read a baseline from disk.
    pub fn read(path: &Path) -> Result<SmokeResult, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        SmokeResult::from_json(&doc)
    }
}

/// The pinned smoke sweep configuration.
pub fn smoke_config() -> SweepConfig {
    SweepConfig {
        workloads: SMOKE_WORKLOADS.to_vec(),
        sparse_scale: crate::artifacts::GOLDEN_SPARSE_SCALE,
        graph_scale: crate::artifacts::GOLDEN_GRAPH_SCALE,
        jobs: Some(smoke_jobs()),
        ..SweepConfig::default()
    }
}

/// Roll recorded spans up into per-phase busy times, [`SMOKE_PHASES`]
/// order (phases with no spans are omitted).
pub fn phase_rollup(spans: &[cubie_obs::SpanRecord]) -> Vec<PhaseBreakdown> {
    SMOKE_PHASES
        .iter()
        .filter_map(|phase| {
            let matching = spans.iter().filter(|s| s.phase == *phase);
            let calls = matching.clone().count() as u64;
            if calls == 0 {
                return None;
            }
            Some(PhaseBreakdown {
                phase: phase.to_string(),
                calls,
                busy_ms: matching.clone().map(|s| s.dur_ns as f64 * 1e-6).sum(),
                alloc_count: matching.clone().map(|s| s.alloc_count).sum(),
                alloc_bytes: matching.map(|s| s.alloc_bytes).sum(),
            })
        })
        .collect()
}

/// Measure the active SIMD path's speedup over forced scalar on the
/// strided `m8n8k4` MMA core (the dominant `trace`-phase inner loop):
/// `(active_path, scalar_time / active_time)`, best-of-3 per side on a
/// 256-tile band. ~1 means the active path *is* scalar (or the host
/// gains nothing); the ratio is reported, never gated.
pub fn simd_ratio() -> (cubie_core::simd::SimdPath, f64) {
    use cubie_core::simd::{self, SimdPath};
    const TILES: usize = 256;
    let mut rng = cubie_core::LcgF64::new(42);
    let a = rng.vec(8 * 4);
    let b = rng.vec(4 * 8 * TILES);
    let mut c = rng.vec(8 * 8 * TILES);
    let mut time_path = |p: SimdPath| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..20 {
                for t in 0..TILES {
                    simd::mma_f64_m8n8k4_strided_on(
                        p,
                        &a,
                        0,
                        4,
                        &b,
                        t * 8,
                        8 * TILES,
                        &mut c,
                        t * 8,
                        8 * TILES,
                    );
                }
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let active = simd::active_path();
    let active_t = time_path(active);
    let scalar_t = time_path(SimdPath::Scalar);
    std::hint::black_box(&c);
    (active, scalar_t / active_t)
}

/// Run the smoke sweep [`smoke_reps`] times, each on a cold private
/// cache, and report cell count, simulated total, best wall time and the
/// best repetition's phase breakdown (spans are recorded for every rep;
/// the guard-band for the instrumentation itself is well under the 4×
/// wall gate).
pub fn run_smoke() -> SmokeResult {
    let mut best_ms = f64::INFINITY;
    let mut cells = 0usize;
    let mut sim_total_s = 0.0f64;
    let mut phases = Vec::new();
    let config = smoke_config();
    for _ in 0..smoke_reps() {
        cubie_obs::enable();
        let start = Instant::now();
        let sweep = SweepRunner::with_cache(config.clone(), Arc::new(SweepCache::default())).run();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        cubie_obs::disable();
        let spans = cubie_obs::drain();
        if ms < best_ms {
            best_ms = ms;
            phases = phase_rollup(&spans);
        }
        cells = sweep.cells.len();
        sim_total_s = sweep.cells.iter().map(|c| c.time_s()).sum();
    }
    let (path, ratio) = simd_ratio();
    SmokeResult {
        cells,
        sim_total_s,
        wall_ms: best_ms,
        jobs: config.jobs.unwrap_or(0),
        host_cores: host_cores(),
        phases,
        simd_path: path.label().to_string(),
        simd_ratio: ratio,
    }
}

/// The regression threshold factor (`CUBIE_SMOKE_FACTOR` override).
pub fn smoke_factor() -> f64 {
    crate::env_parse("CUBIE_SMOKE_FACTOR").unwrap_or(DEFAULT_FACTOR)
}

/// Default allocation-count regression threshold: total hot-loop
/// allocations may grow this much over the baseline before the gate
/// fails. Generous, because allocation counts — unlike wall time — are
/// deterministic per code version but legitimately move with feature
/// work; the gate exists to catch *order-of-magnitude* churn (a dropped
/// workspace arena, a per-element `Vec` in a hot loop), not small
/// honest growth.
pub const DEFAULT_ALLOC_FACTOR: f64 = 2.0;

/// The allocation threshold factor (`CUBIE_SMOKE_ALLOC_FACTOR` override).
pub fn smoke_alloc_factor() -> f64 {
    crate::env_parse("CUBIE_SMOKE_ALLOC_FACTOR").unwrap_or(DEFAULT_ALLOC_FACTOR)
}

/// Summed allocations across a result's phases.
fn total_allocs(r: &SmokeResult) -> u64 {
    r.phases.iter().map(|p| p.alloc_count).sum()
}

/// Gate `current` against `baseline`: returns the list of failures
/// (empty = pass). A wall-time failure carries the per-phase attribution
/// when both sides recorded a breakdown. Allocation counts are gated by
/// [`smoke_alloc_factor`] via [`check_smoke_with_allocs`]; the plain
/// entry point keeps the alloc gate at its default.
pub fn check_smoke(current: &SmokeResult, baseline: &SmokeResult, factor: f64) -> Vec<String> {
    check_smoke_with_allocs(current, baseline, factor, DEFAULT_ALLOC_FACTOR)
}

/// [`check_smoke`] with an explicit allocation-count factor. The alloc
/// gate is skipped when either side recorded zero allocations — a
/// baseline written before allocation telemetry (or by a binary without
/// the counting allocator) parses as all-zero and must not force a
/// re-record.
pub fn check_smoke_with_allocs(
    current: &SmokeResult,
    baseline: &SmokeResult,
    factor: f64,
    alloc_factor: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    if current.cells != baseline.cells {
        failures.push(format!(
            "cell count changed: baseline {} vs current {} — the pinned sweep shape moved; \
             re-record the baseline if intentional",
            baseline.cells, current.cells
        ));
    }
    let (a, b) = (current.sim_total_s, baseline.sim_total_s);
    if (a - b).abs() > 1e-9 * b.abs().max(a.abs()) {
        failures.push(format!(
            "simulated total drifted: baseline {b:?} s vs current {a:?} s — the model \
             changed; re-record the baseline (and the goldens) if intentional"
        ));
    }
    if current.wall_ms > factor * baseline.wall_ms {
        let mut msg = format!(
            "wall time regressed: baseline {:.0} ms vs current {:.0} ms (limit {factor}×; \
             baseline host: {} cores, jobs {}; current host: {} cores, jobs {})",
            baseline.wall_ms,
            current.wall_ms,
            baseline.host_cores,
            baseline.jobs,
            current.host_cores,
            current.jobs
        );
        for cur in &current.phases {
            let base = baseline.phases.iter().find(|p| p.phase == cur.phase);
            match base {
                Some(b) if b.busy_ms > 0.0 => {
                    msg.push_str(&format!(
                        "\n    phase {:8} baseline {:8.1} ms vs current {:8.1} ms ({:.2}×)",
                        cur.phase,
                        b.busy_ms,
                        cur.busy_ms,
                        cur.busy_ms / b.busy_ms
                    ));
                }
                _ => {
                    msg.push_str(&format!(
                        "\n    phase {:8} baseline        - vs current {:8.1} ms",
                        cur.phase, cur.busy_ms
                    ));
                }
            }
        }
        failures.push(msg);
    }
    let (ca, ba) = (total_allocs(current), total_allocs(baseline));
    if ba > 0 && ca > 0 && ca as f64 > alloc_factor * ba as f64 {
        let mut msg = format!(
            "hot-loop allocations regressed: baseline {ba} vs current {ca} \
             (limit {alloc_factor}×; override with CUBIE_SMOKE_ALLOC_FACTOR)"
        );
        for cur in &current.phases {
            let base = baseline.phases.iter().find(|p| p.phase == cur.phase);
            match base {
                Some(b) if b.alloc_count > 0 => {
                    msg.push_str(&format!(
                        "\n    phase {:8} baseline {:>10} allocs vs current {:>10} ({:.2}×, \
                         {} bytes)",
                        cur.phase,
                        b.alloc_count,
                        cur.alloc_count,
                        cur.alloc_count as f64 / b.alloc_count as f64,
                        cur.alloc_bytes
                    ));
                }
                _ => {
                    msg.push_str(&format!(
                        "\n    phase {:8} baseline          - allocs vs current {:>10} \
                         ({} bytes)",
                        cur.phase, cur.alloc_count, cur.alloc_bytes
                    ));
                }
            }
        }
        failures.push(msg);
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SmokeResult {
        SmokeResult {
            cells: 55,
            sim_total_s: 1.25,
            wall_ms: 900.0,
            jobs: 4,
            host_cores: 8,
            phases: vec![
                PhaseBreakdown {
                    phase: "prepare".to_string(),
                    calls: 4,
                    busy_ms: 500.0,
                    alloc_count: 10_000,
                    alloc_bytes: 8_000_000,
                },
                PhaseBreakdown {
                    phase: "time".to_string(),
                    calls: 240,
                    busy_ms: 300.0,
                    alloc_count: 2_000,
                    alloc_bytes: 160_000,
                },
            ],
            simd_path: "avx2".to_string(),
            simd_ratio: 2.5,
        }
    }

    #[test]
    fn smoke_result_round_trips() {
        let r = sample();
        let text = r.to_json().to_pretty_string();
        let back = SmokeResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.cells, r.cells);
        assert_eq!(back.sim_total_s.to_bits(), r.sim_total_s.to_bits());
        assert_eq!(back.wall_ms.to_bits(), r.wall_ms.to_bits());
        assert_eq!(back.jobs, r.jobs);
        assert_eq!(back.host_cores, r.host_cores);
        assert_eq!(back.phases, r.phases);
        assert_eq!(back.simd_path, r.simd_path);
        assert_eq!(back.simd_ratio.to_bits(), r.simd_ratio.to_bits());
    }

    #[test]
    fn pre_simd_baselines_parse_with_sentinel_defaults() {
        // A v2 document recorded before the SIMD fields existed must
        // still read cleanly (no golden/baseline re-record required).
        let mut doc = sample().to_json();
        let Json::Object(ref mut fields) = doc else {
            panic!("smoke json is an object")
        };
        fields.retain(|(k, _)| k != "simd_path" && k != "simd_ratio");
        let back = SmokeResult::from_json(&doc).unwrap();
        assert_eq!(back.simd_path, "unrecorded");
        assert_eq!(back.simd_ratio, 0.0);
    }

    #[test]
    fn simd_ratio_reports_the_active_path() {
        let (path, ratio) = simd_ratio();
        assert_eq!(path, cubie_core::simd::active_path());
        assert!(ratio.is_finite() && ratio > 0.0, "ratio {ratio}");
    }

    #[test]
    fn v1_documents_are_rejected_with_guidance() {
        let doc = Json::parse(r#"{"schema": "cubie-bench-smoke/v1", "cells": 1}"#).unwrap();
        let err = SmokeResult::from_json(&doc).unwrap_err();
        assert!(err.contains("re-record"), "{err}");
    }

    #[test]
    fn identical_results_pass() {
        assert!(check_smoke(&sample(), &sample(), DEFAULT_FACTOR).is_empty());
    }

    #[test]
    fn wall_regression_fails_only_beyond_factor() {
        let base = sample();
        let mut cur = sample();
        cur.wall_ms = base.wall_ms * 2.9;
        assert!(check_smoke(&cur, &base, DEFAULT_FACTOR).is_empty());
        cur.wall_ms = base.wall_ms * 3.1;
        let failures = check_smoke(&cur, &base, DEFAULT_FACTOR);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("wall time regressed"));
    }

    #[test]
    fn wall_regression_is_phase_attributed() {
        let base = sample();
        let mut cur = sample();
        cur.wall_ms = base.wall_ms * 5.0;
        cur.phases[0].busy_ms = 4000.0; // prepare blew up
        let failures = check_smoke(&cur, &base, DEFAULT_FACTOR);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("phase prepare"), "{}", failures[0]);
        assert!(failures[0].contains("8.00×"), "{}", failures[0]);
    }

    #[test]
    fn sim_drift_and_shape_change_fail() {
        let base = sample();
        let mut cur = sample();
        cur.sim_total_s += 1e-6;
        cur.cells += 1;
        let failures = check_smoke(&cur, &base, DEFAULT_FACTOR);
        assert_eq!(failures.len(), 2);
    }

    #[test]
    fn wall_speedup_passes() {
        let base = sample();
        let mut cur = sample();
        cur.wall_ms = 1.0;
        assert!(check_smoke(&cur, &base, DEFAULT_FACTOR).is_empty());
    }

    #[test]
    fn cubie_smoke_reps_rejects_zero_and_garbage() {
        let _guard = crate::env_lock();
        std::env::set_var("CUBIE_SMOKE_REPS", "0");
        assert_eq!(smoke_reps(), SMOKE_REPS);
        std::env::set_var("CUBIE_SMOKE_REPS", "lots");
        assert_eq!(smoke_reps(), SMOKE_REPS);
        std::env::set_var("CUBIE_SMOKE_REPS", "1");
        assert_eq!(smoke_reps(), 1);
        std::env::remove_var("CUBIE_SMOKE_REPS");
        assert_eq!(smoke_reps(), SMOKE_REPS);
    }

    #[test]
    fn cubie_smoke_jobs_rejects_zero_and_garbage() {
        let _guard = crate::env_lock();
        std::env::set_var("CUBIE_SMOKE_JOBS", "0");
        assert_eq!(smoke_jobs(), SMOKE_JOBS);
        std::env::set_var("CUBIE_SMOKE_JOBS", "auto");
        assert_eq!(smoke_jobs(), SMOKE_JOBS);
        std::env::set_var("CUBIE_SMOKE_JOBS", "2");
        assert_eq!(smoke_jobs(), 2);
        std::env::remove_var("CUBIE_SMOKE_JOBS");
        assert_eq!(smoke_jobs(), SMOKE_JOBS);
    }

    #[test]
    fn cubie_smoke_factor_falls_back_on_garbage() {
        let _guard = crate::env_lock();
        std::env::set_var("CUBIE_SMOKE_FACTOR", "loose");
        assert_eq!(smoke_factor(), DEFAULT_FACTOR);
        std::env::set_var("CUBIE_SMOKE_FACTOR", "2.5");
        assert_eq!(smoke_factor(), 2.5);
        std::env::remove_var("CUBIE_SMOKE_FACTOR");
    }

    #[test]
    fn phase_rollup_groups_by_phase_in_pipeline_order() {
        let rec = |phase: &'static str, dur_ms: u64| cubie_obs::SpanRecord {
            phase,
            label: String::new(),
            tid: 0,
            start_ns: 0,
            dur_ns: dur_ms * 1_000_000,
            bytes: 0,
            items: 0,
            alloc_count: 3,
            alloc_bytes: 24,
        };
        let spans = vec![rec("time", 5), rec("prepare", 100), rec("time", 7)];
        let phases = phase_rollup(&spans);
        assert_eq!(phases.len(), 2);
        assert_eq!((phases[0].phase.as_str(), phases[0].calls), ("prepare", 1));
        assert_eq!((phases[1].phase.as_str(), phases[1].calls), ("time", 2));
        assert!((phases[1].busy_ms - 12.0).abs() < 1e-9);
        assert_eq!(
            (phases[1].alloc_count, phases[1].alloc_bytes),
            (6, 48),
            "allocation telemetry must sum across a phase's spans"
        );
    }

    #[test]
    fn pre_alloc_baselines_parse_with_zero_defaults() {
        // A v2 phase entry recorded before allocation telemetry must
        // parse as zero allocations (no baseline re-record required).
        let mut doc = sample().to_json();
        let Json::Object(ref mut fields) = doc else {
            panic!("smoke json is an object")
        };
        for (k, v) in fields.iter_mut() {
            if k != "phases" {
                continue;
            }
            let Json::Array(ref mut entries) = v else {
                panic!("phases is an array")
            };
            for entry in entries {
                let Json::Object(ref mut pf) = entry else {
                    panic!("phase entry is an object")
                };
                pf.retain(|(k, _)| k != "alloc_count" && k != "alloc_bytes");
            }
        }
        let back = SmokeResult::from_json(&doc).unwrap();
        assert!(back.phases.iter().all(|p| p.alloc_count == 0));
        assert!(back.phases.iter().all(|p| p.alloc_bytes == 0));
        // ... and such a baseline never trips the alloc gate, no matter
        // how many allocations the current run records.
        assert!(check_smoke(&sample(), &back, DEFAULT_FACTOR).is_empty());
    }

    #[test]
    fn alloc_regression_fails_only_beyond_factor() {
        let base = sample();
        let mut cur = sample();
        cur.phases[0].alloc_count = (total_allocs(&base) as f64 * 1.9) as u64;
        cur.phases[1].alloc_count = 0;
        assert!(check_smoke(&cur, &base, DEFAULT_FACTOR).is_empty());
        cur.phases[0].alloc_count = (total_allocs(&base) as f64 * 2.1) as u64;
        let failures = check_smoke(&cur, &base, DEFAULT_FACTOR);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("allocations regressed"),
            "{failures:?}"
        );
        assert!(failures[0].contains("phase prepare"), "{}", failures[0]);
    }

    #[test]
    fn alloc_gate_skipped_when_current_unrecorded() {
        // A binary without the counting allocator reads zero allocations;
        // its results must still pass against an alloc-recording baseline.
        let base = sample();
        let mut cur = sample();
        for p in &mut cur.phases {
            p.alloc_count = 0;
            p.alloc_bytes = 0;
        }
        assert!(check_smoke(&cur, &base, DEFAULT_FACTOR).is_empty());
    }

    #[test]
    fn cubie_smoke_alloc_factor_falls_back_on_garbage() {
        let _guard = crate::env_lock();
        std::env::set_var("CUBIE_SMOKE_ALLOC_FACTOR", "plenty");
        assert_eq!(smoke_alloc_factor(), DEFAULT_ALLOC_FACTOR);
        std::env::set_var("CUBIE_SMOKE_ALLOC_FACTOR", "8.0");
        assert_eq!(smoke_alloc_factor(), 8.0);
        std::env::remove_var("CUBIE_SMOKE_ALLOC_FACTOR");
    }
}
