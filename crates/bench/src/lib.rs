//! # cubie-bench
//!
//! The experiment harness: one binary per paper figure/table (run with
//! `cargo run --release -p cubie-bench --bin <name>`), plus Criterion
//! benchmarks of the actual Rust implementations.
//!
//! | binary                | regenerates            |
//! |-----------------------|------------------------|
//! | `fig3_performance`    | Figure 3               |
//! | `fig4_tc_vs_baseline` | Figure 4               |
//! | `fig5_cc_vs_tc`       | Figure 5               |
//! | `fig6_cce_vs_tc`      | Figure 6               |
//! | `fig7_edp`            | Figure 7               |
//! | `fig8_power_traces`   | Figure 8               |
//! | `fig9_roofline`       | Figure 9               |
//! | `fig10_corpus_pca`    | Figure 10              |
//! | `fig11_suite_pca`     | Figure 11              |
//! | `fig12_peak_evolution`| Figure 12              |
//! | `table5_specs`        | Table 5                |
//! | `table6_errors`       | Table 6                |
//! | `table7_coverage`     | Table 7                |
//! | `table234_inventory`  | Tables 2, 3, 4         |
//! | `observations`        | Observations O1–O9     |
//!
//! Every binary prints a markdown rendering and writes CSV data under
//! `results/`.
//!
//! ## The sweep engine
//!
//! All workload-sweeping binaries are **projections of one shared
//! [`sweep::SweepRunner`] result**: the engine enumerates the
//! workload × case × variant × device cross-product, prepares each
//! workload's Table 2/3/4 cases exactly once per process (memoized in
//! [`sweep::SweepCache`], keyed by `(workload, case, variant, scale)`),
//! executes the functional kernels and trace construction in parallel
//! via `cubie_core::par`, and hands each binary an ordered list of
//! [`sweep::SweepCell`]s to filter and print. Every binary (and
//! `cubie sweep`) therefore accepts:
//!
//! * `--filter workload=…|variant=…|device=…|case=…` — sweep a subset
//!   without paying full-suite cost;
//! * `--jobs N` — cap (or oversubscribe) the worker threads; results
//!   are bit-identical for every `N`, only wall-clock changes.

#![warn(missing_docs)]

pub mod artifacts;
pub mod smoke;
pub mod sweep;

use cubie_device::DeviceSpec;
pub use sweep::{Sweep, SweepCache, SweepCell, SweepConfig, SweepRunner};

use cubie_kernels::Workload;

/// Parse `value` (from environment variable `name`) as a `T`, reporting
/// what was wrong instead of discarding the failure — the pure core of
/// [`env_parse`], unit-testable without touching the process environment.
pub fn parse_env_value<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("ignoring {name}={value}: not a valid value for this variable"))
}

/// Read and parse environment variable `name`. Unset returns `None`
/// silently; a set-but-unparseable value (e.g. `CUBIE_JOBS=fast`) emits a
/// one-line stderr warning and returns `None`, so typos degrade loudly to
/// the default instead of being silently swallowed.
pub fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    let value = std::env::var(name).ok()?;
    match parse_env_value(name, &value) {
        Ok(v) => Some(v),
        Err(msg) => {
            eprintln!("warning: {msg}");
            None
        }
    }
}

/// Scale divisor for the Table 4 sparse matrices (1 = the published
/// sizes). Override with `CUBIE_SPARSE_SCALE`.
pub fn sparse_scale() -> usize {
    env_parse("CUBIE_SPARSE_SCALE").unwrap_or(1)
}

/// Scale divisor for the Table 3 graphs (default 16: the published
/// 90–234M-arc graphs need several GB to materialize). Override with
/// `CUBIE_GRAPH_SCALE`.
pub fn graph_scale() -> usize {
    env_parse("CUBIE_GRAPH_SCALE").unwrap_or(16)
}

/// The three Table 5 devices.
pub fn devices() -> Vec<DeviceSpec> {
    cubie_device::all_devices()
}

/// The paper's Figure 7 per-workload repeat counts ("each of the ten
/// workloads is executed 500, 60, 400, 5K, 25K, 50K, 2K, 6M, 1M, and 5K
/// times"), assigned in Table 2 order.
pub fn fig7_repeats(w: Workload) -> u64 {
    match w {
        Workload::Gemm => 500,
        Workload::Pic => 60,
        Workload::Fft => 400,
        Workload::Stencil => 5_000,
        Workload::Scan => 6_000_000 / cubie_kernels::scan::KERNEL_REPEATS,
        Workload::Reduction => 1_000_000 / cubie_kernels::scan::KERNEL_REPEATS,
        Workload::Bfs => 2_000,
        Workload::Gemv => 50_000,
        Workload::Spmv => 25_000,
        Workload::Spgemm => 5_000,
    }
}

/// Serializes tests that mutate the process environment (Rust runs test
/// threads concurrently within one process; `set_var` races otherwise).
#[cfg(test)]
pub(crate) fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_env_value_accepts_valid_input() {
        assert_eq!(parse_env_value::<usize>("CUBIE_JOBS", "8"), Ok(8));
        assert_eq!(parse_env_value::<f64>("CUBIE_SMOKE_FACTOR", "2.5"), Ok(2.5));
    }

    #[test]
    fn parse_env_value_names_the_variable_and_value_on_failure() {
        let err = parse_env_value::<usize>("CUBIE_JOBS", "fast").unwrap_err();
        assert!(err.contains("CUBIE_JOBS=fast"), "{err}");
    }

    #[test]
    fn cubie_jobs_typo_degrades_to_default_not_silence() {
        let _guard = env_lock();
        std::env::set_var("CUBIE_JOBS", "many");
        assert_eq!(env_parse::<usize>("CUBIE_JOBS"), None);
        std::env::set_var("CUBIE_JOBS", "6");
        assert_eq!(env_parse::<usize>("CUBIE_JOBS"), Some(6));
        std::env::remove_var("CUBIE_JOBS");
        assert_eq!(env_parse::<usize>("CUBIE_JOBS"), None);
    }

    #[test]
    fn cubie_sparse_scale_falls_back_on_garbage() {
        let _guard = env_lock();
        std::env::set_var("CUBIE_SPARSE_SCALE", "1.5");
        assert_eq!(sparse_scale(), 1);
        std::env::set_var("CUBIE_SPARSE_SCALE", "4");
        assert_eq!(sparse_scale(), 4);
        std::env::remove_var("CUBIE_SPARSE_SCALE");
    }

    #[test]
    fn cubie_graph_scale_falls_back_on_garbage() {
        let _guard = env_lock();
        std::env::set_var("CUBIE_GRAPH_SCALE", "");
        assert_eq!(graph_scale(), 16);
        std::env::set_var("CUBIE_GRAPH_SCALE", "32");
        assert_eq!(graph_scale(), 32);
        std::env::remove_var("CUBIE_GRAPH_SCALE");
    }

    #[test]
    fn fig7_repeats_cover_all() {
        for w in Workload::ALL {
            assert!(fig7_repeats(w) > 0);
        }
    }

    #[test]
    fn three_devices() {
        assert_eq!(devices().len(), 3);
    }
}
