//! # cubie-bench
//!
//! The experiment harness: one binary per paper figure/table (run with
//! `cargo run --release -p cubie-bench --bin <name>`), plus Criterion
//! benchmarks of the actual Rust implementations.
//!
//! | binary                | regenerates            |
//! |-----------------------|------------------------|
//! | `fig3_performance`    | Figure 3               |
//! | `fig4_tc_vs_baseline` | Figure 4               |
//! | `fig5_cc_vs_tc`       | Figure 5               |
//! | `fig6_cce_vs_tc`      | Figure 6               |
//! | `fig7_edp`            | Figure 7               |
//! | `fig8_power_traces`   | Figure 8               |
//! | `fig9_roofline`       | Figure 9               |
//! | `fig10_corpus_pca`    | Figure 10              |
//! | `fig11_suite_pca`     | Figure 11              |
//! | `fig12_peak_evolution`| Figure 12              |
//! | `table5_specs`        | Table 5                |
//! | `table6_errors`       | Table 6                |
//! | `table7_coverage`     | Table 7                |
//! | `table234_inventory`  | Tables 2, 3, 4         |
//! | `observations`        | Observations O1–O9     |
//!
//! Every binary prints a markdown rendering and writes CSV data under
//! `results/`.
//!
//! ## The sweep engine
//!
//! All workload-sweeping binaries are **projections of one shared
//! [`sweep::SweepRunner`] result**: the engine enumerates the
//! workload × case × variant × device cross-product, prepares each
//! workload's Table 2/3/4 cases exactly once per process (memoized in
//! [`sweep::SweepCache`], keyed by `(workload, case, variant, scale)`),
//! executes the functional kernels and trace construction in parallel
//! via `cubie_core::par`, and hands each binary an ordered list of
//! [`sweep::SweepCell`]s to filter and print. Every binary (and
//! `cubie sweep`) therefore accepts:
//!
//! * `--filter workload=…|variant=…|device=…|case=…` — sweep a subset
//!   without paying full-suite cost;
//! * `--jobs N` — cap (or oversubscribe) the worker threads; results
//!   are bit-identical for every `N`, only wall-clock changes.

#![warn(missing_docs)]

pub mod artifacts;
pub mod smoke;
pub mod sweep;

use cubie_device::DeviceSpec;
pub use sweep::{Sweep, SweepCache, SweepCell, SweepConfig, SweepRunner};

use cubie_kernels::Workload;

/// Scale divisor for the Table 4 sparse matrices (1 = the published
/// sizes). Override with `CUBIE_SPARSE_SCALE`.
pub fn sparse_scale() -> usize {
    std::env::var("CUBIE_SPARSE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Scale divisor for the Table 3 graphs (default 16: the published
/// 90–234M-arc graphs need several GB to materialize). Override with
/// `CUBIE_GRAPH_SCALE`.
pub fn graph_scale() -> usize {
    std::env::var("CUBIE_GRAPH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// The three Table 5 devices.
pub fn devices() -> Vec<DeviceSpec> {
    cubie_device::all_devices()
}

/// The paper's Figure 7 per-workload repeat counts ("each of the ten
/// workloads is executed 500, 60, 400, 5K, 25K, 50K, 2K, 6M, 1M, and 5K
/// times"), assigned in Table 2 order.
pub fn fig7_repeats(w: Workload) -> u64 {
    match w {
        Workload::Gemm => 500,
        Workload::Pic => 60,
        Workload::Fft => 400,
        Workload::Stencil => 5_000,
        Workload::Scan => 6_000_000 / cubie_kernels::scan::KERNEL_REPEATS,
        Workload::Reduction => 1_000_000 / cubie_kernels::scan::KERNEL_REPEATS,
        Workload::Bfs => 2_000,
        Workload::Gemv => 50_000,
        Workload::Spmv => 25_000,
        Workload::Spgemm => 5_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_repeats_cover_all() {
        for w in Workload::ALL {
            assert!(fig7_repeats(w) > 0);
        }
    }

    #[test]
    fn three_devices() {
        assert_eq!(devices().len(), 3);
    }
}
