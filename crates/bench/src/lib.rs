//! # cubie-bench
//!
//! The experiment harness: one binary per paper figure/table (run with
//! `cargo run --release -p cubie-bench --bin <name>`), plus Criterion
//! benchmarks of the actual Rust implementations.
//!
//! | binary                | regenerates            |
//! |-----------------------|------------------------|
//! | `fig3_performance`    | Figure 3               |
//! | `fig4_tc_vs_baseline` | Figure 4               |
//! | `fig5_cc_vs_tc`       | Figure 5               |
//! | `fig6_cce_vs_tc`      | Figure 6               |
//! | `fig7_edp`            | Figure 7               |
//! | `fig8_power_traces`   | Figure 8               |
//! | `fig9_roofline`       | Figure 9               |
//! | `fig10_corpus_pca`    | Figure 10              |
//! | `fig11_suite_pca`     | Figure 11              |
//! | `fig12_peak_evolution`| Figure 12              |
//! | `table5_specs`        | Table 5                |
//! | `table6_errors`       | Table 6                |
//! | `table7_coverage`     | Table 7                |
//! | `table234_inventory`  | Tables 2, 3, 4         |
//! | `observations`        | Observations O1–O9     |
//!
//! Every binary prints a markdown rendering and writes CSV data under
//! `results/`.

use cubie_device::{DeviceSpec, all_devices};
use cubie_kernels::{PreparedCase, Variant, Workload, prepare_cases};
use cubie_sim::{WorkloadTrace, time_workload};

/// Scale divisor for the Table 4 sparse matrices (1 = the published
/// sizes). Override with `CUBIE_SPARSE_SCALE`.
pub fn sparse_scale() -> usize {
    std::env::var("CUBIE_SPARSE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Scale divisor for the Table 3 graphs (default 16: the published
/// 90–234M-arc graphs need several GB to materialize). Override with
/// `CUBIE_GRAPH_SCALE`.
pub fn graph_scale() -> usize {
    std::env::var("CUBIE_GRAPH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// One measured cell of the Figure 3 sweep.
pub struct SweepCell {
    /// Workload.
    pub workload: Workload,
    /// Case label.
    pub case: String,
    /// Variant.
    pub variant: Variant,
    /// Device name.
    pub device: String,
    /// Simulated execution time, seconds.
    pub time_s: f64,
    /// Throughput in the workload's unit (useful work / time / 1e9).
    pub gthroughput: f64,
}

/// Prepared cases plus their traces for one workload (inputs generated
/// once, traces cached per variant).
pub struct WorkloadSweep {
    /// The workload.
    pub workload: Workload,
    /// Case labels.
    pub labels: Vec<String>,
    /// Useful work per case.
    pub useful: Vec<f64>,
    /// `traces[case][variant_index]`, aligned with `workload.variants()`.
    pub traces: Vec<Vec<WorkloadTrace>>,
}

impl WorkloadSweep {
    /// Prepare one workload's five cases and all variant traces.
    pub fn prepare(w: Workload) -> Self {
        let cases: Vec<PreparedCase> = prepare_cases(w, sparse_scale(), graph_scale());
        let variants = w.variants();
        let mut labels = Vec::new();
        let mut useful = Vec::new();
        let mut traces = Vec::new();
        for case in &cases {
            labels.push(case.label());
            useful.push(case.useful_work());
            traces.push(
                variants
                    .iter()
                    .map(|v| case.trace(*v).expect("variant is evaluated"))
                    .collect(),
            );
        }
        Self {
            workload: w,
            labels,
            useful,
            traces,
        }
    }

    /// Time every (case, variant) pair on `device`.
    pub fn cells(&self, device: &DeviceSpec) -> Vec<SweepCell> {
        let variants = self.workload.variants();
        let mut out = Vec::new();
        for (ci, label) in self.labels.iter().enumerate() {
            for (vi, v) in variants.iter().enumerate() {
                let t = time_workload(device, &self.traces[ci][vi]);
                out.push(SweepCell {
                    workload: self.workload,
                    case: label.clone(),
                    variant: *v,
                    device: device.name.clone(),
                    time_s: t.total_s,
                    gthroughput: self.useful[ci] / t.total_s / 1e9,
                });
            }
        }
        out
    }

    /// Geomean speedup of variant `a` over `b` on `device` across cases.
    pub fn geomean_speedup(&self, device: &DeviceSpec, a: Variant, b: Variant) -> Option<f64> {
        let variants = self.workload.variants();
        let ia = variants.iter().position(|v| *v == a)?;
        let ib = variants.iter().position(|v| *v == b)?;
        let mut log_sum = 0.0;
        for ci in 0..self.labels.len() {
            let ta = time_workload(device, &self.traces[ci][ia]).total_s;
            let tb = time_workload(device, &self.traces[ci][ib]).total_s;
            log_sum += (tb / ta).ln();
        }
        Some((log_sum / self.labels.len() as f64).exp())
    }
}

/// The three Table 5 devices.
pub fn devices() -> Vec<DeviceSpec> {
    all_devices()
}

/// The paper's Figure 7 per-workload repeat counts ("each of the ten
/// workloads is executed 500, 60, 400, 5K, 25K, 50K, 2K, 6M, 1M, and 5K
/// times"), assigned in Table 2 order.
pub fn fig7_repeats(w: Workload) -> u64 {
    match w {
        Workload::Gemm => 500,
        Workload::Pic => 60,
        Workload::Fft => 400,
        Workload::Stencil => 5_000,
        Workload::Scan => 6_000_000 / cubie_kernels::scan::KERNEL_REPEATS,
        Workload::Reduction => 1_000_000 / cubie_kernels::scan::KERNEL_REPEATS,
        Workload::Bfs => 2_000,
        Workload::Gemv => 50_000,
        Workload::Spmv => 25_000,
        Workload::Spgemm => 5_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_prepares_and_times() {
        let sweep = WorkloadSweep::prepare(Workload::Scan);
        assert_eq!(sweep.labels.len(), 5);
        let cells = sweep.cells(&devices()[1]);
        // 4 variants × 5 cases.
        assert_eq!(cells.len(), 20);
        assert!(cells.iter().all(|c| c.time_s > 0.0 && c.gthroughput > 0.0));
    }

    #[test]
    fn geomean_speedup_matches_direction() {
        let sweep = WorkloadSweep::prepare(Workload::Reduction);
        let d = &devices()[0];
        let s = sweep
            .geomean_speedup(d, Variant::Tc, Variant::Baseline)
            .unwrap();
        assert!(s > 1.0, "reduction TC speedup {s}");
    }

    #[test]
    fn fig7_repeats_cover_all() {
        for w in Workload::ALL {
            assert!(fig7_repeats(w) > 0);
        }
    }
}
