//! The canonical artifact layer: every figure/table binary (and
//! `observations`) routes its output through one of these builders, so
//! the data behind each CSV also exists as a schema-versioned canonical
//! JSON document (`results/<name>.json`) that the golden-regression
//! harness (`cubie golden record|check`) can snapshot and diff.
//!
//! Column classes follow the contract in `cubie-golden`:
//!
//! * **exact** — emulator numerics (Table 6 FP64 error stats) and
//!   instruction/byte counters (`trace_counters`): a refactor of the MMA
//!   emulator or kernels must not move one ulp or one count;
//! * **epsilon** — simulated times, throughputs, power, energy, EDP and
//!   PCA coordinates: small model-parameter drift is tolerated;
//! * **ordinal** — who-wins / limiter / quadrant claims: the paper's
//!   observations must keep their *direction* even if magnitudes drift.
//!
//! [`GoldenCtx`] pins the reduced scale the committed goldens under
//! `results/golden/` are recorded at, and lazily shares one sweep (and
//! one Table 6 run) across all builders in a record/check pass.

use std::path::PathBuf;
use std::sync::OnceLock;

use cubie_analysis::advisor::{advise, reference_mapping};
use cubie_analysis::coverage::{
    graph_corpus_study, matrix_corpus_study, suite_diversity_study, CorpusStudy, SuiteStudy,
    TABLE7, TABLE7_FEATURES,
};
use cubie_analysis::errors::{table6, ErrorRow, ErrorScale};
use cubie_analysis::quadrants::utilizations;
use cubie_analysis::report;
use cubie_device::{all_devices, b200, DeviceSpec, PEAK_EVOLUTION};
use cubie_golden::{Artifact, Column, Json};
use cubie_kernels::{gemm, MmaGen, Precision, Quadrant, Variant, Workload};
use cubie_sim::{power_report, power_trace, time_workload, Roofline};

use crate::fig7_repeats;
use crate::sweep::{Sweep, SweepConfig, SweepRunner};

/// Relative tolerance for simulated times/throughput/power/energy/EDP.
pub const TIME_EPS: f64 = 1e-6;
/// Relative tolerance for PCA coordinates and other derived statistics.
pub const STAT_EPS: f64 = 1e-6;
/// Lenient tolerance for observation magnitudes (their *direction* is
/// what the ordinal claim column pins).
pub const OBS_EPS: f64 = 1e-3;

/// Sparse-matrix scale divisor the goldens are recorded at.
pub const GOLDEN_SPARSE_SCALE: usize = 64;
/// Graph scale divisor the goldens are recorded at.
pub const GOLDEN_GRAPH_SCALE: usize = 512;

/// Scale/scope configuration of a golden record/check pass.
#[derive(Debug, Clone)]
pub struct GoldenConfig {
    /// Table 4 sparse-matrix scale divisor.
    pub sparse_scale: usize,
    /// Table 3 graph scale divisor.
    pub graph_scale: usize,
    /// Figure 10 synthetic matrix-corpus size.
    pub matrix_corpus: usize,
    /// Figure 10 synthetic graph-corpus size.
    pub graph_corpus: usize,
    /// Samples per Figure 8 power trace.
    pub power_samples: usize,
    /// Table 6 case sizing.
    pub error_scale: ErrorScale,
    /// Workloads in scope (Table 2 order).
    pub workloads: Vec<Workload>,
}

impl Default for GoldenConfig {
    fn default() -> Self {
        GoldenConfig {
            sparse_scale: GOLDEN_SPARSE_SCALE,
            graph_scale: GOLDEN_GRAPH_SCALE,
            matrix_corpus: 80,
            graph_corpus: 40,
            power_samples: 24,
            error_scale: ErrorScale::Quick,
            workloads: Workload::ALL.to_vec(),
        }
    }
}

/// Shared state of one record/check pass: the configuration plus the
/// lazily-built sweep and Table 6 rows every builder projects from.
pub struct GoldenCtx {
    /// The pinned scales/scopes.
    pub config: GoldenConfig,
    sweep: OnceLock<Sweep>,
    errors: OnceLock<Vec<ErrorRow>>,
}

impl GoldenCtx {
    /// A context over `config`.
    pub fn new(config: GoldenConfig) -> Self {
        GoldenCtx {
            config,
            sweep: OnceLock::new(),
            errors: OnceLock::new(),
        }
    }

    /// The full workload × case × variant × device sweep at the golden
    /// scale (built once, via the process-global sweep cache).
    pub fn sweep(&self) -> &Sweep {
        self.sweep.get_or_init(|| {
            let cfg = SweepConfig {
                workloads: self.config.workloads.clone(),
                sparse_scale: self.config.sparse_scale,
                graph_scale: self.config.graph_scale,
                ..SweepConfig::default()
            };
            SweepRunner::new(cfg).run()
        })
    }

    /// The Table 6 error study at the golden scale (built once).
    pub fn errors(&self) -> &[ErrorRow] {
        self.errors.get_or_init(|| table6(self.config.error_scale))
    }
}

/// Names of every artifact the golden harness records and checks, in
/// check order. (The `ext_segmented_sweep` binary also emits a canonical
/// artifact, but its 16M-element cases are too heavy for the CI gate.)
pub const GOLDEN_ARTIFACTS: &[&str] = &[
    "fig3_performance",
    "fig4_tc_vs_baseline",
    "fig5_cc_vs_tc",
    "fig6_cce_vs_tc",
    "fig7_edp",
    "fig8_power_traces",
    "fig9_roofline",
    "fig10_corpus_pca",
    "fig11_suite_pca",
    "fig12_peak_evolution",
    "table5_specs",
    "table6_errors",
    "table7_coverage",
    "table234_inventory",
    "trace_counters",
    "observations",
    "ext_advisor_validation",
    "ext_future_fp64",
    "ext_precision_sweep",
    "ext_precision_mma",
];

/// Build one golden artifact by name (`None` for unknown names).
pub fn build(ctx: &GoldenCtx, name: &str) -> Option<Artifact> {
    let c = &ctx.config;
    Some(match name {
        "fig3_performance" => fig3(ctx.sweep()),
        "fig4_tc_vs_baseline" => fig4(ctx.sweep()),
        "fig5_cc_vs_tc" => fig5(ctx.sweep()),
        "fig6_cce_vs_tc" => fig6(ctx.sweep()),
        "fig7_edp" => fig7(ctx.sweep()),
        "fig8_power_traces" => fig8(ctx.sweep(), c.power_samples),
        "fig9_roofline" => fig9(ctx.sweep()),
        "fig10_corpus_pca" => fig10(c.matrix_corpus, c.graph_corpus),
        "fig11_suite_pca" => fig11(c.sparse_scale, c.graph_scale),
        "fig12_peak_evolution" => fig12(),
        "table5_specs" => table5(),
        "table6_errors" => table6_artifact(ctx.errors(), c.error_scale),
        "table7_coverage" => table7(),
        "table234_inventory" => table234(c.sparse_scale, c.graph_scale),
        "trace_counters" => trace_counters(ctx.sweep()),
        "observations" => observations(ctx.sweep(), ctx.errors()),
        "ext_advisor_validation" => ext_advisor(ctx.sweep()),
        "ext_future_fp64" => ext_future(ctx.sweep()),
        "ext_precision_sweep" => ext_precision_sweep(),
        "ext_precision_mma" => ext_precision_mma(),
        _ => return None,
    })
}

/// The committed golden-snapshot store: `results/golden/` (override
/// with `CUBIE_GOLDEN_DIR`, e.g. from integration tests).
pub fn golden_dir() -> PathBuf {
    let dir = match std::env::var("CUBIE_GOLDEN_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => report::results_dir().join("golden"),
    };
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write `artifact` as both CSV and canonical JSON under `results/`,
/// returning the two paths.
pub fn emit(artifact: &Artifact) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = report::results_dir();
    let (headers, rows) = artifact.csv();
    let csv_path = dir.join(format!("{}.csv", artifact.name));
    report::write_csv(&csv_path, &headers, &rows)?;
    let json_path = dir.join(format!("{}.json", artifact.name));
    artifact.write(&json_path)?;
    Ok((csv_path, json_path))
}

/// [`emit`], then print the standard `wrote …` trailer of the harness
/// binaries.
pub fn emit_and_announce(artifact: &Artifact) {
    // Harness binaries call this straight from `main`; a full disk or a
    // read-only results/ dir is an operator problem, not a bug — report
    // it as one diagnostic line and exit nonzero instead of panicking.
    let (csv, json) = match emit(artifact) {
        Ok(paths) => paths,
        Err(e) => {
            eprintln!(
                "cubie: error: cannot write artifact `{}`: {e}",
                artifact.name
            );
            std::process::exit(1);
        }
    };
    println!("\nwrote {} and {}", csv.display(), json.display());
}

fn scale_meta(a: Artifact, sweep: &Sweep) -> Artifact {
    a.with_meta("sparse_scale", sweep.config.sparse_scale)
        .with_meta("graph_scale", sweep.config.graph_scale)
}

/// The device the paper pins single-device studies to (H200), or the
/// sweep's first device when H200 was filtered out.
fn pinned_device(sweep: &Sweep) -> DeviceSpec {
    let devs = sweep.devices();
    devs.iter()
        .find(|d| d.name.contains("H200"))
        .unwrap_or(&devs[0])
        .clone()
}

/// Figure 3: absolute performance of every swept cell.
pub fn fig3(sweep: &Sweep) -> Artifact {
    let mut a = Artifact::new(
        "fig3_performance",
        vec![
            Column::exact("workload").key(),
            Column::exact("device").key(),
            Column::exact("case").key(),
            Column::exact("variant").key(),
            Column::eps("time_s", TIME_EPS),
            Column::eps("gthroughput", TIME_EPS),
        ],
    );
    for c in &sweep.cells {
        a.push(vec![
            c.workload.spec().name.into(),
            c.device.as_str().into(),
            c.case.as_str().into(),
            c.variant.label().into(),
            c.time_s().into(),
            c.gthroughput().into(),
        ]);
    }
    scale_meta(a, sweep)
}

fn speedup_artifact(
    name: &str,
    sweep: &Sweep,
    num: Variant,
    den: Variant,
    include: impl Fn(Workload) -> bool,
) -> Artifact {
    let mut a = Artifact::new(
        name,
        vec![
            Column::exact("workload").key(),
            Column::exact("device").key(),
            Column::eps("speedup", TIME_EPS),
            Column::ordinal("wins"),
        ],
    );
    for &w in sweep.workloads() {
        if !include(w) {
            continue;
        }
        for dev in sweep.devices() {
            let Some(s) = sweep.geomean_speedup(w, &dev.name, num, den) else {
                continue;
            };
            let wins = if s > 1.0 { num.label() } else { den.label() };
            a.push(vec![
                w.spec().name.into(),
                dev.name.as_str().into(),
                s.into(),
                wins.into(),
            ]);
        }
    }
    scale_meta(a, sweep)
}

/// Figure 4: geomean TC speedup over the baselines, with the who-wins
/// direction as an ordinal claim.
pub fn fig4(sweep: &Sweep) -> Artifact {
    speedup_artifact(
        "fig4_tc_vs_baseline",
        sweep,
        Variant::Tc,
        Variant::Baseline,
        |w| w.spec().baseline.is_some(),
    )
}

/// Figure 5: geomean CC speedup over TC.
pub fn fig5(sweep: &Sweep) -> Artifact {
    speedup_artifact("fig5_cc_vs_tc", sweep, Variant::Cc, Variant::Tc, |_| true)
}

/// Figure 6: geomean CC-E speedup over TC (Quadrants II–IV).
pub fn fig6(sweep: &Sweep) -> Artifact {
    speedup_artifact("fig6_cce_vs_tc", sweep, Variant::CcE, Variant::Tc, |w| {
        w.spec().distinct_cce
    })
}

/// Figure 7: EDP on the pinned device, representative case, paper
/// repeat counts.
pub fn fig7(sweep: &Sweep) -> Artifact {
    let dev = pinned_device(sweep);
    let mut a = Artifact::new(
        "fig7_edp",
        vec![
            Column::exact("workload").key(),
            Column::exact("variant").key(),
            Column::eps("avg_power_w", TIME_EPS),
            Column::eps("time_s", TIME_EPS),
            Column::eps("energy_j", TIME_EPS),
            Column::eps("edp", TIME_EPS),
        ],
    );
    for &w in sweep.workloads() {
        let repeats = fig7_repeats(w);
        for v in [Variant::Baseline, Variant::Tc, Variant::Cc, Variant::CcE] {
            let Some(cell) = sweep.cell(w, 2, v, &dev.name) else {
                continue;
            };
            let r = power_report(&dev, &cell.timing, repeats);
            let mut row: Vec<Json> = vec![w.spec().name.into(), v.label().into()];
            row.extend(r.named_fields().iter().map(|(_, v)| Json::Float(*v)));
            a.push(row);
        }
    }
    scale_meta(a, sweep)
        .with_meta("device", dev.name.as_str())
        .with_meta("case_idx", 2usize)
}

/// Figure 8: EMA-smoothed power traces on the pinned device.
pub fn fig8(sweep: &Sweep, samples: usize) -> Artifact {
    let dev = pinned_device(sweep);
    let mut a = Artifact::new(
        "fig8_power_traces",
        vec![
            Column::exact("workload").key(),
            Column::exact("variant").key(),
            Column::exact("sample").key(),
            Column::eps("t_s", TIME_EPS),
            Column::eps("power_w", TIME_EPS),
        ],
    );
    for &w in sweep.workloads() {
        let repeats = fig7_repeats(w);
        for v in sweep.config.variants_of(w) {
            let Some(cell) = sweep.cell(w, 2, v, &dev.name) else {
                continue;
            };
            let total = cell.timing.total_s * repeats as f64 + 1.0;
            let dt = total / samples as f64;
            for (i, s) in power_trace(&dev, &cell.timing, repeats, dt)
                .iter()
                .enumerate()
            {
                a.push(vec![
                    w.spec().name.into(),
                    v.label().into(),
                    i.into(),
                    s.t_s.into(),
                    s.power_w.into(),
                ]);
            }
        }
    }
    scale_meta(a, sweep)
        .with_meta("device", dev.name.as_str())
        .with_meta("case_idx", 2usize)
        .with_meta("samples", samples)
}

/// Figure 9: cache-aware roofline placements on the pinned device (BFS
/// excluded: bitwise work has no FP64 placement).
pub fn fig9(sweep: &Sweep) -> Artifact {
    let dev = pinned_device(sweep);
    let roof = Roofline::of(&dev);
    let mut a = Artifact::new(
        "fig9_roofline",
        vec![
            Column::exact("kernel").key(),
            Column::eps("ai", STAT_EPS),
            Column::eps("gflops", TIME_EPS),
            Column::ordinal("dram_bound"),
        ],
    );
    for &w in sweep.workloads() {
        if w == Workload::Bfs {
            continue;
        }
        for v in sweep.config.variants_of(w) {
            let Some(cell) = sweep.cell(w, 2, v, &dev.name) else {
                continue;
            };
            let name = format!("{}-{}", w.spec().name, v.label());
            if let Some(p) = roof.place(&name, &cell.timing) {
                let above = p.gflops > roof.dram_bound(p.ai);
                a.push(vec![
                    name.into(),
                    p.ai.into(),
                    p.gflops.into(),
                    if above {
                        "above_dram_roof"
                    } else {
                        "below_dram_roof"
                    }
                    .into(),
                ]);
            }
        }
    }
    scale_meta(a, sweep)
        .with_meta("device", dev.name.as_str())
        .with_meta("case_idx", 2usize)
}

fn push_corpus_study(a: &mut Artifact, study_name: &str, study: &CorpusStudy) {
    for (kind, points) in [
        ("corpus", &study.corpus),
        ("representative", &study.representatives),
    ] {
        for p in points {
            a.push(vec![
                study_name.into(),
                kind.into(),
                p.name.as_str().into(),
                p.xy[0].into(),
                p.xy[1].into(),
            ]);
        }
    }
}

/// Figure 10: input-coverage PCA of the synthetic matrix/graph corpora.
pub fn fig10(matrix_corpus: usize, graph_corpus: usize) -> Artifact {
    fig10_from(
        &graph_corpus_study(graph_corpus, 64, 0xF16A),
        &matrix_corpus_study(matrix_corpus, 8, 0xF16B),
        matrix_corpus,
        graph_corpus,
    )
}

/// [`fig10`] from already-computed studies (the binary prints them too).
pub fn fig10_from(
    graphs: &CorpusStudy,
    matrices: &CorpusStudy,
    matrix_corpus: usize,
    graph_corpus: usize,
) -> Artifact {
    let mut a = Artifact::new(
        "fig10_corpus_pca",
        vec![
            Column::exact("study").key(),
            Column::exact("kind").key(),
            Column::exact("point").key(),
            Column::eps("pc1", STAT_EPS),
            Column::eps("pc2", STAT_EPS),
        ],
    );
    push_corpus_study(&mut a, "graphs", graphs);
    push_corpus_study(&mut a, "matrices", matrices);
    a.with_meta("matrix_corpus", matrix_corpus)
        .with_meta("graph_corpus", graph_corpus)
}

/// Figure 11: suite-diversity PCA (Rodinia / SHOC / Cubie) on H200.
pub fn fig11(sparse_scale: usize, graph_scale: usize) -> Artifact {
    let study = suite_diversity_study(&cubie_device::h200(), sparse_scale, graph_scale);
    fig11_from(&study, sparse_scale, graph_scale)
}

/// [`fig11`] from an already-computed study.
pub fn fig11_from(study: &SuiteStudy, sparse_scale: usize, graph_scale: usize) -> Artifact {
    let mut a = Artifact::new(
        "fig11_suite_pca",
        vec![
            Column::exact("suite").key(),
            Column::exact("workload").key(),
            Column::eps("pc1", STAT_EPS),
            Column::eps("pc2", STAT_EPS),
        ],
    );
    for (name, suite, xy) in &study.points {
        a.push(vec![
            (*suite).into(),
            name.as_str().into(),
            xy[0].into(),
            xy[1].into(),
        ]);
    }
    a.with_meta("sparse_scale", sparse_scale)
        .with_meta("graph_scale", graph_scale)
}

/// Figure 12: peak-throughput evolution (device constants, bit-exact).
pub fn fig12() -> Artifact {
    let mut a = Artifact::new(
        "fig12_peak_evolution",
        vec![
            Column::exact("arch").key(),
            Column::exact("fp16_tc"),
            Column::exact("fp16_cc"),
            Column::exact("fp64_tc"),
            Column::exact("fp64_cc"),
        ],
    );
    for g in &PEAK_EVOLUTION {
        a.push(vec![
            g.arch.to_string().into(),
            g.fp16_tc.into(),
            g.fp16_cc.into(),
            g.fp64_tc.into(),
            g.fp64_cc.into(),
        ]);
    }
    a
}

/// Table 5: device specifications (constants, bit-exact).
pub fn table5() -> Artifact {
    let mut a = Artifact::new(
        "table5_specs",
        vec![
            Column::exact("device").key(),
            Column::exact("tc_fp64"),
            Column::exact("cc_fp64"),
            Column::exact("dram_gbs"),
            Column::exact("dram_gb"),
            Column::exact("sms"),
            Column::exact("tdp_w"),
        ],
    );
    for d in all_devices() {
        a.push(vec![
            d.name.as_str().into(),
            d.tc_fp64_tflops.into(),
            d.cc_fp64_tflops.into(),
            d.dram_bw_gbs.into(),
            d.dram_gb.into(),
            d.sm_count.into(),
            d.power.tdp_w.into(),
        ]);
    }
    a
}

/// Table 6: FP64 error statistics — **bit-exact**: these are the
/// emulator's numerics, the most regression-sensitive artifact of the
/// suite (a one-ulp change in the MMA accumulation chain lands here).
pub fn table6_artifact(rows: &[ErrorRow], scale: ErrorScale) -> Artifact {
    let mut a = Artifact::new(
        "table6_errors",
        vec![
            Column::exact("workload").key(),
            Column::exact("variant").key(),
            Column::exact("case"),
            Column::exact("avg_error"),
            Column::exact("max_error"),
            Column::exact("n"),
        ],
    );
    for r in rows {
        let w = r.workload.spec().name;
        let mut push = |variant: &str, e: cubie_core::ErrorStats| {
            a.push(vec![
                w.into(),
                variant.into(),
                r.case_label.as_str().into(),
                e.avg.into(),
                e.max.into(),
                e.n.into(),
            ]);
        };
        if let Some(b) = r.baseline {
            push("Baseline", b);
        }
        push("TC/CC", r.tc_cc);
        if let Some(c) = r.cce {
            push("CC-E", c);
        }
    }
    a.with_meta(
        "error_scale",
        if scale == ErrorScale::Quick {
            "quick"
        } else {
            "full"
        },
    )
}

/// Table 7: dwarf/feature coverage counts (constants, bit-exact).
pub fn table7() -> Artifact {
    let mut a = Artifact::new(
        "table7_coverage",
        vec![
            Column::exact("dwarf_or_feature").key(),
            Column::exact("rodinia"),
            Column::exact("shoc"),
            Column::exact("cubie"),
        ],
    );
    for r in &TABLE7 {
        a.push(vec![
            r.dwarf.into(),
            u64::from(r.rodinia).into(),
            u64::from(r.shoc).into(),
            u64::from(r.cubie).into(),
        ]);
    }
    for (feature, suites) in &TABLE7_FEATURES {
        a.push(vec![
            (*feature).into(),
            suites[0].into(),
            suites[1].into(),
            suites[2].into(),
        ]);
    }
    a
}

/// Tables 2/3/4: the workload inventory and the generated graph/matrix
/// sizes at the current scale, in long `(table, name, field, value)`
/// form — all bit-exact (generator output sizes are integer counters).
pub fn table234(sparse_scale: usize, graph_scale: usize) -> Artifact {
    let mut a = Artifact::new(
        "table234_inventory",
        vec![
            Column::exact("table").key(),
            Column::exact("name").key(),
            Column::exact("field").key(),
            Column::exact("value"),
        ],
    );
    let mut push = |table: &str, name: &str, field: &str, value: Json| {
        a.push(vec![table.into(), name.into(), field.into(), value]);
    };
    for w in Workload::ALL {
        let s = w.spec();
        push("T2", s.name, "quadrant", format!("Q{}", s.quadrant).into());
        push("T2", s.name, "dwarf", s.dwarf.into());
        push("T2", s.name, "baseline", s.baseline.unwrap_or("-").into());
        // Labels are scale-independent; the tiny 1/64, 1/1024 scale keeps
        // this preparation negligible (same trick as the table binary).
        push(
            "T2",
            s.name,
            "cases",
            crate::sweep::case_labels(w, 64, 1024).join(", ").into(),
        );
    }
    for (info, g) in cubie_graph::generators::table3_graphs(graph_scale) {
        push("T3", info.name, "paper_vertices", info.vertices.into());
        push("T3", info.name, "paper_edges", info.edges.into());
        push("T3", info.name, "generated_vertices", g.n.into());
        push("T3", info.name, "generated_arcs", g.num_arcs().into());
    }
    for (info, m) in cubie_sparse::generators::table4_matrices(sparse_scale) {
        push("T4", info.name, "paper_rows", info.rows.into());
        push("T4", info.name, "paper_nnz", info.nnz.into());
        push("T4", info.name, "generated_rows", m.rows.into());
        push("T4", info.name, "generated_nnz", m.nnz().into());
    }
    a.with_meta("sparse_scale", sparse_scale)
        .with_meta("graph_scale", graph_scale)
}

/// Instruction/byte counters of every swept (workload, case, variant)
/// trace — **bit-exact**, the emulator's operational contract. Counters
/// are device-independent, so one device's cells cover the sweep.
pub fn trace_counters(sweep: &Sweep) -> Artifact {
    let mut columns = vec![
        Column::exact("workload").key(),
        Column::exact("case").key(),
        Column::exact("variant").key(),
        Column::exact("kernel_launches"),
    ];
    columns.extend(
        cubie_core::OpCounters::default()
            .named_counts()
            .iter()
            .map(|(name, _)| Column::exact(name)),
    );
    let mut a = Artifact::new("trace_counters", columns);
    let Some(first_device) = sweep.devices().first().map(|d| d.name.clone()) else {
        return scale_meta(a, sweep);
    };
    for c in sweep.cells.iter().filter(|c| c.device == first_device) {
        let mut row: Vec<Json> = vec![
            c.workload.spec().name.into(),
            c.case_idx.into(),
            c.variant.label().into(),
            c.timing.kernels.len().into(),
        ];
        row.extend(
            c.timing
                .total_ops
                .named_counts()
                .iter()
                .map(|(_, v)| Json::from(*v)),
        );
        a.push(row);
    }
    scale_meta(a, sweep)
}

/// The nine observations (O1–O9) as measured, directional claims: the
/// `claim` column is ordinal — magnitudes may drift inside `value`'s
/// lenient epsilon, but a direction inversion (TC stops beating the
/// baseline, EDP stops shrinking, Cubie stops being the widest suite)
/// fails the check.
pub fn observations(sweep: &Sweep, errors: &[ErrorRow]) -> Artifact {
    let mut a = Artifact::new(
        "observations",
        vec![
            Column::exact("observation").key(),
            Column::exact("subject").key(),
            Column::eps("value", OBS_EPS),
            Column::ordinal("claim"),
        ],
    );
    let dev = pinned_device(sweep);
    let devs = sweep.devices();

    // O1 — the Quadrant II–IV kernels ship dedicated MMU formats (a
    // structural property of the suite, recorded as pure claims).
    for &w in sweep.workloads() {
        if w.spec().quadrant != Quadrant::I {
            a.push(vec![
                "O1".into(),
                w.spec().name.into(),
                Json::Null,
                "mmu_format".into(),
            ]);
        }
    }

    // O2 — the four utilization quadrants.
    for u in utilizations() {
        if !sweep.workloads().contains(&u.workload) {
            continue;
        }
        let spec = u.workload.spec();
        a.push(vec![
            "O2".into(),
            format!("{} input_util", spec.name).into(),
            u.input.into(),
            format!("Q{}", spec.quadrant).into(),
        ]);
        a.push(vec![
            "O2".into(),
            format!("{} output_util", spec.name).into(),
            u.output.into(),
            format!("Q{}", spec.quadrant).into(),
        ]);
    }

    // O3 — TC beats the baselines portably.
    let (mut wins, mut total) = (0u64, 0u64);
    for &w in sweep.workloads() {
        if w.spec().baseline.is_none() {
            continue;
        }
        for d in devs {
            let Some(s) = sweep.geomean_speedup(w, &d.name, Variant::Tc, Variant::Baseline) else {
                continue;
            };
            total += 1;
            if s > 1.0 {
                wins += 1;
            }
            a.push(vec![
                "O3".into(),
                format!("{} @ {}", w.spec().name, d.name).into(),
                s.into(),
                if s > 1.0 { "tc_wins" } else { "baseline_wins" }.into(),
            ]);
        }
    }
    a.push(vec![
        "O3".into(),
        "wins".into(),
        Json::Null,
        format!("{wins}/{total}").into(),
    ]);

    // O4 — CC retains a fraction of TC.
    for &w in sweep.workloads() {
        for d in devs {
            let Some(s) = sweep.geomean_speedup(w, &d.name, Variant::Cc, Variant::Tc) else {
                continue;
            };
            a.push(vec![
                "O4".into(),
                format!("{} @ {}", w.spec().name, d.name).into(),
                s.into(),
                if s <= 1.0 {
                    "tc_retains_advantage"
                } else {
                    "cc_faster"
                }
                .into(),
            ]);
        }
    }

    // O5 — essential-only CC on the pinned device.
    for &w in sweep.workloads().iter().filter(|w| w.spec().distinct_cce) {
        let Some(s) = sweep.geomean_speedup(w, &dev.name, Variant::CcE, Variant::Tc) else {
            continue;
        };
        a.push(vec![
            "O5".into(),
            w.spec().name.into(),
            s.into(),
            if s > 1.0 { "cce_wins" } else { "tc_wins" }.into(),
        ]);
    }

    // O6 — per-quadrant EDP reduction on the pinned device.
    for q in [Quadrant::I, Quadrant::II, Quadrant::III, Quadrant::IV] {
        let mut tc = Vec::new();
        let mut base = Vec::new();
        for &w in sweep.workloads().iter().filter(|w| w.spec().quadrant == q) {
            let repeats = fig7_repeats(w);
            if let Some(c) = sweep.cell(w, 2, Variant::Tc, &dev.name) {
                tc.push(power_report(&dev, &c.timing, repeats).edp);
            }
            if let Some(c) = sweep.cell(w, 2, Variant::Baseline, &dev.name) {
                base.push(power_report(&dev, &c.timing, repeats).edp);
            }
        }
        if !tc.is_empty() && !base.is_empty() {
            let cut = 1.0 - report::geomean(&tc) / report::geomean(&base);
            a.push(vec![
                "O6".into(),
                format!("Q{q}").into(),
                cut.into(),
                if cut > 0.0 {
                    "edp_reduced"
                } else {
                    "edp_increased"
                }
                .into(),
            ]);
        }
    }

    // O7 — TC ≡ CC bit-identity (asserted inside the Table 6 run; the
    // claim records that the assertion executed for the workload).
    for r in errors {
        if sweep.workloads().contains(&r.workload) {
            a.push(vec![
                "O7".into(),
                r.workload.spec().name.into(),
                r.tc_cc.max.into(),
                "tc_cc_bit_identical".into(),
            ]);
        }
    }

    // O8 — MMU layouts regularize memory access.
    for w in [Workload::Spmv, Workload::Gemv, Workload::Stencil] {
        if !sweep.workloads().contains(&w) {
            continue;
        }
        let (Some(tct), Some(bt)) = (
            sweep.trace(w, 2, Variant::Tc),
            sweep.trace(w, 2, Variant::Baseline),
        ) else {
            continue;
        };
        let frac = |ops: cubie_core::OpCounters| {
            let t = ops.gmem_load.total() + ops.gmem_store.total();
            if t == 0 {
                1.0
            } else {
                (ops.gmem_load.coalesced + ops.gmem_store.coalesced) as f64 / t as f64
            }
        };
        let (tf, bf) = (frac(tct.total_ops()), frac(bt.total_ops()));
        a.push(vec![
            "O8".into(),
            w.spec().name.into(),
            (tf - bf).into(),
            if tf >= bf {
                "tc_more_coalesced"
            } else {
                "baseline_more_coalesced"
            }
            .into(),
        ]);
    }

    // O9 — Cubie spans wider behaviour than Rodinia/SHOC.
    let study = suite_diversity_study(
        &dev,
        sweep.config.sparse_scale.max(8),
        sweep.config.graph_scale.max(64),
    );
    let widest = study
        .spread
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(s, _)| *s)
        .unwrap_or("-");
    for (suite, spread) in &study.spread {
        a.push(vec![
            "O9".into(),
            (*suite).into(),
            (*spread).into(),
            if *suite == widest {
                "widest"
            } else {
                "narrower"
            }
            .into(),
        ]);
    }

    scale_meta(a, sweep)
}

/// Extension: advisor predictions vs measured TC-over-CC ratios.
pub fn ext_advisor(sweep: &Sweep) -> Artifact {
    let dev = pinned_device(sweep);
    let mut a = Artifact::new(
        "ext_advisor_validation",
        vec![
            Column::exact("workload").key(),
            Column::exact("from"),
            Column::eps("predicted", STAT_EPS),
            Column::eps("actual", TIME_EPS),
            Column::eps("ratio", STAT_EPS),
            Column::ordinal("verdict"),
            Column::ordinal("within_2x"),
        ],
    );
    for &w in sweep.workloads() {
        let cc_variant = if w.spec().distinct_cce {
            Variant::CcE
        } else {
            Variant::Cc
        };
        let Some(cc_trace) = sweep.trace(w, 2, cc_variant) else {
            continue;
        };
        let (Some(cc_cell), Some(tc_cell)) = (
            sweep.cell(w, 2, cc_variant, &dev.name),
            sweep.cell(w, 2, Variant::Tc, &dev.name),
        ) else {
            continue;
        };
        let adv = advise(&dev, cc_trace, &reference_mapping(w));
        let actual = cc_cell.time_s() / tc_cell.time_s();
        let ratio = adv.predicted_speedup / actual;
        a.push(vec![
            w.spec().name.into(),
            cc_variant.label().into(),
            adv.predicted_speedup.into(),
            actual.into(),
            ratio.into(),
            format!("{:?}", adv.recommendation).into(),
            ((0.5..2.0).contains(&ratio)).into(),
        ]);
    }
    scale_meta(a, sweep)
        .with_meta("device", dev.name.as_str())
        .with_meta("case_idx", 2usize)
}

/// Extension: the hypothetical FP64-strengthened Blackwell.
pub fn ext_future(sweep: &Sweep) -> Artifact {
    let devs = sweep.devices();
    let real = devs
        .iter()
        .find(|d| d.name.contains("B200"))
        .unwrap_or(&devs[0])
        .clone();
    let mut hyp = b200();
    hyp.name = "B200-HPC (hypothetical, FP64 TC ×2)".to_string();
    hyp.tc_fp64_tflops = 80.0;
    let mut a = Artifact::new(
        "ext_future_fp64",
        vec![
            Column::exact("workload").key(),
            Column::exact("quadrant"),
            Column::eps("time_b200_s", TIME_EPS),
            Column::eps("time_hpc_s", TIME_EPS),
            Column::eps("gain", TIME_EPS),
            Column::ordinal("direction"),
        ],
    );
    for &w in sweep.workloads() {
        let Some(cell) = sweep.cell(w, 2, Variant::Tc, &real.name) else {
            continue;
        };
        let t_real = cell.time_s();
        let Some(t_hyp) = sweep.time_on(&hyp, w, 2, Variant::Tc).map(|t| t.total_s) else {
            continue;
        };
        let gain = t_real / t_hyp;
        a.push(vec![
            w.spec().name.into(),
            format!("Q{}", w.spec().quadrant).into(),
            t_real.into(),
            t_hyp.into(),
            gain.into(),
            if gain >= 1.0 {
                "faster_or_equal"
            } else {
                "slower"
            }
            .into(),
        ]);
    }
    scale_meta(a, sweep)
        .with_meta("device", real.name.as_str())
        .with_meta("case_idx", 2usize)
}

/// Extension: the mixed-precision GEMM axis — the analytic `mma.sync`
/// warp-tile kernels (FP16/BF16 `m16n8k16`, TF32 `m16n8k8`, f32
/// accumulate) timed on every device. MMA/FMA instruction counts are
/// bit-exact; times and achieved throughput carry the usual epsilon;
/// the limiting pipe is an ordinal claim. Independent of the FP64
/// sweep, so recording it never touches the existing goldens.
pub fn ext_precision_sweep() -> Artifact {
    let mut a = Artifact::new(
        "ext_precision_sweep",
        vec![
            Column::exact("precision").key(),
            Column::exact("case").key(),
            Column::exact("variant").key(),
            Column::exact("device").key(),
            Column::exact("mma"),
            Column::exact("fma_f32"),
            Column::eps("time_s", TIME_EPS),
            Column::eps("tflops", TIME_EPS),
            Column::ordinal("limiter"),
        ],
    );
    for p in Precision::ALL.into_iter().filter(|p| *p != Precision::F64) {
        for case in gemm::GemmCase::cases() {
            for v in [Variant::Tc, Variant::Cc] {
                let trace = gemm::trace_precision(&case, v, p);
                let ops = trace.kernels[0].ops;
                for d in all_devices() {
                    let t = time_workload(&d, &trace);
                    a.push(vec![
                        p.label().into(),
                        case.label().into(),
                        v.label().into(),
                        d.name.as_str().into(),
                        (ops.mma_f16 + ops.mma_bf16 + ops.mma_tf32).into(),
                        ops.fma_f32.into(),
                        t.total_s.into(),
                        (case.useful_flops() / t.total_s / 1e12).into(),
                        format!("{:?}", t.kernels[0].limiter).into(),
                    ]);
                }
            }
        }
    }
    a
}

/// Extension: **bit-exact** mixed-precision MMA numerics — one reduced
/// GEMM per precision × tensor-core generation on pinned inputs. Probe
/// elements' `f32` bit patterns and an FNV-1a digest of the whole output
/// are exact columns, so a one-ulp change anywhere in the quantize →
/// exact-product → per-generation-accumulate chain trips the golden
/// check (the reduced-precision sibling of `table6_errors`). The TC and
/// CC digests are recorded side by side: per Observation 7 they must be
/// identical.
pub fn ext_precision_mma() -> Artifact {
    const PROBES: [usize; 6] = [0, 1, 7, 255, 256, 511];
    let case = gemm::GemmCase {
        m: 32,
        n: 16,
        k: 32,
    };
    let (ma, mb) = gemm::inputs(&case);
    let mut columns = vec![
        Column::exact("precision").key(),
        Column::exact("gen").key(),
        Column::exact("mma"),
        Column::exact("tc_digest"),
        Column::exact("cc_digest"),
        Column::ordinal("tc_cc_identical"),
    ];
    columns.extend(PROBES.iter().map(|i| Column::exact(&format!("c{i}_bits"))));
    let mut a = Artifact::new("ext_precision_mma", columns);
    let fnv = |c: &[f32]| -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for v in c {
            for byte in v.to_bits().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    };
    for p in Precision::ALL.into_iter().filter(|p| *p != Precision::F64) {
        for gen in [MmaGen::Volta, MmaGen::Ampere] {
            let (tc, trace) = gemm::run_precision(&ma, &mb, Variant::Tc, p, gen);
            let (cc, _) = gemm::run_precision(&ma, &mb, Variant::Cc, p, gen);
            let ops = trace.kernels[0].ops;
            let identical = tc.iter().zip(&cc).all(|(x, y)| x.to_bits() == y.to_bits());
            let mut row: Vec<Json> = vec![
                p.label().into(),
                format!("{gen:?}").into(),
                (ops.mma_f16 + ops.mma_bf16 + ops.mma_tf32).into(),
                fnv(&tc).into(),
                fnv(&cc).into(),
                if identical {
                    "tc_cc_bit_identical"
                } else {
                    "tc_cc_diverged"
                }
                .into(),
            ];
            row.extend(
                PROBES
                    .iter()
                    .map(|&i| Json::from(u64::from(tc[i].to_bits()))),
            );
            a.push(row);
        }
    }
    a.with_meta("case", case.label())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepCache;
    use std::sync::Arc;

    fn quick_sweep() -> Sweep {
        let cfg = SweepConfig {
            workloads: vec![Workload::Scan, Workload::Reduction],
            sparse_scale: 64,
            graph_scale: 512,
            ..SweepConfig::default()
        };
        SweepRunner::with_cache(cfg, Arc::new(SweepCache::default())).run()
    }

    #[test]
    fn fig3_has_one_row_per_cell_and_round_trips() {
        let sweep = quick_sweep();
        let a = fig3(&sweep);
        assert_eq!(a.rows.len(), sweep.cells.len());
        let text = a.to_json().to_pretty_string();
        let back = Artifact::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(cubie_golden::diff(&a, &back).passed());
    }

    #[test]
    fn speedup_artifacts_carry_ordinal_wins() {
        let sweep = quick_sweep();
        let a = fig4(&sweep);
        assert!(!a.rows.is_empty());
        let wins_col = a.columns.iter().position(|c| c.name == "wins").unwrap();
        assert!(matches!(
            a.columns[wins_col].class,
            cubie_golden::Class::Ordinal
        ));
        // Scan/Reduction TC beats the baselines on every device.
        for row in &a.rows {
            assert_eq!(row[wins_col].as_str(), Some("TC"));
        }
    }

    #[test]
    fn trace_counters_are_device_independent_ints() {
        let sweep = quick_sweep();
        let a = trace_counters(&sweep);
        // One row per (workload, case, variant): 2 × 5 × 4.
        assert_eq!(a.rows.len(), 2 * 5 * 4);
        for row in &a.rows {
            for cell in &row[3..] {
                assert!(
                    matches!(cell, Json::Int(_)),
                    "counter cell {cell:?} not an int"
                );
            }
        }
    }

    #[test]
    fn constant_artifacts_have_expected_shapes() {
        assert_eq!(fig12().rows.len(), 3);
        assert_eq!(table5().rows.len(), 3);
        assert_eq!(table7().rows.len(), TABLE7.len() + TABLE7_FEATURES.len());
    }

    #[test]
    fn precision_sweep_artifact_covers_the_mixed_grid() {
        let a = ext_precision_sweep();
        // 3 precisions × 5 cases × {TC, CC} × 3 devices.
        assert_eq!(a.rows.len(), 3 * 5 * 2 * 3);
        let (mma, fma) = (4, 5);
        for row in &a.rows {
            // Exactly one compute counter is populated per variant row.
            let is_tc = row[2].as_str() == Some("TC");
            assert_eq!(row[mma] != Json::Int(0), is_tc, "mma count vs variant");
            assert_eq!(row[fma] == Json::Int(0), is_tc, "fma count vs variant");
        }
        let text = a.to_json().to_pretty_string();
        let back = Artifact::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(cubie_golden::diff(&a, &back).passed());
    }

    #[test]
    fn precision_mma_artifact_is_bit_stable_and_discriminates_gens() {
        let a = ext_precision_mma();
        let b = ext_precision_mma();
        // 3 precisions × 2 generations, reproducible bit for bit.
        assert_eq!(a.rows.len(), 6);
        assert!(cubie_golden::diff(&a, &b).passed());
        for row in &a.rows {
            assert_eq!(row[5].as_str(), Some("tc_cc_bit_identical"));
        }
        // Volta (serial RZ+FTZ) and Ampere (fused RN) accumulation must
        // produce different output digests for every precision.
        for pair in a.rows.chunks(2) {
            assert_eq!(pair[0][0], pair[1][0]);
            assert_ne!(
                pair[0][3], pair[1][3],
                "gen digests equal for {:?}",
                pair[0][0]
            );
        }
    }

    #[test]
    fn registry_covers_every_name() {
        let ctx = GoldenCtx::new(GoldenConfig {
            workloads: vec![Workload::Scan],
            ..GoldenConfig::default()
        });
        // Cheap structural check on the constant artifacts only; the
        // sweep-backed ones are covered by the round-trip integration
        // test. Unknown names must be rejected.
        assert!(build(&ctx, "nonexistent").is_none());
        for name in ["fig12_peak_evolution", "table5_specs", "table7_coverage"] {
            assert!(GOLDEN_ARTIFACTS.contains(&name));
            let a = build(&ctx, name).unwrap();
            assert_eq!(a.name, name);
        }
    }
}
