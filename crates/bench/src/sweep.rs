//! The shared sweep engine: one parallel, cached execution of the
//! workload × case × variant × device cross-product that every figure
//! and table binary projects from.
//!
//! Before this engine each harness binary re-prepared the Table 2/3/4
//! cases and re-ran the full sweep serially; now
//!
//! 1. **Preparation is cached.** [`SweepCache`] memoizes, per
//!    `(workload, sparse_scale, graph_scale)`, the case labels and
//!    useful-work counts, and per `(workload, case, variant, scale)` the
//!    analytic [`WorkloadTrace`] — so the functional execution behind
//!    each cell happens exactly once per process, no matter how many
//!    consumers (figures, observations, tests) ask for it.
//! 2. **Execution is parallel.** Workload preparation fans out via
//!    `cubie_core::par::par_map`, as do the per-case trace constructions
//!    and the per-cell timings. Results are collected in index order, so
//!    the output is bit-identical for any `--jobs` setting.
//! 3. **Projection is cheap.** A [`Sweep`] holds the timed
//!    [`SweepCell`]s in deterministic (Table 2 workload, case, variant,
//!    device) order plus the underlying traces, so figure binaries
//!    become filters/folds over one shared result.
//!
//! The `cubie sweep` CLI command (and every figure binary) accepts
//! `--filter workload=… variant=… device=… case=…` and `--jobs N`, so a
//! partial sweep never pays full-suite cost.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cubie_core::par::{par_map, par_map_lpt, set_max_workers};
use cubie_device::{all_devices, DeviceSpec};
use cubie_kernels::{gemm, prepare_cases, Precision, Variant, Workload};
use cubie_sim::{time_workload, WorkloadTiming, WorkloadTrace};

/// Case-level cache key: workload at a generation scale.
type CaseKey = (Workload, usize, usize);
/// Trace-level cache key: `(workload, case index, variant, sparse_scale,
/// graph_scale)`.
type TraceKey = (Workload, usize, Variant, usize, usize);

/// Per-case metadata produced by one preparation of a workload.
#[derive(Debug, Clone)]
pub struct CaseMeta {
    /// Case labels (x-axis of Figure 3), in Table 2 order.
    pub labels: Vec<String>,
    /// Useful work per case, in the workload's unit basis.
    pub useful: Vec<f64>,
}

/// Process-wide memo of prepared cases and their analytic traces.
///
/// `prepare_cases` generates multi-hundred-MB sparse matrices and graphs
/// and the trace construction performs the functional execution of the
/// kernels; both are paid once per `(workload, scale)` here. The bulky
/// inputs themselves are dropped as soon as the traces exist — only
/// labels, useful work and traces are retained.
#[derive(Default)]
pub struct SweepCache {
    meta: Mutex<HashMap<CaseKey, Arc<CaseMeta>>>,
    traces: Mutex<HashMap<TraceKey, Option<Arc<WorkloadTrace>>>>,
}

impl SweepCache {
    /// The process-wide cache shared by every default [`SweepRunner`].
    pub fn global() -> &'static SweepCache {
        static GLOBAL: OnceLock<SweepCache> = OnceLock::new();
        GLOBAL.get_or_init(SweepCache::default)
    }

    /// Prepare `w` at the given scales (once per process), recording the
    /// traces of all four variants for all five cases.
    pub fn ensure(&self, w: Workload, sparse_scale: usize, graph_scale: usize) -> Arc<CaseMeta> {
        let key = (w, sparse_scale, graph_scale);
        if let Some(meta) = self.meta.lock().unwrap().get(&key) {
            return Arc::clone(meta);
        }
        // Prepare outside the lock: generation is the expensive part and
        // other workloads must be able to prepare concurrently. If two
        // threads race on the same workload the loser's identical result
        // is discarded below.
        let cases = prepare_cases(w, sparse_scale, graph_scale);
        let meta = Arc::new(CaseMeta {
            labels: cases.iter().map(|c| c.label()).collect(),
            useful: cases.iter().map(|c| c.useful_work()).collect(),
        });
        // All (case, variant) traces in parallel while the inputs are
        // alive; `trace()` is pure, so any schedule yields the same data.
        // Trace construction performs the functional execution — the
        // dominant cost of a cold sweep — so dispatch longest-first
        // (useful work is the cost estimate) to overlap the heavy cases
        // with the cheap tail instead of serializing behind them.
        let n_variants = Variant::ALL.len();
        let traces = par_map_lpt(
            cases.len() * n_variants,
            |i| meta.useful[i / n_variants],
            |i| {
                let (ci, vi) = (i / n_variants, i % n_variants);
                cases[ci].trace(Variant::ALL[vi]).map(Arc::new)
            },
        );
        drop(cases);
        let mut meta_guard = self.meta.lock().unwrap();
        if let Some(existing) = meta_guard.get(&key) {
            return Arc::clone(existing); // lost a benign race
        }
        let mut trace_guard = self.traces.lock().unwrap();
        for (i, t) in traces.into_iter().enumerate() {
            let (ci, vi) = (i / n_variants, i % n_variants);
            trace_guard.insert((w, ci, Variant::ALL[vi], sparse_scale, graph_scale), t);
        }
        meta_guard.insert(key, Arc::clone(&meta));
        meta
    }

    /// The cached trace of one cell (`None` when the paper does not
    /// evaluate the variant, e.g. the PiC baseline). Requires a prior
    /// [`SweepCache::ensure`] of the workload.
    pub fn trace(
        &self,
        w: Workload,
        case_idx: usize,
        v: Variant,
        sparse_scale: usize,
        graph_scale: usize,
    ) -> Option<Arc<WorkloadTrace>> {
        self.traces
            .lock()
            .unwrap()
            .get(&(w, case_idx, v, sparse_scale, graph_scale))
            .cloned()
            .flatten()
    }
}

/// Case labels of a workload via the global cache (Table 2 column).
pub fn case_labels(w: Workload, sparse_scale: usize, graph_scale: usize) -> Vec<String> {
    SweepCache::global()
        .ensure(w, sparse_scale, graph_scale)
        .labels
        .clone()
}

/// What to sweep: the filterable cross-product plus execution knobs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workloads to sweep, in output order (default: all ten, Table 2
    /// order).
    pub workloads: Vec<Workload>,
    /// Restrict to these variants (`None`: each workload's paper
    /// variants).
    pub variants: Option<Vec<Variant>>,
    /// Devices to time on (default: the three Table 5 devices).
    pub devices: Vec<DeviceSpec>,
    /// Restrict to these Table 2 case indices 0–4 (`None`: all five).
    pub cases: Option<Vec<usize>>,
    /// Operand precisions to sweep (default: FP64 only — the paper's main
    /// axis). Reduced precisions add GEMM-only TC/CC cells modelling the
    /// `m16n8k16`/`m16n8k8` mixed-precision MMAs; the FP64 cells are
    /// unaffected.
    pub precisions: Vec<Precision>,
    /// Scale divisor for the Table 4 sparse matrices.
    pub sparse_scale: usize,
    /// Scale divisor for the Table 3 graphs.
    pub graph_scale: usize,
    /// Worker-thread cap for this run (`None`: keep the process cap;
    /// also settable via `CUBIE_JOBS`). Never changes results, only
    /// wall-clock time.
    pub jobs: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            workloads: Workload::ALL.to_vec(),
            variants: None,
            devices: all_devices(),
            cases: None,
            precisions: vec![Precision::F64],
            sparse_scale: crate::sparse_scale(),
            graph_scale: crate::graph_scale(),
            jobs: crate::env_parse("CUBIE_JOBS"),
        }
    }
}

impl SweepConfig {
    /// The job count this configuration will actually run with: the
    /// explicit `--jobs`/`CUBIE_JOBS` value when set, otherwise the job
    /// count the pool resolves on its own
    /// ([`cubie_core::par::effective_workers`]). Startup log lines must
    /// print this — never a raw `Option` — so the CLI reports the same
    /// number the pool uses.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(cubie_core::par::effective_workers)
    }

    /// Apply one `key=value[,value…]` filter term (`workload=`,
    /// `variant=`, `device=`, `case=`, `precision=`).
    pub fn apply_filter(&mut self, term: &str) -> Result<(), String> {
        let (key, vals) = term
            .split_once('=')
            .ok_or_else(|| format!("filter `{term}` is not key=value"))?;
        match key {
            "workload" | "w" => {
                let mut ws = Vec::new();
                for v in vals.split(',') {
                    ws.push(Workload::parse(v).ok_or_else(|| format!("unknown workload `{v}`"))?);
                }
                // Preserve Table 2 order regardless of filter order.
                self.workloads = Workload::ALL
                    .into_iter()
                    .filter(|w| ws.contains(w))
                    .collect();
            }
            "variant" | "v" => {
                let mut vs = Vec::new();
                for v in vals.split(',') {
                    vs.push(Variant::parse(v).ok_or_else(|| format!("unknown variant `{v}`"))?);
                }
                self.variants = Some(vs);
            }
            "device" | "d" => {
                let all = all_devices();
                let mut ds = Vec::new();
                for v in vals.split(',') {
                    let lower = v.to_ascii_lowercase();
                    let dev = all
                        .iter()
                        .find(|d| d.name.to_ascii_lowercase().contains(&lower))
                        .ok_or_else(|| format!("unknown device `{v}` (a100|h200|b200)"))?;
                    ds.push(dev.clone());
                }
                self.devices = ds;
            }
            "precision" | "p" => {
                let mut ps = Vec::new();
                for v in vals.split(',') {
                    ps.push(
                        Precision::parse(v).ok_or_else(|| {
                            format!("unknown precision `{v}` (f64|f16|bf16|tf32)")
                        })?,
                    );
                }
                // Canonical f64 → f16 → bf16 → tf32 order regardless of
                // filter order.
                self.precisions = Precision::ALL
                    .into_iter()
                    .filter(|p| ps.contains(p))
                    .collect();
            }
            "case" | "c" => {
                let mut cs = Vec::new();
                for v in vals.split(',') {
                    let idx: usize = v
                        .parse()
                        .map_err(|_| format!("case index `{v}` is not 0–4"))?;
                    if idx > 4 {
                        return Err(format!("case index `{v}` is not 0–4"));
                    }
                    cs.push(idx);
                }
                cs.sort_unstable();
                cs.dedup();
                self.cases = Some(cs);
            }
            other => return Err(format!("unknown filter key `{other}`")),
        }
        Ok(())
    }

    /// Parse the shared CLI surface of the sweep binaries:
    /// `--filter key=v[,v…]` (repeatable), `--jobs N`,
    /// `--sparse-scale K`, `--graph-scale K`. Unrecognized arguments are
    /// an error.
    pub fn from_cli_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = SweepConfig::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_of =
                |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match arg.as_str() {
                "--filter" | "-f" => cfg.apply_filter(&value_of("--filter")?)?,
                "--jobs" | "-j" => {
                    let v = value_of("--jobs")?;
                    cfg.jobs = Some(
                        v.parse()
                            .map_err(|_| format!("--jobs `{v}` is not a number"))?,
                    );
                }
                "--sparse-scale" => {
                    let v = value_of("--sparse-scale")?;
                    cfg.sparse_scale = v
                        .parse()
                        .map_err(|_| format!("--sparse-scale `{v}` is not a number"))?;
                }
                "--graph-scale" => {
                    let v = value_of("--graph-scale")?;
                    cfg.graph_scale = v
                        .parse()
                        .map_err(|_| format!("--graph-scale `{v}` is not a number"))?;
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Parse the process CLI arguments, exiting with usage on error —
    /// the one-liner entry point of the figure binaries.
    pub fn from_env_or_exit() -> Self {
        match Self::from_cli_args(std::env::args().skip(1)) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!(
                    "{e}\n\nusage: [--filter workload=gemm,scan] [--filter variant=tc,cc] \
                     [--filter device=h200] [--filter case=2] \
                     [--filter precision=f64,f16,bf16,tf32] [--jobs N] \
                     [--sparse-scale K] [--graph-scale K]"
                );
                std::process::exit(2);
            }
        }
    }

    /// The variants of `w` that survive this config's variant filter.
    pub fn variants_of(&self, w: Workload) -> Vec<Variant> {
        w.variants()
            .into_iter()
            .filter(|v| {
                self.variants
                    .as_ref()
                    .map(|f| f.contains(v))
                    .unwrap_or(true)
            })
            .collect()
    }

    /// The case indices swept (`cases` filter ∩ the workload's five).
    pub fn case_indices(&self, n_cases: usize) -> Vec<usize> {
        match &self.cases {
            Some(cs) => cs.iter().copied().filter(|c| *c < n_cases).collect(),
            None => (0..n_cases).collect(),
        }
    }

    /// The canonical request identity of this configuration — the
    /// keyed-request API the `cubied` content-addressed store hangs off.
    ///
    /// Two configurations produce bit-identical [`Sweep::to_artifact`]
    /// payloads iff their keys are equal: every axis that shapes the
    /// result (workloads, variant/case filters, devices, precisions,
    /// scales — order-sensitive, because cell order is) is spelled out,
    /// while `jobs` is deliberately **excluded** — the worker cap changes
    /// wall-clock only, never a bit of output (`tests/pool_determinism`),
    /// so requests differing only in `jobs` dedup onto one store entry.
    pub fn cache_key(&self) -> String {
        let join = |parts: Vec<String>| parts.join(",");
        let wl = join(
            self.workloads
                .iter()
                .map(|w| w.spec().name.into())
                .collect(),
        );
        let var = match &self.variants {
            None => "*".to_string(),
            Some(vs) => join(vs.iter().map(|v| v.label().to_ascii_lowercase()).collect()),
        };
        let dev = join(self.devices.iter().map(|d| d.name.clone()).collect());
        let case = match &self.cases {
            None => "*".to_string(),
            Some(cs) => join(cs.iter().map(|c| c.to_string()).collect()),
        };
        let prec = join(self.precisions.iter().map(|p| p.label().into()).collect());
        format!(
            "wl={wl};var={var};dev={dev};case={case};prec={prec};sparse={};graph={}",
            self.sparse_scale, self.graph_scale
        )
    }
}

/// One timed cell of the sweep cross-product.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Workload.
    pub workload: Workload,
    /// Table 2 case index (0–4).
    pub case_idx: usize,
    /// Case label.
    pub case: String,
    /// Variant.
    pub variant: Variant,
    /// Operand precision ([`Precision::F64`] for every paper-default
    /// cell; reduced precisions appear only on GEMM TC/CC cells).
    pub precision: Precision,
    /// Device name.
    pub device: String,
    /// Useful work of one execution (workload unit basis).
    pub useful: f64,
    /// Full simulated timing (per-launch detail included).
    pub timing: WorkloadTiming,
}

impl SweepCell {
    /// Simulated execution time, seconds.
    pub fn time_s(&self) -> f64 {
        self.timing.total_s
    }

    /// Throughput in the workload's unit (useful work / time / 1e9).
    pub fn gthroughput(&self) -> f64 {
        self.useful / self.timing.total_s / 1e9
    }
}

/// The result of a sweep: cells in deterministic order plus the
/// underlying traces, for projections that need more than a timing
/// (power traces, roofline placement, advisor input, custom devices).
pub struct Sweep {
    /// All timed cells, ordered by (Table 2 workload, case index,
    /// variant order, device order).
    pub cells: Vec<SweepCell>,
    /// The configuration that produced this sweep.
    pub config: SweepConfig,
    meta: HashMap<Workload, Arc<CaseMeta>>,
    traces: HashMap<(Workload, usize, Variant), Arc<WorkloadTrace>>,
}

impl Sweep {
    /// Workloads in this sweep, Table 2 order.
    pub fn workloads(&self) -> &[Workload] {
        &self.config.workloads
    }

    /// Devices in this sweep.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.config.devices
    }

    /// Case labels of `w` (all five, regardless of any case filter).
    pub fn labels(&self, w: Workload) -> &[String] {
        &self.meta[&w].labels
    }

    /// The cell of one (workload, case, variant, device), if swept.
    pub fn cell(
        &self,
        w: Workload,
        case_idx: usize,
        v: Variant,
        device: &str,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.workload == w && c.case_idx == case_idx && c.variant == v && c.device == device
        })
    }

    /// All cells of one workload on one device, in (case, variant) order.
    pub fn cells_of<'a>(
        &'a self,
        w: Workload,
        device: &'a str,
    ) -> impl Iterator<Item = &'a SweepCell> + 'a {
        self.cells
            .iter()
            .filter(move |c| c.workload == w && c.device == device)
    }

    /// The cached analytic trace behind a cell (`None` for unevaluated
    /// variants or cells outside the swept scope).
    pub fn trace(&self, w: Workload, case_idx: usize, v: Variant) -> Option<&Arc<WorkloadTrace>> {
        self.traces.get(&(w, case_idx, v))
    }

    /// Time one swept cell on an arbitrary (possibly hypothetical)
    /// device, reusing the cached trace.
    pub fn time_on(
        &self,
        device: &DeviceSpec,
        w: Workload,
        case_idx: usize,
        v: Variant,
    ) -> Option<WorkloadTiming> {
        self.trace(w, case_idx, v).map(|t| time_workload(device, t))
    }

    /// Project the swept cells into a canonical
    /// [`cubie_golden::Artifact`] — the serializable,
    /// golden-differ-comparable payload `cubied` serves and stores.
    /// Every column is `Class::Exact`: the simulator is
    /// deterministic, so a store hit must reproduce a fresh run
    /// bit-for-bit (f64s compared by bits via the canonical
    /// shortest-round-trip writer), and any drift is a cache-validation
    /// failure, not tolerable noise. Identity columns are key columns so
    /// `cubie_golden::diff` reports per-cell rows on mismatch. The
    /// request key rides in `meta` (bit-compared too), pinning the
    /// artifact to the configuration that produced it.
    pub fn to_artifact(&self) -> cubie_golden::Artifact {
        use cubie_golden::Column;
        let mut a = cubie_golden::Artifact::new(
            "sweep",
            vec![
                Column::exact("workload").key(),
                Column::exact("case").key(),
                Column::exact("variant").key(),
                Column::exact("precision").key(),
                Column::exact("device").key(),
                Column::exact("case_label"),
                Column::exact("useful"),
                Column::exact("time_s"),
            ],
        )
        .with_meta("key", self.config.cache_key().as_str())
        .with_meta("sparse_scale", self.config.sparse_scale as u64)
        .with_meta("graph_scale", self.config.graph_scale as u64);
        for c in &self.cells {
            a.push(vec![
                c.workload.spec().name.into(),
                (c.case_idx as u64).into(),
                c.variant.label().into(),
                c.precision.label().into(),
                c.device.as_str().into(),
                c.case.as_str().into(),
                c.useful.into(),
                c.time_s().into(),
            ]);
        }
        a
    }

    /// Geomean speedup of variant `a` over `b` on `device` across the
    /// swept cases of `w` (`None` if no case has both variants).
    pub fn geomean_speedup(
        &self,
        w: Workload,
        device: &str,
        a: Variant,
        b: Variant,
    ) -> Option<f64> {
        let mut log_sum = 0.0;
        let mut count = 0usize;
        for ci in 0..self.labels(w).len() {
            let (Some(ca), Some(cb)) = (self.cell(w, ci, a, device), self.cell(w, ci, b, device))
            else {
                continue;
            };
            log_sum += (cb.time_s() / ca.time_s()).ln();
            count += 1;
        }
        (count > 0).then(|| (log_sum / count as f64).exp())
    }
}

/// LPT dispatch order, re-exported from [`cubie_core::par`] where it
/// lives so the prep-store cold path and the sparse/graph generators
/// can schedule by it too. Kept `pub` here for the existing bench API
/// surface.
pub use cubie_core::par::makespan_order;

/// Runs the configured cross-product through the cache, in parallel.
pub struct SweepRunner {
    config: SweepConfig,
    cache: SweepCacheRef,
}

enum SweepCacheRef {
    Global,
    Owned(Arc<SweepCache>),
}

impl SweepRunner {
    /// A runner over the process-global cache (what binaries use).
    pub fn new(config: SweepConfig) -> Self {
        SweepRunner {
            config,
            cache: SweepCacheRef::Global,
        }
    }

    /// A runner over a private cache (isolation for equivalence tests).
    pub fn with_cache(config: SweepConfig, cache: Arc<SweepCache>) -> Self {
        SweepRunner {
            config,
            cache: SweepCacheRef::Owned(cache),
        }
    }

    /// Parse the process CLI (`--filter`/`--jobs`/scales) and run the
    /// resulting sweep on the global cache.
    pub fn cli() -> Sweep {
        SweepRunner::new(SweepConfig::from_env_or_exit()).run()
    }

    fn cache(&self) -> &SweepCache {
        match &self.cache {
            SweepCacheRef::Global => SweepCache::global(),
            SweepCacheRef::Owned(c) => c,
        }
    }

    /// Execute the sweep: prepare (cached) every workload in parallel,
    /// then time every (workload, case, variant, device) cell in
    /// parallel, collecting in deterministic order.
    pub fn run(&self) -> Sweep {
        let cfg = &self.config;
        let prev_jobs = cfg.jobs.map(set_max_workers);
        // Spawn the persistent pool up to the job cap before the first
        // parallel region: back-to-back sweeps in one process (and the
        // nested `par_*` calls inside each phase) reuse these workers
        // instead of paying thread creation per call.
        cubie_core::pool::prewarm();

        // Phase A — preparation + traces, fanned out over workloads.
        let (ss, gs) = (cfg.sparse_scale, cfg.graph_scale);
        let metas = par_map(cfg.workloads.len(), |i| {
            self.cache().ensure(cfg.workloads[i], ss, gs)
        });
        let meta: HashMap<Workload, Arc<CaseMeta>> =
            cfg.workloads.iter().copied().zip(metas).collect();

        // Enumerate the cross-product in canonical order, keeping only
        // cells whose variant the paper evaluates. FP64 is the paper's
        // main axis; a `precision=` filter excluding it skips phase B.
        let mut keys: Vec<(Workload, usize, Variant, usize)> = Vec::new();
        let mut traces: HashMap<(Workload, usize, Variant), Arc<WorkloadTrace>> = HashMap::new();
        for &w in &cfg.workloads {
            for ci in cfg.case_indices(meta[&w].labels.len()) {
                for v in cfg.variants_of(w) {
                    let Some(t) = self.cache().trace(w, ci, v, ss, gs) else {
                        continue; // PiC baseline
                    };
                    traces.insert((w, ci, v), t);
                    if cfg.precisions.contains(&Precision::F64) {
                        for di in 0..cfg.devices.len() {
                            keys.push((w, ci, v, di));
                        }
                    }
                }
            }
        }

        // Phase B — timing, fanned out over cells longest-first (useful
        // work estimates per-cell cost) so a heavy straggler cannot be
        // the last dispatch. Results scatter back to index order, so
        // `cells` stays canonical and bit-identical for any job count.
        let mut cells = par_map_lpt(
            keys.len(),
            |i| meta[&keys[i].0].useful[keys[i].1],
            |i| {
                let (w, ci, v, di) = keys[i];
                let device = &cfg.devices[di];
                let m = &meta[&w];
                SweepCell {
                    workload: w,
                    case_idx: ci,
                    case: m.labels[ci].clone(),
                    variant: v,
                    precision: Precision::F64,
                    device: device.name.clone(),
                    useful: m.useful[ci],
                    timing: time_workload(device, &traces[&(w, ci, v)]),
                }
            },
        );

        // Phase C — mixed-precision cells, appended after the FP64 block
        // so default sweeps stay bit-identical. Reduced precisions exist
        // for GEMM only (the quadrant the mixed-precision MMAs serve) in
        // the TC and CC variants.
        let mixed: Vec<Precision> = cfg
            .precisions
            .iter()
            .copied()
            .filter(|p| *p != Precision::F64)
            .collect();
        if !mixed.is_empty() && cfg.workloads.contains(&Workload::Gemm) {
            let cases = gemm::GemmCase::cases();
            let m = &meta[&Workload::Gemm];
            let variants: Vec<Variant> = [Variant::Tc, Variant::Cc]
                .into_iter()
                .filter(|v| cfg.variants_of(Workload::Gemm).contains(v))
                .collect();
            let mut mkeys: Vec<(Precision, usize, Variant, usize)> = Vec::new();
            for &p in &mixed {
                for ci in cfg.case_indices(cases.len()) {
                    for &v in &variants {
                        for di in 0..cfg.devices.len() {
                            mkeys.push((p, ci, v, di));
                        }
                    }
                }
            }
            cells.extend(par_map_lpt(
                mkeys.len(),
                |i| m.useful[mkeys[i].1],
                |i| {
                    let (p, ci, v, di) = mkeys[i];
                    let device = &cfg.devices[di];
                    let trace = gemm::trace_precision(&cases[ci], v, p);
                    SweepCell {
                        workload: Workload::Gemm,
                        case_idx: ci,
                        case: m.labels[ci].clone(),
                        variant: v,
                        precision: p,
                        device: device.name.clone(),
                        useful: m.useful[ci],
                        timing: time_workload(device, &trace),
                    }
                },
            ));
        }

        if let Some(prev) = prev_jobs {
            set_max_workers(prev);
        }
        Sweep {
            cells,
            config: cfg.clone(),
            meta,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SweepConfig {
        SweepConfig {
            workloads: vec![Workload::Scan, Workload::Reduction],
            sparse_scale: 64,
            graph_scale: 512,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn sweep_produces_cells_in_canonical_order() {
        let sweep = SweepRunner::with_cache(quick_config(), Arc::new(SweepCache::default())).run();
        // 2 workloads × 5 cases × 4 variants × 3 devices.
        assert_eq!(sweep.cells.len(), 2 * 5 * 4 * 3);
        let mut prev: Option<(usize, usize, usize, usize)> = None;
        for c in &sweep.cells {
            let variants = c.workload.variants();
            let key = (
                c.workload.index(),
                c.case_idx,
                variants.iter().position(|v| *v == c.variant).unwrap(),
                sweep
                    .devices()
                    .iter()
                    .position(|d| d.name == c.device)
                    .unwrap(),
            );
            if let Some(p) = prev {
                assert!(key > p, "cells out of order: {key:?} after {p:?}");
            }
            prev = Some(key);
            assert!(c.time_s() > 0.0 && c.gthroughput() > 0.0);
        }
    }

    #[test]
    fn makespan_order_is_longest_first_with_index_tiebreak() {
        let costs = [3.0, 9.0, 1.0, 9.0, 4.0];
        assert_eq!(makespan_order(costs.len(), |i| costs[i]), [1, 3, 4, 0, 2]);
        // NaN costs must not panic and must stay deterministic.
        let weird = [f64::NAN, 2.0, f64::NAN];
        let order = makespan_order(weird.len(), |i| weird[i]);
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2], "order must be a permutation");
        assert_eq!(makespan_order(0, |_| 0.0), Vec::<usize>::new());
    }

    #[test]
    fn par_map_lpt_scatters_back_to_canonical_order() {
        // Inverted costs force a dispatch order that is the exact
        // reverse of the index order — the scatter must undo it.
        let n = 97;
        let lpt = par_map_lpt(n, |i| -(i as f64), |i| i * i);
        let plain = par_map(n, |i| i * i);
        assert_eq!(lpt, plain);
    }

    #[test]
    fn cache_prepares_once() {
        let cache = Arc::new(SweepCache::default());
        let m1 = cache.ensure(Workload::Gemm, 64, 512);
        let m2 = cache.ensure(Workload::Gemm, 64, 512);
        assert!(Arc::ptr_eq(&m1, &m2), "second ensure must hit the cache");
    }

    #[test]
    fn filters_restrict_the_cross_product() {
        let mut cfg = quick_config();
        cfg.apply_filter("variant=tc").unwrap();
        cfg.apply_filter("case=2").unwrap();
        cfg.apply_filter("device=h200").unwrap();
        let sweep = SweepRunner::with_cache(cfg, Arc::new(SweepCache::default())).run();
        assert_eq!(sweep.cells.len(), 2); // 2 workloads × 1 × 1 × 1
        assert!(sweep
            .cells
            .iter()
            .all(|c| c.variant == Variant::Tc && c.case_idx == 2));
    }

    #[test]
    fn filter_errors_are_reported() {
        let mut cfg = SweepConfig::default();
        assert!(cfg.apply_filter("workload=nope").is_err());
        assert!(cfg.apply_filter("case=9").is_err());
        assert!(cfg.apply_filter("bogus").is_err());
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_flag_missing_value_is_an_error() {
        for flag in ["--filter", "--jobs", "--sparse-scale", "--graph-scale"] {
            let err = SweepConfig::from_cli_args(args(&[flag])).unwrap_err();
            assert!(err.contains("needs a value"), "{flag}: {err}");
            assert!(err.contains(flag), "{flag}: {err}");
        }
    }

    #[test]
    fn cli_unknown_argument_is_an_error() {
        let err = SweepConfig::from_cli_args(args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn cli_bad_jobs_value_is_an_error() {
        let err = SweepConfig::from_cli_args(args(&["--jobs", "fast"])).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let err = SweepConfig::from_cli_args(args(&["--sparse-scale", "big"])).unwrap_err();
        assert!(err.contains("--sparse-scale"), "{err}");
    }

    #[test]
    fn cli_unknown_filter_names_the_offender() {
        let err = SweepConfig::from_cli_args(args(&["--filter", "workload=gemmm"])).unwrap_err();
        assert!(err.contains("gemmm"), "{err}");
        let err = SweepConfig::from_cli_args(args(&["--filter", "variant=tcx"])).unwrap_err();
        assert!(err.contains("tcx"), "{err}");
        let err = SweepConfig::from_cli_args(args(&["--filter", "speed=fast"])).unwrap_err();
        assert!(err.contains("unknown filter key"), "{err}");
    }

    #[test]
    fn cache_key_excludes_jobs_and_tracks_every_result_axis() {
        let base = quick_config();
        let mut capped = base.clone();
        capped.jobs = Some(7);
        assert_eq!(
            base.cache_key(),
            capped.cache_key(),
            "jobs never changes results, so it must not change the key"
        );
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.cache_key());
        for term in ["workload=gemm", "variant=tc", "device=h200", "case=2"] {
            let mut cfg = quick_config();
            cfg.apply_filter(term).unwrap();
            assert!(
                seen.insert(cfg.cache_key()),
                "{term} did not change the key"
            );
        }
        let mut cfg = quick_config();
        cfg.sparse_scale = 128;
        assert!(seen.insert(cfg.cache_key()));
        cfg.graph_scale = 1024;
        assert!(seen.insert(cfg.cache_key()));
        cfg.precisions = vec![Precision::F64, Precision::F16];
        assert!(seen.insert(cfg.cache_key()));
    }

    #[test]
    fn to_artifact_is_bit_deterministic_and_row_per_cell() {
        let mut cfg = quick_config();
        cfg.apply_filter("case=1,3").unwrap();
        let a = SweepRunner::with_cache(cfg.clone(), Arc::new(SweepCache::default()))
            .run()
            .to_artifact();
        let b = SweepRunner::with_cache(cfg.clone(), Arc::new(SweepCache::default()))
            .run()
            .to_artifact();
        assert_eq!(a.rows.len(), 2 * 2 * 4 * 3, "one row per swept cell");
        // Two cold-cache runs must serialize to the same bytes — the
        // invariant the content-addressed store's hit path rests on.
        assert_eq!(
            a.to_json().to_pretty_string(),
            b.to_json().to_pretty_string()
        );
        cubie_golden::verify_bit_identical(&a, &b).expect("differ must agree");
        assert_eq!(
            a.meta.iter().find(|(k, _)| k == "key").map(|(_, v)| v),
            Some(&cubie_golden::Json::from(cfg.cache_key().as_str()))
        );
    }

    #[test]
    fn cli_repeated_workload_filter_is_last_wins() {
        // Each workload filter restarts from the full Table 2 list, so the
        // last one on the command line wins — repeats never intersect.
        let cfg = SweepConfig::from_cli_args(args(&[
            "--filter",
            "workload=scan",
            "--filter",
            "workload=gemm",
        ]))
        .unwrap();
        assert_eq!(cfg.workloads, vec![Workload::Gemm]);
    }

    #[test]
    fn cli_workload_filter_preserves_table2_order() {
        // spmv listed before gemm on the command line; the sweep still
        // runs Table 2 order (Gemm before Spmv).
        let cfg = SweepConfig::from_cli_args(args(&["--filter", "workload=spmv,gemm"])).unwrap();
        assert_eq!(cfg.workloads, vec![Workload::Gemm, Workload::Spmv]);
    }

    #[test]
    fn cli_jobs_and_scales_parse() {
        let _guard = crate::env_lock();
        let cfg = SweepConfig::from_cli_args(args(&[
            "--jobs",
            "3",
            "--sparse-scale",
            "64",
            "--graph-scale",
            "512",
        ]))
        .unwrap();
        assert_eq!(cfg.jobs, Some(3));
        assert_eq!(cfg.sparse_scale, 64);
        assert_eq!(cfg.graph_scale, 512);
    }

    #[test]
    fn effective_jobs_matches_what_the_pool_runs() {
        let _env = crate::env_lock();
        let _cap = cubie_core::pool::cap_lock();
        // Explicit --jobs / CUBIE_JOBS: the printed count is the flag.
        std::env::set_var("CUBIE_JOBS", "3");
        let cfg = SweepConfig::default();
        assert_eq!(cfg.jobs, Some(3));
        assert_eq!(cfg.effective_jobs(), 3);
        // Unset (and unparseable, which env_parse warns about and
        // drops): the printed count is exactly the pool's own
        // resolution — not "auto", not a guess.
        std::env::set_var("CUBIE_JOBS", "a-few");
        let cfg = SweepConfig::default();
        assert_eq!(cfg.jobs, None);
        assert_eq!(cfg.effective_jobs(), cubie_core::par::effective_workers());
        std::env::remove_var("CUBIE_JOBS");
        let cfg = SweepConfig::default();
        assert_eq!(cfg.effective_jobs(), cubie_core::par::effective_workers());
    }

    #[test]
    fn precision_filter_parses_and_orders() {
        let mut cfg = SweepConfig::default();
        assert_eq!(cfg.precisions, vec![Precision::F64]);
        cfg.apply_filter("precision=tf32,f16").unwrap();
        assert_eq!(cfg.precisions, vec![Precision::F16, Precision::Tf32]);
        cfg.apply_filter("p=f64,bf16").unwrap();
        assert_eq!(cfg.precisions, vec![Precision::F64, Precision::Bf16]);
        assert!(cfg.apply_filter("precision=f8").is_err());
    }

    #[test]
    fn default_sweep_cells_are_all_f64() {
        let sweep = SweepRunner::with_cache(quick_config(), Arc::new(SweepCache::default())).run();
        assert!(sweep.cells.iter().all(|c| c.precision == Precision::F64));
    }

    #[test]
    fn mixed_precision_sweep_adds_gemm_cells() {
        let mut cfg = SweepConfig {
            workloads: vec![Workload::Gemm],
            sparse_scale: 64,
            graph_scale: 512,
            ..SweepConfig::default()
        };
        cfg.apply_filter("precision=f16,tf32").unwrap();
        cfg.apply_filter("case=0,1").unwrap();
        cfg.apply_filter("device=h200").unwrap();
        let sweep = SweepRunner::with_cache(cfg, Arc::new(SweepCache::default())).run();
        // No f64 precision requested: 2 precisions × 2 cases × 2 variants
        // (TC, CC) × 1 device, no FP64 block.
        assert_eq!(sweep.cells.len(), 2 * 2 * 2);
        assert!(sweep.cells.iter().all(|c| c.workload == Workload::Gemm
            && c.precision != Precision::F64
            && matches!(c.variant, Variant::Tc | Variant::Cc)));
        // An f16 MMA cell must run faster than its CC replacement: the
        // TC/CC peak gap at reduced precision is ~15×, not FP64's 2×.
        let tc = sweep
            .cells
            .iter()
            .find(|c| c.variant == Variant::Tc && c.precision == Precision::F16)
            .unwrap();
        let cc = sweep
            .cells
            .iter()
            .find(|c| {
                c.variant == Variant::Cc
                    && c.precision == Precision::F16
                    && c.case_idx == tc.case_idx
            })
            .unwrap();
        assert!(tc.time_s() < cc.time_s(), "TC must beat its CC replacement");
    }

    #[test]
    fn mixed_precision_block_appends_after_f64_block() {
        let mut cfg = SweepConfig {
            workloads: vec![Workload::Gemm],
            sparse_scale: 64,
            graph_scale: 512,
            ..SweepConfig::default()
        };
        cfg.apply_filter("precision=f64,bf16").unwrap();
        cfg.apply_filter("case=0").unwrap();
        cfg.apply_filter("device=a100").unwrap();
        let sweep = SweepRunner::with_cache(cfg, Arc::new(SweepCache::default())).run();
        // FP64 block (TC, CC — quadrant I folds CC-E; Baseline too) then
        // the bf16 block (TC, CC).
        let split = sweep
            .cells
            .iter()
            .position(|c| c.precision != Precision::F64)
            .unwrap();
        assert!(sweep.cells[..split]
            .iter()
            .all(|c| c.precision == Precision::F64));
        assert!(sweep.cells[split..]
            .iter()
            .all(|c| c.precision == Precision::Bf16));
        assert_eq!(sweep.cells.len() - split, 2);
    }

    #[test]
    fn geomean_speedup_matches_direction() {
        let mut cfg = quick_config();
        cfg.workloads = vec![Workload::Reduction];
        let sweep = SweepRunner::with_cache(cfg, Arc::new(SweepCache::default())).run();
        let d = &sweep.devices()[0].name.clone();
        let s = sweep
            .geomean_speedup(Workload::Reduction, d, Variant::Tc, Variant::Baseline)
            .unwrap();
        assert!(s > 1.0, "reduction TC speedup {s}");
    }

    #[test]
    fn pic_baseline_has_no_cells() {
        let cfg = SweepConfig {
            workloads: vec![Workload::Pic],
            sparse_scale: 64,
            graph_scale: 512,
            ..SweepConfig::default()
        };
        let sweep = SweepRunner::with_cache(cfg, Arc::new(SweepCache::default())).run();
        assert!(sweep.cells.iter().all(|c| c.variant != Variant::Baseline));
        // 5 cases × 2 variants (TC, CC — quadrant I folds CC-E) × 3 devices.
        assert_eq!(sweep.cells.len(), 5 * 2 * 3);
    }
}
