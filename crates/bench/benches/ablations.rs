//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! coalescing classes, constant-operand reuse, split-K, and occupancy.
//! Each ablation reports the *simulated* time difference by benchmarking
//! the model evaluation of the ablated trace (printed once per run).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cubie_core::counters::MemTraffic;
use cubie_core::OpCounters;
use cubie_device::h200;
use cubie_kernels::{scan, Variant};
use cubie_sim::{time_kernel, KernelTrace};

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g
}

/// Ablation 1 — coalescing classes: the same byte volume at the three
/// access regularities (Observation 8's lever).
fn ablate_coalescing(c: &mut Criterion) {
    let d = h200();
    let make = |traffic: MemTraffic| {
        KernelTrace::new(
            "coalescing",
            1 << 16,
            256,
            0,
            OpCounters {
                gmem_load: traffic,
                ..Default::default()
            },
            0.0,
        )
    };
    let bytes = 1u64 << 34;
    let cases = [
        ("coalesced", make(MemTraffic::coalesced(bytes))),
        ("strided", make(MemTraffic::strided(bytes))),
        ("random", make(MemTraffic::random(bytes))),
    ];
    println!("\n# Ablation: coalescing classes (16 GiB on H200)");
    for (name, t) in &cases {
        println!("  {name:9}: {:.3e} s", time_kernel(&d, t).exec_s);
    }
    let mut g = quick(c, "ablation_coalescing");
    for (name, t) in cases {
        g.bench_function(name, |bench| {
            bench.iter(|| std::hint::black_box(time_kernel(&d, &t)))
        });
    }
    g.finish();
}

/// Ablation 2 — constant operands: the Quadrant II scan with its
/// constant matrices resident vs a hypothetical variant that loads them
/// from global memory per tile.
fn ablate_constant_operands(c: &mut Criterion) {
    let d = h200();
    let resident = scan::trace(&scan::ScanCase { n: 1024 }, Variant::Tc);
    let mut loaded = resident.clone();
    for k in loaded.kernels.iter_mut() {
        // 3 constant 8×8 matrices per tile, re-loaded per logical MMA.
        let tiles = k.ops.mma_f64 / 6;
        k.ops.gmem_load += MemTraffic::coalesced(tiles * 3 * 64 * 8);
        k.critical_cycles += cubie_sim::latency::GMEM_RT;
    }
    println!("\n# Ablation: constant operand residency (scan n=1024, H200)");
    println!(
        "  constant-resident: {:.3e} s",
        time_kernel(&d, &resident.kernels[0]).time_s
    );
    println!(
        "  loaded-per-tile:   {:.3e} s",
        time_kernel(&d, &loaded.kernels[0]).time_s
    );
    let mut g = quick(c, "ablation_constant_operands");
    g.bench_function("resident", |bench| {
        bench.iter(|| std::hint::black_box(time_kernel(&d, &resident.kernels[0])))
    });
    g.bench_function("loaded", |bench| {
        bench.iter(|| std::hint::black_box(time_kernel(&d, &loaded.kernels[0])))
    });
    g.finish();
}

/// Ablation 3 — occupancy: the same work spread over fewer, fatter
/// blocks (the GEMV/SpMV granularity lever).
fn ablate_occupancy(c: &mut Criterion) {
    let d = h200();
    // Few enough warps that granularity decides how many SMs get work.
    let total_warps = 1u64 << 11;
    let ops = OpCounters {
        mma_f64: 1 << 22,
        gmem_load: MemTraffic::coalesced(1 << 30),
        ..Default::default()
    };
    println!("\n# Ablation: block granularity (same work, H200)");
    let mut g = quick(c, "ablation_occupancy");
    for warps_per_block in [1u32, 4, 8, 32] {
        let blocks = total_warps / warps_per_block as u64;
        let t = KernelTrace::new("occ", blocks, warps_per_block * 32, 0, ops, 0.0);
        println!(
            "  {warps_per_block:2} warps/block ({blocks:5} blocks): {:.3e} s",
            time_kernel(&d, &t).exec_s
        );
        g.bench_function(format!("warps_per_block_{warps_per_block}"), |bench| {
            bench.iter(|| std::hint::black_box(time_kernel(&d, &t)))
        });
    }
    g.finish();
}

/// Ablation 4 — split-K: small-grid GEMM with and without the k split.
fn ablate_split_k(c: &mut Criterion) {
    use cubie_kernels::gemm::{split_k_for, GemmCase};
    let d = h200();
    let case = GemmCase::square(256);
    let (split, chunk) = split_k_for(&case);
    let with = cubie_kernels::gemm::trace(&case, Variant::Tc);
    let t_with: f64 = with.kernels.iter().map(|k| time_kernel(&d, k).time_s).sum();
    println!("\n# Ablation: split-K on 256³ GEMM (H200)");
    println!("  split-K {split} (chunk {chunk}): {t_with:.3e} s total");
    let mut g = quick(c, "ablation_split_k");
    g.bench_function("with_split_k", |bench| {
        bench.iter(|| {
            with.kernels
                .iter()
                .map(|k| time_kernel(&d, k).time_s)
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_coalescing,
    ablate_constant_operands,
    ablate_occupancy,
    ablate_split_k
);
criterion_main!(benches);
