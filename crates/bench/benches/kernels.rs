//! Criterion benchmarks of the *functional* Rust implementations of the
//! ten workloads — one group per workload, one benchmark per variant, at
//! sizes chosen so `cargo bench` finishes in minutes. These measure this
//! library's actual CPU execution (useful for tracking the
//! implementation), while the `fig*` harness binaries measure the
//! simulated GPU times that reproduce the paper.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cubie_kernels::{bfs, fft, gemm, gemv, pic, reduction, scan, spgemm, spmv, stencil, Variant};

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g
}

fn bench_gemm(c: &mut Criterion) {
    let case = gemm::GemmCase::square(256);
    let (a, b) = gemm::inputs(&case);
    let mut g = quick(c, "gemm_256");
    for v in [Variant::Baseline, Variant::Tc] {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(gemm::run(&a, &b, v)))
        });
    }
    g.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let case = gemv::GemvCase { m: 32_768, n: 16 };
    let (a, x) = gemv::inputs(&case);
    let mut g = quick(c, "gemv_32768x16");
    for v in Variant::ALL {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(gemv::run(&a, &x, v)))
        });
    }
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let m = cubie_sparse::generators::conf5_like(4);
    let x = spmv::input_vector(&m);
    let mut g = quick(c, "spmv_conf5_quarter");
    for v in Variant::ALL {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(spmv::run(&m, &x, v)))
        });
    }
    g.finish();
}

fn bench_spgemm(c: &mut Criterion) {
    let m = cubie_sparse::generators::chevron1_like(4);
    let mut g = quick(c, "spgemm_chevron_quarter");
    for v in [Variant::Baseline, Variant::Tc, Variant::CcE] {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(spgemm::run(&m, v)))
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let case = fft::FftCase {
        h: 64,
        w: 64,
        batch: 8,
    };
    let data = fft::input(&case);
    let mut g = quick(c, "fft_64x64xb8");
    for v in [Variant::Baseline, Variant::Tc] {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(fft::run(&case, &data, v)))
        });
    }
    g.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let case = stencil::StencilCase::star2d(512, 512);
    let x = stencil::input(&case);
    let mut g = quick(c, "stencil_star2d_512");
    for v in [Variant::Baseline, Variant::Tc] {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(stencil::run(&case, &x, v)))
        });
    }
    g.finish();
}

fn bench_scan_reduction(c: &mut Criterion) {
    let x = scan::input(&scan::ScanCase { n: 1024 });
    let mut g = quick(c, "scan_1024");
    for v in Variant::ALL {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(scan::run(&x, v)))
        });
    }
    g.finish();
    let x = reduction::input(&reduction::ReductionCase { n: 1024 });
    let mut g = quick(c, "reduction_1024");
    for v in Variant::ALL {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(reduction::run(&x, v)))
        });
    }
    g.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let graph = cubie_graph::generators::kron_g500(14, 16, 7);
    let src = graph.max_degree_vertex();
    let mut g = quick(c, "bfs_kron14");
    for v in [Variant::Baseline, Variant::Tc] {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(bfs::run(&graph, src, v)))
        });
    }
    g.finish();
}

fn bench_pic(c: &mut Criterion) {
    let case = pic::PicCase { n: 16_384 };
    let (parts, grid) = pic::input(&case);
    let mut g = quick(c, "pic_16k");
    for v in [Variant::Tc, Variant::Cc] {
        g.bench_function(v.label(), |bench| {
            bench.iter(|| std::hint::black_box(pic::run(&case, &parts, &grid, v)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemv,
    bench_spmv,
    bench_spgemm,
    bench_fft,
    bench_stencil,
    bench_scan_reduction,
    bench_bfs,
    bench_pic
);
criterion_main!(benches);
