//! Criterion benchmarks of the timing/power simulator itself — the cost
//! of regenerating the paper's figures from traces.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cubie_core::counters::MemTraffic;
use cubie_core::OpCounters;
use cubie_device::h200;
use cubie_kernels::{gemm, Variant};
use cubie_sim::{
    power_report, power_trace, time_kernel, time_workload, KernelTrace, WorkloadTrace,
};

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g
}

fn bench_sim(c: &mut Criterion) {
    let d = h200();
    let k = KernelTrace::new(
        "k",
        1 << 16,
        256,
        8192,
        OpCounters {
            mma_f64: 1 << 28,
            fma_f64: 1 << 20,
            gmem_load: MemTraffic::coalesced(1 << 32),
            smem_bytes: 1 << 30,
            ..Default::default()
        },
        100.0,
    );
    let mut g = quick(c, "simulator");
    g.bench_function("time_kernel", |bench| {
        bench.iter(|| std::hint::black_box(time_kernel(&d, std::hint::black_box(&k))))
    });
    let w = WorkloadTrace {
        kernels: vec![k.clone(); 32],
    };
    g.bench_function("time_workload_32_launches", |bench| {
        bench.iter(|| std::hint::black_box(time_workload(&d, &w)))
    });
    let t = time_workload(&d, &w);
    g.bench_function("power_report", |bench| {
        bench.iter(|| std::hint::black_box(power_report(&d, &t, 100)))
    });
    g.bench_function("power_trace_1000_samples", |bench| {
        bench.iter(|| std::hint::black_box(power_trace(&d, &t, 10, t.total_s / 100.0)))
    });
    g.finish();
}

fn bench_trace_building(c: &mut Criterion) {
    let mut g = quick(c, "trace_building");
    g.bench_function("gemm_trace_4096", |bench| {
        bench.iter(|| std::hint::black_box(gemm::trace(&gemm::GemmCase::square(4096), Variant::Tc)))
    });
    g.finish();
}

criterion_group!(benches, bench_sim, bench_trace_building);
criterion_main!(benches);
