//! Criterion benchmarks of the substrates: the MMA emulation, sparse
//! formats, bitmap graphs, generators and PCA.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cubie_core::mma::{cc_mma_f64_m8n8k4, mma_b1_m8n8k128_and_popc, mma_f64_m8n8k4};
use cubie_core::{LcgF64, OpCounters};

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g
}

fn bench_mma(c: &mut Criterion) {
    let mut rng = LcgF64::new(1);
    let mut a = [0.0; 32];
    let mut b = [0.0; 32];
    let mut cm = [0.0; 64];
    rng.fill(&mut a);
    rng.fill(&mut b);
    rng.fill(&mut cm);
    let mut g = quick(c, "mma_emulation");
    g.bench_function("mma_f64_m8n8k4", |bench| {
        bench.iter(|| {
            let mut ctr = OpCounters::new();
            let mut cc = cm;
            mma_f64_m8n8k4(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
                &mut cc,
                &mut ctr,
            );
            cc
        })
    });
    g.bench_function("cc_mma_f64_m8n8k4", |bench| {
        bench.iter(|| {
            let mut ctr = OpCounters::new();
            let mut cc = cm;
            cc_mma_f64_m8n8k4(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
                &mut cc,
                &mut ctr,
            );
            cc
        })
    });
    let rows = [u128::MAX; 8];
    let cols = [0x5555_5555_5555_5555_5555_5555_5555_5555u128; 8];
    g.bench_function("mma_b1_m8n8k128", |bench| {
        bench.iter(|| {
            let mut ctr = OpCounters::new();
            let mut cm = [0u32; 64];
            mma_b1_m8n8k128_and_popc(
                std::hint::black_box(&rows),
                std::hint::black_box(&cols),
                &mut cm,
                &mut ctr,
            );
            cm
        })
    });
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let m = cubie_sparse::generators::conf5_like(8);
    let x: Vec<f64> = LcgF64::new(3).vec(m.cols);
    let mut g = quick(c, "sparse_substrate");
    g.bench_function("spmv_naive_conf5_eighth", |bench| {
        bench.iter(|| std::hint::black_box(m.spmv_naive(&x)))
    });
    g.bench_function("mbsr_from_csr", |bench| {
        bench.iter(|| std::hint::black_box(cubie_sparse::Mbsr::from_csr(&m)))
    });
    g.bench_function("dasp_format_build", |bench| {
        bench.iter(|| std::hint::black_box(cubie_kernels::spmv::DaspFormat::from_csr(&m)))
    });
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let graph = cubie_graph::generators::kron_g500(13, 16, 5);
    let mut g = quick(c, "graph_substrate");
    g.bench_function("bitmap_from_graph_kron13", |bench| {
        bench.iter(|| std::hint::black_box(cubie_graph::BitmapGraph::from_graph(&graph)))
    });
    g.bench_function("bfs_serial_kron13", |bench| {
        bench.iter(|| std::hint::black_box(graph.bfs_serial(0)))
    });
    g.bench_function("mycielskian_10", |bench| {
        bench.iter(|| std::hint::black_box(cubie_graph::generators::mycielskian(10)))
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let samples: Vec<Vec<f64>> = {
        let mut rng = LcgF64::new(7);
        (0..500).map(|_| rng.vec(10)).collect()
    };
    let mut g = quick(c, "analysis_substrate");
    g.bench_function("pca_fit_500x10", |bench| {
        bench.iter(|| std::hint::black_box(cubie_analysis::Pca::fit(&samples)))
    });
    let m = cubie_sparse::generators::bcsstk39_like(8);
    g.bench_function("matrix_features", |bench| {
        bench.iter(|| std::hint::black_box(cubie_sparse::MatrixFeatures::of(&m)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mma,
    bench_sparse,
    bench_graph,
    bench_analysis
);
criterion_main!(benches);
