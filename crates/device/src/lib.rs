//! # cubie-device
//!
//! Device specifications for the GPUs the paper evaluates (Table 5):
//! NVIDIA A100 (Ampere), H200 (Hopper, GH200 platform) and B200
//! (Blackwell), expressed as the parameter set the `cubie-sim` timing and
//! power models consume.
//!
//! The specs encode public datasheet values — peak FP64 tensor-core and
//! CUDA-core throughput, DRAM bandwidth and capacity, SM count, clock,
//! TDP — plus model parameters (coalescing efficiencies, launch overhead,
//! pipe power weights) documented per field. [`presets`] also carries the
//! FP16/FP64 peak-evolution series of the paper's Figure 12.

#![warn(missing_docs)]

pub mod presets;
pub mod spec;

pub use presets::{a100, all_devices, b200, h200, GenerationPeaks, PEAK_EVOLUTION};
pub use spec::{Arch, DeviceSpec, MemEfficiency, PowerSpec};
