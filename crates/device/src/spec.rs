//! The device parameter set consumed by the timing and power models.

use cubie_core::scalar::{MmaGen, Precision};
use serde::{Deserialize, Serialize};

/// GPU architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// NVIDIA Volta (V100) — pre-dates the paper's Table 5 devices but
    /// anchors the mixed-precision accumulation-semantics axis (serial
    /// RZ truncating accumulate, subnormal outputs flushed).
    Volta,
    /// NVIDIA Ampere (A100).
    Ampere,
    /// NVIDIA Hopper (H100/H200).
    Hopper,
    /// NVIDIA Blackwell (B200).
    Blackwell,
}

impl Arch {
    /// The mixed-precision MMA accumulation semantics this generation's
    /// tensor cores implement (per the microbenchmark literature: Volta
    /// truncates serially; Ampere and everything after use the fused
    /// five-term round-to-nearest dot product).
    pub fn mma_gen(self) -> MmaGen {
        match self {
            Arch::Volta => MmaGen::Volta,
            Arch::Ampere | Arch::Hopper | Arch::Blackwell => MmaGen::Ampere,
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Arch::Volta => "Volta",
            Arch::Ampere => "Ampere",
            Arch::Hopper => "Hopper",
            Arch::Blackwell => "Blackwell",
        };
        f.write_str(s)
    }
}

/// Effective fraction of peak DRAM bandwidth achieved by each coalescing
/// class of the memory model (Section 9's roofline observes baselines that
/// "do not approximate the bandwidth limit" while MMU-adapted layouts
/// "approach the bandwidth limit more closely" — these factors are where
/// that shows up).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemEfficiency {
    /// Unit-stride aligned streams (MMU-regularized layouts).
    pub coalesced: f64,
    /// Strided / partially coalesced streams.
    pub strided: f64,
    /// Random gather/scatter streams (e.g. CSR column gathers).
    pub random: f64,
}

impl Default for MemEfficiency {
    fn default() -> Self {
        Self {
            coalesced: 0.88,
            strided: 0.45,
            random: 0.14,
        }
    }
}

/// Power-model parameters: `P(t) = idle + Σ pipe_power × pipe_util`,
/// clamped to the thermal design power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Idle board power in watts.
    pub idle_w: f64,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Dynamic power of the tensor-core pipe at full utilization.
    pub tc_pipe_w: f64,
    /// Dynamic power of the CUDA-core FP64 pipe at full utilization.
    pub cc_pipe_w: f64,
    /// Dynamic power of the memory system at full DRAM utilization.
    pub mem_w: f64,
    /// Exponential-moving-average time constant (seconds) applied to power
    /// traces, modelling sensor/thermal smoothing of NVML readings.
    pub smoothing_tau_s: f64,
}

/// Full device specification.
///
/// Peak throughputs are stored directly (they are the published numbers of
/// Table 5); per-SM, per-cycle quantities are derived so the wave model can
/// reason about occupancy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"A100 (Ampere) PCIe"`.
    pub name: String,
    /// Architecture generation.
    pub arch: Arch,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Sustained SM clock in GHz.
    pub clock_ghz: f64,
    /// Peak FP64 tensor-core throughput in TFLOP/s.
    pub tc_fp64_tflops: f64,
    /// Peak FP64 CUDA-core throughput in TFLOP/s.
    pub cc_fp64_tflops: f64,
    /// Peak single-bit tensor-core throughput in Tbitop/s (AND+POPC
    /// multiply-accumulates per second / 1e12).
    pub tc_b1_tbitops: f64,
    /// Peak FP16 (f32-accumulate) tensor-core throughput in TFLOP/s
    /// (dense, no sparsity).
    pub tc_f16_tflops: f64,
    /// Peak BF16 (f32-accumulate) tensor-core throughput in TFLOP/s.
    pub tc_bf16_tflops: f64,
    /// Peak TF32 tensor-core throughput in TFLOP/s.
    pub tc_tf32_tflops: f64,
    /// Peak FP32 CUDA-core throughput in TFLOP/s (services the CC
    /// replacements of the mixed-precision MMAs).
    pub cc_fp32_tflops: f64,
    /// Peak 32-bit integer/logic throughput in Top/s.
    pub cc_int_tops: f64,
    /// Special-function (divide/sqrt/trig) throughput as a fraction of the
    /// FP64 CUDA-core rate.
    pub special_ratio: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bw_gbs: f64,
    /// DRAM capacity in GB.
    pub dram_gb: f64,
    /// L2 cache bandwidth in GB/s (services blocked operand re-streaming).
    pub l2_bw_gbs: f64,
    /// Aggregate L1/shared-memory bandwidth in GB/s
    /// (`N_SM × N_LSU × W_access × f_clock`, as the paper's Figure 9
    /// caption defines).
    pub l1_bw_gbs: f64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in KiB.
    pub smem_per_sm_kib: u32,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Coalescing-class bandwidth efficiencies.
    pub mem_eff: MemEfficiency,
    /// Power-model parameters.
    pub power: PowerSpec,
}

impl DeviceSpec {
    /// Peak FP64 tensor-core FLOP/s.
    pub fn tc_fp64_flops(&self) -> f64 {
        self.tc_fp64_tflops * 1e12
    }

    /// Peak FP64 CUDA-core FLOP/s.
    pub fn cc_fp64_flops(&self) -> f64 {
        self.cc_fp64_tflops * 1e12
    }

    /// Peak bit-MMA bit-operations per second.
    pub fn tc_b1_bitops(&self) -> f64 {
        self.tc_b1_tbitops * 1e12
    }

    /// Peak FP16 tensor-core FLOP/s.
    pub fn tc_f16_flops(&self) -> f64 {
        self.tc_f16_tflops * 1e12
    }

    /// Peak BF16 tensor-core FLOP/s.
    pub fn tc_bf16_flops(&self) -> f64 {
        self.tc_bf16_tflops * 1e12
    }

    /// Peak TF32 tensor-core FLOP/s.
    pub fn tc_tf32_flops(&self) -> f64 {
        self.tc_tf32_tflops * 1e12
    }

    /// Peak FP32 CUDA-core FLOP/s.
    pub fn cc_fp32_flops(&self) -> f64 {
        self.cc_fp32_tflops * 1e12
    }

    /// Peak tensor-core FLOP/s for a given operand precision.
    pub fn tc_peak_flops(&self, p: Precision) -> f64 {
        match p {
            Precision::F64 => self.tc_fp64_flops(),
            Precision::F16 => self.tc_f16_flops(),
            Precision::Bf16 => self.tc_bf16_flops(),
            Precision::Tf32 => self.tc_tf32_flops(),
        }
    }

    /// The MMA accumulation semantics of this device's generation.
    pub fn mma_gen(&self) -> MmaGen {
        self.arch.mma_gen()
    }

    /// Peak integer operations per second.
    pub fn cc_int_ops(&self) -> f64 {
        self.cc_int_tops * 1e12
    }

    /// Peak DRAM bytes per second.
    pub fn dram_bytes_per_s(&self) -> f64 {
        self.dram_bw_gbs * 1e9
    }

    /// Peak L2 bytes per second.
    pub fn l2_bytes_per_s(&self) -> f64 {
        self.l2_bw_gbs * 1e9
    }

    /// Aggregate L1 bytes per second.
    pub fn l1_bytes_per_s(&self) -> f64 {
        self.l1_bw_gbs * 1e9
    }

    /// FP64 tensor-core FLOPs per SM per cycle (for occupancy reasoning).
    pub fn tc_fp64_flops_per_sm_cycle(&self) -> f64 {
        self.tc_fp64_flops() / (self.sm_count as f64 * self.clock_ghz * 1e9)
    }

    /// FP64 CUDA-core FLOPs per SM per cycle.
    pub fn cc_fp64_flops_per_sm_cycle(&self) -> f64 {
        self.cc_fp64_flops() / (self.sm_count as f64 * self.clock_ghz * 1e9)
    }

    /// Ratio of tensor-core to CUDA-core FP64 peaks — 2.0 on Ampere and
    /// Hopper, 1.0 on Blackwell (the divergence Figure 12 highlights).
    pub fn tc_cc_ratio(&self) -> f64 {
        self.tc_fp64_tflops / self.cc_fp64_tflops
    }

    /// Launch overhead in seconds.
    pub fn launch_overhead_s(&self) -> f64 {
        self.launch_overhead_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use crate::presets::*;

    #[test]
    fn table5_peaks() {
        let a = a100();
        assert_eq!(a.tc_fp64_tflops, 19.5);
        assert_eq!(a.cc_fp64_tflops, 9.7);
        assert_eq!(a.dram_bw_gbs, 1555.0);
        let h = h200();
        assert_eq!(h.tc_fp64_tflops, 66.9);
        assert_eq!(h.cc_fp64_tflops, 33.5);
        assert_eq!(h.dram_bw_gbs, 4000.0);
        let b = b200();
        assert_eq!(b.tc_fp64_tflops, 40.0);
        assert_eq!(b.cc_fp64_tflops, 40.0);
        assert_eq!(b.dram_bw_gbs, 8000.0);
    }

    #[test]
    fn tc_cc_ratio_matches_paper() {
        assert!((a100().tc_cc_ratio() - 2.0).abs() < 0.05);
        assert!((h200().tc_cc_ratio() - 2.0).abs() < 0.05);
        assert!((b200().tc_cc_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_sm_cycle_rates_are_sane() {
        for d in all_devices() {
            let tc = d.tc_fp64_flops_per_sm_cycle();
            assert!(tc > 16.0 && tc < 1024.0, "{}: {}", d.name, tc);
        }
    }

    #[test]
    fn power_budget_fits_tdp() {
        for d in all_devices() {
            let p = &d.power;
            assert!(p.idle_w < p.tdp_w);
            // full TC + memory should be around (not wildly above) TDP —
            // the model clamps, but the budget should be deliberate.
            let full = p.idle_w + p.tc_pipe_w + p.mem_w;
            assert!(
                full <= p.tdp_w * 1.25,
                "{}: unclamped full power {} vs tdp {}",
                d.name,
                full,
                p.tdp_w
            );
        }
    }

    #[test]
    fn bandwidth_hierarchy() {
        for d in all_devices() {
            assert!(d.l1_bw_gbs > d.l2_bw_gbs, "{}", d.name);
            assert!(d.l2_bw_gbs > d.dram_bw_gbs, "{}", d.name);
        }
    }

    #[test]
    fn mem_efficiency_ordering() {
        for d in all_devices() {
            assert!(d.mem_eff.coalesced > d.mem_eff.strided);
            assert!(d.mem_eff.strided > d.mem_eff.random);
            assert!(d.mem_eff.coalesced <= 1.0);
        }
    }
}
