//! Preset device specifications for the three GPUs of Table 5 and the
//! peak-evolution series of Figure 12.

use serde::{Deserialize, Serialize};

use crate::spec::{Arch, DeviceSpec, MemEfficiency, PowerSpec};

/// NVIDIA A100 PCIe 40 GB (Ampere) — Table 5 row 1.
pub fn a100() -> DeviceSpec {
    DeviceSpec {
        name: "A100 (Ampere) PCIe 40GB".to_string(),
        arch: Arch::Ampere,
        sm_count: 108,
        clock_ghz: 1.41,
        tc_fp64_tflops: 19.5,
        cc_fp64_tflops: 9.7,
        tc_b1_tbitops: 2496.0 / 2.0, // dense INT1 TOPS
        tc_f16_tflops: 312.0,        // dense, f32 accumulate
        tc_bf16_tflops: 312.0,
        tc_tf32_tflops: 156.0,
        cc_fp32_tflops: 19.5,
        cc_int_tops: 19.5,
        special_ratio: 0.25,
        dram_bw_gbs: 1555.0,
        dram_gb: 40.0,
        l2_bw_gbs: 5000.0,
        // N_SM × N_LSU × W_access × f_clock = 108 × 32 × 16 B × 1.41 GHz
        l1_bw_gbs: 108.0 * 32.0 * 16.0 * 1.41,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        smem_per_sm_kib: 164,
        launch_overhead_us: 3.5,
        mem_eff: MemEfficiency::default(),
        power: PowerSpec {
            idle_w: 55.0,
            tdp_w: 250.0,
            tc_pipe_w: 120.0,
            cc_pipe_w: 95.0,
            mem_w: 90.0,
            smoothing_tau_s: 0.25,
        },
    }
}

/// NVIDIA H200 SXM 96 GB inside the GH200 platform (Hopper) — Table 5
/// row 2. The paper quotes a 750 W thermal design power for this module.
pub fn h200() -> DeviceSpec {
    DeviceSpec {
        name: "H200 (Hopper) SXM 96GB".to_string(),
        arch: Arch::Hopper,
        sm_count: 132,
        clock_ghz: 1.98,
        tc_fp64_tflops: 66.9,
        cc_fp64_tflops: 33.5,
        tc_b1_tbitops: 3958.0 / 2.0,
        tc_f16_tflops: 989.5, // dense, f32 accumulate
        tc_bf16_tflops: 989.5,
        tc_tf32_tflops: 494.7,
        cc_fp32_tflops: 67.0,
        cc_int_tops: 33.5,
        special_ratio: 0.25,
        dram_bw_gbs: 4000.0,
        dram_gb: 96.0,
        l2_bw_gbs: 9000.0,
        l1_bw_gbs: 132.0 * 32.0 * 16.0 * 1.98,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        smem_per_sm_kib: 228,
        launch_overhead_us: 3.0,
        mem_eff: MemEfficiency::default(),
        power: PowerSpec {
            idle_w: 90.0,
            tdp_w: 750.0,
            tc_pipe_w: 360.0,
            cc_pipe_w: 280.0,
            mem_w: 290.0,
            smoothing_tau_s: 0.25,
        },
    }
}

/// NVIDIA B200 SXM 180 GB (Blackwell) — Table 5 row 3. FP64 tensor-core
/// and CUDA-core peaks converge at 40 TFLOP/s; memory bandwidth doubles
/// to 8 TB/s (why Quadrant IV stays competitive there, Section 6.1).
pub fn b200() -> DeviceSpec {
    DeviceSpec {
        name: "B200 (Blackwell) SXM 180GB".to_string(),
        arch: Arch::Blackwell,
        sm_count: 148,
        clock_ghz: 1.67,
        tc_fp64_tflops: 40.0,
        cc_fp64_tflops: 40.0,
        tc_b1_tbitops: 4500.0 / 2.0,
        tc_f16_tflops: 1800.0, // dense, f32 accumulate
        tc_bf16_tflops: 1800.0,
        tc_tf32_tflops: 900.0,
        cc_fp32_tflops: 80.0,
        cc_int_tops: 40.0,
        special_ratio: 0.25,
        dram_bw_gbs: 8000.0,
        dram_gb: 180.0,
        l2_bw_gbs: 16000.0,
        l1_bw_gbs: 148.0 * 32.0 * 16.0 * 1.67,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        smem_per_sm_kib: 228,
        launch_overhead_us: 3.0,
        mem_eff: MemEfficiency::default(),
        power: PowerSpec {
            idle_w: 110.0,
            tdp_w: 1000.0,
            tc_pipe_w: 430.0,
            cc_pipe_w: 360.0,
            mem_w: 400.0,
            smoothing_tau_s: 0.25,
        },
    }
}

/// All three evaluation devices in Table 5 order.
pub fn all_devices() -> Vec<DeviceSpec> {
    vec![a100(), h200(), b200()]
}

/// One generation's peak-throughput entry for Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationPeaks {
    /// Architecture label.
    pub arch: &'static str,
    /// FP16 tensor-core peak, TFLOP/s.
    pub fp16_tc: f64,
    /// FP16 CUDA-core peak, TFLOP/s.
    pub fp16_cc: f64,
    /// FP64 tensor-core peak, TFLOP/s.
    pub fp64_tc: f64,
    /// FP64 CUDA-core peak, TFLOP/s.
    pub fp64_cc: f64,
}

/// Figure 12 data: peak throughput across NVIDIA's three latest
/// generations, contrasting the continued FP16 tensor-core scaling with
/// the FP64 tensor-core regression on Blackwell.
pub const PEAK_EVOLUTION: [GenerationPeaks; 3] = [
    GenerationPeaks {
        arch: "Ampere",
        fp16_tc: 312.0,
        fp16_cc: 78.0,
        fp64_tc: 19.5,
        fp64_cc: 9.7,
    },
    GenerationPeaks {
        arch: "Hopper",
        fp16_tc: 989.5,
        fp16_cc: 133.8,
        fp64_tc: 67.0,
        fp64_cc: 33.5,
    },
    GenerationPeaks {
        arch: "Blackwell",
        fp16_tc: 1800.0,
        fp16_cc: 80.0,
        fp64_tc: 30.0,
        fp64_cc: 40.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_fp16_tc_scales_monotonically() {
        assert!(PEAK_EVOLUTION[0].fp16_tc < PEAK_EVOLUTION[1].fp16_tc);
        assert!(PEAK_EVOLUTION[1].fp16_tc < PEAK_EVOLUTION[2].fp16_tc);
    }

    #[test]
    fn fig12_fp64_tc_regresses_on_blackwell() {
        assert!(PEAK_EVOLUTION[1].fp64_tc > PEAK_EVOLUTION[0].fp64_tc);
        assert!(
            PEAK_EVOLUTION[2].fp64_tc < PEAK_EVOLUTION[1].fp64_tc / 2.0,
            "paper: Blackwell FP64 TC is less than half of Hopper"
        );
    }

    #[test]
    fn presets_have_distinct_archs() {
        let devs = all_devices();
        assert_eq!(devs.len(), 3);
        assert_ne!(devs[0].arch, devs[1].arch);
        assert_ne!(devs[1].arch, devs[2].arch);
    }

    #[test]
    fn mixed_precision_peaks_match_fig12_series() {
        // The per-device FP16 TC peaks are the same published numbers the
        // Figure 12 evolution series plots — one source of truth per Table 5.
        for (d, g) in all_devices().iter().zip(PEAK_EVOLUTION) {
            assert_eq!(d.tc_f16_tflops, g.fp16_tc, "{}", d.name);
        }
    }

    #[test]
    fn mixed_precision_peak_ordering() {
        // FP16 ≥ BF16 > TF32 > FP64 TC on every evaluation device, and
        // every generation maps onto the fused-dot semantics.
        use cubie_core::scalar::MmaGen;
        for d in all_devices() {
            assert_eq!(d.tc_f16_tflops, d.tc_bf16_tflops, "{}", d.name);
            assert!(d.tc_bf16_tflops > d.tc_tf32_tflops, "{}", d.name);
            assert!(d.tc_tf32_tflops > d.tc_fp64_tflops, "{}", d.name);
            assert!(d.cc_fp32_tflops > 0.0, "{}", d.name);
            assert_eq!(d.mma_gen(), MmaGen::Ampere, "{}", d.name);
        }
        assert_eq!(Arch::Volta.mma_gen(), MmaGen::Volta);
    }

    #[test]
    fn bandwidth_doubles_each_generation() {
        let devs = all_devices();
        assert!(devs[1].dram_bw_gbs > 2.0 * devs[0].dram_bw_gbs);
        assert!(devs[2].dram_bw_gbs >= 2.0 * devs[1].dram_bw_gbs);
    }
}
