//! Kernel and workload traces: the interface between the functional
//! kernels and the timing model.
//!
//! A [`KernelTrace`] records one launch: its geometry (blocks, threads,
//! shared memory — the occupancy inputs), the **total** operations the
//! launch issues, and the length of its longest dependent-instruction
//! chain. The latter matters for the paper's Scan/Reduction workloads
//! (Quadrants II/III), whose 64–1024-element cases run as a single thread
//! block and are latency-bound rather than throughput-bound.

use cubie_core::OpCounters;
use serde::{Deserialize, Serialize};

/// Dependent-issue latencies, in cycles, used when kernels estimate their
/// critical path. Values follow published tensor-core microbenchmarks
/// (Sun et al., "Dissecting Tensor Cores via Microbenchmarks", cited by
/// the paper) and common CUDA latency tables.
pub mod latency {
    /// Back-to-back dependent FP64 `m8n8k4` MMA issue latency.
    pub const MMA_F64: f64 = 24.0;
    /// Dependent single-bit MMA latency.
    pub const MMA_B1: f64 = 16.0;
    /// Dependent FP64 FMA latency.
    pub const FMA_F64: f64 = 8.0;
    /// Warp shuffle latency (CUB-style scan/reduce rounds).
    pub const SHFL: f64 = 25.0;
    /// Shared-memory round trip.
    pub const SMEM_RT: f64 = 30.0;
    /// Global-memory round trip (L2 miss).
    pub const GMEM_RT: f64 = 450.0;
    /// Block-level barrier.
    pub const SYNC: f64 = 40.0;
}

/// One kernel launch: geometry plus total work plus critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTrace {
    /// Human-readable label (used in reports).
    pub label: String,
    /// Number of thread blocks.
    pub blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Shared memory per block in bytes (occupancy limiter).
    pub smem_per_block: u32,
    /// Total operations issued by the launch.
    pub ops: OpCounters,
    /// Longest dependent-instruction chain, in cycles — the latency floor
    /// of the launch (dominant for tiny single-block kernels).
    pub critical_cycles: f64,
}

impl KernelTrace {
    /// Construct a trace.
    pub fn new(
        label: impl Into<String>,
        blocks: u64,
        threads_per_block: u32,
        smem_per_block: u32,
        ops: OpCounters,
        critical_cycles: f64,
    ) -> Self {
        Self {
            label: label.into(),
            blocks: blocks.max(1),
            threads_per_block,
            smem_per_block,
            ops,
            critical_cycles,
        }
    }

    /// Warps per block (threads rounded up to warp granularity).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block
            .div_ceil(cubie_core::WARP_SIZE as u32)
            .max(1)
    }

    /// Total warps in the launch.
    pub fn total_warps(&self) -> u64 {
        self.blocks * self.warps_per_block() as u64
    }
}

/// A complete workload execution: an ordered sequence of kernel launches
/// (BFS iterations, scan passes, …), each paying launch overhead.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// The launches, in execution order.
    pub kernels: Vec<KernelTrace>,
}

impl WorkloadTrace {
    /// A workload consisting of a single launch.
    pub fn single(kernel: KernelTrace) -> Self {
        Self {
            kernels: vec![kernel],
        }
    }

    /// Append a launch.
    pub fn push(&mut self, kernel: KernelTrace) {
        self.kernels.push(kernel);
    }

    /// Sum of all operations across all launches.
    pub fn total_ops(&self) -> OpCounters {
        self.kernels.iter().map(|k| k.ops).sum()
    }

    /// Number of launches.
    pub fn launches(&self) -> usize {
        self.kernels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::counters::MemTraffic;

    fn ops(mma: u64, bytes: u64) -> OpCounters {
        OpCounters {
            mma_f64: mma,
            gmem_load: MemTraffic::coalesced(bytes),
            ..Default::default()
        }
    }

    #[test]
    fn trace_geometry() {
        let t = KernelTrace::new("k", 10, 256, 0, ops(4, 128), 0.0);
        assert_eq!(t.warps_per_block(), 8);
        assert_eq!(t.total_warps(), 80);
        assert_eq!(t.ops.mma_f64, 4);
    }

    #[test]
    fn warps_round_up() {
        let t = KernelTrace::new("k", 1, 33, 0, OpCounters::default(), 0.0);
        assert_eq!(t.warps_per_block(), 2);
    }

    #[test]
    fn zero_blocks_clamped() {
        let t = KernelTrace::new("k", 0, 32, 0, OpCounters::default(), 0.0);
        assert_eq!(t.blocks, 1);
    }

    #[test]
    fn workload_accumulates_launches() {
        let mut w = WorkloadTrace::default();
        w.push(KernelTrace::new("a", 1, 32, 0, ops(1, 8), 0.0));
        w.push(KernelTrace::new("b", 1, 32, 0, ops(2, 8), 0.0));
        assert_eq!(w.launches(), 2);
        assert_eq!(w.total_ops().mma_f64, 3);
        assert_eq!(w.total_ops().gmem_bytes(), 16);
    }
}
