//! The power and energy model (Figures 7 and 8).
//!
//! Power during kernel execution is modelled as idle power plus
//! per-pipe dynamic power weighted by pipe utilization, clamped at TDP:
//!
//! `P = idle + tc_w·util_tc + cc_w·util_cc + mem_w·util_mem  (≤ TDP)`
//!
//! The energy-delay product follows the paper's definition:
//! `EDP = average power × execution time²` (kernel-only window).

use cubie_device::DeviceSpec;
use serde::{Deserialize, Serialize};

use crate::timing::WorkloadTiming;

/// Power/energy summary of one workload execution (or a loop thereof).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Average power over the kernel window, watts.
    pub avg_power_w: f64,
    /// Execution time of the measured window, seconds.
    pub time_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Energy-delay product, J·s (`avg power × time²`).
    pub edp: f64,
}

impl EnergyReport {
    /// The report as an ordered `(name, value)` list — the canonical
    /// export the golden-artifact layer serializes (Figure 7 columns).
    /// The order is part of the `cubie-golden/v1` schema; keep it stable.
    pub fn named_fields(&self) -> [(&'static str, f64); 4] {
        [
            ("avg_power_w", self.avg_power_w),
            ("time_s", self.time_s),
            ("energy_j", self.energy_j),
            ("edp", self.edp),
        ]
    }
}

/// Instantaneous steady-state power for a workload's utilization profile.
pub fn steady_power(device: &DeviceSpec, timing: &WorkloadTiming) -> f64 {
    let p = &device.power;
    let tc = timing.tc_util().max(timing.b1_util());
    let raw =
        p.idle_w + p.tc_pipe_w * tc + p.cc_pipe_w * timing.cc_util() + p.mem_w * timing.mem_util();
    raw.min(p.tdp_w)
}

/// Power/energy report for executing the workload `repeats` times
/// back-to-back (the paper executes each workload in a loop to capture
/// stable power, Figure 7's caption lists the per-workload repeat counts).
pub fn power_report(device: &DeviceSpec, timing: &WorkloadTiming, repeats: u64) -> EnergyReport {
    let time = timing.total_s * repeats as f64;
    let avg = steady_power(device, timing);
    EnergyReport {
        avg_power_w: avg,
        time_s: time,
        energy_j: avg * time,
        edp: avg * time * time,
    }
}

/// One sample of a power trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Time since trace start, seconds.
    pub t_s: f64,
    /// Smoothed power reading, watts.
    pub power_w: f64,
}

/// Produce a power-versus-time trace for executing the workload in a loop
/// for `repeats` iterations, sampled every `dt_s` seconds, starting from
/// idle and smoothed with the device's EMA time constant — the shape of
/// the paper's Figure 8 curves (ramp from idle to a plateau, then decay).
///
/// The trace covers the kernel window plus one smoothing constant of
/// cool-down.
pub fn power_trace(
    device: &DeviceSpec,
    timing: &WorkloadTiming,
    repeats: u64,
    dt_s: f64,
) -> Vec<PowerSample> {
    assert!(dt_s > 0.0, "sample interval must be positive");
    let p = &device.power;
    let active = timing.total_s * repeats as f64;
    let tail = 3.0 * p.smoothing_tau_s;
    let total = active + tail;
    let target_active = steady_power(device, timing);
    let alpha = 1.0 - (-dt_s / p.smoothing_tau_s).exp();

    let n = (total / dt_s).ceil() as usize + 1;
    let mut out = Vec::with_capacity(n);
    let mut power = p.idle_w;
    for i in 0..n {
        let t = i as f64 * dt_s;
        let target = if t < active { target_active } else { p.idle_w };
        power += alpha * (target - power);
        out.push(PowerSample {
            t_s: t,
            power_w: power,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::time_workload;
    use crate::trace::{KernelTrace, WorkloadTrace};
    use cubie_core::counters::MemTraffic;
    use cubie_core::OpCounters;
    use cubie_device::h200;

    fn compute_workload(mma_per_block: u64) -> WorkloadTrace {
        let blocks = 1u64 << 16;
        WorkloadTrace::single(KernelTrace::new(
            "k",
            blocks,
            256,
            0,
            OpCounters {
                mma_f64: mma_per_block * blocks,
                ..Default::default()
            },
            0.0,
        ))
    }

    fn memory_workload() -> WorkloadTrace {
        let blocks = 1u64 << 16;
        WorkloadTrace::single(KernelTrace::new(
            "m",
            blocks,
            256,
            0,
            OpCounters {
                gmem_load: MemTraffic::coalesced(blocks << 16),
                ..Default::default()
            },
            0.0,
        ))
    }

    #[test]
    fn busy_tc_kernel_draws_high_power() {
        let d = h200();
        let t = time_workload(&d, &compute_workload(4096));
        let pw = steady_power(&d, &t);
        assert!(
            pw > 400.0,
            "Quadrant-I TC kernels should exceed 400 W on H200 (paper §7); got {pw}"
        );
        assert!(pw <= d.power.tdp_w);
    }

    #[test]
    fn idle_floor_is_respected() {
        let d = h200();
        let empty =
            WorkloadTrace::single(KernelTrace::new("e", 1, 32, 0, OpCounters::default(), 0.0));
        let t = time_workload(&d, &empty);
        let pw = steady_power(&d, &t);
        assert!(pw >= d.power.idle_w);
        assert!(pw < d.power.idle_w + 30.0);
    }

    #[test]
    fn edp_definition() {
        let d = h200();
        let t = time_workload(&d, &compute_workload(1024));
        let r = power_report(&d, &t, 10);
        assert!((r.edp - r.avg_power_w * r.time_s * r.time_s).abs() < 1e-9);
        assert!((r.energy_j - r.avg_power_w * r.time_s).abs() < 1e-9);
    }

    #[test]
    fn faster_same_power_means_lower_edp() {
        let d = h200();
        let fast = power_report(&d, &time_workload(&d, &compute_workload(1024)), 100);
        let slow = power_report(&d, &time_workload(&d, &compute_workload(4096)), 100);
        assert!(fast.time_s < slow.time_s);
        assert!(fast.edp < slow.edp);
    }

    #[test]
    fn trace_ramps_to_plateau_and_decays() {
        let d = h200();
        let t = time_workload(&d, &compute_workload(4096));
        // Enough repeats to reach the plateau.
        let repeats = (5.0 * d.power.smoothing_tau_s / t.total_s).ceil() as u64 + 1;
        let trace = power_trace(&d, &t, repeats, 0.05);
        let target = steady_power(&d, &t);
        let first = trace.first().unwrap().power_w;
        let peak = trace.iter().map(|s| s.power_w).fold(0.0, f64::max);
        let last = trace.last().unwrap().power_w;
        assert!(first < target * 0.6, "trace should start near idle");
        assert!(peak > target * 0.95, "trace should reach the plateau");
        assert!(last < target * 0.6, "trace should decay after the loop");
    }

    #[test]
    fn memory_bound_power_below_compute_bound_power() {
        let d = h200();
        let pm = steady_power(&d, &time_workload(&d, &memory_workload()));
        let pc = steady_power(&d, &time_workload(&d, &compute_workload(4096)));
        assert!(pm < pc, "memory-bound {pm} W vs compute-bound {pc} W");
    }
}
