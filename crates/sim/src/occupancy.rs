//! SM occupancy: how many warps can be resident, and how well they hide
//! pipeline and memory latency.
//!
//! Efficiency is modelled per pipe: a pipe saturates once enough warps
//! are resident on an SM to cover its dependent-issue latency — tensor
//! cores need only a handful of warps (each MMA occupies the pipe for
//! several cycles), FP64 CUDA cores need more, and the memory system the
//! most. Grids smaller than the device additionally idle whole SMs.

use cubie_device::DeviceSpec;
use serde::{Deserialize, Serialize};

use crate::trace::KernelTrace;

/// Warps per SM needed to saturate the FP64 tensor-core (and bit-MMA)
/// pipe: each MMA occupies the pipe for ~4 cycles, so ~6 dependent-chain
/// warps keep it busy.
pub const TC_SATURATION_WARPS: f64 = 6.0;
/// Warps per SM needed to saturate the CUDA-core FP64/int pipes
/// (latency ÷ issue interval heuristic; ~16 of 64 slots).
pub const CC_SATURATION_WARPS: f64 = 16.0;
/// Warps per SM needed to saturate the memory system (memory latency is
/// longer, but requests queue; ~24 of 64 slots).
pub const MEM_SATURATION_WARPS: f64 = 24.0;

/// Occupancy of one kernel launch on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM (bounded by block slots, warp slots and
    /// shared memory).
    pub blocks_per_sm: u32,
    /// Warps resident per SM when an SM is fully fed.
    pub warps_per_sm: u32,
    /// Fraction of the device's maximum resident warps.
    pub fraction: f64,
    /// SMs that actually receive work.
    pub active_sms: f64,
    /// Warps active per *active* SM.
    pub warps_per_active_sm: f64,
}

impl Occupancy {
    /// Compute occupancy of `trace` on `device`.
    pub fn of(device: &DeviceSpec, trace: &KernelTrace) -> Self {
        let warps_per_block = trace.warps_per_block().max(1);
        let by_warps = (device.max_warps_per_sm / warps_per_block).max(1);
        let by_blocks = device.max_blocks_per_sm;
        let by_smem = if trace.smem_per_block == 0 {
            u32::MAX
        } else {
            ((device.smem_per_sm_kib * 1024) / trace.smem_per_block.max(1)).max(1)
        };
        let blocks_per_sm = by_warps.min(by_blocks).min(by_smem);
        let warps_per_sm = (blocks_per_sm * warps_per_block).min(device.max_warps_per_sm);
        let fraction = warps_per_sm as f64 / device.max_warps_per_sm as f64;

        // The hardware scheduler spreads blocks across SMs round-robin
        // before stacking them, so a grid of B blocks keeps min(B, SMs)
        // SMs busy.
        let sm_count = device.sm_count as f64;
        let active_sms = (trace.blocks as f64).min(sm_count).max(1.0);
        let warps_per_active_sm =
            (trace.total_warps() as f64 / active_sms).min(warps_per_sm as f64);
        Self {
            blocks_per_sm,
            warps_per_sm,
            fraction,
            active_sms,
            warps_per_active_sm,
        }
    }

    /// Fraction of device-wide pipe throughput achieved given a pipe's
    /// saturation threshold (warps per SM needed to keep it busy).
    pub fn pipe_efficiency(&self, device: &DeviceSpec, saturation_warps: f64) -> f64 {
        let sm_fraction = self.active_sms / device.sm_count as f64;
        sm_fraction * (self.warps_per_active_sm / saturation_warps).min(1.0)
    }

    /// Tensor-core / bit-MMA pipe efficiency.
    pub fn tc_efficiency(&self, device: &DeviceSpec) -> f64 {
        self.pipe_efficiency(device, TC_SATURATION_WARPS)
    }

    /// CUDA-core (FP64 and integer) pipe efficiency.
    pub fn cc_efficiency(&self, device: &DeviceSpec) -> f64 {
        self.pipe_efficiency(device, CC_SATURATION_WARPS)
    }

    /// Memory-system efficiency.
    pub fn memory_efficiency(&self, device: &DeviceSpec) -> f64 {
        self.pipe_efficiency(device, MEM_SATURATION_WARPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::OpCounters;
    use cubie_device::h200;

    fn trace(blocks: u64, threads: u32, smem: u32) -> KernelTrace {
        KernelTrace::new("t", blocks, threads, smem, OpCounters::default(), 0.0)
    }

    #[test]
    fn big_grid_fills_device() {
        let d = h200();
        let o = Occupancy::of(&d, &trace(1_000_000, 256, 0));
        assert_eq!(o.warps_per_sm, d.max_warps_per_sm);
        assert!((o.fraction - 1.0).abs() < 1e-12);
        assert_eq!(o.active_sms, d.sm_count as f64);
        assert!((o.tc_efficiency(&d) - 1.0).abs() < 1e-12);
        assert!((o.cc_efficiency(&d) - 1.0).abs() < 1e-12);
        assert!((o.memory_efficiency(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_block_uses_one_sm() {
        let d = h200();
        let o = Occupancy::of(&d, &trace(1, 256, 0));
        assert_eq!(o.active_sms, 1.0);
        assert_eq!(o.warps_per_active_sm, 8.0);
        // 8 warps saturate the TC pipe of that one SM but the device is
        // 1/132 utilized.
        let tc = o.tc_efficiency(&d);
        assert!((tc - 1.0 / 132.0).abs() < 1e-9, "tc eff {tc}");
        // The FP64 pipe needs 16 warps: half saturated.
        let cc = o.cc_efficiency(&d);
        assert!((cc - 0.5 / 132.0).abs() < 1e-9, "cc eff {cc}");
    }

    #[test]
    fn tc_saturates_before_cc_before_memory() {
        let d = h200();
        let o = Occupancy::of(&d, &trace((d.sm_count * 2) as u64, 128, 0));
        assert!(o.tc_efficiency(&d) >= o.cc_efficiency(&d));
        assert!(o.cc_efficiency(&d) >= o.memory_efficiency(&d));
    }

    #[test]
    fn smem_limits_blocks() {
        let d = h200();
        // 100 KiB smem per block → at most 2 blocks on a 228 KiB SM.
        let o = Occupancy::of(&d, &trace(100_000, 128, 100 * 1024));
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.warps_per_sm, 8);
    }

    #[test]
    fn warp_slots_limit_blocks() {
        let d = h200();
        // 1024-thread blocks = 32 warps: only 2 fit in 64 warp slots.
        let o = Occupancy::of(&d, &trace(100_000, 1024, 0));
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.warps_per_sm, 64);
    }

    #[test]
    fn efficiencies_are_fractions() {
        let d = h200();
        for blocks in [1u64, 7, 130, 1000, 1 << 20] {
            let o = Occupancy::of(&d, &trace(blocks, 96, 2048));
            for e in [
                o.tc_efficiency(&d),
                o.cc_efficiency(&d),
                o.memory_efficiency(&d),
            ] {
                assert!((0.0..=1.0).contains(&e), "blocks {blocks}: eff {e}");
            }
        }
    }
}
