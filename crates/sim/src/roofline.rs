//! The cache-aware roofline model of Figure 9.
//!
//! Ceilings: DRAM bandwidth, L1 bandwidth (`N_SM × N_LSU × W_access ×
//! f_clock`, as the figure caption defines), FP64 CUDA-core peak and FP64
//! tensor-core peak. Kernels are placed at
//! `(arithmetic intensity [FLOP/byte], achieved GFLOP/s)`.

use cubie_device::DeviceSpec;
use serde::{Deserialize, Serialize};

use crate::timing::WorkloadTiming;

/// A kernel's placement in roofline space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label, e.g. `"SpMV-TC"`.
    pub name: String,
    /// Arithmetic intensity, FLOPs per DRAM byte.
    pub ai: f64,
    /// Achieved performance, GFLOP/s.
    pub gflops: f64,
}

/// The roofline ceilings of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Device name.
    pub device: String,
    /// DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// L1 bandwidth, GB/s.
    pub l1_bw_gbs: f64,
    /// FP64 CUDA-core peak, GFLOP/s.
    pub cc_peak_gflops: f64,
    /// FP64 tensor-core peak, GFLOP/s.
    pub tc_peak_gflops: f64,
}

impl Roofline {
    /// Build the ceilings for `device`.
    pub fn of(device: &DeviceSpec) -> Self {
        Self {
            device: device.name.clone(),
            dram_bw_gbs: device.dram_bw_gbs,
            l1_bw_gbs: device.l1_bw_gbs,
            cc_peak_gflops: device.cc_fp64_tflops * 1e3,
            tc_peak_gflops: device.tc_fp64_tflops * 1e3,
        }
    }

    /// Attainable GFLOP/s at arithmetic intensity `ai` under the DRAM
    /// ceiling and the tensor-core compute ceiling.
    pub fn dram_bound(&self, ai: f64) -> f64 {
        (ai * self.dram_bw_gbs).min(self.tc_peak_gflops)
    }

    /// Attainable GFLOP/s at arithmetic intensity `ai` under the L1
    /// ceiling (cache-friendly kernels may exceed the DRAM roof, as the
    /// paper observes for Scan/Reduction).
    pub fn l1_bound(&self, ai: f64) -> f64 {
        (ai * self.l1_bw_gbs).min(self.tc_peak_gflops)
    }

    /// The ridge point (FLOP/byte) where the DRAM roof meets the
    /// tensor-core ceiling.
    pub fn ridge_ai(&self) -> f64 {
        self.tc_peak_gflops / self.dram_bw_gbs
    }

    /// Place a measured workload in roofline space using the cache-aware
    /// intensity (FLOPs over total DRAM + L2 + shared traffic, as the
    /// paper's Figure 9 does). Returns `None` for workloads with no
    /// floating-point work or no traffic (BFS's bit kernels, which the
    /// paper also excludes).
    pub fn place(&self, name: impl Into<String>, timing: &WorkloadTiming) -> Option<RooflinePoint> {
        if timing.total_ops.flops_f64() == 0 {
            return None;
        }
        let ai = timing.total_ops.cache_aware_intensity()?;
        Some(RooflinePoint {
            name: name.into(),
            ai,
            gflops: timing.gflops(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::time_workload;
    use crate::trace::{KernelTrace, WorkloadTrace};
    use cubie_core::counters::MemTraffic;
    use cubie_core::OpCounters;
    use cubie_device::h200;

    #[test]
    fn ceilings_match_device() {
        let d = h200();
        let r = Roofline::of(&d);
        assert_eq!(r.tc_peak_gflops, 66_900.0);
        assert_eq!(r.cc_peak_gflops, 33_500.0);
        assert_eq!(r.dram_bw_gbs, 4000.0);
        assert!(r.l1_bw_gbs > r.dram_bw_gbs);
    }

    #[test]
    fn ridge_point_splits_regimes() {
        let r = Roofline::of(&h200());
        let ridge = r.ridge_ai();
        assert!(r.dram_bound(ridge * 0.5) < r.tc_peak_gflops);
        assert!((r.dram_bound(ridge * 2.0) - r.tc_peak_gflops).abs() < 1e-9);
    }

    #[test]
    fn measured_points_respect_the_roofline() {
        let d = h200();
        let r = Roofline::of(&d);
        for (mma, bytes) in [(1u64, 1u64 << 14), (64, 1 << 12), (1024, 1 << 10)] {
            let blocks = 1u64 << 16;
            let w = WorkloadTrace::single(KernelTrace::new(
                "k",
                blocks,
                256,
                0,
                OpCounters {
                    mma_f64: mma * blocks,
                    gmem_load: MemTraffic::coalesced(bytes * blocks),
                    ..Default::default()
                },
                0.0,
            ));
            let t = time_workload(&d, &w);
            let p = r.place("k", &t).unwrap();
            // Model can never beat the L1 roof or the compute ceiling.
            assert!(p.gflops <= r.l1_bound(p.ai) * 1.001, "{p:?}");
        }
    }

    #[test]
    fn no_traffic_means_no_point() {
        let d = h200();
        let w = WorkloadTrace::single(KernelTrace::new(
            "bits",
            1024,
            256,
            0,
            OpCounters {
                mma_b1: 102_400,
                ..Default::default()
            },
            0.0,
        ));
        let t = time_workload(&d, &w);
        assert!(Roofline::of(&d).place("bits", &t).is_none());
    }
}
