//! The wave/roofline timing model.
//!
//! Each hardware pipe receives an aggregate service time for the whole
//! launch; pipes operate concurrently, so the execution time is the
//! maximum of the pipe times after degrading each pipe's throughput by a
//! latency-hiding factor derived from occupancy and grid fill. Launch
//! overhead is added per kernel.
//!
//! The pipes modelled:
//!
//! | pipe  | work                     | peak                       |
//! |-------|--------------------------|----------------------------|
//! | TC    | FP64 MMA FLOPs           | `tc_fp64_tflops`           |
//! | TC    | FP16/BF16/TF32 MMA FLOPs | `tc_{f16,bf16,tf32}_tflops`|
//! | CC    | FP64 CUDA-core FLOPs     | `cc_fp64_tflops`           |
//! | CC    | FP32 CUDA-core FLOPs     | `cc_fp32_tflops`           |
//! | INT   | integer/logic ops        | `cc_int_tops`              |
//! | B1    | bit-MMA bit operations   | `tc_b1_tbitops`            |
//! | LSU   | global+shared bytes      | `l1_bw_gbs`                |
//! | DRAM  | global bytes by class    | `dram_bw_gbs × class eff.` |
//!
//! Mixed-precision MMAs time-share the tensor-core pipe with FP64 MMAs
//! (their service times add), and their FP32-FMA CUDA-core replacements
//! share the CC pipe likewise; FP64-only traces are unaffected bit for
//! bit.

use cubie_core::OpCounters;
use cubie_device::DeviceSpec;
use serde::{Deserialize, Serialize};

use crate::occupancy::Occupancy;
use crate::trace::{KernelTrace, WorkloadTrace};

/// Which pipe bounded a kernel's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// FP64 tensor-core pipe.
    TensorCore,
    /// FP64 CUDA-core pipe.
    CudaCore,
    /// Integer/logic pipe.
    Int,
    /// Bit-MMA pipe.
    BitMma,
    /// L1 / shared-memory / load-store unit bandwidth.
    L1,
    /// L2 cache bandwidth.
    L2,
    /// DRAM bandwidth.
    Dram,
    /// Dependent-instruction latency chain (tiny kernels).
    Latency,
    /// Kernel-launch overhead (tiny kernels).
    Launch,
}

/// Per-pipe busy times for one launch, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PipeTimes {
    /// FP64 tensor-core pipe time.
    pub tc: f64,
    /// FP64 CUDA-core pipe time.
    pub cc: f64,
    /// Integer pipe time.
    pub int: f64,
    /// Bit-MMA pipe time.
    pub b1: f64,
    /// Load/store (L1 + shared) time.
    pub lsu: f64,
    /// L2 re-streaming time.
    pub l2: f64,
    /// DRAM time.
    pub dram: f64,
}

impl PipeTimes {
    /// The busy time of the slowest pipe — the throughput bound on the
    /// launch's execution time.
    pub fn max(&self) -> f64 {
        self.tc
            .max(self.cc)
            .max(self.int)
            .max(self.b1)
            .max(self.lsu)
            .max(self.l2)
            .max(self.dram)
    }

    /// The busy time of the pipe `l` names (`Latency`/`Launch` have no
    /// pipe and return 0).
    pub fn of(&self, l: Limiter) -> f64 {
        match l {
            Limiter::TensorCore => self.tc,
            Limiter::CudaCore => self.cc,
            Limiter::Int => self.int,
            Limiter::BitMma => self.b1,
            Limiter::L1 => self.lsu,
            Limiter::L2 => self.l2,
            Limiter::Dram => self.dram,
            Limiter::Latency | Limiter::Launch => 0.0,
        }
    }

    /// Which pipe bounds this launch (ties resolved in pipe order).
    pub fn limiter(&self) -> Limiter {
        let m = self.max();
        if m == self.tc {
            Limiter::TensorCore
        } else if m == self.cc {
            Limiter::CudaCore
        } else if m == self.int {
            Limiter::Int
        } else if m == self.b1 {
            Limiter::BitMma
        } else if m == self.lsu {
            Limiter::L1
        } else if m == self.l2 {
            Limiter::L2
        } else {
            Limiter::Dram
        }
    }
}

/// Timing result for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Total kernel time including launch overhead, seconds.
    pub time_s: f64,
    /// Execution (post-launch) time, seconds.
    pub exec_s: f64,
    /// Per-pipe busy times (occupancy-degraded; these bound `exec_s`).
    pub pipes: PipeTimes,
    /// Per-pipe *ideal* service times at full device peaks (no occupancy
    /// degradation) — the basis for device-wide utilization: a kernel
    /// keeping one SM busy for the whole execution utilizes 1/SMs of the
    /// device, not 100 % of it.
    pub ideal: PipeTimes,
    /// The limiting pipe.
    pub limiter: Limiter,
    /// Occupancy of the launch.
    pub occupancy: Occupancy,
}

impl KernelTiming {
    /// Device-wide utilization of the FP64 tensor-core pipe (work over
    /// peak capacity during execution).
    pub fn tc_util(&self) -> f64 {
        safe_div(self.ideal.tc, self.exec_s)
    }

    /// Device-wide utilization of the CUDA-core pipes (FP64 + integer;
    /// approximated by the larger of the two).
    pub fn cc_util(&self) -> f64 {
        safe_div(self.ideal.cc.max(self.ideal.int), self.exec_s)
    }

    /// Device-wide utilization of the bit-MMA pipe.
    pub fn b1_util(&self) -> f64 {
        safe_div(self.ideal.b1, self.exec_s)
    }

    /// Device-wide utilization of the DRAM interface.
    pub fn mem_util(&self) -> f64 {
        safe_div(self.ideal.dram, self.exec_s)
    }

    /// Device-wide utilization of the L1/LSU path.
    pub fn l1_util(&self) -> f64 {
        safe_div(self.ideal.lsu, self.exec_s)
    }
}

fn safe_div(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        0.0
    } else {
        (a / b).min(1.0)
    }
}

/// Time one kernel launch on `device`.
pub fn time_kernel(device: &DeviceSpec, trace: &KernelTrace) -> KernelTiming {
    let occ = Occupancy::of(device, trace);
    let eff = PipeEff {
        tc: occ.tc_efficiency(device).max(1e-4),
        cc: occ.cc_efficiency(device).max(1e-4),
        mem: occ.memory_efficiency(device).max(1e-4),
    };
    let pipes = pipe_times(device, &trace.ops, &eff);
    let ideal = pipe_times(
        device,
        &trace.ops,
        &PipeEff {
            tc: 1.0,
            cc: 1.0,
            mem: 1.0,
        },
    );
    // Latency floor: the longest dependent-instruction chain cannot be
    // hidden no matter the throughput (dominant for the single-block
    // Scan/Reduction cases of Quadrants II/III).
    let t_latency = trace.critical_cycles / (device.clock_ghz * 1e9);
    let exec = pipes.max().max(t_latency);
    let time = exec + device.launch_overhead_s();
    let limiter = if device.launch_overhead_s() > exec {
        Limiter::Launch
    } else if t_latency > pipes.max() {
        Limiter::Latency
    } else {
        pipes.limiter()
    };
    KernelTiming {
        time_s: time,
        exec_s: exec,
        pipes,
        ideal,
        limiter,
        occupancy: occ,
    }
}

/// Latency-hiding efficiencies per pipe family.
struct PipeEff {
    tc: f64,
    cc: f64,
    mem: f64,
}

fn pipe_times(device: &DeviceSpec, ops: &OpCounters, eff: &PipeEff) -> PipeTimes {
    let mut tc = ops.tc_flops() as f64 / (device.tc_fp64_flops() * eff.tc);
    // Mixed-precision MMAs share the tensor-core pipe but run at their own
    // per-format peaks. Each term is added only when its counter is live so
    // that FP64-only traces keep bit-identical pipe times (and a zero peak
    // on a hypothetical device cannot inject a 0/0 NaN).
    if ops.mma_f16 > 0 {
        tc += ops.tc_f16_flops() as f64 / (device.tc_f16_flops() * eff.tc);
    }
    if ops.mma_bf16 > 0 {
        tc += ops.tc_bf16_flops() as f64 / (device.tc_bf16_flops() * eff.tc);
    }
    if ops.mma_tf32 > 0 {
        tc += ops.tc_tf32_flops() as f64 / (device.tc_tf32_flops() * eff.tc);
    }
    let cc_flops =
        ops.cc_flops() as f64 + ops.special_f64 as f64 * (1.0 / device.special_ratio - 1.0);
    let mut cc = cc_flops / (device.cc_fp64_flops() * eff.cc);
    // FP32 FMAs (the CUDA-core replacements of mixed-precision MMAs) run
    // at the FP32 CUDA-core peak.
    if ops.fma_f32 > 0 {
        cc += ops.cc_f32_flops() as f64 / (device.cc_fp32_flops() * eff.cc);
    }
    let int = ops.int_ops as f64 / (device.cc_int_ops() * eff.cc);
    let b1 = (ops.mma_b1 * cubie_core::counters::MMA_B1_BITOPS) as f64
        / (device.tc_b1_bitops() * eff.tc);

    // LSU sees every global, L2 and shared byte once.
    let lsu_bytes = ops.gmem_bytes() + ops.l2_bytes + ops.smem_bytes;
    let lsu = lsu_bytes as f64 / (device.l1_bytes_per_s() * eff.cc);

    // L2 services blocked operand re-streaming.
    let l2 = ops.l2_bytes as f64 / (device.l2_bytes_per_s() * eff.mem);

    // DRAM time per coalescing class, with the memory latency-hiding
    // efficiency applied on top of the class efficiency.
    let e = device.mem_eff;
    let load = &ops.gmem_load;
    let store = &ops.gmem_store;
    let dram_bytes_eff = (load.coalesced + store.coalesced) as f64 / e.coalesced
        + (load.strided + store.strided) as f64 / e.strided
        + (load.random + store.random) as f64 / e.random;
    let dram = dram_bytes_eff / (device.dram_bytes_per_s() * eff.mem);

    PipeTimes {
        tc,
        cc,
        int,
        b1,
        lsu,
        l2,
        dram,
    }
}

/// Timing result for a whole workload (a sequence of launches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTiming {
    /// Total time, seconds.
    pub total_s: f64,
    /// Per-launch timings.
    pub kernels: Vec<KernelTiming>,
    /// Sum of all operations.
    pub total_ops: OpCounters,
}

impl WorkloadTiming {
    /// Time-weighted average tensor-core utilization.
    pub fn tc_util(&self) -> f64 {
        self.weighted(|k| k.tc_util())
    }

    /// Time-weighted average CUDA-core utilization.
    pub fn cc_util(&self) -> f64 {
        self.weighted(|k| k.cc_util())
    }

    /// Time-weighted average bit-MMA utilization.
    pub fn b1_util(&self) -> f64 {
        self.weighted(|k| k.b1_util())
    }

    /// Time-weighted average DRAM utilization.
    pub fn mem_util(&self) -> f64 {
        self.weighted(|k| k.mem_util())
    }

    /// Time-weighted average L1 utilization.
    pub fn l1_util(&self) -> f64 {
        self.weighted(|k| k.l1_util())
    }

    /// Achieved FP64 GFLOP/s over the whole workload.
    pub fn gflops(&self) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        self.total_ops.flops_f64() as f64 / self.total_s / 1e9
    }

    fn weighted(&self, f: impl Fn(&KernelTiming) -> f64) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        self.kernels
            .iter()
            .map(|k| f(k) * k.time_s / self.total_s)
            .sum()
    }
}

/// Time a workload: sequential launches, each paying launch overhead.
/// Simulation is profiled as the `time` phase, labelled
/// `workload/variant` (derived from the `workload-VARIANT-…` spelling of
/// the kernel labels).
pub fn time_workload(device: &DeviceSpec, trace: &WorkloadTrace) -> WorkloadTiming {
    let mut span = cubie_obs::span_with("time", || {
        let mut parts = trace
            .kernels
            .first()
            .map(|k| k.label.splitn(3, '-'))
            .into_iter()
            .flatten();
        match (parts.next(), parts.next()) {
            (Some(w), Some(v)) => format!("{w}/{v}"),
            _ => String::new(),
        }
    });
    span.add_items(trace.kernels.len() as u64);
    let kernels: Vec<KernelTiming> = trace
        .kernels
        .iter()
        .map(|k| time_kernel(device, k))
        .collect();
    let total_s = kernels.iter().map(|k| k.time_s).sum();
    WorkloadTiming {
        total_s,
        kernels,
        total_ops: trace.total_ops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::counters::MemTraffic;
    use cubie_device::{a100, b200, h200};

    /// A device-filling launch issuing `per_block` ops in each of 2^16
    /// blocks.
    fn big_launch(per_block: OpCounters) -> KernelTrace {
        let blocks = 1u64 << 16;
        KernelTrace::new("k", blocks, 256, 0, per_block.scaled(blocks), 0.0)
    }

    #[test]
    fn pure_mma_kernel_hits_tc_peak() {
        let d = h200();
        let t = big_launch(OpCounters {
            mma_f64: 1 << 14,
            ..Default::default()
        });
        let timing = time_kernel(&d, &t);
        assert_eq!(timing.limiter, Limiter::TensorCore);
        let flops = t.ops.tc_flops() as f64;
        let achieved = flops / timing.exec_s;
        assert!(
            (achieved / d.tc_fp64_flops() - 1.0).abs() < 0.01,
            "achieved {achieved:.3e} vs peak {:.3e}",
            d.tc_fp64_flops()
        );
    }

    #[test]
    fn cc_replacement_of_mma_takes_about_twice_as_long_on_h200() {
        let d = h200();
        let tc = big_launch(OpCounters {
            mma_f64: 4096,
            ..Default::default()
        });
        let cc = big_launch(OpCounters {
            fma_f64: 4096 * 256,
            ..Default::default()
        });
        let t_tc = time_kernel(&d, &tc).exec_s;
        let t_cc = time_kernel(&d, &cc).exec_s;
        let ratio = t_cc / t_tc;
        assert!(
            (ratio - d.tc_cc_ratio()).abs() < 0.05,
            "ratio {ratio} vs peak ratio {}",
            d.tc_cc_ratio()
        );
    }

    #[test]
    fn cc_equals_tc_on_b200() {
        let d = b200();
        let tc = big_launch(OpCounters {
            mma_f64: 4096,
            ..Default::default()
        });
        let cc = big_launch(OpCounters {
            fma_f64: 4096 * 256,
            ..Default::default()
        });
        let r = time_kernel(&d, &cc).exec_s / time_kernel(&d, &tc).exec_s;
        assert!((r - 1.0).abs() < 0.05);
    }

    #[test]
    fn memory_bound_kernel_scales_with_bandwidth() {
        let ops = OpCounters {
            fma_f64: 16,
            gmem_load: MemTraffic::coalesced(1 << 20),
            ..Default::default()
        };
        let t = big_launch(ops);
        let t_a = time_kernel(&a100(), &t);
        let t_b = time_kernel(&b200(), &t);
        assert_eq!(t_a.limiter, Limiter::Dram);
        // 8 TB/s vs 1.555 TB/s ⇒ ~5.1× faster execution.
        let r = t_a.exec_s / t_b.exec_s;
        assert!(r > 4.0 && r < 6.5, "ratio {r}");
    }

    #[test]
    fn random_access_is_slower_than_coalesced() {
        let d = h200();
        let co = big_launch(OpCounters {
            gmem_load: MemTraffic::coalesced(1 << 20),
            ..Default::default()
        });
        let ra = big_launch(OpCounters {
            gmem_load: MemTraffic::random(1 << 20),
            ..Default::default()
        });
        let r = time_kernel(&d, &ra).exec_s / time_kernel(&d, &co).exec_s;
        let expected = d.mem_eff.coalesced / d.mem_eff.random;
        assert!((r - expected).abs() / expected < 0.05, "ratio {r}");
    }

    #[test]
    fn tiny_kernel_is_launch_bound() {
        let d = h200();
        let t = KernelTrace::new(
            "tiny",
            1,
            32,
            0,
            OpCounters {
                mma_f64: 1,
                ..Default::default()
            },
            latency_chain(1),
        );
        let timing = time_kernel(&d, &t);
        assert_eq!(timing.limiter, Limiter::Launch);
        assert!(timing.time_s >= d.launch_overhead_s());
    }

    fn latency_chain(mmas: u64) -> f64 {
        mmas as f64 * crate::trace::latency::MMA_F64
    }

    #[test]
    fn latency_floor_binds_single_block_chains() {
        let d = h200();
        // A single block with a long dependent chain but little total
        // work: exec time must be the chain, not the pipe time.
        let t = KernelTrace::new(
            "chain",
            1,
            32,
            0,
            OpCounters {
                mma_f64: 10_000,
                ..Default::default()
            },
            latency_chain(10_000),
        );
        let timing = time_kernel(&d, &t);
        assert_eq!(timing.limiter, Limiter::Latency);
        let expected = 10_000.0 * crate::trace::latency::MMA_F64 / (d.clock_ghz * 1e9);
        assert!((timing.exec_s - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn more_work_never_reduces_time() {
        let d = a100();
        let mut last = 0.0;
        for k in [1u64, 2, 8, 64, 1024, 1 << 20] {
            let t = big_launch(OpCounters {
                mma_f64: k,
                gmem_load: MemTraffic::coalesced(k * 64),
                ..Default::default()
            });
            let s = time_kernel(&d, &t).time_s;
            assert!(s >= last, "time decreased: {s} < {last}");
            last = s;
        }
    }

    #[test]
    fn workload_sums_launches() {
        let d = h200();
        let k = big_launch(OpCounters {
            mma_f64: 1024,
            ..Default::default()
        });
        let w = WorkloadTrace {
            kernels: vec![k.clone(), k.clone(), k],
        };
        let wt = time_workload(&d, &w);
        assert_eq!(wt.kernels.len(), 3);
        let single = wt.kernels[0].time_s;
        assert!((wt.total_s - 3.0 * single).abs() < 1e-12);
    }

    #[test]
    fn utils_are_fractions() {
        let d = h200();
        let t = big_launch(OpCounters {
            mma_f64: 100,
            fma_f64: 100,
            int_ops: 100,
            gmem_load: MemTraffic::coalesced(1 << 16),
            smem_bytes: 1 << 14,
            ..Default::default()
        });
        let timing = time_kernel(&d, &t);
        for u in [
            timing.tc_util(),
            timing.cc_util(),
            timing.mem_util(),
            timing.l1_util(),
            timing.b1_util(),
        ] {
            assert!((0.0..=1.0).contains(&u), "util {u}");
        }
    }

    #[test]
    fn pure_f16_mma_kernel_hits_f16_peak() {
        let d = h200();
        let t = big_launch(OpCounters {
            mma_f16: 1 << 14,
            ..Default::default()
        });
        let timing = time_kernel(&d, &t);
        assert_eq!(timing.limiter, Limiter::TensorCore);
        let achieved = t.ops.tc_f16_flops() as f64 / timing.exec_s;
        assert!(
            (achieved / d.tc_f16_flops() - 1.0).abs() < 0.01,
            "achieved {achieved:.3e} vs peak {:.3e}",
            d.tc_f16_flops()
        );
    }

    #[test]
    fn f16_mma_outruns_fp64_mma_by_the_peak_ratio() {
        // Same MMA count, different format: the FP16 pipe on H200 is
        // 989.5/66.9 ≈ 14.8× the FP64 TC peak, but each FP16 m16n8k16
        // issues 4096 FLOPs vs 8192 for the FP64 16×16×16 — the time
        // ratio is (peak ratio) × (flop ratio).
        let d = h200();
        let f64_t = big_launch(OpCounters {
            mma_f64: 4096,
            ..Default::default()
        });
        let f16_t = big_launch(OpCounters {
            mma_f16: 4096,
            ..Default::default()
        });
        let r = time_kernel(&d, &f64_t).exec_s / time_kernel(&d, &f16_t).exec_s;
        let expected = (d.tc_f16_flops() / d.tc_fp64_flops())
            * (cubie_core::counters::MMA_F64_FLOPS as f64
                / cubie_core::counters::MMA_F16_FLOPS as f64);
        assert!((r - expected).abs() / expected < 0.01, "ratio {r}");
    }

    #[test]
    fn fp64_pipe_times_are_bit_identical_with_mixed_counters_zero() {
        // The mixed-precision terms must not perturb FP64-only timing
        // (this is what keeps every existing golden artifact stable).
        let d = a100();
        let t = big_launch(OpCounters {
            mma_f64: 977,
            fma_f64: 12345,
            int_ops: 999,
            gmem_load: MemTraffic::coalesced(1 << 18),
            smem_bytes: 1 << 12,
            ..Default::default()
        });
        let timing = time_kernel(&d, &t);
        assert_eq!(t.ops.mma_f16, 0);
        // Recompute the FP64 TC term exactly as the pre-mixed model did.
        let occ = crate::occupancy::Occupancy::of(&d, &t);
        let eff_tc = occ.tc_efficiency(&d).max(1e-4);
        let expected_tc = t.ops.tc_flops() as f64 / (d.tc_fp64_flops() * eff_tc);
        assert_eq!(timing.pipes.tc.to_bits(), expected_tc.to_bits());
    }

    #[test]
    fn mixed_mmas_add_onto_the_shared_tc_pipe() {
        let d = h200();
        let only_f64 = big_launch(OpCounters {
            mma_f64: 4096,
            ..Default::default()
        });
        let both = big_launch(OpCounters {
            mma_f64: 4096,
            mma_bf16: 4096,
            mma_tf32: 4096,
            ..Default::default()
        });
        let a = time_kernel(&d, &only_f64).pipes.tc;
        let b = time_kernel(&d, &both).pipes.tc;
        assert!(b > a, "shared pipe must accumulate: {b} vs {a}");
    }

    #[test]
    fn f32_fma_replacement_uses_fp32_peak() {
        let d = b200();
        let t = big_launch(OpCounters {
            fma_f32: 1 << 16,
            ..Default::default()
        });
        let timing = time_kernel(&d, &t);
        assert_eq!(timing.limiter, Limiter::CudaCore);
        let achieved = t.ops.cc_f32_flops() as f64 / timing.exec_s;
        assert!(
            (achieved / d.cc_fp32_flops() - 1.0).abs() < 0.01,
            "achieved {achieved:.3e} vs fp32 peak {:.3e}",
            d.cc_fp32_flops()
        );
    }

    #[test]
    fn special_functions_cost_more_than_fma() {
        let d = h200();
        let fma = big_launch(OpCounters {
            add_f64: 1 << 22,
            ..Default::default()
        });
        let sp = big_launch(OpCounters {
            special_f64: 1 << 22,
            ..Default::default()
        });
        assert!(time_kernel(&d, &sp).exec_s > 2.0 * time_kernel(&d, &fma).exec_s);
    }
}
