//! A cycle-level micro-simulator of a single SM executing one thread
//! block — the validation companion to the analytic model.
//!
//! The analytic trace model (`timing.rs`) collapses a kernel into
//! aggregate pipe times plus a hand-derived `critical_cycles` chain. For
//! the single-block latency-bound kernels (the paper's 64–1024-element
//! Scan/Reduction cases) that chain estimate is load-bearing, so this
//! module provides an independent check: express the per-warp
//! *instruction streams* explicitly and schedule them cycle by cycle
//! against the SM's issue ports and dependency latencies.
//!
//! The machine model: an SM with four schedulers (one instruction issued
//! per scheduler per cycle), per-pipe issue intervals (an FP64 MMA
//! occupies the tensor pipe for several cycles; FP64 FMA warps share the
//! 32-lane FP64 unit), and per-instruction result latencies. Each warp
//! issues in order; an instruction marked dependent stalls until the
//! previous result of that warp is ready.

use serde::{Deserialize, Serialize};

/// One warp-wide instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicroOp {
    /// FP64 `m8n8k4` tensor-core MMA.
    MmaF64,
    /// Single-bit `m8n8k128` MMA.
    MmaB1,
    /// Warp-wide FP64 FMA/add/mul.
    FmaF64,
    /// Warp shuffle.
    Shfl,
    /// Shared-memory load (round trip to the result).
    SmemLd,
    /// Shared-memory store.
    SmemSt,
    /// Global-memory load (L2 hit assumed for the small kernels this
    /// model targets).
    GmemLd,
    /// Block-wide barrier.
    Sync,
}

/// One instruction with its dependency *chain*: a warp holds several
/// independent register chains (e.g. two interleaved tile computations);
/// a dependent instruction stalls until the last result of *its own*
/// chain is ready, and every instruction advances its chain's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    /// The operation.
    pub op: MicroOp,
    /// Which of the warp's dependency chains this instruction belongs to.
    pub chain: u8,
    /// Whether this instruction consumes its chain's previous result.
    pub dependent: bool,
}

/// Dependency chains per warp.
pub const CHAINS: usize = 8;

impl Instr {
    /// A dependent instruction on chain 0.
    pub fn dep(op: MicroOp) -> Self {
        Self {
            op,
            chain: 0,
            dependent: true,
        }
    }

    /// An independent instruction on chain 0.
    pub fn indep(op: MicroOp) -> Self {
        Self {
            op,
            chain: 0,
            dependent: false,
        }
    }

    /// A dependent instruction on a specific chain.
    pub fn dep_on(op: MicroOp, chain: u8) -> Self {
        Self {
            op,
            chain: chain % CHAINS as u8,
            dependent: true,
        }
    }

    /// An independent instruction on a specific chain.
    pub fn indep_on(op: MicroOp, chain: u8) -> Self {
        Self {
            op,
            chain: chain % CHAINS as u8,
            dependent: false,
        }
    }
}

/// Machine parameters of the modelled SM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmModel {
    /// Concurrent issue ports (warp schedulers).
    pub schedulers: u32,
    /// Cycles the tensor pipe is occupied per FP64 MMA.
    pub tc_issue_interval: u32,
    /// Cycles the FP64 unit is occupied per warp-wide FMA.
    pub fp64_issue_interval: u32,
    /// Cycles the LSU is occupied per memory/shuffle instruction.
    pub lsu_issue_interval: u32,
    /// Result latencies per op.
    pub lat_mma: u32,
    /// Result latency of the bit MMA.
    pub lat_mma_b1: u32,
    /// Result latency of FP64 FMA.
    pub lat_fma: u32,
    /// Result latency of a shuffle.
    pub lat_shfl: u32,
    /// Result latency of a shared-memory load.
    pub lat_smem: u32,
    /// Result latency of a global load (L2 hit).
    pub lat_gmem: u32,
}

impl Default for SmModel {
    fn default() -> Self {
        Self {
            schedulers: 4,
            tc_issue_interval: 4,
            fp64_issue_interval: 2,
            lsu_issue_interval: 2,
            lat_mma: crate::trace::latency::MMA_F64 as u32,
            lat_mma_b1: crate::trace::latency::MMA_B1 as u32,
            lat_fma: crate::trace::latency::FMA_F64 as u32,
            lat_shfl: crate::trace::latency::SHFL as u32,
            lat_smem: crate::trace::latency::SMEM_RT as u32,
            lat_gmem: 200,
        }
    }
}

impl SmModel {
    fn result_latency(&self, op: MicroOp) -> u32 {
        match op {
            MicroOp::MmaF64 => self.lat_mma,
            MicroOp::MmaB1 => self.lat_mma_b1,
            MicroOp::FmaF64 => self.lat_fma,
            MicroOp::Shfl => self.lat_shfl,
            MicroOp::SmemLd => self.lat_smem,
            MicroOp::SmemSt => 1,
            MicroOp::GmemLd => self.lat_gmem,
            MicroOp::Sync => 1,
        }
    }

    fn pipe(&self, op: MicroOp) -> Pipe {
        match op {
            MicroOp::MmaF64 | MicroOp::MmaB1 => Pipe::Tensor,
            MicroOp::FmaF64 => Pipe::Fp64,
            MicroOp::Shfl | MicroOp::SmemLd | MicroOp::SmemSt | MicroOp::GmemLd => Pipe::Lsu,
            MicroOp::Sync => Pipe::None,
        }
    }

    fn issue_interval(&self, op: MicroOp) -> u32 {
        match self.pipe(op) {
            Pipe::Tensor => self.tc_issue_interval,
            Pipe::Fp64 => self.fp64_issue_interval,
            Pipe::Lsu => self.lsu_issue_interval,
            Pipe::None => 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pipe {
    Tensor,
    Fp64,
    Lsu,
    None,
}

/// Outcome of a block simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockRun {
    /// Cycles until the last warp retired its last instruction.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Cycles the tensor pipe was busy.
    pub tc_busy: u64,
    /// Cycles the FP64 pipe was busy.
    pub fp64_busy: u64,
    /// Cycles the LSU was busy.
    pub lsu_busy: u64,
}

/// Simulate one block: `warps[w]` is warp `w`'s instruction stream.
/// `Sync` acts as a block-wide barrier: a warp at a `Sync` does not
/// proceed until every warp has reached its own pending `Sync`.
pub fn simulate_block(model: &SmModel, warps: &[Vec<Instr>]) -> BlockRun {
    assert!(!warps.is_empty(), "need at least one warp");
    let n = warps.len();
    let mut pc = vec![0usize; n];
    // Per-warp, per-chain timestamps of the last result.
    let mut ready_at = vec![[0u64; CHAINS]; n];
    let mut at_sync = vec![false; n];
    let mut pipe_free = [0u64; 3]; // Tensor, Fp64, Lsu
    let mut cycle: u64 = 0;
    let mut instructions = 0u64;
    let mut busy = [0u64; 3];

    let done = |pc: &Vec<usize>| pc.iter().zip(warps).all(|(p, w)| *p >= w.len());
    // Guard against livelock in case of a malformed stream.
    let budget: u64 = 10_000_000;

    while !done(&pc) && cycle < budget {
        // Barrier release: if every unfinished warp is waiting at a sync,
        // release them all.
        let all_at_sync = pc
            .iter()
            .zip(warps)
            .enumerate()
            .all(|(w, (p, stream))| *p >= stream.len() || at_sync[w]);
        if all_at_sync {
            for (w, flag) in at_sync.iter_mut().enumerate() {
                if *flag {
                    pc[w] += 1; // retire the sync
                    *flag = false;
                }
            }
            cycle += 1;
            continue;
        }

        let mut issued = 0u32;
        // Round-robin fairness: rotate the scheduling origin.
        for i in 0..n {
            let w = (i + cycle as usize) % n;
            if issued >= model.schedulers {
                break;
            }
            if pc[w] >= warps[w].len() || at_sync[w] {
                continue;
            }
            let instr = warps[w][pc[w]];
            if instr.op == MicroOp::Sync {
                at_sync[w] = true;
                continue;
            }
            let ch = instr.chain as usize % CHAINS;
            if instr.dependent && ready_at[w][ch] > cycle {
                continue;
            }
            let p = model.pipe(instr.op);
            let pi = match p {
                Pipe::Tensor => 0,
                Pipe::Fp64 => 1,
                Pipe::Lsu => 2,
                Pipe::None => usize::MAX,
            };
            if pi != usize::MAX && pipe_free[pi] > cycle {
                continue;
            }
            // Issue.
            if pi != usize::MAX {
                let interval = model.issue_interval(instr.op) as u64;
                pipe_free[pi] = cycle + interval;
                busy[pi] += interval;
            }
            ready_at[w][ch] = cycle + model.result_latency(instr.op) as u64;
            pc[w] += 1;
            issued += 1;
            instructions += 1;
        }
        cycle += 1;
    }
    // Account the in-flight results of the final instructions.
    let tail = ready_at
        .iter()
        .flat_map(|r| r.iter().copied())
        .max()
        .unwrap_or(0);
    BlockRun {
        cycles: cycle.max(tail),
        instructions,
        tc_busy: busy[0],
        fp64_busy: busy[1],
        lsu_busy: busy[2],
    }
}

/// Instruction streams for the tensor-core scan of one `n`-element case
/// (Section 3's three-constant-MMA kernel): used by tests and ablations
/// to validate the analytic `critical_cycles` estimates.
pub fn scan_tc_streams(n: usize) -> Vec<Vec<Instr>> {
    let tiles = n.div_ceil(64).max(1);
    let warps = tiles.min(8);
    let mut streams = Vec::new();
    for w in 0..warps {
        let my_tiles = tiles / warps + usize::from(w < tiles % warps);
        let mut s = Vec::new();
        // One global load stages the warp's tiles into shared memory.
        s.push(Instr::dep(MicroOp::GmemLd));
        for t in 0..my_tiles.max(1) {
            // Independent tile computations interleave on separate
            // chains; within a tile: fragment load, T = X·O (two
            // m8n8k4), Z = L·T (dependent), W = X·U (independent
            // sub-chain folded in), final combine add.
            let ch = (t % 4) as u8;
            s.push(Instr::dep_on(MicroOp::SmemLd, ch));
            s.push(Instr::dep_on(MicroOp::MmaF64, ch));
            s.push(Instr::dep_on(MicroOp::MmaF64, ch));
            s.push(Instr::dep_on(MicroOp::MmaF64, ch));
            s.push(Instr::dep_on(MicroOp::MmaF64, ch));
            s.push(Instr::indep_on(MicroOp::MmaF64, ch));
            s.push(Instr::indep_on(MicroOp::MmaF64, ch));
            s.push(Instr::dep_on(MicroOp::FmaF64, ch));
        }
        if tiles > 1 {
            s.push(Instr::indep(MicroOp::SmemSt)); // tile total
            s.push(Instr::indep(MicroOp::Sync));
            if w == 0 {
                // One warp scans the tile totals.
                s.push(Instr::dep(MicroOp::SmemLd));
                for _ in 0..6 {
                    s.push(Instr::dep(MicroOp::MmaF64));
                }
                s.push(Instr::indep(MicroOp::SmemSt));
            }
            s.push(Instr::indep(MicroOp::Sync));
            s.push(Instr::dep(MicroOp::SmemLd)); // offset
            s.push(Instr::dep(MicroOp::FmaF64)); // uniform add
        }
        s.push(Instr::indep(MicroOp::SmemSt)); // result store
        streams.push(s);
    }
    streams
}

/// Instruction streams for the CUB-style baseline scan (per-thread serial
/// scan + raking warp scan + uniform add).
pub fn scan_baseline_streams(n: usize) -> Vec<Vec<Instr>> {
    let threads = 128.min(n.max(1));
    let warps = threads.div_ceil(32).max(1);
    let per_thread = n.div_ceil(threads).max(1);
    let mut streams = Vec::new();
    for w in 0..warps {
        let mut s = Vec::new();
        s.push(Instr::dep(MicroOp::GmemLd));
        // Thread-serial scan.
        for _ in 0..per_thread {
            s.push(Instr::dep(MicroOp::FmaF64));
        }
        s.push(Instr::indep(MicroOp::SmemSt));
        s.push(Instr::indep(MicroOp::Sync));
        if w == 0 {
            // Raking warp: serial rake + Kogge–Stone over 32 lanes.
            s.push(Instr::dep(MicroOp::SmemLd));
            for _ in 0..4 {
                s.push(Instr::dep(MicroOp::FmaF64));
            }
            for _ in 0..5 {
                s.push(Instr::dep(MicroOp::Shfl));
                s.push(Instr::dep(MicroOp::FmaF64));
            }
            s.push(Instr::indep(MicroOp::SmemSt));
        }
        s.push(Instr::indep(MicroOp::Sync));
        s.push(Instr::dep(MicroOp::SmemLd));
        // Uniform add of the exclusive offset.
        for _ in 0..per_thread {
            s.push(Instr::dep(MicroOp::FmaF64));
        }
        s.push(Instr::indep(MicroOp::SmemSt));
        streams.push(s);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dependent_chain_is_latency_bound() {
        let m = SmModel::default();
        let chain: Vec<Instr> = (0..10).map(|_| Instr::dep(MicroOp::MmaF64)).collect();
        let r = simulate_block(&m, &[chain]);
        // 10 dependent MMAs ≈ 10 × lat_mma.
        let expect = 10 * m.lat_mma as u64;
        assert!(
            r.cycles >= expect && r.cycles <= expect + 16,
            "cycles {} vs expected ~{}",
            r.cycles,
            expect
        );
    }

    #[test]
    fn independent_ops_pipeline() {
        let m = SmModel::default();
        let stream: Vec<Instr> = (0..32).map(|_| Instr::indep(MicroOp::MmaF64)).collect();
        let r = simulate_block(&m, &[stream]);
        // Issue-interval bound, not latency bound.
        let expect = 32 * m.tc_issue_interval as u64;
        assert!(
            r.cycles < expect + m.lat_mma as u64 + 8,
            "cycles {} should approach the issue bound {}",
            r.cycles,
            expect
        );
    }

    #[test]
    fn multiple_warps_share_pipes() {
        let m = SmModel::default();
        let per_warp: Vec<Instr> = (0..16).map(|_| Instr::dep(MicroOp::MmaF64)).collect();
        let one = simulate_block(&m, std::slice::from_ref(&per_warp)).cycles;
        let eight = simulate_block(&m, &vec![per_warp; 8]).cycles;
        // Eight dependent chains interleave: total MMA issues = 128 at
        // one per 4 cycles = 512 cycles > single-chain latency 384.
        assert!(eight > one, "eight warps {eight} vs one {one}");
        assert!(
            eight < 8 * one,
            "chains must overlap: {eight} vs serial {}",
            8 * one
        );
    }

    #[test]
    fn sync_is_a_barrier() {
        let m = SmModel::default();
        // Warp 0: long chain then sync; warp 1: sync then one op.
        let w0: Vec<Instr> = (0..20)
            .map(|_| Instr::dep(MicroOp::FmaF64))
            .chain([Instr::indep(MicroOp::Sync), Instr::dep(MicroOp::FmaF64)])
            .collect();
        let w1 = vec![Instr::indep(MicroOp::Sync), Instr::dep(MicroOp::FmaF64)];
        let r = simulate_block(&m, &[w0, w1]);
        // Warp 1 must wait for warp 0's 20-FMA chain.
        assert!(r.cycles > 20 * m.lat_fma as u64);
    }

    #[test]
    fn scan_microsim_brackets_the_analytic_shape() {
        // The cycle-level schedule confirms the small-case TC win and
        // bounds the large-case behaviour: with only an `m8n8k4`-wide
        // FP64 MMA (4-cycle issue interval), the 96+ MMAs of the 1024-
        // element scan keep one SM's tensor pipe busy long enough that
        // the TC advantage shrinks — an honest micro-level finding the
        // analytic model's calibrated latency table glosses over (see
        // EXPERIMENTS.md, deviations).
        let m = SmModel::default();
        let tc64 = simulate_block(&m, &scan_tc_streams(64)).cycles;
        let base64 = simulate_block(&m, &scan_baseline_streams(64)).cycles;
        assert!(
            tc64 < base64,
            "single-tile TC {tc64} must beat the shuffle baseline {base64}"
        );
        for n in [128usize, 256, 512, 1024] {
            let tc = simulate_block(&m, &scan_tc_streams(n)).cycles;
            let base = simulate_block(&m, &scan_baseline_streams(n)).cycles;
            let ratio = tc as f64 / base as f64;
            assert!(
                (0.3..2.0).contains(&ratio),
                "n={n}: TC {tc} vs baseline {base} outside the plausible band"
            );
        }
    }

    #[test]
    fn wider_tensor_pipe_restores_the_tc_win() {
        // With a Hopper-class FP64 MMA issue rate (2 cycles instead of
        // 4), the tensor pipe stops binding and TC wins every size —
        // matching the paper's observation that Hopper sustains the
        // scan speedup.
        let narrow = SmModel::default();
        let wide = SmModel {
            tc_issue_interval: 1,
            ..SmModel::default()
        };
        for n in [256usize, 512, 1024] {
            let tc_narrow = simulate_block(&narrow, &scan_tc_streams(n)).cycles;
            let tc_wide = simulate_block(&wide, &scan_tc_streams(n)).cycles;
            assert!(
                tc_wide < tc_narrow,
                "n={n}: widening the MMA pipe must help ({tc_wide} vs {tc_narrow})"
            );
        }
        // The baseline does not benefit from the tensor pipe at all.
        let b_narrow = simulate_block(&narrow, &scan_baseline_streams(1024)).cycles;
        let b_wide = simulate_block(&wide, &scan_baseline_streams(1024)).cycles;
        assert_eq!(b_narrow, b_wide);
    }

    #[test]
    fn microsim_agrees_with_analytic_latency_within_2x() {
        // The analytic `critical_cycles` of the scan traces should be
        // within a factor of two of the cycle-level simulation — the
        // validation the latency model rests on.
        let m = SmModel::default();
        for n in [64usize, 256, 1024] {
            let micro = simulate_block(&m, &scan_tc_streams(n)).cycles as f64;
            // Reconstruct the per-execution analytic estimate (the trace
            // multiplies by its benchmark repeat count).
            let hierarchical = n > 64;
            let level =
                2.0 * (2.0 * crate::trace::latency::MMA_F64) + crate::trace::latency::FMA_F64;
            let analytic = crate::trace::latency::SMEM_RT
                + level
                + if hierarchical {
                    crate::trace::latency::SMEM_RT + level + crate::trace::latency::FMA_F64
                } else {
                    0.0
                };
            let ratio = micro / analytic;
            assert!(
                (0.5..8.0).contains(&ratio),
                "n={n}: micro {micro} vs analytic {analytic} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn empty_streams_finish_immediately() {
        let m = SmModel::default();
        let r = simulate_block(&m, &[vec![]]);
        assert!(r.cycles <= 1);
        assert_eq!(r.instructions, 0);
    }
}
