//! # cubie-sim
//!
//! The analytic GPU performance, power and roofline models that stand in
//! for the paper's physical A100 / H200 / B200 measurements.
//!
//! A kernel variant in `cubie-kernels` describes each of its launches as a
//! [`trace::KernelTrace`] — launch geometry plus per-block operation
//! counters. This crate turns a trace into:
//!
//! * [`timing`] — simulated execution time via an occupancy-aware
//!   wave/roofline model: each hardware pipe (FP64 tensor core, FP64 CUDA
//!   core, integer, bit-MMA, load/store, DRAM) gets an aggregate service
//!   time; pipes overlap, so the kernel time is the maximum, degraded by
//!   latency-hiding (occupancy) and grid-fill factors and increased by
//!   launch overhead.
//! * [`power`] — utilization-weighted power, energy and energy-delay
//!   product (EDP, the paper's `avg power × time²`), plus smoothed
//!   power-versus-time traces like Figure 8.
//! * [`roofline`] — the cache-aware roofline model of Figure 9: DRAM and
//!   L1 bandwidth ceilings, tensor-core and CUDA-core compute ceilings,
//!   and placement of measured kernels in (arithmetic intensity,
//!   performance) space.
//!
//! [`microsim`] additionally provides a cycle-level single-SM warp
//! scheduler used to *validate* the analytic latency estimates for the
//! single-block kernels.
//!
//! The model is deliberately analytic rather than cycle-accurate: the
//! paper's conclusions rest on *which* pipe limits a kernel and by what
//! factor, which an instruction-mix × peak-throughput model captures,
//! while absolute times are not claimed (see DESIGN.md).

#![warn(missing_docs)]

pub mod microsim;
pub mod occupancy;
pub mod power;
pub mod roofline;
pub mod timing;
pub mod trace;

pub use occupancy::Occupancy;
pub use power::{power_report, power_trace, EnergyReport, PowerSample};
pub use roofline::{Roofline, RooflinePoint};
pub use timing::{time_kernel, time_workload, KernelTiming, Limiter, PipeTimes, WorkloadTiming};
pub use trace::{latency, KernelTrace, WorkloadTrace};
