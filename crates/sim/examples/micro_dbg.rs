fn main() {
    use cubie_sim::microsim::*;
    let m = SmModel::default();
    for n in [64usize, 128, 256, 512, 1024] {
        let tc = simulate_block(&m, &scan_tc_streams(n)).cycles;
        let base = simulate_block(&m, &scan_baseline_streams(n)).cycles;
        println!(
            "n={n:5} tc={tc:5} base={base:5} speedup={:.2}",
            base as f64 / tc as f64
        );
    }
}
