//! Property-based tests of the timing and power models: monotonicity and
//! sanity invariants that must hold for ANY trace.

use cubie_core::counters::MemTraffic;
use cubie_core::OpCounters;
use cubie_device::{a100, b200, h200};
use cubie_sim::{power_report, time_kernel, time_workload, KernelTrace, WorkloadTrace};
use proptest::prelude::*;

fn arb_ops() -> impl Strategy<Value = OpCounters> {
    (
        0u64..1 << 24,
        0u64..1 << 26,
        0u64..1 << 30,
        0u64..1 << 30,
        0u64..1 << 28,
        0u64..1 << 20,
    )
        .prop_map(|(mma, fma, co, ra, smem, int)| OpCounters {
            mma_f64: mma,
            fma_f64: fma,
            int_ops: int,
            gmem_load: MemTraffic {
                coalesced: co,
                strided: 0,
                random: ra,
            },
            smem_bytes: smem,
            ..Default::default()
        })
}

fn arb_trace() -> impl Strategy<Value = KernelTrace> {
    (
        arb_ops(),
        1u64..1 << 20,
        prop_oneof![Just(32u32), Just(128), Just(256), Just(1024)],
        0f64..1e6,
    )
        .prop_map(|(ops, blocks, threads, crit)| {
            KernelTrace::new("p", blocks, threads, 4096, ops, crit)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Times are finite, positive, and at least the launch overhead.
    #[test]
    fn time_is_sane(t in arb_trace()) {
        for d in [a100(), h200(), b200()] {
            let k = time_kernel(&d, &t);
            prop_assert!(k.time_s.is_finite());
            prop_assert!(k.time_s >= d.launch_overhead_s());
            prop_assert!(k.exec_s >= 0.0);
        }
    }

    /// Adding work never makes a kernel faster.
    #[test]
    fn more_work_never_faster(t in arb_trace(), extra_mma in 0u64..1 << 22, extra_bytes in 0u64..1 << 28) {
        let d = h200();
        let base = time_kernel(&d, &t).time_s;
        let mut bigger = t.clone();
        bigger.ops.mma_f64 += extra_mma;
        bigger.ops.gmem_load.coalesced += extra_bytes;
        prop_assert!(time_kernel(&d, &bigger).time_s >= base - 1e-15);
    }

    /// A device with uniformly higher peaks is never slower (H200
    /// dominates A100 in every throughput dimension).
    #[test]
    fn faster_device_never_slower(t in arb_trace()) {
        let slow = time_kernel(&a100(), &t).time_s;
        let fast = time_kernel(&h200(), &t).time_s;
        prop_assert!(fast <= slow * 1.001, "fast {fast} vs slow {slow}");
    }

    /// Workload time is the sum of its kernels' times.
    #[test]
    fn workload_time_is_additive(ts in proptest::collection::vec(arb_trace(), 1..6)) {
        let d = b200();
        let w = WorkloadTrace { kernels: ts.clone() };
        let total = time_workload(&d, &w).total_s;
        let sum: f64 = ts.iter().map(|t| time_kernel(&d, t).time_s).sum();
        prop_assert!((total - sum).abs() < 1e-12 * sum.max(1.0));
    }

    /// Power stays within [idle, TDP]; energy and EDP follow their
    /// definitions.
    #[test]
    fn power_is_bounded(t in arb_trace(), repeats in 1u64..1000) {
        let d = h200();
        let timing = time_workload(&d, &WorkloadTrace::single(t));
        let r = power_report(&d, &timing, repeats);
        prop_assert!(r.avg_power_w >= d.power.idle_w - 1e-9);
        prop_assert!(r.avg_power_w <= d.power.tdp_w + 1e-9);
        prop_assert!((r.energy_j - r.avg_power_w * r.time_s).abs() < 1e-6 * r.energy_j.max(1.0));
        prop_assert!((r.edp - r.energy_j * r.time_s).abs() < 1e-6 * r.edp.max(1.0));
    }

    /// Utilizations are fractions for any trace.
    #[test]
    fn utils_are_fractions(t in arb_trace()) {
        let d = a100();
        let k = time_kernel(&d, &t);
        for u in [k.tc_util(), k.cc_util(), k.b1_util(), k.mem_util(), k.l1_util()] {
            prop_assert!((0.0..=1.0).contains(&u), "util {u}");
        }
    }

    /// Degrading coalescing never speeds a kernel up.
    #[test]
    fn coalescing_ordering(t in arb_trace()) {
        let d = h200();
        let bytes = t.ops.gmem_load.coalesced;
        let mut strided = t.clone();
        strided.ops.gmem_load = MemTraffic {
            coalesced: 0,
            strided: bytes,
            random: t.ops.gmem_load.random,
        };
        let mut random = t.clone();
        random.ops.gmem_load = MemTraffic {
            coalesced: 0,
            strided: 0,
            random: bytes + t.ops.gmem_load.random,
        };
        let t0 = time_kernel(&d, &t).time_s;
        let t1 = time_kernel(&d, &strided).time_s;
        let t2 = time_kernel(&d, &random).time_s;
        prop_assert!(t1 >= t0 - 1e-15);
        prop_assert!(t2 >= t1 - 1e-15);
    }
}
