//! The MMA instructions themselves, functionally emulated.
//!
//! Real FP64 tensor cores (`mma.sync.aligned.m8n8k4...f64`) compute each
//! output element as a chain of IEEE-754 fused multiply-adds over the `k`
//! dimension, seeded with the accumulator:
//! `d = fma(a3, b3, fma(a2, b2, fma(a1, b1, fma(a0, b0, c))))`.
//! [`mma_f64_m8n8k4`] reproduces exactly that order with `f64::mul_add`,
//! so TC results here carry the same rounding behaviour the paper measures
//! (and, as the paper's Observation 7 requires, the CC replacement that
//! issues the same FMA chain on "CUDA cores" is bit-identical).
//!
//! The single-bit `mma.m8n8k128` performs `d[i][j] = c[i][j] +
//! popcount(a_row_i AND b_col_j)` over 128-bit rows/columns.

use std::sync::OnceLock;

use crate::counters::{OpCounters, MMA_F64_FMAS};

/// Fault-injection switch for the golden-regression harness: when the
/// process environment sets `CUBIE_MMA_PERTURB_ULP` (to anything but
/// `0`), every FP64 MMA accumulation chain flips the last mantissa bit
/// of its result — a one-ulp perturbation that must trip the bit-exact
/// comparison class of `cubie golden check` while leaving every
/// magnitude-level tolerance untouched. Applied identically to the TC
/// chain and its CC replacement so the TC ≡ CC bit-identity invariant
/// (Observation 7, asserted throughout the suite) still holds under
/// injection. Read once per process.
fn perturb_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("CUBIE_MMA_PERTURB_ULP").is_some_and(|v| v != *"0"))
}

/// Flip the last mantissa bit of a finite value: a one-ulp-magnitude
/// change, the smallest representable numerical fault.
#[inline]
pub fn flip_last_ulp(v: f64) -> f64 {
    if v.is_finite() {
        f64::from_bits(v.to_bits() ^ 1)
    } else {
        v
    }
}

#[inline]
fn perturb(v: f64) -> f64 {
    if perturb_enabled() {
        flip_last_ulp(v)
    } else {
        v
    }
}

/// The arithmetic core shared by every FP64 MMA entry point: one
/// `m8n8k4` chain reading the operands *in place* through row strides —
/// `a` rows at `a0 + i·lda`, `b` rows at `b0 + kk·ldb`, `c` rows at
/// `c0 + i·ldc` — so callers with tile-aligned operands skip the scratch
/// packing entirely. The element order (`i`-major, `j` inner) and the
/// `k`-ascending FMA chain are exactly those of the packed entry points,
/// and [`perturb`] applies once per element chain, so every caller stays
/// bit-identical no matter which path dispatched it.
#[inline]
#[allow(clippy::too_many_arguments)] // nine scalars beat a one-use struct on this hot path
fn mma_f64_m8n8k4_strided_core(
    a: &[f64],
    a0: usize,
    lda: usize,
    b: &[f64],
    b0: usize,
    ldb: usize,
    c: &mut [f64],
    c0: usize,
    ldc: usize,
) {
    // Fixed-size row views hoist every bounds check out of the FMA
    // loops (one check per row slice instead of three per FMA).
    let br: [&[f64; 8]; 4] =
        std::array::from_fn(|kk| b[b0 + kk * ldb..b0 + kk * ldb + 8].try_into().unwrap());
    for i in 0..8 {
        let ar: &[f64; 4] = a[a0 + i * lda..a0 + i * lda + 4].try_into().unwrap();
        let cr: &mut [f64; 8] = (&mut c[c0 + i * ldc..c0 + i * ldc + 8]).try_into().unwrap();
        for (j, out) in cr.iter_mut().enumerate() {
            let mut acc = *out;
            for (kk, &av) in ar.iter().enumerate() {
                acc = av.mul_add(br[kk][j], acc);
            }
            *out = perturb(acc);
        }
    }
}

/// One FP64 `m8n8k4` MMA on row-major matrices:
/// `c (8×8) += a (8×4) · b (4×8)`, with the tensor-core FMA chain per
/// element. Increments `counters.mma_f64`.
#[inline]
pub fn mma_f64_m8n8k4(a: &[f64; 32], b: &[f64; 32], c: &mut [f64; 64], counters: &mut OpCounters) {
    mma_f64_m8n8k4_strided_core(a, 0, 4, b, 0, 8, c, 0, 8);
    counters.mma_f64 += 1;
}

/// One FP64 `m8n8k4` MMA reading its operands in place from larger
/// row-major matrices: the 8×4 `A` tile starts at `a[a0]` with row
/// stride `lda`, the 4×8 `B` tile at `b[b0]` with row stride `ldb`, and
/// the 8×8 accumulator at `c[c0]` with row stride `ldc`. Bit-identical
/// to packing the tiles and calling [`mma_f64_m8n8k4`], without the
/// scratch fills. Increments `counters.mma_f64`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the strided-core signature plus counters
pub fn mma_f64_m8n8k4_strided(
    a: &[f64],
    a0: usize,
    lda: usize,
    b: &[f64],
    b0: usize,
    ldb: usize,
    c: &mut [f64],
    c0: usize,
    ldc: usize,
    counters: &mut OpCounters,
) {
    mma_f64_m8n8k4_strided_core(a, a0, lda, b, b0, ldb, c, c0, ldc);
    counters.mma_f64 += 1;
}

/// The CUDA-core replacement of [`mma_f64_m8n8k4`] (the paper's CC
/// variant): identical data layout and arithmetic — the same FMA chain per
/// element — but issued as 256 CUDA-core FMAs instead of one tensor-core
/// instruction. Bit-identical results to the TC version by construction.
///
/// Because each lane owns only one `A` and one `B` fragment element while
/// every output element needs operands from other lanes, the replacement
/// also issues warp shuffles to exchange operands (eight per lane per
/// MMA) — data movement the tensor core performs internally. These are
/// counted as integer/logic lane operations.
#[inline]
pub fn cc_mma_f64_m8n8k4(
    a: &[f64; 32],
    b: &[f64; 32],
    c: &mut [f64; 64],
    counters: &mut OpCounters,
) {
    mma_f64_m8n8k4_strided_core(a, 0, 4, b, 0, 8, c, 0, 8);
    counters.fma_f64 += MMA_F64_FMAS;
    counters.int_ops += MMA_F64_FMAS; // operand shuffles
}

/// Naive reference matmul-accumulate used only by tests, accumulating in
/// the same `k`-ascending order but through separate multiply and add
/// (i.e. *not* fused). Tests use it to show that the fused chain differs
/// from unfused accumulation while agreeing with the CC replacement.
pub fn reference_mma_unfused(a: &[f64; 32], b: &[f64; 32], c: &mut [f64; 64]) {
    for i in 0..8 {
        for j in 0..8 {
            let mut acc = c[i * 8 + j];
            for k in 0..4 {
                acc += a[i * 4 + k] * b[k * 8 + j];
            }
            c[i * 8 + j] = acc;
        }
    }
}

/// One single-bit `m8n8k128` MMA with AND·popc semantics:
/// `c[i][j] += popcount(a[i] & b_col[j])`, where `a[i]` is the 128-bit row
/// `i` of `A` and `b_col[j]` the 128-bit column `j` of `B`.
/// Increments `counters.mma_b1`.
#[inline]
pub fn mma_b1_m8n8k128_and_popc(
    a_rows: &[u128; 8],
    b_cols: &[u128; 8],
    c: &mut [u32; 64],
    counters: &mut OpCounters,
) {
    for i in 0..8 {
        for j in 0..8 {
            c[i * 8 + j] += (a_rows[i] & b_cols[j]).count_ones();
        }
    }
    counters.mma_b1 += 1;
}

/// CUDA-core replacement of the bit MMA: the same AND/popcount work issued
/// as 32-bit integer operations (each 128-bit row-column pair costs four
/// 32-bit AND + four popcounts + accumulation), counted on `int_ops`.
#[inline]
pub fn cc_mma_b1_m8n8k128_and_popc(
    a_rows: &[u128; 8],
    b_cols: &[u128; 8],
    c: &mut [u32; 64],
    counters: &mut OpCounters,
) {
    for i in 0..8 {
        for j in 0..8 {
            c[i * 8 + j] += (a_rows[i] & b_cols[j]).count_ones();
        }
    }
    // 8*8 pairs × (4 AND + 4 POPC + 4 ADD) 32-bit ops.
    counters.int_ops += 8 * 8 * 12;
}

/// One logical 8×8×8 matrix multiply-accumulate, issued as two chained
/// FP64 `m8n8k4` MMAs (`k = 0..4` then `k = 4..8`) — the building block
/// of the Scan/Reduction kernels, whose constant operands are full 8×8
/// matrices. All matrices row-major; `c += a · b`.
#[inline]
pub fn mma_f64_8x8x8(a: &[f64; 64], b: &[f64; 64], c: &mut [f64; 64], counters: &mut OpCounters) {
    // The two k-halves read `a`/`b` in place (k-half `h` is the 8×4 tile
    // at column 4h of `a` and the 4×8 tile at row 4h of `b`) — same FMA
    // chains as packing into scratch, minus the 64 copies per call.
    mma_f64_m8n8k4_strided_core(a, 0, 8, b, 0, 8, c, 0, 8);
    mma_f64_m8n8k4_strided_core(a, 4, 8, b, 32, 8, c, 0, 8);
    counters.mma_f64 += 2;
}

/// CUDA-core replacement of [`mma_f64_8x8x8`] (identical numerics,
/// counted as 512 CUDA-core FMAs).
#[inline]
pub fn cc_mma_f64_8x8x8(
    a: &[f64; 64],
    b: &[f64; 64],
    c: &mut [f64; 64],
    counters: &mut OpCounters,
) {
    mma_f64_m8n8k4_strided_core(a, 0, 8, b, 0, 8, c, 0, 8);
    mma_f64_m8n8k4_strided_core(a, 4, 8, b, 32, 8, c, 0, 8);
    counters.fma_f64 += 2 * MMA_F64_FMAS;
    counters.int_ops += 2 * MMA_F64_FMAS; // operand shuffles
}

/// Multiply an `M×K` by a `K×N` row-major matrix through tiled FP64 MMA
/// instructions, zero-padding ragged edges. This is the building block for
/// warp-level GEMM stages inside the workloads. `c` must be `M×N` and is
/// accumulated into. Dimensions need not be multiples of the tile shape.
pub fn mma_tiled_f64(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    counters: &mut OpCounters,
) {
    assert_eq!(a.len(), m * k, "A must be M×K");
    assert_eq!(b.len(), k * n, "B must be K×N");
    assert_eq!(c.len(), m * n, "C must be M×N");
    if m.is_multiple_of(8)
        && n.is_multiple_of(8)
        && k.is_multiple_of(4)
        && m != 0
        && n != 0
        && k != 0
    {
        mma_tiled_f64_aligned(a, b, c, m, n, k, counters);
        return;
    }
    let mut at = [0.0f64; 32];
    let mut bt = [0.0f64; 32];
    let mut ct = [0.0f64; 64];
    for i0 in (0..m).step_by(8) {
        for j0 in (0..n).step_by(8) {
            ct.fill(0.0);
            for (ii, row) in ct.chunks_exact_mut(8).enumerate() {
                if i0 + ii < m {
                    for (jj, v) in row.iter_mut().enumerate() {
                        if j0 + jj < n {
                            *v = c[(i0 + ii) * n + (j0 + jj)];
                        }
                    }
                }
            }
            for k0 in (0..k).step_by(4) {
                at.fill(0.0);
                bt.fill(0.0);
                for ii in 0..8usize.min(m - i0) {
                    for kk in 0..4usize.min(k - k0) {
                        at[ii * 4 + kk] = a[(i0 + ii) * k + (k0 + kk)];
                    }
                }
                for kk in 0..4usize.min(k - k0) {
                    for jj in 0..8usize.min(n - j0) {
                        bt[kk * 8 + jj] = b[(k0 + kk) * n + (j0 + jj)];
                    }
                }
                mma_f64_m8n8k4(&at, &bt, &mut ct, counters);
            }
            for ii in 0..8usize.min(m - i0) {
                for jj in 0..8usize.min(n - j0) {
                    c[(i0 + ii) * n + (j0 + jj)] = ct[ii * 8 + jj];
                }
            }
        }
    }
}

/// Tile-aligned fast path of [`mma_tiled_f64`] (`m % 8 == n % 8 == 0`,
/// `k % 4 == 0`): every tile is interior, so the MMAs read `a`/`b` and
/// accumulate into `c` in place — no scratch zero-fill, no per-element
/// bounds guards, no copy-in/copy-out — and counters are batched per
/// tile-row instead of per MMA. The loop nest (`k0` innermost-outer,
/// element chains inside the core) matches the ragged path exactly, so
/// results are bit-identical, perturbation injection included.
fn mma_tiled_f64_aligned(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    counters: &mut OpCounters,
) {
    let mmas_per_tile_row = (n as u64 / 8) * (k as u64 / 4);
    for i0 in (0..m).step_by(8) {
        for j0 in (0..n).step_by(8) {
            for k0 in (0..k).step_by(4) {
                mma_f64_m8n8k4_strided_core(
                    a,
                    i0 * k + k0,
                    k,
                    b,
                    k0 * n + j0,
                    n,
                    c,
                    i0 * n + j0,
                    n,
                );
            }
        }
        counters.mma_f64 += mmas_per_tile_row;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::LcgF64;

    fn random_tile(seed: u64) -> ([f64; 32], [f64; 32], [f64; 64]) {
        let mut g = LcgF64::new(seed);
        let mut a = [0.0; 32];
        let mut b = [0.0; 32];
        let mut c = [0.0; 64];
        g.fill(&mut a);
        g.fill(&mut b);
        g.fill(&mut c);
        (a, b, c)
    }

    #[test]
    fn mma_matches_exact_small_integers() {
        // Integer-valued inputs are exact in f64 whether fused or not.
        let mut a = [0.0; 32];
        let mut b = [0.0; 32];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i % 5) as f64;
        }
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i * 3) % 7) as f64;
        }
        let mut c = [1.0; 64];
        let mut cref = [1.0; 64];
        let mut ctr = OpCounters::new();
        mma_f64_m8n8k4(&a, &b, &mut c, &mut ctr);
        reference_mma_unfused(&a, &b, &mut cref);
        assert_eq!(c, cref);
        assert_eq!(ctr.mma_f64, 1);
    }

    #[test]
    fn cc_replacement_is_bit_identical_to_tc() {
        for seed in 1..20 {
            let (a, b, c0) = random_tile(seed);
            let mut c_tc = c0;
            let mut c_cc = c0;
            let mut k1 = OpCounters::new();
            let mut k2 = OpCounters::new();
            mma_f64_m8n8k4(&a, &b, &mut c_tc, &mut k1);
            cc_mma_f64_m8n8k4(&a, &b, &mut c_cc, &mut k2);
            assert_eq!(c_tc, c_cc, "TC and CC must agree bit-for-bit");
            assert_eq!(k1.mma_f64, 1);
            assert_eq!(k2.fma_f64, 256);
            assert_eq!(k1.tc_flops(), k2.cc_flops());
        }
    }

    #[test]
    fn fused_chain_can_differ_from_unfused() {
        // Find at least one random tile where fused and unfused rounding
        // differ — demonstrating the MMA semantics are genuinely fused.
        let mut any_diff = false;
        for seed in 1..200 {
            let (a, b, c0) = random_tile(seed);
            let mut cf = c0;
            let mut cu = c0;
            let mut ctr = OpCounters::new();
            mma_f64_m8n8k4(&a, &b, &mut cf, &mut ctr);
            reference_mma_unfused(&a, &b, &mut cu);
            if cf != cu {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "fused MMA never differed from unfused reference");
    }

    #[test]
    fn ulp_flip_is_one_ulp_and_involutive() {
        // The golden harness relies on the injected fault being exactly
        // one ulp: detectable by the bit-exact class, invisible to any
        // sane relative tolerance.
        for v in [1.0, -2.5, 3.119e-13, 1e300] {
            let f = flip_last_ulp(v);
            assert_ne!(f.to_bits(), v.to_bits());
            assert_eq!(f.to_bits() ^ 1, v.to_bits());
            assert_eq!(flip_last_ulp(f).to_bits(), v.to_bits());
            assert!(((f - v) / v).abs() < 1e-15, "flip moved more than ~1 ulp");
        }
        assert_eq!(flip_last_ulp(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn bit_mma_counts_intersections() {
        let mut a = [0u128; 8];
        let mut b = [0u128; 8];
        a[0] = 0b1011;
        b[0] = 0b0011;
        a[7] = u128::MAX;
        b[7] = u128::MAX;
        let mut c = [0u32; 64];
        let mut ctr = OpCounters::new();
        mma_b1_m8n8k128_and_popc(&a, &b, &mut c, &mut ctr);
        assert_eq!(c[0], 2); // popc(1011 & 0011) = 2
        assert_eq!(c[7 * 8 + 7], 128);
        assert_eq!(c[7], 3); // row 0, col 7: a[0] & full = 3 bits
        assert_eq!(ctr.mma_b1, 1);
    }

    #[test]
    fn bit_mma_accumulates() {
        let a = [1u128; 8];
        let b = [1u128; 8];
        let mut c = [0u32; 64];
        let mut ctr = OpCounters::new();
        mma_b1_m8n8k128_and_popc(&a, &b, &mut c, &mut ctr);
        mma_b1_m8n8k128_and_popc(&a, &b, &mut c, &mut ctr);
        assert!(c.iter().all(|&v| v == 2));
    }

    #[test]
    fn tiled_mma_matches_naive_matmul() {
        let (m, n, k) = (13, 9, 10); // deliberately ragged
        let mut g = LcgF64::new(3);
        let a = g.vec(m * k);
        let b = g.vec(k * n);
        let mut c = vec![0.0; m * n];
        let mut ctr = OpCounters::new();
        mma_tiled_f64(&a, &b, &mut c, m, n, k, &mut ctr);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                }
                let d = (c[i * n + j] - acc).abs();
                assert!(d < 1e-12, "({i},{j}) differs by {d}");
            }
        }
        // ceil(13/8)=2, ceil(9/8)=2, ceil(10/4)=3 tiles.
        assert_eq!(ctr.mma_f64, 2 * 2 * 3);
    }

    /// The pre-fast-path tiled algorithm: pack every tile into scratch
    /// (zero-padded) and go through the packed MMA entry point. Kept as
    /// the reference the aligned fast path must match bit-for-bit.
    fn tiled_ref_packed(
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        m: usize,
        n: usize,
        k: usize,
        counters: &mut OpCounters,
    ) {
        let mut at = [0.0f64; 32];
        let mut bt = [0.0f64; 32];
        let mut ct = [0.0f64; 64];
        for i0 in (0..m).step_by(8) {
            for j0 in (0..n).step_by(8) {
                ct.fill(0.0);
                for (ii, row) in ct.chunks_exact_mut(8).enumerate() {
                    if i0 + ii < m {
                        for (jj, v) in row.iter_mut().enumerate() {
                            if j0 + jj < n {
                                *v = c[(i0 + ii) * n + (j0 + jj)];
                            }
                        }
                    }
                }
                for k0 in (0..k).step_by(4) {
                    at.fill(0.0);
                    bt.fill(0.0);
                    for ii in 0..8usize.min(m - i0) {
                        for kk in 0..4usize.min(k - k0) {
                            at[ii * 4 + kk] = a[(i0 + ii) * k + (k0 + kk)];
                        }
                    }
                    for kk in 0..4usize.min(k - k0) {
                        for jj in 0..8usize.min(n - j0) {
                            bt[kk * 8 + jj] = b[(k0 + kk) * n + (j0 + jj)];
                        }
                    }
                    mma_f64_m8n8k4(&at, &bt, &mut ct, counters);
                }
                for ii in 0..8usize.min(m - i0) {
                    for jj in 0..8usize.min(n - j0) {
                        c[(i0 + ii) * n + (j0 + jj)] = ct[ii * 8 + jj];
                    }
                }
            }
        }
    }

    #[test]
    fn aligned_fast_path_is_bit_identical_to_packed_path() {
        // Tile-aligned shapes take the strided fast path; it must agree
        // with the packing reference to the last bit, counters included.
        for (seed, (m, n, k)) in [(8, 8, 4), (16, 8, 8), (24, 16, 12), (40, 32, 20)]
            .into_iter()
            .enumerate()
        {
            let mut g = LcgF64::new(seed as u64 + 11);
            let a = g.vec(m * k);
            let b = g.vec(k * n);
            let c0 = g.vec(m * n); // nonzero accumulator exercises seeding
            let mut c_fast = c0.clone();
            let mut c_ref = c0.clone();
            let mut k_fast = OpCounters::new();
            let mut k_ref = OpCounters::new();
            mma_tiled_f64(&a, &b, &mut c_fast, m, n, k, &mut k_fast);
            tiled_ref_packed(&a, &b, &mut c_ref, m, n, k, &mut k_ref);
            for (i, (x, y)) in c_fast.iter().zip(&c_ref).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "({m}x{n}x{k}) element {i}: fast path diverged from packed"
                );
            }
            assert_eq!(k_fast.mma_f64, k_ref.mma_f64, "MMA count must not change");
        }
    }

    #[test]
    fn strided_mma_matches_packed_mma() {
        // A 16×12 / 12×24 problem; take the tile at (8, 8)..(16, 16) and
        // k-rows 4..8, both packed and strided.
        let mut g = LcgF64::new(5);
        let (m, n, k) = (16, 24, 12);
        let a = g.vec(m * k);
        let b = g.vec(k * n);
        let c0 = g.vec(m * n);
        let (i0, j0, k0) = (8, 8, 4);
        let mut at = [0.0; 32];
        let mut bt = [0.0; 32];
        let mut ct = [0.0; 64];
        for ii in 0..8 {
            for kk in 0..4 {
                at[ii * 4 + kk] = a[(i0 + ii) * k + (k0 + kk)];
            }
        }
        for kk in 0..4 {
            for jj in 0..8 {
                bt[kk * 8 + jj] = b[(k0 + kk) * n + (j0 + jj)];
            }
        }
        for ii in 0..8 {
            for jj in 0..8 {
                ct[ii * 8 + jj] = c0[(i0 + ii) * n + (j0 + jj)];
            }
        }
        let mut k1 = OpCounters::new();
        let mut k2 = OpCounters::new();
        mma_f64_m8n8k4(&at, &bt, &mut ct, &mut k1);
        let mut c = c0.clone();
        mma_f64_m8n8k4_strided(
            &a,
            i0 * k + k0,
            k,
            &b,
            k0 * n + j0,
            n,
            &mut c,
            i0 * n + j0,
            n,
            &mut k2,
        );
        for ii in 0..8 {
            for jj in 0..8 {
                assert_eq!(
                    c[(i0 + ii) * n + (j0 + jj)].to_bits(),
                    ct[ii * 8 + jj].to_bits(),
                    "strided MMA diverged from packed at ({ii},{jj})"
                );
            }
        }
        assert_eq!(k1.mma_f64, 1);
        assert_eq!(k2.mma_f64, 1);
    }

    #[test]
    fn tiled_mma_accumulates_into_c() {
        let (m, n, k) = (8, 8, 4);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let mut c = vec![10.0; m * n];
        let mut ctr = OpCounters::new();
        mma_tiled_f64(&a, &b, &mut c, m, n, k, &mut ctr);
        assert!(c.iter().all(|&v| (v - 14.0).abs() < 1e-15));
    }
}

#[cfg(test)]
mod tests_8x8x8 {
    use super::*;
    use crate::rng::LcgF64;

    #[test]
    fn logical_8x8x8_matches_naive() {
        let mut g = LcgF64::new(77);
        let mut a = [0.0f64; 64];
        let mut b = [0.0f64; 64];
        let mut c = [0.0f64; 64];
        g.fill(&mut a);
        g.fill(&mut b);
        g.fill(&mut c);
        let mut got = c;
        let mut ctr = OpCounters::new();
        mma_f64_8x8x8(&a, &b, &mut got, &mut ctr);
        assert_eq!(ctr.mma_f64, 2);
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = c[i * 8 + j];
                for k in 0..8 {
                    acc = a[i * 8 + k].mul_add(b[k * 8 + j], acc);
                }
                assert!((got[i * 8 + j] - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cc_8x8x8_is_bit_identical() {
        let mut g = LcgF64::new(13);
        let mut a = [0.0f64; 64];
        let mut b = [0.0f64; 64];
        g.fill(&mut a);
        g.fill(&mut b);
        let mut c1 = [1.0f64; 64];
        let mut c2 = [1.0f64; 64];
        let mut k1 = OpCounters::new();
        let mut k2 = OpCounters::new();
        mma_f64_8x8x8(&a, &b, &mut c1, &mut k1);
        cc_mma_f64_8x8x8(&a, &b, &mut c2, &mut k2);
        assert_eq!(c1, c2);
        assert_eq!(k2.fma_f64, 512);
        assert_eq!(k2.mma_f64, 0);
    }
}
